"""The operational LOCAL model: message passing and order invariance.

Two vignettes:

1. The same problems solved twice — functionally (views) and
   operationally (synchronous message passing) — with matching results:
   Cole-Vishkin color reduction, Luby's MIS, leader-parity 2-coloring.

2. The order-invariance lens behind the sub-log* lower bounds: a
   value-dependent rule is detected as order-sensitive, its projection
   is invariant by construction, and *any* order-invariant rule fails
   weak 2-coloring on a cycle with increasing identifiers (the
   homogeneity that powers Theorem 21 and, for even degree, this
   paper's Omega(log* n)).

Run:  python examples/message_passing_and_order.py
"""

import random

from repro.algorithms import FloodLeaderParity, LubyMIS, proper_two_coloring
from repro.graphs import balanced_regular_tree, cycle, random_permutation_ids, sequential_ids
from repro.lcl import MaximalIndependentSet, ProperColoring
from repro.local_model import (
    OrderInvariantProjection,
    ViewAlgorithm,
    is_order_invariant,
    order_homogeneous_failure,
    run_local,
)


class IdValueParity(ViewAlgorithm):
    """Color = identifier parity — depends on values, not just order."""

    name = "id-value-parity"
    radius = 1

    def output(self, view):
        return view.identifiers[0] % 2


def main() -> None:
    print("1. operational vs functional")
    tree = balanced_regular_tree(3, 3)
    ids = random_permutation_ids(tree, random.Random(1))

    mis = run_local(tree, LubyMIS(), rng=random.Random(2))
    ok = MaximalIndependentSet().is_feasible(tree, mis.outputs)
    print(f"   Luby MIS (message passing): {mis.rounds} rounds, "
          f"|MIS| = {sum(mis.outputs)}, verified = {ok}")

    mp = run_local(tree, FloodLeaderParity(), ids=ids)
    fn = proper_two_coloring(tree, ids)
    print(f"   2-coloring: message passing ({mp.rounds} rounds) and "
          f"functional ({fn.rounds} rounds) agree = {mp.outputs == fn.colors}, "
          f"proper = {ProperColoring(2).is_feasible(tree, mp.outputs)}")

    print("\n2. order invariance")
    ring = cycle(16)
    raw = IdValueParity()
    projected = OrderInvariantProjection(raw)
    print(f"   raw rule order-invariant?       "
          f"{is_order_invariant(raw, ring, sequential_ids(ring))}")
    print(f"   projected rule order-invariant? "
          f"{is_order_invariant(projected, ring, sequential_ids(ring))}")
    failing = order_homogeneous_failure(projected, 24)
    print(f"   projected rule on an increasing 24-cycle: "
          f"{len(failing)} nodes fail weak coloring")
    print("   every order-invariant rule fails there — the Ramsey route")
    print("   to lower bounds, and why even degree costs Omega(log* n).")


if __name__ == "__main__":
    main()
