"""Cycles: the trichotomy and Linial's neighborhood graphs.

The paper's introduction starts from the completely-understood cycle
landscape — every cycle LCL is O(1), Theta(log* n), or Theta(n) — and
from Linial's neighborhood-graph technique.  Both are executable here:

1. the trichotomy, measured on an n-sweep of cycles;
2. the equivalence "t-round c-coloring <=> chi(N_t(m)) <= c", run in
   both directions: exact chromatic numbers of small neighborhood
   graphs, and a 1-round 3-coloring *algorithm extracted from a graph
   coloring* and executed on random cycles;
3. the sharp threshold: N_1(6) is 3-colorable, N_1(7) is not — so one
   round of communication 3-colors cycles with identifiers from {1..6}
   and provably cannot from {1..7}.  (The 15-second exhaustive proof
   lives in ``benchmarks/test_bench_linial.py``; pass --threshold to
   run it here.)

Run:  python examples/cycles_and_neighborhood_graphs.py [--threshold]
"""

import random
import sys

from repro.experiments import run_cycle_trichotomy, run_linial_experiment
from repro.graphs import cycle
from repro.lcl import ProperColoring
from repro.lowerbounds import (
    algorithm_from_coloring,
    is_c_colorable,
    neighborhood_graph,
)


def main() -> None:
    check_threshold = "--threshold" in sys.argv

    print("1. the cycle trichotomy")
    print(run_cycle_trichotomy(sizes=(16, 64, 256)).format_table())

    print("\n2. neighborhood graphs, exactly")
    result = run_linial_experiment(check_threshold=check_threshold)
    print(result.format_table())
    print(f"   derived 1-round algorithm valid on random cycles: "
          f"{result.derived_algorithm_valid}")

    print("\n3. an algorithm extracted from a graph coloring")
    graph, windows = neighborhood_graph(6, 1)
    coloring = is_c_colorable(graph, 3)
    algorithm = algorithm_from_coloring(coloring, windows, m=6, t=1)
    rng = random.Random(7)
    ids = rng.sample(range(1, 7), 6)
    out = algorithm.run(ids)
    ok = ProperColoring(3).is_feasible(cycle(6), out)
    print(f"   identifiers {ids} -> colors {out} (proper: {ok})")
    print("   chi(N_0(m)) = m: zero rounds need the whole identifier space;")
    print("   one round collapses it to 3 colors — up to m = 6 and no further.")


if __name__ == "__main__":
    main()
