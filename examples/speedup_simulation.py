"""The speedup simulation (Sections 5-7) run on concrete algorithms.

Takes a 1-round weak-coloring algorithm on the oriented 4-regular tree,
applies the first speedup lemma (node -> edge, Figure 1), then the
second (edge -> node, Figure 2), and prints each stage's *exact* local
failure probability next to the lemma's guaranteed ceiling.  The nominal
palette blows up doubly exponentially — the engine of the Omega(log* n)
lower bound.

Run:  python examples/speedup_simulation.py
"""

from repro.speedup import (
    local_maximum_coloring,
    run_speedup_pipeline,
    smaller_count_coloring,
    zero_round_uniform,
    node_local_failure,
)


def show(seed) -> None:
    print(f"seed: {seed.name}  (k = {seed.k}, palette = {seed.palette!r}, "
          f"radius = {seed.t})")
    result = run_speedup_pipeline(seed, method="exact")
    for stage in result.stages:
        bound = "-" if stage.lemma_bound is None else f"{stage.lemma_bound:10.4g}"
        palette = f"2^{stage.nominal_palette.log2().to_float():g}"
        print(f"  {stage.kind:4s}  radius={stage.radius}  palette={palette:10s}  "
              f"p = {stage.measured_failure.as_float():.6f}   lemma bound <= {bound}")
    print(f"  all lemma bounds hold: {result.all_bounds_hold()}\n")


def main() -> None:
    print("=== Figures 1 & 2, quantitative ===\n")
    show(local_maximum_coloring(2, bits=1))
    show(local_maximum_coloring(2, bits=2))
    show(smaller_count_coloring(2, bits=1))

    print("=== generalization to Delta = 6 (Section 7) ===\n")
    show(local_maximum_coloring(3, bits=1))

    print("=== the 0-round floor (Claim 12's anchor) ===\n")
    for c in (2, 4, 8):
        alg = zero_round_uniform(2, c)
        p = node_local_failure(alg, method="exact")
        print(f"  uniform {c}-coloring: failure = {p.probability} "
              f"(= c^-Delta = {c}^-4 exactly)")
    print("\nno 0-round algorithm beats uniform guessing; iterating the")
    print("speedups from a hypothetical fast weak-2-coloring algorithm")
    print("would contradict this floor — that is Theorem 6.")


if __name__ == "__main__":
    main()
