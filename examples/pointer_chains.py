"""The pointer problem P* — chains to irregularities, and Theorem 4.

Solves P* on a balanced tree (chains run to the leaves), on a torus
(chains orient the short cycles), and walks one chain for display.
Then builds the Lemma 18 pair (T, T'): identical within radius
depth - 2 of the center, yet forcing contradictory advertised degrees —
the Omega(log n) lower bound as an artifact you can hold.

Run:  python examples/pointer_chains.py
"""

from repro.algorithms import solve_pstar
from repro.graphs import (
    balanced_regular_tree,
    lemma18_pair,
    sequential_ids,
    toroidal_grid,
)
from repro.lcl import PStar
from repro.local_model import gather_view


def walk_chain(labels, start: int, limit: int = 30):
    chain = [start]
    seen = {start}
    v = start
    while labels[v].p is not None and len(chain) < limit:
        v = labels[v].p
        chain.append(v)
        if v in seen:
            chain.append("...cycle")
            break
        seen.add(v)
    return chain


def main() -> None:
    print("1. P* on a balanced 4-regular tree (irregularities = leaves)")
    tree = balanced_regular_tree(4, 5)
    sol = solve_pstar(tree, 4, sequential_ids(tree))
    assert not PStar(4).verify(tree, sol.labels)
    chain = walk_chain(sol.labels, 0)
    print(f"   n = {tree.n}, radius used = {sol.radius} (Theta(log n))")
    print(f"   chain from the center: {' -> '.join(map(str, chain))}")
    end = chain[-1]
    print(f"   advertises d = {sol.labels[0].d}; chain ends at node {end} "
          f"with degree {tree.degree(end)}")

    print("\n2. P* on a torus (irregularities = short cycles)")
    torus = toroidal_grid(5, 6)
    sol = solve_pstar(torus, 4, sequential_ids(torus))
    assert not PStar(4).verify(torus, sol.labels)
    chain = walk_chain(sol.labels, 0, limit=12)
    print(f"   n = {torus.n}: chain from node 0: {' -> '.join(map(str, chain))}")
    print(f"   all nodes advertise d = 0 (chains orient cycles): "
          f"{all(l.d == 0 for l in sol.labels)}")

    print("\n3. Lemma 18: the indistinguishable pair (T, T')")
    depth = 5
    t, t_prime, center = lemma18_pair(4, depth)
    for radius in range(depth):
        same = gather_view(t, center, radius).key() == gather_view(
            t_prime, center, radius
        ).key()
        print(f"   radius {radius}: center views identical = {same}")
    sol_t = solve_pstar(t, 4, sequential_ids(t))
    sol_tp = solve_pstar(t_prime, 4, sequential_ids(t_prime))
    print(f"   forced outputs: d = {sol_t.labels[center].d} on T, "
          f"d = {sol_tp.labels[center].d} on T'")
    print("   any algorithm faster than the identical-view radius must be")
    print("   wrong on one of the two inputs: P* needs Omega(log n) rounds.")


if __name__ == "__main__":
    main()
