"""The quantitative lower-bound chain (Claims 10-12, Lemma 9, Theorem 13).

Prints, with tower arithmetic where floats give up:

* the Claim 10 independent-execution harvest on a real tree vs the
  closed form,
* the palette towers Claim 11's downward walk pays per round,
* the Claim 11/16 failure floors across Delta,
* Lemma 9 / Theorem 13's endgame: at n = 2↑↑h the global success
  ceiling drops below 1/2 exactly when the regime opens (h = 10).

Run:  python examples/lower_bound_landscape.py
"""

from repro.analysis import (
    claim10_set_size_bound,
    claim11_failure_floor_log2,
    independent_execution_set,
    lemma9_evaluate,
    palette_trajectory,
    theorem13_crossover_height,
    tower,
)
from repro.graphs import balanced_regular_tree, orient_tree


def main() -> None:
    print("1. Claim 10: independent executions inside B_k(v)")
    tree = balanced_regular_tree(4, 9)
    orientation = orient_tree(tree, 2)
    for t in (1, 2):
        harvest = independent_execution_set(
            tree, orientation, 0, t=t, ball_radius=8, seed_radius=2, verify=False
        )
        effective_n = len(tree.ball(0, 8)) ** 3
        bound = claim10_set_size_bound(effective_n, t)
        print(f"   t = {t}: |S| = {harvest.size:4d}  >=  n^(1/(3(2t+1))) = {bound:6.1f}")

    print("\n2. Claim 11: palette towers per round budget (Delta = 4)")
    for t in (1, 2, 3, 4):
        c0 = palette_trajectory(t, 4)[-1]
        print(f"   t = {t}: c_0 = {c0!r}   (log* = {c0.log_star()})")

    print("\n3. Claim 11/16 failure floors (log2 p_t at p0 = 2^-20, c0 = 2^10)")
    for delta in (4, 6, 8):
        for t in (1, 2, 3):
            floor = claim11_failure_floor_log2(-20, 10, t, delta)
            print(f"   Delta = {delta}, t = {t}: log2 p_t >= {floor:16.4g}")

    print("\n4. Theorem 13: the crossover (b = 1)")
    for h in (6, 8, 10, 12, 16):
        ev = lemma9_evaluate(tower(h), b=1)
        verdict = (
            "asymptotic regime not reached"
            if not ev.regime_reached
            else f"success ceiling < 1/2: {ev.below_half}"
        )
        print(f"   n = 2↑↑{h:<2d} (log* n = {ev.log_star_n:2d}, t = {ev.t:4.1f}): {verdict}")
    print(f"   first tower height with ceiling < 1/2: "
          f"{theorem13_crossover_height(b=1)}")
    print("\nweak 2-coloring below (log* n)/2 - 4 rounds succeeds with")
    print("probability < 1/2 — Theorem 6, evaluated rather than asserted.")


if __name__ == "__main__":
    main()
