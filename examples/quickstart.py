"""Quickstart: weak 2-coloring in the LOCAL model, end to end.

Builds a 4-regular tree, runs the Theta(log* n) weak-2-coloring pipeline
(unique identifiers -> distance-parity recoloring -> Cole-Vishkin on the
pointer pseudoforest -> greedy MIS -> black/white), verifies the result
with the LCL verifier, and prints the per-phase round accounting.

Run:  python examples/quickstart.py
"""

from repro.algorithms import weak_two_coloring_from_ids
from repro.graphs import balanced_regular_tree, sequential_ids
from repro.lcl import WeakColoring


def main() -> None:
    tree = balanced_regular_tree(4, depth=5)
    ids = sequential_ids(tree)
    print(f"network: balanced 4-regular tree, n = {tree.n}, diameter = {tree.diameter()}")

    result = weak_two_coloring_from_ids(tree, ids)

    verifier = WeakColoring(2)
    violations = verifier.verify(tree, result.labels)
    blacks = sum(result.labels)
    print(f"weak 2-coloring computed in {result.rounds} rounds "
          f"({blacks} black, {tree.n - blacks} white)")
    print("phase accounting:")
    for phase, rounds in result.phase_rounds.items():
        print(f"  {phase:14s} {rounds} round(s)")
    if violations:
        raise SystemExit(f"VERIFIER FAILED: {violations[:3]}")
    print("verifier: every node has a differently-colored neighbor ✓")

    # The same pipeline is the Lemma 2 minimality reduction: any
    # distance-k weak c-coloring would have worked as the seed.
    print("\nthis is Lemma 2 of the paper: weak 2-coloring is *minimal* —")
    print("any nontrivial symmetry-breaking output reduces to it in O(1) rounds.")


if __name__ == "__main__":
    main()
