"""The odd/even degree dichotomy — Table 1's bottom two rows, live.

Odd-degree graphs: weak 2-coloring in O(1) rounds via order types
(Naor-Stockmeyer).  Even-degree graphs: Theta(log* n), and the paper
proves the matching lower bound.  This script shows:

1. the O(1) odd-degree pipeline on 3-regular trees of growing size
   (round count frozen),
2. the in-degree shortcut failing on a BFS-ordered tree (the negative
   result motivating order types),
3. the order-type labeling failing on a cycle with increasing IDs —
   the even-degree homogeneity that the Omega(log* n) bound exploits,
4. the log* pipeline's round count moving only with the identifier
   space, never with n.

Run:  python examples/odd_even_dichotomy.py
"""

import random

from repro.algorithms import (
    in_degree_labeling,
    is_distance_k_weak,
    odd_degree_weak_two_coloring,
    order_type_labeling,
    weak_two_coloring_from_ids,
)
from repro.graphs import balanced_regular_tree, cycle, sequential_ids, sorted_by_bfs_ids
from repro.lcl import WeakColoring


def main() -> None:
    print("1. odd degree => O(1) rounds (order-type pipeline)")
    for depth in (2, 3, 4, 5):
        tree = balanced_regular_tree(3, depth)
        out = odd_degree_weak_two_coloring(tree, sequential_ids(tree))
        ok = WeakColoring(2).is_feasible(tree, out.labels)
        print(f"   n = {tree.n:5d}: {out.rounds} rounds, verified = {ok}")

    print("\n2. the in-degree shortcut is NOT worst-case correct:")
    tree = balanced_regular_tree(3, 5)
    labels, _ = in_degree_labeling(tree, sorted_by_bfs_ids(tree))
    weak = is_distance_k_weak(tree, labels, 2)
    print(f"   BFS-ordered tree, n = {tree.n}: in-degree labeling "
          f"distance-2 weak? {weak}  (every non-root node has in-degree 1)")

    print("\n3. even degree kills order types (the lower bound's fuel):")
    ring = cycle(24)
    labels, _ = order_type_labeling(ring, sequential_ids(ring))
    weak = is_distance_k_weak(ring, labels, 1)
    print(f"   24-cycle with increasing IDs: order types weak? {weak}")

    print("\n4. even degree => Theta(log* n): rounds track the ID space, not n")
    tree = balanced_regular_tree(4, 3)
    rng = random.Random(0)
    for bits in (8, 64, 1024, 16384):
        space = 1 << bits
        ids, seen = [], set()
        while len(ids) < tree.n:
            x = rng.randint(1, space)
            if x not in seen:
                seen.add(x)
                ids.append(x)
        out = weak_two_coloring_from_ids(tree, ids, id_space=space)
        print(f"   id space 2^{bits:<6d}: {out.rounds} rounds")


if __name__ == "__main__":
    main()
