"""Tests for Linial's neighborhood-graph machinery."""

import random

import pytest

from repro.experiments import run_linial_experiment
from repro.graphs import cycle
from repro.lcl import ProperColoring
from repro.lowerbounds import (
    CycleAlgorithm,
    algorithm_from_coloring,
    chromatic_number,
    is_c_colorable,
    linial_chromatic_lower_bound,
    min_rounds_for_3_coloring,
    neighborhood_graph,
    window_of,
)


class TestNeighborhoodGraph:
    def test_n0_is_complete(self):
        for m in (3, 4, 5):
            g, windows = neighborhood_graph(m, 0)
            assert g.n == m
            assert g.m == m * (m - 1) // 2
            assert len(windows) == m

    def test_n1_vertex_count(self):
        for m in (4, 5, 6):
            g, windows = neighborhood_graph(m, 1)
            assert g.n == m * (m - 1) * (m - 2)
            assert len(windows) == g.n

    def test_windows_have_distinct_ids(self):
        _, windows = neighborhood_graph(5, 1)
        for w in windows:
            assert len(set(w)) == 3

    def test_edges_are_overlaps(self):
        g, windows = neighborhood_graph(4, 1)
        for i, j in g.edges():
            a, b = windows[i], windows[j]
            # One must be a shift of the other.
            assert a[1:] == b[:-1] or b[1:] == a[:-1]

    def test_edges_require_joint_distinctness(self):
        g, windows = neighborhood_graph(4, 1)
        index = {w: i for i, w in enumerate(windows)}
        # (1,2,3) -> (2,3,1) would repeat 1 across the union: forbidden.
        assert not g.has_edge(index[(1, 2, 3)], index[(2, 3, 1)])
        # (1,2,3) -> (2,3,4) is a genuine cycle fragment: present.
        assert g.has_edge(index[(1, 2, 3)], index[(2, 3, 4)])

    def test_window_too_wide_rejected(self):
        with pytest.raises(ValueError):
            neighborhood_graph(4, 2)

    def test_window_of(self):
        ids = [10, 20, 30, 40, 50]
        assert window_of(ids, 0, 1) == (50, 10, 20)
        assert window_of(ids, 2, 1) == (20, 30, 40)


class TestColorability:
    def test_dsatur_on_known_graphs(self):
        assert is_c_colorable(cycle(6), 2) is not None
        assert is_c_colorable(cycle(5), 2) is None
        assert is_c_colorable(cycle(5), 3) is not None

    def test_chromatic_numbers(self):
        from repro.graphs import complete_graph, path, star

        assert chromatic_number(complete_graph(5)) == 5
        assert chromatic_number(path(6)) == 2
        assert chromatic_number(star(4)) == 2
        assert chromatic_number(cycle(7)) == 3

    def test_chi_n0_equals_m(self):
        for m in (3, 4, 5, 6):
            g, _ = neighborhood_graph(m, 0)
            assert chromatic_number(g) == m

    def test_chi_n1_small(self):
        g4, _ = neighborhood_graph(4, 1)
        g5, _ = neighborhood_graph(5, 1)
        g6, _ = neighborhood_graph(6, 1)
        assert chromatic_number(g4) == 2
        assert chromatic_number(g5) == 3
        assert chromatic_number(g6) == 3

    def test_colorings_returned_are_proper(self):
        g, _ = neighborhood_graph(6, 1)
        coloring = is_c_colorable(g, 3)
        assert ProperColoring(3).is_feasible(g, coloring)

    def test_empty_graph(self):
        from repro.graphs import Graph

        assert chromatic_number(Graph(0)) == 0
        assert is_c_colorable(Graph(0), 1) == []


class TestAlgorithmBridge:
    def _algorithm(self, m=6, t=1, c=3):
        g, windows = neighborhood_graph(m, t)
        coloring = is_c_colorable(g, c)
        assert coloring is not None
        return algorithm_from_coloring(coloring, windows, m=m, t=t)

    def test_derived_algorithm_colors_cycles(self):
        alg = self._algorithm()
        rng = random.Random(0)
        for trial in range(30):
            n = rng.choice([4, 5, 6])
            ids = rng.sample(range(1, 7), n)
            out = alg.run(ids)
            assert ProperColoring(3).is_feasible(cycle(n), out)

    def test_zero_round_identity_algorithm(self):
        # chi(N_0(m)) = m: the m-coloring is "output your own identifier".
        g, windows = neighborhood_graph(5, 0)
        coloring = is_c_colorable(g, 5)
        alg = algorithm_from_coloring(coloring, windows, m=5, t=0)
        out = alg.run([3, 1, 4, 2, 5])
        assert ProperColoring(5, palette=set(range(5))).is_feasible(cycle(5), out)

    def test_identifier_validation(self):
        alg = self._algorithm()
        with pytest.raises(ValueError, match="distinct"):
            alg.run([1, 2, 1, 3])
        with pytest.raises(ValueError, match="1..6"):
            alg.run([1, 2, 3, 9])

    def test_min_rounds_for_3_coloring(self):
        assert min_rounds_for_3_coloring(3, t_max=1) == 0
        assert min_rounds_for_3_coloring(5, t_max=1) == 1
        assert min_rounds_for_3_coloring(6, t_max=1) == 1


class TestLinialBound:
    def test_bound_values(self):
        assert linial_chromatic_lower_bound(8, 0) == 8.0
        assert linial_chromatic_lower_bound(16, 1) == 2.0  # log log 16
        assert linial_chromatic_lower_bound(2**16, 1) == 4.0

    def test_bound_respected_by_exact_chi(self):
        for m, t in ((4, 0), (5, 0), (4, 1), (5, 1), (6, 1)):
            g, _ = neighborhood_graph(m, t)
            assert chromatic_number(g) >= linial_chromatic_lower_bound(m, t) - 1e-9


class TestExperiment:
    def test_fast_path(self):
        result = run_linial_experiment(check_threshold=False)
        assert result.derived_algorithm_valid
        zero_round = [p for p in result.points if p.t == 0]
        assert all(p.chi == p.m for p in zero_round)
        one_round = [p for p in result.points if p.t == 1]
        assert all(p.chi <= 3 for p in one_round)
        assert "chi" in result.format_table() or "3-colorable" in result.format_table()


class TestWeakCycleWindows:
    """The weak-coloring window formalism (repro.lowerbounds.weak_cycle)."""

    def test_zero_round_threshold_is_four(self):
        from repro.lowerbounds import zero_round_weak2_threshold, weak_table_exists

        assert zero_round_weak2_threshold(8) == 4
        assert weak_table_exists(4, 0) is not None
        assert weak_table_exists(5, 0) is None  # pigeonhole: a mono triple

    def test_weak_strictly_easier_than_proper_at_zero_rounds(self):
        # 0-round weak 2-coloring works at m = 4, where 0-round proper
        # 3-coloring is impossible (chi(N_0(4)) = 4).
        from repro.lowerbounds import weak_table_exists, chromatic_number

        g, _ = neighborhood_graph(4, 0)
        assert chromatic_number(g) == 4 > 3
        assert weak_table_exists(4, 0) is not None

    def test_one_round_tables_exist(self):
        from repro.lowerbounds import weak_table_exists

        for m in (5, 6):
            assert weak_table_exists(m, 1) is not None

    def test_tables_run_as_weak_coloring_algorithms(self):
        from repro.lowerbounds import WeakCycleAlgorithm
        from repro.lcl import WeakColoring

        alg = WeakCycleAlgorithm.from_search(6, 1)
        rng = random.Random(3)
        for _ in range(20):
            n = rng.choice([5, 6])
            ids = rng.sample(range(1, 7), n)
            out = alg.run(ids)
            assert WeakColoring(2).is_feasible(cycle(n), out)

    def test_zero_round_table_runs(self):
        from repro.lowerbounds import WeakCycleAlgorithm
        from repro.lcl import WeakColoring

        alg = WeakCycleAlgorithm.from_search(4, 0)
        out = alg.run([2, 4, 1, 3])
        assert WeakColoring(2).is_feasible(cycle(4), out)

    def test_from_search_raises_when_impossible(self):
        from repro.lowerbounds import WeakCycleAlgorithm

        with pytest.raises(ValueError, match="no 2-color"):
            WeakCycleAlgorithm.from_search(6, 0)

    def test_constraint_shape(self):
        from repro.lowerbounds import weak_constraints

        windows, constraints = weak_constraints(5, 1)
        assert len(windows) == 60
        assert len(constraints) == 120  # 5 * 4 * 3 * 2 * 1 runs
        for a, b, c in constraints:
            assert windows[a][1:] == windows[b][:-1]
            assert windows[b][1:] == windows[c][:-1]
