"""Backend equivalence: direct, cached, and sharded are interchangeable.

The engine seam's contract is that backend choice is a pure performance
knob — for every simulation kind, every backend produces a
:class:`~repro.core.SimReport` whose ``identity()`` (outputs, rounds,
halt rounds, failing nodes) is bit-identical to the direct reference.
This suite pins that contract:

* the **node-model** grid of :mod:`tests.differential` (algorithm ×
  graph family × radius × labeling), three backends per case;
* the **edge-model** cases (``B_t(e)`` views over cycles, trees, tori,
  and random regular graphs), three backends per case;
* **local** (message-passing) and **finite** (oriented-ball) kinds,
  which the cached and sharded backends must pass through untouched;
* the sharded backend's **degradation path**: unpicklable algorithms
  fall back to in-process evaluation (``info["pooled"] is False``) with
  identical results;
* ``run_many`` batching, which shards whole requests instead of view
  classes.
"""

from __future__ import annotations

import random

import pytest

from repro.algorithms.message_passing import LubyMIS
from repro.core import ShardedEngine, SimRequest, simulate
from repro.graphs import toroidal_grid, orient_torus
from repro.graphs.identifiers import random_permutation_ids
from repro.local_model import ViewAlgorithm
from repro.speedup import local_maximum_coloring

from .differential import (
    BACKENDS,
    GRAPH_FAMILIES,
    assert_reports_identical,
    build_request,
    edge_cases,
    grid,
    run_case_backends,
    run_edge_case_backends,
)


# ----------------------------------------------------------------------
# Node model: the full differential grid, three backends per case
# ----------------------------------------------------------------------

@pytest.mark.parametrize("case", grid(), ids=lambda c: c.case_id)
def test_backends_bit_identical_on_node_grid(case):
    reports = run_case_backends(case)
    assert_reports_identical(reports, case.case_id)
    # The non-direct backends really deduplicated: their class counts
    # agree with each other and never exceed the node count.
    cached_classes = reports["cached"].info["distinct_classes"]
    sharded_classes = reports["sharded"].info["distinct_classes"]
    assert cached_classes == sharded_classes
    assert 1 <= cached_classes <= len(reports["direct"].outputs)


# ----------------------------------------------------------------------
# Edge model: every backend over every edge case
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "graph_name,rounds", edge_cases(), ids=lambda p: str(p)
)
def test_backends_bit_identical_on_edge_model(graph_name, rounds):
    reports = run_edge_case_backends(graph_name, rounds)
    assert_reports_identical(reports, f"edge-t{rounds}-{graph_name}")
    for backend in ("cached", "sharded"):
        assert reports[backend].info["distinct_classes"] <= len(
            reports["direct"].outputs
        )


# ----------------------------------------------------------------------
# Local and finite kinds pass through every backend
# ----------------------------------------------------------------------

def _local_request(seed: int) -> SimRequest:
    graph = GRAPH_FAMILIES["tree3d3"]()
    ids = random_permutation_ids(graph, random.Random(seed))
    return SimRequest(kind="local", graph=graph, algorithm=LubyMIS(),
                      ids=ids, seed=seed, label=f"luby-{seed}")


@pytest.mark.parametrize("seed", [0, 1])
def test_backends_bit_identical_on_local_kind(seed):
    reports = {
        backend: simulate(_local_request(seed), engine=backend)
        for backend in BACKENDS
    }
    assert_reports_identical(reports, f"local-luby-{seed}")
    assert reports["direct"].all_halted()


def test_backends_bit_identical_on_finite_kind():
    graph = toroidal_grid(5, 5)
    orientation = orient_torus(graph, 5, 5)
    alg = local_maximum_coloring(2, bits=2)
    values = [random.Random(9).randrange(alg.values) for _ in graph.nodes()]
    request = SimRequest(kind="finite", graph=graph, algorithm=alg,
                         orientation=orientation, values=values,
                         label="finite-torus")
    reports = {
        backend: simulate(request, engine=backend) for backend in BACKENDS
    }
    assert_reports_identical(reports, "finite-torus")
    assert reports["direct"].failing_nodes is not None


# ----------------------------------------------------------------------
# Sharded specifics: degradation and batching
# ----------------------------------------------------------------------

class _LambdaRule(ViewAlgorithm):
    """A view rule holding a lambda: deliberately unpicklable."""

    def __init__(self):
        self.radius = 1
        self.name = "lambda-rule"
        self._fn = lambda view: view.node_count  # noqa: E731

    def output(self, view):
        return self._fn(view)


def test_sharded_degrades_to_in_process_for_unpicklable_algorithms():
    graph = GRAPH_FAMILIES["torus5x6"]()
    request = SimRequest(kind="view", graph=graph, algorithm=_LambdaRule(),
                         label="unpicklable")
    direct = simulate(request, engine="direct")
    sharded = simulate(request, engine="sharded")
    assert sharded.info["pooled"] is False
    assert sharded.identity() == direct.identity()


def test_sharded_degrades_to_in_process_inside_daemonic_workers(monkeypatch):
    # The experiment runner's --jobs workers are daemonic and cannot
    # spawn children; the engine must fall back, not crash.
    from repro.core import sharded as sharded_mod

    monkeypatch.setattr(sharded_mod, "_can_fork", lambda: False)
    case = next(c for c in grid() if c.graph == "torus5x6" and c.radius == 2)
    request = build_request(case)
    direct = simulate(request, engine="direct")
    degraded = simulate(request, engine="sharded")
    assert degraded.info["pooled"] is False
    assert degraded.identity() == direct.identity()


def test_sharded_pools_picklable_algorithms():
    case = next(c for c in grid() if c.graph == "torus5x6" and c.radius == 2)
    reports = run_case_backends(case)
    assert reports["sharded"].info["pooled"] is True


def test_run_many_matches_per_request_runs():
    cases = [c for c in grid() if c.graph == "cycle24"][:4]
    requests = [build_request(c) for c in cases]
    engine = ShardedEngine()
    batched = engine.run_many(requests)
    singles = [simulate(build_request(c)) for c in cases]
    assert len(batched) == len(singles)
    for got, want in zip(batched, singles):
        assert got.identity() == want.identity()


def test_sharded_shard_seeds_are_deterministic():
    engine = ShardedEngine(shards=3)
    request = build_request(grid()[0])
    seeds = engine._shard_seeds(request, 3)
    assert seeds == engine._shard_seeds(request, 3)
    assert len(set(seeds)) == 3
