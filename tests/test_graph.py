"""Unit tests for the port-numbered graph substrate."""

import pytest

from repro.graphs import Graph, edge_key
from repro.graphs.generators import balanced_regular_tree, cycle, path, toroidal_grid


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0)
        assert g.n == 0
        assert g.m == 0
        assert g.is_connected()

    def test_single_node(self):
        g = Graph(1)
        assert g.degree(0) == 0
        assert g.is_tree()

    def test_add_edge_both_directions_visible(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_self_loop_rejected(self):
        g = Graph(2)
        with pytest.raises(ValueError, match="self-loop"):
            g.add_edge(1, 1)

    def test_duplicate_edge_rejected(self):
        g = Graph(2, [(0, 1)])
        with pytest.raises(ValueError, match="duplicate"):
            g.add_edge(1, 0)

    def test_out_of_range_rejected(self):
        g = Graph(2)
        with pytest.raises(ValueError, match="out of range"):
            g.add_edge(0, 5)

    def test_negative_node_count_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1)

    def test_freeze_blocks_mutation(self):
        g = Graph(3, [(0, 1)]).freeze()
        with pytest.raises(ValueError, match="frozen"):
            g.add_edge(1, 2)

    def test_edge_key_canonical(self):
        assert edge_key(3, 1) == (1, 3)
        assert edge_key(1, 3) == (1, 3)


class TestPorts:
    def test_ports_follow_insertion_order(self):
        g = Graph(4, [(0, 2), (0, 1), (0, 3)])
        assert g.neighbors(0) == (2, 1, 3)
        assert g.endpoint(0, 0) == 2
        assert g.endpoint(0, 1) == 1
        assert g.port_to(0, 3) == 2

    def test_port_to_unknown_neighbor_raises(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(ValueError, match="not a neighbor"):
            g.port_to(0, 2)

    def test_port_roundtrip(self):
        g = balanced_regular_tree(4, 3)
        for v in g.nodes():
            for port, u in enumerate(g.neighbors(v)):
                assert g.endpoint(v, port) == u
                assert g.port_to(v, u) == port


class TestDistances:
    def test_bfs_distances_on_path(self):
        g = path(5)
        dist = g.bfs_distances(0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_bfs_cutoff(self):
        g = path(10)
        dist = g.bfs_distances(0, cutoff=3)
        assert set(dist) == {0, 1, 2, 3}

    def test_distance_symmetry(self):
        g = balanced_regular_tree(3, 3)
        assert g.distance(0, 5) == g.distance(5, 0)

    def test_distance_unreachable_raises(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(ValueError, match="unreachable"):
            g.distance(0, 2)

    def test_ball_and_sphere(self):
        g = balanced_regular_tree(4, 2)
        assert g.ball(0, 0) == [0]
        assert len(g.sphere(0, 1)) == 4
        assert len(g.sphere(0, 2)) == 12
        assert len(g.ball(0, 2)) == 17

    def test_eccentricity_center_of_tree(self):
        g = balanced_regular_tree(3, 4)
        assert g.eccentricity(0) == 4

    def test_diameter_of_path(self):
        assert path(7).diameter() == 6

    def test_diameter_of_cycle(self):
        assert cycle(8).diameter() == 4
        assert cycle(9).diameter() == 4

    def test_diameter_of_balanced_tree_double_bfs_matches(self):
        g = balanced_regular_tree(3, 3)
        brute = max(g.eccentricity(v) for v in g.nodes())
        assert g.diameter() == brute

    def test_diameter_disconnected_raises(self):
        g = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            g.diameter()


class TestStructure:
    def test_is_tree(self):
        assert path(5).is_tree()
        assert balanced_regular_tree(4, 3).is_tree()
        assert not cycle(5).is_tree()

    def test_connected_components(self):
        g = Graph(5, [(0, 1), (2, 3)])
        comps = g.connected_components()
        assert comps == [[0, 1], [2, 3], [4]]

    def test_girth_acyclic_none(self):
        assert path(6).girth() is None
        assert balanced_regular_tree(3, 3).girth() is None

    def test_girth_of_cycles(self):
        for n in (3, 4, 5, 8, 11):
            assert cycle(n).girth() == n

    def test_girth_of_torus(self):
        assert toroidal_grid(4, 4).girth() == 4

    def test_girth_cutoff_returns_none_when_exceeded(self):
        assert cycle(9).girth(cutoff=5) is None
        assert cycle(9).girth(cutoff=9) == 9

    def test_girth_triangle_with_tail(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
        assert g.girth() == 3

    def test_regularity(self):
        assert cycle(6).is_regular(2)
        assert balanced_regular_tree(4, 0).is_regular(0)
        assert not balanced_regular_tree(4, 2).is_regular()
        assert toroidal_grid(3, 3).is_regular(4)

    def test_max_min_degree(self):
        g = balanced_regular_tree(4, 2)
        assert g.max_degree() == 4
        assert g.min_degree() == 1

    def test_bipartition_of_even_cycle(self):
        coloring = cycle(6).bipartition()
        assert coloring is not None
        for u, v in cycle(6).edges():
            assert coloring[u] != coloring[v]

    def test_bipartition_of_odd_cycle_none(self):
        assert cycle(5).bipartition() is None
        assert not cycle(5).is_bipartite()

    def test_trees_are_bipartite(self):
        assert balanced_regular_tree(3, 4).is_bipartite()


class TestSubgraph:
    def test_induced_subgraph_nodes_relabeled(self):
        g = cycle(6)
        sub, mapping = g.induced_subgraph([1, 2, 3])
        assert sub.n == 3
        assert sub.m == 2  # the path 1-2-3
        assert mapping == {1: 0, 2: 1, 3: 2}

    def test_induced_subgraph_preserves_port_order(self):
        g = Graph(4, [(0, 3), (0, 1), (0, 2)])
        sub, mapping = g.induced_subgraph([0, 1, 3])
        # Original ports at 0: 3, 1, 2 -> surviving order 3, 1.
        assert sub.neighbors(mapping[0]) == (mapping[3], mapping[1])


class TestConversion:
    def test_networkx_roundtrip(self):
        g = balanced_regular_tree(4, 2)
        nx_graph = g.to_networkx()
        back = Graph.from_networkx(nx_graph)
        assert back == g

    def test_from_networkx_requires_contiguous_nodes(self):
        import networkx as nx

        h = nx.Graph()
        h.add_edge(5, 7)
        with pytest.raises(ValueError, match="0..n-1"):
            Graph.from_networkx(h)

    def test_equality_and_hash(self):
        a = Graph(3, [(0, 1), (1, 2)])
        b = Graph(3, [(1, 2), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)
        c = Graph(3, [(0, 1)])
        assert a != c
