"""Tests for the instrumentation layer and the parallel cell runner.

Covers the tentpole guarantees:

* message counts obey the handshake lemma on known graphs (every
  broadcast round moves exactly ``2m`` messages);
* the ``NullTracer`` path is byte-identical to the untraced path;
* metrics and trace exports round-trip through JSON;
* the cell runner derives deterministic seeds, writes schema'd
  artifacts, and reports the documented exit codes.
"""

import json
import random

import pytest

from repro.algorithms.message_passing import LubyMIS, RandomizedWeakColoring
from repro.experiments.runner import (
    ARTIFACT_SCHEMA,
    ExperimentCell,
    default_plan,
    derive_cell_seed,
    execute_cell,
    run_cells,
)
from repro.graphs.generators import balanced_regular_tree, cycle, star
from repro.instrumentation import (
    MetricsTracer,
    MultiTracer,
    NullTracer,
    RunMetrics,
    TraceRecorder,
    Tracer,
    constant_size,
    effective_tracer,
    estimate_size,
)
from repro.local_model import (
    EdgeViewAlgorithm,
    LocalAlgorithm,
    ViewAlgorithm,
    run_edge_view_algorithm,
    run_local,
    run_view_algorithm,
)


class Broadcast(LocalAlgorithm):
    """Every node broadcasts on every port for ``total_rounds`` rounds."""

    name = "broadcast"

    def __init__(self, total_rounds: int = 3):
        self.total_rounds = total_rounds

    def send(self, ctx):
        return {port: ("hello", ctx.round_number) for port in range(ctx.degree)}

    def receive(self, ctx, messages):
        if ctx.round_number >= self.total_rounds:
            ctx.halt(len(messages))


class ConstantView(ViewAlgorithm):
    name = "constant-view"
    radius = 1

    def output(self, view):
        return view.node_count


class TestHandshakeLemma:
    """Sum-of-degrees accounting: a full broadcast round sends 2m messages."""

    @pytest.mark.parametrize(
        "graph",
        [cycle(10), balanced_regular_tree(3, 3), star(7)],
        ids=["cycle10", "tree3x3", "star7"],
    )
    def test_messages_per_round_is_twice_m(self, graph):
        rounds = 3
        tracer = MetricsTracer()
        run_local(graph, Broadcast(rounds), tracer=tracer)
        m = tracer.metrics
        assert m.rounds == rounds
        assert m.messages_sent == rounds * 2 * graph.m
        # Nobody halts until the last round's receive, so every message
        # found a listening receiver.
        assert m.messages_delivered == m.messages_sent
        for per_round in m.per_round:
            assert per_round.messages_sent == 2 * graph.m
            assert per_round.active == graph.n

    def test_halt_histogram_accounts_every_node(self):
        graph = cycle(12)
        tracer = MetricsTracer()
        result = run_local(graph, Broadcast(2), tracer=tracer)
        hist = tracer.metrics.halt_histogram
        assert sum(hist.values()) == graph.n
        assert hist == {2: graph.n}
        assert result.all_halted()

    def test_dropped_messages_counted_but_not_delivered(self):
        class HaltEarlyEven(Broadcast):
            """Even nodes halt a round earlier; odd nodes still send to them."""

            def receive(self, ctx, messages):
                early = ctx.identifier % 2 == 0
                if ctx.round_number >= (self.total_rounds - 1 if early else self.total_rounds):
                    ctx.halt(None)

        graph = cycle(8)
        tracer = MetricsTracer()
        run_local(
            graph, HaltEarlyEven(3), ids=list(range(graph.n)), tracer=tracer
        )
        m = tracer.metrics
        # Final round: 4 odd nodes send 2 messages each, all to halted
        # even neighbors.
        assert m.messages_sent - m.messages_delivered == 8


class TestZeroOverheadPath:
    def test_null_tracer_is_collapsed(self):
        assert effective_tracer(None) is None
        assert effective_tracer(NullTracer()) is None
        assert effective_tracer(MultiTracer()) is None
        assert effective_tracer(MultiTracer(NullTracer(), None)) is None
        keep = MetricsTracer()
        assert effective_tracer(keep) is keep

    @pytest.mark.parametrize("algorithm_cls", [LubyMIS, RandomizedWeakColoring])
    def test_null_tracer_execution_identical(self, algorithm_cls):
        graph = balanced_regular_tree(3, 4)
        runs = []
        for tracer in (None, NullTracer(), MetricsTracer(), TraceRecorder()):
            result = run_local(
                graph, algorithm_cls(), rng=random.Random(123), tracer=tracer
            )
            runs.append((result.outputs, result.halt_rounds, result.rounds))
        assert all(r == runs[0] for r in runs[1:])

    def test_view_engine_identical_under_tracing(self):
        graph = cycle(9)
        plain = run_view_algorithm(graph, ConstantView())
        traced = run_view_algorithm(graph, ConstantView(), tracer=MetricsTracer())
        assert plain.outputs == traced.outputs
        assert plain.rounds == traced.rounds


class TestViewEngines:
    def test_view_events_cover_every_node(self):
        graph = cycle(7)
        tracer = MetricsTracer()
        run_view_algorithm(graph, ConstantView(), tracer=tracer)
        assert tracer.metrics.engine == "view"
        assert tracer.metrics.views_gathered == graph.n
        # Radius-1 ball in a cycle: 3 nodes, 2 edges — per node.
        assert tracer.metrics.view_nodes == 3 * graph.n
        assert tracer.metrics.view_edges == 2 * graph.n

    def test_edge_engine_traces_every_edge(self):
        graph = cycle(6)
        tracer = MetricsTracer()
        alg = EdgeViewAlgorithm(rounds=1, output_fn=lambda view: view.node_count)
        run_edge_view_algorithm(graph, alg, tracer=tracer)
        assert tracer.metrics.engine == "edge"
        assert tracer.metrics.views_gathered == graph.m


class TestSizeEstimation:
    def test_primitives(self):
        assert estimate_size(None) == 1
        assert estimate_size(True) == 1
        assert estimate_size(0) == 1
        assert estimate_size(255) == 8
        assert estimate_size(-4) == 4
        assert estimate_size(2.5) == 64
        assert estimate_size("ab") == 16

    def test_containers_and_fallback(self):
        assert estimate_size((1, 1)) == 2 * (2 + 1)
        assert estimate_size({"a": 1}) == 4 + 8 + 1

        class Obj:
            def __repr__(self):
                return "xy"

        assert estimate_size(Obj()) == 16

    def test_pluggable_constant_estimator(self):
        graph = cycle(5)
        tracer = MetricsTracer(message_size=constant_size(1))
        run_local(graph, Broadcast(2), tracer=tracer)
        assert tracer.metrics.bits_sent == tracer.metrics.messages_sent


class TestJsonRoundTrips:
    def test_from_dict_ignores_unknown_keys(self):
        # An artifact written by a newer version (extra counters) must
        # load on this one rather than raise TypeError.
        graph = cycle(12)
        tracer = MetricsTracer()
        run_local(graph, Broadcast(2), tracer=tracer)
        data = tracer.metrics.to_dict()
        data["counter_from_the_future"] = 42
        data["per_round"] = [
            {**r, "novel_round_field": 1} for r in data["per_round"]
        ]
        restored = RunMetrics.from_dict(data)
        assert restored == tracer.metrics

    def test_cache_and_shard_counters_round_trip(self):
        from repro.algorithms.view_rules import BallSignatureColoring
        from repro.core import SimRequest, simulate

        graph = balanced_regular_tree(3, 3)
        tracer = MetricsTracer(per_round=False)
        request = SimRequest(kind="view", graph=graph,
                             algorithm=BallSignatureColoring(radius=1))
        simulate(request, engine="sharded", tracer=tracer)
        data = json.loads(json.dumps(tracer.metrics.to_dict()))
        restored = RunMetrics.from_dict(data)
        assert restored.cache_lookups == tracer.metrics.cache_lookups == graph.n
        assert restored.cache_hits == tracer.metrics.cache_hits
        assert restored.cache_misses == tracer.metrics.cache_misses
        assert restored.cache_distinct_classes == (
            tracer.metrics.cache_distinct_classes
        )
        assert restored.cache_hit_rate == tracer.metrics.cache_hit_rate
        assert restored.shards == tracer.metrics.shards > 0

    def test_metrics_round_trip(self):
        graph = balanced_regular_tree(3, 3)
        tracer = MetricsTracer()
        run_local(graph, Broadcast(2), tracer=tracer)
        report = tracer.report()
        restored = RunMetrics.from_dict(json.loads(json.dumps(report)))
        assert restored == tracer.metrics
        assert restored.to_dict() == report

    def test_recorder_json_and_jsonl_round_trip(self):
        graph = cycle(5)
        recorder = TraceRecorder()
        run_local(graph, Broadcast(2), tracer=recorder)
        as_json = TraceRecorder.load_events(recorder.to_json())
        as_jsonl = TraceRecorder.load_events(recorder.to_jsonl())
        assert as_json == as_jsonl
        assert len(as_json) == len(recorder.events)
        assert as_json[0]["kind"] == "run_start"
        assert as_json[-1]["kind"] == "run_end"
        assert [e["seq"] for e in as_json] == list(range(len(as_json)))

    def test_recorder_save_and_reload(self, tmp_path):
        graph = cycle(4)
        recorder = TraceRecorder(record_payloads=False)
        run_local(graph, Broadcast(1), tracer=recorder)
        path = tmp_path / "trace.jsonl"
        recorder.save(str(path))
        events = TraceRecorder.load_events(path.read_text())
        assert len(events) == len(recorder.events)
        assert all("payload" not in e for e in events if e["kind"] == "message")

    def test_unjsonable_payloads_do_not_break_export(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        class SendsObjects(Broadcast):
            def send(self, ctx):
                return {port: Opaque() for port in range(ctx.degree)}

        recorder = TraceRecorder()
        run_local(cycle(4), SendsObjects(1), tracer=recorder)
        events = TraceRecorder.load_events(recorder.to_jsonl())
        payloads = [e["payload"] for e in events if e["kind"] == "message"]
        assert payloads and all(p == "<opaque>" for p in payloads)


class TestSpeedupTracing:
    def test_pipeline_emits_stages(self):
        from repro.experiments.speedup_figures import default_seeds
        from repro.speedup.pipeline import run_speedup_pipeline

        recorder = TraceRecorder()
        result = run_speedup_pipeline(
            default_seeds()[0], method="exact", tracer=recorder
        )
        stages = recorder.of_kind("stage")
        assert len(stages) == len(result.stages)
        assert [e.data["stage_kind"] for e in stages] == [
            s.kind for s in result.stages
        ]

    def test_finite_runner_trials(self):
        from repro.graphs.generators import toroidal_grid
        from repro.graphs.orientation import orient_torus
        from repro.speedup.finite_runner import estimate_global_success
        from repro.experiments.speedup_figures import default_seeds

        alg = default_seeds()[0]
        graph = toroidal_grid(4, 4)
        orientation = orient_torus(graph, 4, 4)
        tracer = MetricsTracer()
        rate = estimate_global_success(
            alg, graph, orientation, trials=20, rng=random.Random(0), tracer=tracer
        )
        assert tracer.metrics.trials == 20
        assert tracer.metrics.trial_successes == round(rate * 20)


class TestCellRunner:
    def test_seed_derivation_deterministic_and_distinct(self):
        a = derive_cell_seed(0, "cell-a")
        assert a == derive_cell_seed(0, "cell-a")
        assert a != derive_cell_seed(0, "cell-b")
        assert a != derive_cell_seed(1, "cell-a")

    def test_execute_cell_never_raises(self):
        bad = ExperimentCell("boom", "boom", "local-algorithm", {"graph": "nope"})
        result = execute_cell(bad)
        assert result.verdict is None
        assert result.error is not None
        assert not result.ok

    def test_artifacts_schema_and_round_trip(self, tmp_path):
        cells = [
            ExperimentCell(
                "luby-c16-s0",
                "local-luby-mis",
                "local-algorithm",
                {"algorithm": "luby-mis", "graph": "cycle", "n": 16},
            )
        ]
        out = tmp_path / "artifacts"
        summary = run_cells(cells, jobs=1, artifacts_dir=str(out))
        assert summary.exit_code == 0
        artifact = json.loads((out / "luby-c16-s0.json").read_text())
        assert artifact["schema"] == ARTIFACT_SCHEMA
        assert artifact["verdict"] is True
        assert artifact["metrics"]["rounds"] >= 1
        assert artifact["metrics"]["messages_sent"] > 0
        assert artifact["seed"] == derive_cell_seed(0, "luby-c16-s0")
        restored = RunMetrics.from_dict(artifact["metrics"])
        assert restored.messages_sent == artifact["metrics"]["messages_sent"]
        summary_doc = json.loads((out / "summary.json").read_text())
        assert summary_doc["cells"] == 1 and summary_doc["passed"] == 1

    def test_failed_verdict_sets_exit_code(self, tmp_path):
        cells = [
            ExperimentCell("boom", "boom", "report", {"report": "no-such-report"})
        ]
        summary = run_cells(cells, jobs=1, artifacts_dir=str(tmp_path / "a"))
        assert summary.exit_code == 1
        doc = json.loads((tmp_path / "a" / "summary.json").read_text())
        assert doc["failed"] == ["boom"]

    def test_duplicate_cell_ids_rejected(self):
        cell = ExperimentCell("x", "x", "report", {"report": "table1"})
        with pytest.raises(ValueError):
            run_cells([cell, cell], jobs=1)

    def test_parallel_matches_serial(self, tmp_path):
        cells = [c for c in default_plan(quick=True) if c.kind == "local-algorithm"][:4]
        serial = run_cells(cells, jobs=1)
        parallel = run_cells(cells, jobs=2)
        assert [r.cell.cell_id for r in serial.results] == [
            r.cell.cell_id for r in parallel.results
        ]
        assert [r.verdict for r in serial.results] == [
            r.verdict for r in parallel.results
        ]
        assert [r.metrics["messages_sent"] for r in serial.results] == [
            r.metrics["messages_sent"] for r in parallel.results
        ]

    def test_default_plan_covers_grid_and_reports(self):
        cells = default_plan(quick=True)
        kinds = {c.kind for c in cells}
        assert kinds == {"local-algorithm", "view-algorithm", "report"}
        reports = {c.params["report"] for c in cells if c.kind == "report"}
        assert "table1" in reports and "logstar-sweep" in reports
        rules = {c.params["rule"] for c in cells if c.kind == "view-algorithm"}
        assert "ball-signature" in rules and "local-max" in rules
        ids = [c.cell_id for c in cells]
        assert len(set(ids)) == len(ids)


class TestCliContract:
    def test_usage_error_exit_code_2(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit) as exc:
            main(["--jobs", "not-a-number"])
        assert exc.value.code == 2

    def test_jobs_zero_rejected(self):
        from repro.experiments.__main__ import main

        assert main(["--jobs", "0"]) == 2
