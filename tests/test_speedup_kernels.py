"""The batched speedup kernels are *exact* — trials, streams, and all.

``src/repro/speedup/trial_kernel.py`` claims that the ``layout="kernel"``
paths of the finite runner and the Monte Carlo failure estimators are
indistinguishable from the reference scalar loops except in speed.  This
suite turns that claim into properties:

* **trial parity** — ``estimate_global_success(layout="kernel")``
  returns the same estimate, fires the same per-trial ``on_trial``
  sequence, and leaves the caller's ``rng`` in the same state as the
  scalar loop, on hypothesis-generated tori / algorithms / seeds;
* **stream parity** — :func:`~repro.speedup.trial_kernel.
  draw_randrange_block` produces exactly the values ``rng.randrange``
  would, restores the identical post-draw state mid-stream, and a
  declined batch never touches the rng;
* **decline exactness** — assignments too wide to encode in an int64
  key fall back to the scalar loop bit-identically;
* **engine parity** — ``finite`` requests through the explicit
  ``layout="kernel"`` path and the memoizing backends' auto-escalation
  reproduce the direct reference report (outputs, failing nodes, and
  ``info`` markers);
* **failure parity** — ``node_local_failure`` / ``edge_local_failure``
  and the full speedup pipeline produce identical estimates and rng
  streams under ``layout="kernel"``;
* **observability** — finite kernel runs populate the ``kernel_*``
  metrics counters through the service and sharded engines.

The golden draw-order pins live in ``tests/test_seed_stability.py``.
"""

from __future__ import annotations

import random
from dataclasses import replace
from fractions import Fraction

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import SimRequest
from repro.core.cached import CachedEngine
from repro.core.direct import DirectEngine
from repro.core.service import ServiceEngine
from repro.core.sharded import ShardedEngine
from repro.graphs.generators import toroidal_grid
from repro.graphs.orientation import orient_torus
from repro.instrumentation.metrics import MetricsTracer
from repro.instrumentation.tracer import Tracer
from repro.speedup.algorithms import (
    local_maximum_coloring,
    parity_coloring,
    smaller_count_coloring,
    zero_round_uniform,
)
from repro.speedup.failure import edge_local_failure, node_local_failure
from repro.speedup.finite_runner import (
    estimate_global_success,
    resolve_ball_tables,
)
from repro.speedup.pipeline import run_speedup_pipeline
from repro.speedup.transform import first_speedup
from repro.speedup import trial_kernel as tk

# ----------------------------------------------------------------------
# Strategies: radius-<=1 algorithms on oriented tori (the finite
# runner's sound domain), small trial budgets, arbitrary seeds.
# ----------------------------------------------------------------------

ALGORITHM_FACTORIES = {
    "local-maximum": lambda bits: local_maximum_coloring(2, bits),
    "smaller-count": lambda bits: smaller_count_coloring(2, bits),
    "parity": lambda bits: parity_coloring(2, bits),
    "uniform": lambda bits: zero_round_uniform(2, 2, bits=bits),
}

algorithms = st.tuples(
    st.sampled_from(sorted(ALGORITHM_FACTORIES)), st.integers(1, 3)
).map(lambda t: ALGORITHM_FACTORIES[t[0]](t[1]))

tori = st.tuples(st.integers(3, 6), st.integers(3, 6))


class TrialRecorder(Tracer):
    """Records the ``on_trial`` stream plus the run envelope."""

    def __init__(self):
        self.events = []

    def on_run_start(self, engine, algorithm, n, **info):
        self.events.append(("start", engine, algorithm, n, info))

    def on_trial(self, index, succeeded, failing_nodes):
        self.events.append(("trial", index, succeeded, failing_nodes))

    def on_run_end(self, rounds):
        self.events.append(("end", rounds))


def _oriented(rows, cols):
    graph = toroidal_grid(rows, cols)
    return graph, orient_torus(graph, rows, cols)


# ----------------------------------------------------------------------
# Trial parity (the tentpole claim)
# ----------------------------------------------------------------------

@given(alg=algorithms, shape=tori, trials=st.integers(1, 30),
       seed=st.integers(0, 2**32 - 1))
@settings(deadline=None, max_examples=40)
def test_estimate_global_success_trial_parity(alg, shape, trials, seed):
    graph, orientation = _oriented(*shape)
    ref_tracer, ker_tracer = TrialRecorder(), TrialRecorder()
    ref_rng, ker_rng = random.Random(seed), random.Random(seed)
    reference = estimate_global_success(
        alg, graph, orientation, trials, rng=ref_rng, tracer=ref_tracer
    )
    batched = estimate_global_success(
        alg, graph, orientation, trials, rng=ker_rng, tracer=ker_tracer,
        layout="kernel",
    )
    assert batched == reference
    assert ker_tracer.events == ref_tracer.events
    assert ker_rng.getstate() == ref_rng.getstate()


@given(shape=tori, trials=st.integers(1, 12), seed=st.integers(0, 2**16))
@settings(deadline=None, max_examples=15)
def test_wide_encoding_declines_to_identical_scalar_run(shape, trials, seed):
    # 13 bits over a 5-word radius-1 ball needs 65 > 62 key bits: the
    # batch must decline before drawing, leaving the scalar fallback
    # bit-identical to a run that never tried.
    alg = local_maximum_coloring(2, bits=13)
    assert tk.encode_reason(alg.values, len(alg.ball.words)) is not None
    graph, orientation = _oriented(*shape)
    ref_tracer, ker_tracer = TrialRecorder(), TrialRecorder()
    ref_rng, ker_rng = random.Random(seed), random.Random(seed)
    reference = estimate_global_success(
        alg, graph, orientation, trials, rng=ref_rng, tracer=ref_tracer
    )
    fallback = estimate_global_success(
        alg, graph, orientation, trials, rng=ker_rng, tracer=ker_tracer,
        layout="kernel",
    )
    assert fallback == reference
    assert ker_tracer.events == ref_tracer.events
    assert ker_rng.getstate() == ref_rng.getstate()


# ----------------------------------------------------------------------
# Stream parity: the batched randrange draws
# ----------------------------------------------------------------------

@given(bound=st.sampled_from([1, 2, 3, 5, 8, 12, 100, 2**20 + 7,
                              2**31 + 11]),
       count=st.integers(0, 400), seed=st.integers(0, 2**32 - 1),
       warmup=st.integers(0, 17))
@settings(deadline=None, max_examples=40)
def test_draw_randrange_block_matches_scalar_stream(bound, count, seed,
                                                    warmup):
    fast, slow = random.Random(seed), random.Random(seed)
    for _ in range(warmup):  # start mid-stream, not at a fresh state
        fast.randrange(7)
        slow.randrange(7)
    block = tk.draw_randrange_block(fast, bound, count)
    expected = [slow.randrange(bound) for _ in range(count)]
    assert block.tolist() == expected
    assert fast.getstate() == slow.getstate()
    # The post-draw tails stay locked together.
    assert [fast.randrange(997) for _ in range(8)] == [
        slow.randrange(997) for _ in range(8)
    ]


def test_encode_reason_boundaries():
    # 62 bits fits an int64 key, 63 does not; zero-length always fits.
    assert tk.encode_reason(1 << 31, 2) is None
    assert tk.encode_reason(1 << 21, 3) is not None
    assert tk.encode_reason(1 << 62, 0) is None


# ----------------------------------------------------------------------
# Engine parity: the "finite" request kind through every backend
# ----------------------------------------------------------------------

@given(alg=algorithms, shape=tori, seed=st.integers(0, 2**32 - 1))
@settings(deadline=None, max_examples=25)
def test_finite_kernel_backend_parity(alg, shape, seed):
    graph, orientation = _oriented(*shape)
    rng = random.Random(seed)
    values = [rng.randrange(alg.values) for _ in graph.nodes()]
    request = SimRequest(
        kind="finite", graph=graph, algorithm=alg,
        orientation=orientation, values=values,
    )
    reference = DirectEngine().run(request)
    kernel = DirectEngine().run(replace(request, layout="kernel"))
    cached = CachedEngine().run(request)
    sharded = ShardedEngine().run(request)
    assert kernel.identity() == reference.identity()
    assert cached.identity() == reference.identity()
    assert sharded.identity() == reference.identity()
    assert "kernel" not in reference.info  # direct default: clean info
    assert kernel.info["kernel"] == "vectorized"
    assert cached.info["kernel"] == "vectorized"  # auto-escalation


def test_finite_kernel_output_length_mismatch_is_an_error():
    from repro.local_model.kernels import register_finite_kernel
    from repro.speedup.algorithms import NodeAlgorithm

    class _ShortAlgorithm(NodeAlgorithm):
        pass

    @register_finite_kernel(_ShortAlgorithm)
    def _short_kernel(algorithm, graph, values, tables):
        return [0], []

    honest = local_maximum_coloring(2, 1)
    alg = _ShortAlgorithm(2, 1, 1, 2, honest.fn, name="short")
    graph, orientation = _oriented(3, 3)
    request = SimRequest(
        kind="finite", graph=graph, algorithm=alg,
        orientation=orientation, values=[0] * graph.n, layout="kernel",
    )
    try:
        DirectEngine().run(request)
    except RuntimeError as exc:
        assert "returned 1 outputs for 9 nodes" in str(exc)
    else:  # pragma: no cover - the assertion is the test
        raise AssertionError("short kernel output was not rejected")


# ----------------------------------------------------------------------
# Failure-estimator and pipeline parity
# ----------------------------------------------------------------------

@given(bits=st.integers(1, 2), seed=st.integers(0, 2**32 - 1),
       samples=st.integers(1, 400))
@settings(deadline=None, max_examples=15)
def test_node_and_edge_mc_failure_parity(bits, seed, samples):
    node = local_maximum_coloring(2, bits)
    ref_rng, ker_rng = random.Random(seed), random.Random(seed)
    reference = node_local_failure(node, method="monte_carlo",
                                   samples=samples, rng=ref_rng)
    batched = node_local_failure(node, method="monte_carlo",
                                 samples=samples, rng=ker_rng,
                                 layout="kernel")
    assert batched == reference
    assert ker_rng.getstate() == ref_rng.getstate()

    edge = first_speedup(node, Fraction(1, 4))
    ref_rng, ker_rng = random.Random(seed), random.Random(seed)
    reference = edge_local_failure(edge, method="monte_carlo",
                                   samples=samples, rng=ref_rng)
    batched = edge_local_failure(edge, method="monte_carlo",
                                 samples=samples, rng=ker_rng,
                                 layout="kernel")
    assert batched == reference
    assert ker_rng.getstate() == ref_rng.getstate()


def test_pipeline_kernel_layout_reproduces_reference_stages():
    start = local_maximum_coloring(2, 1)
    reference = run_speedup_pipeline(start, method="monte_carlo",
                                     samples=300, base_seed=7)
    start = local_maximum_coloring(2, 1)
    batched = run_speedup_pipeline(start, method="monte_carlo",
                                   samples=300, base_seed=7,
                                   layout="kernel")
    assert len(batched.stages) == len(reference.stages)
    for got, want in zip(batched.stages, reference.stages):
        assert (got.kind, got.radius, got.name) == (
            want.kind, want.radius, want.name
        )
        assert got.measured_failure == want.measured_failure
        assert got.lemma_bound == want.lemma_bound
        assert got.threshold == want.threshold


# ----------------------------------------------------------------------
# Observability: kernel_* metrics through the warm engines
# ----------------------------------------------------------------------

def _finite_request(seed=11):
    alg = local_maximum_coloring(2, 1)
    graph, orientation = _oriented(4, 5)
    rng = random.Random(seed)
    values = [rng.randrange(alg.values) for _ in graph.nodes()]
    return SimRequest(kind="finite", graph=graph, algorithm=alg,
                      orientation=orientation, values=values)


def test_service_engine_counts_finite_kernel_runs():
    # One MetricsTracer per request: on_run_start resets the counters.
    cold_tracer, warm_tracer = MetricsTracer(), MetricsTracer()
    request = _finite_request()
    reference = DirectEngine().run(request)
    engine = ServiceEngine()
    try:
        cold = engine.run(request, tracer=cold_tracer)
        warm = engine.run(request, tracer=warm_tracer)
    finally:
        engine.close()
    assert cold.identity() == reference.identity()
    assert warm.identity() == reference.identity()
    for tracer in (cold_tracer, warm_tracer):
        assert tracer.metrics.kernel_runs == 1
        assert tracer.metrics.kernel_vectorized == 1
        assert tracer.metrics.kernel_fallbacks == 0
        assert tracer.metrics.kernel_entities == request.graph.n


def test_sharded_engine_counts_finite_kernel_runs():
    tracer = MetricsTracer()
    request = _finite_request()
    reference = DirectEngine().run(request)
    report = ShardedEngine().run(request, tracer=tracer)
    assert report.identity() == reference.identity()
    assert tracer.metrics.kernel_runs == 1
    assert tracer.metrics.kernel_vectorized == 1


# ----------------------------------------------------------------------
# Kernel building blocks: distinct-assignment evaluation
# ----------------------------------------------------------------------

@given(shape=tori, trials=st.integers(1, 10), seed=st.integers(0, 2**16))
@settings(deadline=None, max_examples=15)
def test_assignment_codes_match_per_node_evaluation(shape, trials, seed):
    alg = smaller_count_coloring(2, 1)
    graph, orientation = _oriented(*shape)
    tables = resolve_ball_tables(alg, graph, orientation)
    rng = random.Random(seed)
    matrix = np.array(
        [[rng.randrange(alg.values) for _ in graph.nodes()]
         for _ in range(trials)],
        dtype=np.int64,
    )
    codes, outputs, inverse = tk.assignment_codes(alg, matrix, tables)
    expected = np.empty(matrix.shape, dtype=np.int64)
    for t in range(trials):
        for v in graph.nodes():
            want = alg.evaluate(tuple(int(matrix[t, u]) for u in tables[v]))
            assert outputs[inverse[t, v]] == want
            expected[t, v] = want
    # The equality codes partition cells exactly like output equality.
    assert np.array_equal(codes == codes[0, 0], expected == expected[0, 0])
