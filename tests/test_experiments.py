"""Tests for the experiment harness (table/figure regeneration)."""

import pytest

from repro.experiments import (
    fit_growth,
    plant_distance_k_weak_coloring,
    run_claim10,
    run_classification,
    run_lemma2,
    run_logstar_sweep,
    run_recurrence_experiment,
    run_speedup_figures,
    run_table1,
    run_theorem4,
)
from repro.graphs import balanced_regular_tree
from repro.lcl import WeakColoring
import random


SMALL_SIZES = (50, 200, 800)


class TestFitting:
    def test_constant_series(self):
        fit = fit_growth([10, 100, 1000, 10000], [7, 7, 7, 7])
        assert fit.best == "constant"

    def test_log_series(self):
        import math

        ns = [2**i for i in range(4, 14)]
        fit = fit_growth(ns, [3 * math.log2(n) + 1 for n in ns])
        assert fit.best == "log"

    def test_linear_series(self):
        ns = [10, 100, 1000, 10000]
        fit = fit_growth(ns, [2 * n + 5 for n in ns])
        assert fit.best == "linear"

    def test_sqrt_series(self):
        ns = [100, 400, 1600, 6400, 25600]
        fit = fit_growth(ns, [n**0.5 for n in ns])
        assert fit.best == "sqrt"

    def test_flatness_tolerance(self):
        fit = fit_growth([10, 100, 1000, 10000], [7, 7, 8, 8], flatness_tolerance=1.5)
        assert fit.best == "constant"

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_growth([1, 2], [1, 2])
        with pytest.raises(ValueError):
            fit_growth([1, 2, 2], [1, 2, 3])


class TestTable1:
    def test_rows_and_verification(self):
        result = run_table1(sizes=SMALL_SIZES)
        assert len(result.rows) == 4
        assert all(row.all_verified for row in result.rows)

    def test_growth_classes(self):
        result = run_table1(sizes=(50, 200, 800, 3200))
        by_example = {row.example: row for row in result.rows}
        assert by_example["2-coloring"].measured_class() == "log"
        assert by_example["sinkless orientation"].measured_class() == "log"
        assert (
            by_example["weak 2-coloring in odd-degree graphs"].measured_class()
            == "constant"
        )

    def test_format_table_mentions_every_row(self):
        result = run_table1(sizes=SMALL_SIZES)
        text = result.format_table()
        assert "sinkless orientation" in text
        assert "odd-degree" in text


class TestLogStarSweep:
    def test_monotone_and_verified(self):
        result = run_logstar_sweep(id_bits=(8, 64, 1024, 16384), tree_depth=3)
        assert result.monotone_in_log_star()
        assert all(p.verified for p in result.points)

    def test_rounds_actually_grow(self):
        result = run_logstar_sweep(id_bits=(8, 65536), tree_depth=3)
        assert result.points[-1].measured_rounds > result.points[0].measured_rounds


class TestSpeedupFigures:
    def test_bounds_hold_for_default_seeds(self):
        result = run_speedup_figures(method="exact")
        assert result.all_bounds_hold()
        assert len(result.rows) == 4

    def test_stage_structure(self):
        result = run_speedup_figures(method="exact")
        for row in result.rows:
            kinds = [s["kind"] for s in row.stages]
            assert kinds == ["node", "edge", "node"]
            assert row.stages[-1]["radius"] == 0

    def test_format_table(self):
        result = run_speedup_figures(method="exact")
        assert "seed=" in result.format_table()


class TestTheorem4:
    def test_upper_bound_grows_logarithmically(self):
        result = run_theorem4(sizes=(50, 200, 800, 3200))
        assert result.fit.best == "log"
        assert result.all_verified()

    def test_witnesses_contradict(self):
        result = run_theorem4(sizes=(50,), witness_depths=(2, 3))
        for w in result.witnesses:
            assert w.views_equal_radius >= w.depth - 2
            assert w.contradiction


class TestClassification:
    def test_three_rows_verified(self):
        result = run_classification(sizes=SMALL_SIZES)
        assert len(result.rows) == 3
        assert all(row.all_verified for row in result.rows)

    def test_class1_constant_class34_log(self):
        result = run_classification(sizes=(50, 200, 800, 3200))
        assert result.rows[0].fit.best == "constant"
        assert result.rows[2].fit.best == "log"


class TestLemma2Experiment:
    def test_planting_produces_valid_coloring(self):
        g = balanced_regular_tree(4, 4)
        phi = plant_distance_k_weak_coloring(g, k=2, c=4, rng=random.Random(0))
        assert WeakColoring(4, distance=2).is_feasible(g, phi)

    def test_reduction_rounds_constant(self):
        result = run_lemma2(k=2, c=4, sizes=SMALL_SIZES)
        assert result.rounds_are_constant()
        assert all(p.verified for p in result.points)
        assert result.fit.best == "constant"

    def test_other_parameters(self):
        result = run_lemma2(k=3, c=3, sizes=(50, 200))
        assert result.rounds_are_constant()


class TestClaim10Experiment:
    def test_bounds_hold(self):
        result = run_claim10(depth=8, ts=(1, 2), seed_radius=2)
        assert result.all_bounds_hold()
        in_regime = [p for p in result.points if p.in_regime]
        assert in_regime  # at least t=1 fits at depth 8
        assert all(p.pairwise_verified for p in in_regime)

    def test_odd_delta_rejected(self):
        with pytest.raises(ValueError):
            run_claim10(delta=3)


class TestRecurrenceExperiment:
    def test_structure(self):
        result = run_recurrence_experiment(
            ts=(1, 2), deltas=(4, 6), heights=(8, 10, 12)
        )
        assert len(result.palette_rows) == 4
        assert len(result.floor_rows) == 4
        assert result.crossover_height == 10
        text = result.format_table()
        assert "palette towers" in text and "endgame" in text

    def test_floors_more_negative_for_larger_delta(self):
        result = run_recurrence_experiment(ts=(2,), deltas=(4, 8), heights=(10,))
        floor4 = result.floor_rows[0]["floor_log2"]
        floor8 = result.floor_rows[1]["floor_log2"]
        assert floor8 < floor4


class TestListCLI:
    """``python -m repro.experiments --list`` prints the registries."""

    def test_list_exits_zero_and_prints_sections(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for section in ("algorithms:", "graph families:", "LCL problems:",
                        "report specs:", "engine backends:"):
            assert section in out

    def test_list_names_every_registered_component(self, capsys):
        from repro.core import (
            ALGORITHMS,
            GRAPH_FAMILIES,
            PROBLEMS,
            REPORTS,
            ensure_builtins,
        )
        from repro.experiments.__main__ import main

        ensure_builtins()
        main(["--list"])
        out = capsys.readouterr().out
        for registry in (ALGORITHMS, GRAPH_FAMILIES, PROBLEMS, REPORTS):
            for name in registry.names():
                assert name in out
        for backend in ("direct", "cached", "sharded"):
            assert backend in out

    def test_list_does_not_run_any_experiment(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "SUMMARY" not in out


class TestArtifactPathHardening:
    """Cell ids never choose a file outside the artifact directory."""

    def test_plain_cell_id_is_a_direct_child(self, tmp_path):
        from repro.experiments.runner import _artifact_path

        path = _artifact_path(str(tmp_path), "luby-c16-s0")
        assert path == str(tmp_path / "luby-c16-s0.json")

    def test_traversal_components_are_neutralized(self, tmp_path):
        import os

        from repro.experiments.runner import _artifact_path

        for hostile in ("../escape", "../../etc/passwd", "a/../../b",
                        "..\\windows", "/etc/passwd", "nested/dir/cell",
                        "////"):
            path = _artifact_path(str(tmp_path), hostile)
            assert os.path.dirname(os.path.abspath(path)) == str(tmp_path)

    def test_all_dot_cell_id_rejected(self, tmp_path):
        from repro.experiments.runner import _artifact_path

        for hostile in ("..", ".", "...", ""):
            with pytest.raises(ValueError):
                _artifact_path(str(tmp_path), hostile)

    def test_hidden_file_names_are_unhidden(self, tmp_path):
        import os

        from repro.experiments.runner import _artifact_path

        path = _artifact_path(str(tmp_path), ".hidden")
        assert not os.path.basename(path).startswith(".")
