"""Tests for Cole-Vishkin color reduction on pseudoforests."""

import random

import pytest

from repro.algorithms import (
    cv_iterations_needed,
    cv_step,
    is_proper_on_pseudoforest,
    log_star,
    reduce_to_three_colors,
)


class TestLogStar:
    def test_small_values(self):
        assert log_star(1) == 0
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4
        assert log_star(2.0**65536 if False else 10**300) == 5

    def test_zero_and_below(self):
        assert log_star(0.5) == 0
        assert log_star(0) == 0


class TestCvStep:
    def test_packs_lowest_differing_bit(self):
        # colors 0b0110 and 0b0100 differ first at bit 1; bit of first is 1.
        assert cv_step(0b0110, 0b0100) == 2 * 1 + 1

    def test_result_smaller_range(self):
        for a in range(64):
            for b in range(64):
                if a != b:
                    assert 0 <= cv_step(a, b) < 12  # 2*5+1 max for 6-bit

    def test_adjacent_outputs_differ(self):
        # If v -> s and s -> w with all colors proper, the new colors of
        # v and s differ.
        rng = random.Random(0)
        for _ in range(500):
            v, s, w = rng.sample(range(1024), 3)
            new_v = cv_step(v, s)
            new_s = cv_step(s, w)
            assert new_v != new_s or v == s

    def test_equal_colors_rejected(self):
        with pytest.raises(ValueError):
            cv_step(5, 5)


class TestIterationCount:
    def test_small_palettes(self):
        assert cv_iterations_needed(3) == 1
        assert cv_iterations_needed(4) == 2

    def test_monotone(self):
        values = [cv_iterations_needed(b) for b in range(1, 200)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_log_star_growth(self):
        # Doubling the bits should add at most one round beyond a point.
        assert cv_iterations_needed(2**16) <= cv_iterations_needed(2**8) + 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            cv_iterations_needed(0)


def random_pseudoforest(n, rng):
    """A random successor assignment avoiding self-loops."""
    successor = []
    for v in range(n):
        u = rng.randrange(n - 1)
        successor.append(u if u < v else u + 1)
    return successor


class TestReduceToThree:
    def test_on_directed_cycle(self):
        n = 10
        successor = [(v + 1) % n for v in range(n)]
        colors = list(range(n))
        out, rounds = reduce_to_three_colors(colors, successor, color_bits=4)
        assert set(out) <= {0, 1, 2}
        assert is_proper_on_pseudoforest(out, successor)
        assert rounds == cv_iterations_needed(4) + 6

    def test_on_two_cycle(self):
        successor = [1, 0]
        out, _ = reduce_to_three_colors([0, 1], successor, color_bits=1)
        assert out[0] != out[1]

    def test_on_random_pseudoforests(self):
        rng = random.Random(3)
        for trial in range(20):
            n = rng.randrange(5, 60)
            successor = random_pseudoforest(n, rng)
            colors = list(range(n))
            rng.shuffle(colors)
            # Initial coloring (a permutation) is proper: distinct values.
            out, _ = reduce_to_three_colors(colors, successor, color_bits=6)
            assert set(out) <= {0, 1, 2}
            assert is_proper_on_pseudoforest(out, successor)

    def test_large_color_space(self):
        n = 40
        rng = random.Random(9)
        successor = random_pseudoforest(n, rng)
        colors = rng.sample(range(10**9), n)
        out, rounds = reduce_to_three_colors(colors, successor, color_bits=30)
        assert set(out) <= {0, 1, 2}
        assert is_proper_on_pseudoforest(out, successor)
        # log* means few rounds even from a 30-bit space.
        assert rounds <= cv_iterations_needed(30) + 6

    def test_improper_input_rejected(self):
        with pytest.raises(ValueError, match="not proper"):
            reduce_to_three_colors([3, 3], [1, 0], color_bits=2)

    def test_color_bits_bound_enforced(self):
        with pytest.raises(ValueError, match="exceeds"):
            reduce_to_three_colors([0, 9], [1, 0], color_bits=2)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            reduce_to_three_colors([0, 1], [1, 0, 2], color_bits=2)

    def test_already_three_colors_stays_proper(self):
        successor = [1, 2, 0]
        out, _ = reduce_to_three_colors([0, 1, 2], successor, color_bits=2)
        assert set(out) <= {0, 1, 2}
        assert is_proper_on_pseudoforest(out, successor)
