"""Wire-format contract of the service protocol.

The daemon's usefulness rests on two claims: every value a
:class:`~repro.core.engine.SimReport` can carry survives the JSON
codec bit for bit (tuples and tuple-keyed dicts included — JSON has
neither), and every malformed spec dies as a structured
:class:`~repro.serve.protocol.ProtocolError` *before* it reaches the
engine.  This suite pins both, plus the cold/warm equivalence of
:func:`~repro.serve.protocol.build_request`.
"""

from __future__ import annotations

import json

import pytest

from repro.core import ServiceEngine, simulate
from repro.serve.protocol import (
    ProtocolError,
    build_request,
    decode_report,
    decode_value,
    encode_report,
    encode_value,
    error_body,
    validate_spec,
)


def _wire(value):
    """Encode -> real JSON round-trip -> decode."""
    return decode_value(json.loads(json.dumps(encode_value(value))))


def _view_spec(**overrides):
    spec = {
        "kind": "view",
        "graph": {"family": "cycle", "params": {"n": 12}},
        "algorithm": {"name": "local-max", "params": {"radius": 1}},
        "ids": list(range(1, 13)),
        "label": "proto-view",
    }
    spec.update(overrides)
    return spec


# ----------------------------------------------------------------------
# Value codec
# ----------------------------------------------------------------------

@pytest.mark.parametrize("value", [
    None, True, False, 0, -7, 3.5, "text", [1, 2, 3], (1, 2, 3),
    (1, (2, "x"), None), [(0, 1), (1, 2)],
    {"a": 1, "b": [2, 3]},
    {(0, 1): "uv", (1, 2): "vw"},           # tuple-keyed edge outputs
    {1: (2, 3), "k": {(4, 5): [6, (7,)]}},  # nested mixtures
    {},
    (),
])
def test_codec_round_trips_exactly(value):
    result = _wire(value)
    assert result == value
    assert type(result) is type(value)


def test_codec_distinguishes_tuple_from_list():
    assert _wire([1, 2]) == [1, 2]
    assert _wire((1, 2)) == (1, 2)
    assert type(_wire([(1, 2), [3, 4]])[0]) is tuple
    assert type(_wire([(1, 2), [3, 4]])[1]) is list


def test_codec_rejects_unencodable_values():
    with pytest.raises(ProtocolError):
        encode_value(object())
    with pytest.raises(ProtocolError):
        encode_value({1, 2})


def test_report_identity_survives_the_wire():
    for spec in (_view_spec(), {
        "kind": "edge",
        "graph": {"family": "cycle", "params": {"n": 10}},
        "algorithm": {"name": "edge-parity", "params": {"rounds": 1}},
        "label": "proto-edge",
    }):
        report = simulate(build_request(spec), engine="direct")
        wired = decode_report(json.loads(json.dumps(encode_report(report))))
        assert wired.identity() == report.identity()
        assert wired.kind == report.kind
        assert wired.backend == report.backend


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------

def test_valid_spec_passes_validation():
    validate_spec(_view_spec())  # must not raise


@pytest.mark.parametrize("mutate,needle", [
    (lambda s: s.update(bogus=1), "bogus"),
    (lambda s: s.update(kind="holographic"), "kind"),
    (lambda s: s.pop("kind"), "kind"),
    (lambda s: s.update(graph={"family": "mobius", "params": {}}), "mobius"),
    (lambda s: s.update(graph="cycle"), "graph"),
    (lambda s: s.update(algorithm={"name": "no-such-rule", "params": {}}),
     "no-such-rule"),
    (lambda s: s.update(ids=5), "ids"),
    (lambda s: s.update(seed="zero"), "seed"),
    (lambda s: s.update(max_rounds="lots"), "max_rounds"),
])
def test_malformed_specs_raise_protocol_error(mutate, needle):
    spec = _view_spec()
    mutate(spec)
    with pytest.raises(ProtocolError, match=needle):
        validate_spec(spec)


def test_kind_mismatch_is_a_protocol_error():
    # local-max is registered kind="view"; claiming "edge" must die in
    # validation, not as an engine-side type error.
    spec = _view_spec(kind="edge")
    with pytest.raises(ProtocolError):
        validate_spec(spec)


def test_registry_rejections_surface_as_protocol_errors():
    # Validation passes (registered family, registered algorithm) but
    # construction fails: bad parameter names become ProtocolError too.
    spec = _view_spec()
    spec["graph"]["params"] = {"n": -3}
    with pytest.raises(ProtocolError):
        build_request(spec)


# ----------------------------------------------------------------------
# build_request: cold vs engine-warm
# ----------------------------------------------------------------------

def test_build_request_cold_and_warm_agree():
    engine = ServiceEngine()
    try:
        cold = build_request(_view_spec())
        warm = build_request(_view_spec(), engine=engine)
        assert warm.graph is engine.warm_graph("cycle", {"n": 12})
        assert simulate(cold, engine="direct").identity() == \
            simulate(warm, engine="direct").identity()
    finally:
        engine.close()


def test_build_request_memoizes_algorithm_instances():
    memo = {}
    first = build_request(_view_spec(), algorithms=memo)
    second = build_request(_view_spec(), algorithms=memo)
    assert first.algorithm is second.algorithm
    assert len(memo) == 1


def test_build_request_decodes_wire_values():
    spec = _view_spec()
    spec["ids"] = [encode_value(i) for i in range(1, 13)]
    request = build_request(spec)
    assert request.ids == list(range(1, 13))


def test_error_body_shape():
    body = error_body(ProtocolError("bad spec"))
    assert body == {"error": {"type": "ProtocolError", "message": "bad spec"}}
    degraded = error_body(TimeoutError("slow"), degraded="pool-error: slow")
    assert degraded["error"]["degraded"] == "pool-error: slow"
