"""Property-based tests: tower arithmetic, neighborhood graphs, LCL duals."""

import math
import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import TowerNumber, exp2_scaled, iterated_log, tower
from repro.graphs import cycle, line_graph, random_tree
from repro.lcl import ProperColoring
from repro.lowerbounds import (
    algorithm_from_coloring,
    is_c_colorable,
    neighborhood_graph,
    window_of,
)

DEFAULT = settings(max_examples=60, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


class TestTowerProperties:
    @given(st.floats(min_value=1.0, max_value=1e18), st.floats(min_value=1.0, max_value=1e18))
    @settings(max_examples=200, deadline=None)
    def test_comparisons_agree_with_floats(self, a, b):
        ta, tb = TowerNumber.from_float(a), TowerNumber.from_float(b)
        assert (ta < tb) == (a < b)
        assert (ta == tb) == (a == b)
        assert (ta >= tb) == (a >= b)

    @given(st.floats(min_value=2.0, max_value=1e15))
    @settings(max_examples=200, deadline=None)
    def test_log2_exp2_roundtrip(self, x):
        # Domain note: TowerNumber clamps logs at 1 (values below 2 have
        # log2 < 1, outside the representation), so start at 2.
        t = TowerNumber.from_float(x)
        back = t.log2().exp2().to_float()
        assert math.isclose(back, x, rel_tol=1e-9)

    @given(st.integers(1, 20), st.integers(0, 20))
    @settings(max_examples=200, deadline=None)
    def test_iterated_log_peels_towers(self, h, k):
        t = tower(h)
        peeled = iterated_log(t, k)
        assert peeled == tower(max(0, h - k)) or peeled.log_star() == max(0, h - k)

    @given(st.integers(1, 30), st.integers(2, 8))
    @settings(max_examples=100, deadline=None)
    def test_exp2_scaled_monotone(self, h, scale)  :
        t = tower(h)
        grown = exp2_scaled(t, float(scale))
        assert grown > t

    @given(st.floats(min_value=1.0, max_value=100.0), st.floats(min_value=1.0, max_value=8.0))
    @settings(max_examples=200, deadline=None)
    def test_exp2_scaled_exact_when_small(self, x, scale):
        expected = 2.0 ** (x * scale)
        got = exp2_scaled(TowerNumber.from_float(x), scale).to_float()
        assert math.isclose(got, expected, rel_tol=1e-9)

    @given(st.integers(1, 40))
    @settings(max_examples=100, deadline=None)
    def test_log_star_increments(self, h):
        assert tower(h + 1).log_star() == tower(h).log_star() + 1


class TestNeighborhoodGraphProperties:
    @given(st.integers(3, 6))
    @DEFAULT
    def test_n0_is_complete(self, m):
        g, _ = neighborhood_graph(m, 0)
        assert g.m == m * (m - 1) // 2

    @given(st.integers(4, 6))
    @DEFAULT
    def test_n1_degree_bound(self, m):
        g, _ = neighborhood_graph(m, 1)
        # Each window has at most (m - 3) forward + (m - 3) backward
        # successors... conservatively 2 (m - 2).
        assert g.max_degree() <= 2 * (m - 2)

    @given(st.integers(4, 6), st.integers(0, 2**32 - 1))
    @DEFAULT
    def test_derived_algorithms_always_proper(self, m, seed):
        g, windows = neighborhood_graph(m, 1)
        coloring = is_c_colorable(g, 4)
        alg = algorithm_from_coloring(coloring, windows, m=m, t=1)
        rng = random.Random(seed)
        n = rng.randrange(4, m + 1)
        ids = rng.sample(range(1, m + 1), n)
        out = alg.run(ids)
        assert ProperColoring(4).is_feasible(cycle(n), out)

    @given(st.lists(st.integers(1, 100), min_size=5, max_size=12, unique=True),
           st.integers(0, 11), st.integers(1, 2))
    @settings(max_examples=200, deadline=None)
    def test_window_of_wraps(self, ids, position, t):
        position %= len(ids)
        w = window_of(ids, position, t)
        assert len(w) == 2 * t + 1
        assert w[t] == ids[position]


class TestLineGraphProperties:
    @given(st.integers(2, 30), st.integers(0, 2**32 - 1))
    @DEFAULT
    def test_line_graph_of_tree_sizes(self, n, seed):
        tree = random_tree(n, random.Random(seed))
        lg, edges = line_graph(tree)
        assert lg.n == tree.m
        # Sum over nodes of C(deg, 2) counts line-graph edges.
        expected = sum(
            tree.degree(v) * (tree.degree(v) - 1) // 2 for v in tree.nodes()
        )
        assert lg.m == expected
