"""Tests for the synchronous LOCAL execution engine."""

import random

import pytest

from repro.graphs import balanced_regular_tree, cycle, path, sequential_ids
from repro.local_model import (
    LocalAlgorithm,
    UNSET,
    ViewAlgorithm,
    run_local,
    run_view_algorithm,
    EdgeViewAlgorithm,
    run_edge_view_algorithm,
)


class HaltImmediately(LocalAlgorithm):
    """Every node outputs its degree in round 0."""

    name = "halt-immediately"

    def init(self, ctx):
        ctx.halt(ctx.degree)

    def send(self, ctx):  # pragma: no cover - never called
        return {}

    def receive(self, ctx, messages):  # pragma: no cover - never called
        pass


class FloodMinimum(LocalAlgorithm):
    """Flood the minimum identifier; halt when it stabilizes for ecc rounds.

    Nodes know n, so they run exactly n rounds and output the minimum —
    a deliberately simple O(n) global algorithm.
    """

    name = "flood-minimum"

    def init(self, ctx):
        ctx.state["best"] = ctx.identifier

    def send(self, ctx):
        return {port: ctx.state["best"] for port in range(ctx.degree)}

    def receive(self, ctx, messages):
        for value in messages.values():
            ctx.state["best"] = min(ctx.state["best"], value)
        if ctx.round_number >= ctx.n:
            ctx.halt(ctx.state["best"])


class CountNeighbors(LocalAlgorithm):
    """One round: output how many messages arrived."""

    name = "count-neighbors"

    def send(self, ctx):
        return {port: "ping" for port in range(ctx.degree)}

    def receive(self, ctx, messages):
        ctx.halt(len(messages))


class UsesRandomness(LocalAlgorithm):
    name = "uses-randomness"

    def send(self, ctx):
        return {}

    def receive(self, ctx, messages):
        ctx.halt(ctx.rng.getrandbits(8))


class NeverHalts(LocalAlgorithm):
    name = "never-halts"

    def send(self, ctx):
        return {}

    def receive(self, ctx, messages):
        pass


class TestMessagePassing:
    def test_zero_round_algorithm(self):
        g = balanced_regular_tree(3, 2)
        result = run_local(g, HaltImmediately())
        assert result.rounds == 0
        assert result.outputs == [g.degree(v) for v in g.nodes()]
        assert result.halt_rounds == [0] * g.n
        assert result.all_halted()

    def test_flood_minimum_finds_global_min(self):
        g = cycle(9)
        ids = [50, 3, 77, 12, 9, 31, 25, 60, 41]
        result = run_local(g, FloodMinimum(), ids=ids)
        assert set(result.outputs) == {3}
        assert result.rounds == g.n

    def test_messages_arrive_on_correct_ports(self):
        g = path(4)
        result = run_local(g, CountNeighbors())
        assert result.outputs == [1, 2, 2, 1]
        assert result.rounds == 1

    def test_deterministic_run_forbids_randomness(self):
        g = path(2)
        with pytest.raises(RuntimeError, match="deterministic"):
            run_local(g, UsesRandomness(), deterministic=True)

    def test_randomized_runs_reproducible_by_seed(self):
        g = path(4)
        a = run_local(g, UsesRandomness(), rng=random.Random(5))
        b = run_local(g, UsesRandomness(), rng=random.Random(5))
        assert a.outputs == b.outputs

    def test_randomness_is_private(self):
        g = path(16)
        result = run_local(g, UsesRandomness(), rng=random.Random(1))
        assert len(set(result.outputs)) > 1

    def test_runaway_algorithm_raises(self):
        g = path(3)
        with pytest.raises(RuntimeError, match="still running"):
            run_local(g, NeverHalts(), max_rounds=10)

    def test_id_length_validation(self):
        g = path(3)
        with pytest.raises(ValueError):
            run_local(g, HaltImmediately(), ids=[1, 2])

    def test_labeling_includes_unset_for_non_halting(self):
        g = path(2)

        class OneHalts(LocalAlgorithm):
            name = "one-halts"

            def send(self, ctx):
                return {}

            def receive(self, ctx, messages):
                if ctx.identifier == 1:
                    ctx.halt("done")

        with pytest.raises(RuntimeError):
            run_local(g, OneHalts(), ids=[1, 2], max_rounds=5)

    def test_halted_nodes_stop_sending(self):
        g = path(3)

        class MiddleListens(LocalAlgorithm):
            """Ends halt in round 1; middle reports messages in round 2."""

            name = "middle-listens"

            def send(self, ctx):
                return {port: "hi" for port in range(ctx.degree)}

            def receive(self, ctx, messages):
                if ctx.degree == 1:
                    ctx.halt("end")
                elif ctx.round_number == 2:
                    ctx.halt(len(messages))

        result = run_local(g, MiddleListens())
        assert result.outputs[1] == 0  # both ends were silent in round 2


class TestViewAlgorithms:
    def test_view_algorithm_runs_at_declared_radius(self):
        class DegreeSum(ViewAlgorithm):
            name = "degree-sum"
            radius = 1

            def output(self, view):
                return sum(view.degrees)

        g = path(4)
        result = run_view_algorithm(g, DegreeSum())
        assert result.rounds == 1
        assert result.outputs == [3, 5, 5, 3]

    def test_view_algorithm_with_ids(self):
        class MaxId(ViewAlgorithm):
            name = "max-id"
            radius = 2

            def output(self, view):
                return max(view.identifiers)

        g = path(5)
        result = run_view_algorithm(g, MaxId(), ids=sequential_ids(g))
        assert result.outputs == [3, 4, 5, 5, 5]


class TestEdgeModel:
    def test_edge_outputs_keyed_canonically(self):
        alg = EdgeViewAlgorithm(1, lambda view: view.node_count, name="size")
        g = path(4)
        result = run_edge_view_algorithm(g, alg)
        assert result.rounds == 1
        assert result.at(0, 1) == 2  # radius 0 balls at both ends
        assert result.at(1, 0) == result.at(0, 1)

    def test_edge_view_radius_convention(self):
        # rounds = t means endpoint balls of radius t - 1.
        alg = EdgeViewAlgorithm(2, lambda view: view.node_count)
        g = path(5)
        result = run_edge_view_algorithm(g, alg)
        assert result.at(2, 3) == 4  # B_1(2) ∪ B_1(3) in a path

    def test_rounds_zero_allowed(self):
        alg = EdgeViewAlgorithm(0, lambda view: "x")
        result = run_edge_view_algorithm(path(3), alg)
        assert result.rounds == 0

    def test_negative_rounds_rejected(self):
        with pytest.raises(ValueError):
            EdgeViewAlgorithm(-1, lambda view: None)
