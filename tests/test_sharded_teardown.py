"""Pool lifecycle tests for the sharded engine.

A leaked worker pool is invisible to the differential suite (outputs
stay right) but poisons everything downstream: CI runners accumulate
zombie processes, and a second engine contends with the first's
workers.  These tests pin the teardown contract: ``close()`` terminates
the pool, no child processes outlive it, and a closed engine respawns
cleanly.
"""

import multiprocessing

import pytest

from repro.algorithms.view_rules import DegreeProfileRule
from repro.core.engine import SimRequest
from repro.core.sharded import ShardedEngine
from repro.graphs.generators import path


def _pooled_request(n=8):
    return SimRequest(
        kind="view",
        graph=path(n),
        algorithm=DegreeProfileRule(radius=1),
        ids=list(range(1, n + 1)),  # distinct views => pooled dispatch
        label="teardown-test",
    )


def _drain_finished_children():
    # active_children() also reaps finished processes; call it once so
    # pre-existing zombies don't count against the engine under test.
    multiprocessing.active_children()


def test_close_terminates_all_workers():
    _drain_finished_children()
    before = set(multiprocessing.active_children())
    engine = ShardedEngine(shards=2)
    report = engine.run(_pooled_request())
    assert report.info["pooled"] is True
    assert set(multiprocessing.active_children()) - before  # pool is live
    engine.close()
    leaked = set(multiprocessing.active_children()) - before
    assert not leaked, f"workers outlived close(): {leaked}"


def test_close_is_idempotent_and_cheap_without_a_pool():
    engine = ShardedEngine(shards=2)
    engine.close()  # never spawned: must not raise
    engine.close()
    engine.run(_pooled_request())
    engine.close()
    engine.close()


def test_closed_engine_respawns_on_next_run():
    engine = ShardedEngine(shards=2)
    try:
        first = engine.run(_pooled_request())
        engine.close()
        second = engine.run(_pooled_request())
        assert second.info["pooled"] is True
        assert second.identity() == first.identity()
    finally:
        engine.close()


def test_second_engine_starts_after_first_closes():
    first = ShardedEngine(shards=2)
    first.run(_pooled_request())
    first.close()
    second = ShardedEngine(shards=2)
    try:
        report = second.run(_pooled_request())
        assert report.info["pooled"] is True
    finally:
        second.close()
    _drain_finished_children()


def test_constructor_rejects_bad_arguments():
    with pytest.raises(ValueError, match="shards"):
        ShardedEngine(shards=0)
    with pytest.raises(ValueError, match="shards"):
        ShardedEngine(shards=-3)
    with pytest.raises(ValueError, match="timeout"):
        ShardedEngine(timeout=0)
    with pytest.raises(ValueError, match="timeout"):
        ShardedEngine(timeout=-1.5)
    # None timeout and unspecified shards are the documented defaults.
    engine = ShardedEngine()
    assert engine.timeout is None
    assert engine.shards >= 1
    engine.close()


def test_interpreter_exit_does_not_hang_on_live_pool():
    # The engine registers an atexit hook; a child interpreter that
    # exits with a warm pool must terminate promptly and cleanly.
    import subprocess
    import sys

    code = (
        "from repro.core.sharded import ShardedEngine\n"
        "from tests.test_sharded_teardown import _pooled_request\n"
        "engine = ShardedEngine(shards=2)\n"
        "report = engine.run(_pooled_request())\n"
        "assert report.info['pooled'] is True\n"
        "print('warm-pool-exit-ok')\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, timeout=60,
        env={"PYTHONPATH": "src:.", "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stderr
    assert "warm-pool-exit-ok" in proc.stdout
