"""Smoke tests: every example script runs cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()  # every example narrates its findings


def test_examples_exist():
    assert len(EXAMPLES) >= 5
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
