"""Tests for the speedup engine: algorithms, failure evaluation,
transformations, and the full pipeline (Lemmas 7/8/14/15 executable)."""

import random
from fractions import Fraction

import pytest

from repro.speedup import (
    EdgeAlgorithm,
    NodeAlgorithm,
    OrientedBall,
    edge_local_failure,
    first_lemma_bound,
    first_speedup,
    local_maximum_coloring,
    node_local_failure,
    paper_threshold_first,
    paper_threshold_second,
    parity_coloring,
    run_speedup_pipeline,
    second_lemma_bound,
    second_speedup,
    smaller_count_coloring,
    zero_round_uniform,
)


class TestStarterAlgorithms:
    def test_uniform_failure_exact(self):
        # Uniform c-coloring: failure = c^-Delta exactly.
        for k, c in ((2, 2), (2, 4), (3, 2)):
            alg = zero_round_uniform(k, c)
            p = node_local_failure(alg, method="exact")
            assert p.exact
            assert p.probability == Fraction(1, c ** (2 * k))

    def test_uniform_requires_divisible_space(self):
        with pytest.raises(ValueError, match="evenly"):
            zero_round_uniform(2, 3, bits=1)

    def test_local_maximum_properties(self):
        alg = local_maximum_coloring(2, bits=2)
        ball = OrientedBall(2, 1)
        # All-equal values: nobody is a strict max.
        assert alg.evaluate((3,) * ball.size) == 0
        # Center strictly above all neighbors.
        assert alg.evaluate((3, 0, 0, 0, 0)) == 1

    def test_smaller_count_range(self):
        alg = smaller_count_coloring(2, bits=2)
        assert alg.palette == 5
        assert alg.evaluate((3, 0, 1, 2, 0)) == 4
        assert alg.evaluate((0, 1, 2, 3, 1)) == 0

    def test_parity(self):
        alg = parity_coloring(2, bits=1)
        assert alg.evaluate((1, 0, 1, 0, 1)) == 1

    def test_evaluate_validates_length(self):
        alg = local_maximum_coloring(2)
        with pytest.raises(ValueError):
            alg.evaluate((0, 1))

    def test_memoization(self):
        calls = []

        def fn(a):
            calls.append(a)
            return 0

        alg = NodeAlgorithm(2, 0, 1, 1, fn)
        alg.evaluate((0,))
        alg.evaluate((0,))
        assert len(calls) == 1


class TestNodeFailure:
    def test_exact_matches_monte_carlo(self):
        alg = local_maximum_coloring(2, bits=1)
        exact = node_local_failure(alg, method="exact")
        mc = node_local_failure(alg, method="monte_carlo", samples=40_000,
                                rng=random.Random(0))
        assert abs(exact.as_float() - mc.as_float()) < 0.02

    def test_failure_decreases_with_more_bits(self):
        p1 = node_local_failure(local_maximum_coloring(2, bits=1), method="exact")
        p3 = node_local_failure(local_maximum_coloring(2, bits=3), method="exact")
        assert p3.as_float() < p1.as_float()

    def test_parity_fails_half(self):
        # Parity of the ball sum: neighbor outputs are coin flips
        # coupled through shared bits; the failure rate is exactly the
        # chance all four neighbor-parities equal the center's.
        alg = parity_coloring(2, bits=1)
        p = node_local_failure(alg, method="exact")
        assert 0 < p.as_float() < 1

    def test_constant_algorithm_always_fails(self):
        alg = NodeAlgorithm(2, 0, 1, 1, lambda a: 42, name="constant")
        p = node_local_failure(alg, method="exact")
        assert p.probability == 1

    def test_distinct_by_construction_never_fails(self):
        # t=1 algorithm echoing its own bits: fails only when all
        # neighbors hold the center's value.
        ball = OrientedBall(2, 1)
        alg = NodeAlgorithm(2, 1, 2, 4, lambda a: a[0], name="echo")
        p = node_local_failure(alg, method="exact")
        assert p.probability == Fraction(1, 4**4)

    def test_auto_switches_to_monte_carlo(self):
        alg = NodeAlgorithm(2, 2, 1, 2, lambda a: sum(a) % 2, name="big")
        p = node_local_failure(alg, method="auto", exact_cost_limit=10, samples=2000)
        assert not p.exact
        assert p.samples == 2000

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            node_local_failure(local_maximum_coloring(2), method="guess")


class TestEdgeFailure:
    def test_dimension_coloring_never_fails(self):
        # Edge outputs its own dimension: U/D share a color, L/R share a
        # color, but a *weak* edge coloring needs some dimension split —
        # every node fails.  Conversely, coloring by +/- sign splits
        # every dimension: never fails.
        alg_dim = EdgeAlgorithm(2, 0, 1, 2, lambda dim, a: dim, name="by-dim")
        p = edge_local_failure(alg_dim, method="exact")
        assert p.probability == 1

    def test_sign_coloring_always_succeeds(self):
        # Color = value at the low endpoint XOR'd...: use the edge's two
        # endpoint values ordered low->high: (a[0], a[1]) as color makes
        # e_+d and e_-d differ unless values collude; simplest guaranteed
        # split: color = index of the low endpoint == center test is not
        # expressible, so check a randomized variant statistically instead.
        alg = EdgeAlgorithm(2, 0, 1, 4, lambda dim, a: (a[0], a[1]), name="pair")
        p = edge_local_failure(alg, method="exact")
        # Fails only if both dimensions have (low,high) equal for both
        # incident edges.
        assert 0 < p.as_float() < 1

    def test_exact_matches_monte_carlo(self):
        alg = EdgeAlgorithm(2, 0, 2, 4, lambda dim, a: (a[0] + a[1]) % 3, name="sum")
        exact = edge_local_failure(alg, method="exact")
        mc = edge_local_failure(alg, method="monte_carlo", samples=40_000,
                                rng=random.Random(1))
        assert abs(exact.as_float() - mc.as_float()) < 0.02

    def test_six_regular(self):
        alg = EdgeAlgorithm(3, 0, 1, 2, lambda dim, a: a[0] ^ a[1], name="xor")
        p = edge_local_failure(alg, method="exact")
        assert 0 <= p.as_float() <= 1


class TestTransformations:
    def test_first_speedup_shrinks_radius(self):
        node = local_maximum_coloring(2, bits=1)
        edge = first_speedup(node, Fraction(1, 4))
        assert edge.r == 0
        assert edge.palette.to_float() == 2.0 ** (2 * node.palette.to_float())

    def test_first_speedup_output_shape(self):
        node = local_maximum_coloring(2, bits=1)
        edge = first_speedup(node, Fraction(1, 4))
        color = edge.evaluate(0, (0, 1))
        assert isinstance(color, tuple) and len(color) == 2
        assert all(isinstance(part, frozenset) for part in color)

    def test_first_speedup_rejects_zero_round(self):
        with pytest.raises(ValueError):
            first_speedup(zero_round_uniform(2, 2), Fraction(1, 2))

    def test_threshold_zero_includes_everything(self):
        node = local_maximum_coloring(2, bits=1)
        edge = first_speedup(node, Fraction(0))
        low, high = edge.evaluate(0, (0, 0))
        assert low == frozenset({0, 1}) or low == frozenset({0})
        # With threshold 0 every color with positive probability appears;
        # the center value 0 can never be a strict local max.
        assert 0 in low

    def test_threshold_one_keeps_only_certainties(self):
        node = local_maximum_coloring(2, bits=1)
        edge = first_speedup(node, Fraction(1))
        low, high = edge.evaluate(0, (0, 1))
        # Low endpoint has value 0 with a neighbor of value 1: it can
        # never be a local max -> output 0 with probability 1.
        assert low == frozenset({0})

    def test_second_speedup_shape(self):
        node = local_maximum_coloring(2, bits=1)
        edge = first_speedup(node, Fraction(1, 4))
        back = second_speedup(edge, Fraction(1, 4))
        assert back.t == 0
        assert back.palette.to_float() == 2.0 ** (4 * edge.palette.to_float())
        color = back.evaluate((1,))
        assert isinstance(color, tuple) and len(color) == 4

    def test_round_trip_loses_one_round(self):
        node = smaller_count_coloring(2, bits=1)
        assert node.t == 1
        edge = first_speedup(node, Fraction(1, 8))
        back = second_speedup(edge, Fraction(1, 8))
        assert back.t == node.t - 1


class TestThresholdFormulas:
    def test_paper_threshold_first_delta4(self):
        f = paper_threshold_first(0.001, 2, 4)
        assert abs(float(f) - (0.001 / 2) ** 0.2) < 1e-6

    def test_paper_threshold_second_delta4(self):
        f = paper_threshold_second(0.001, 16, 4)
        assert abs(float(f) - (0.001 / 16) ** 0.25) < 1e-6

    def test_bounds_formulas(self):
        assert abs(first_lemma_bound(1e-5, 2, 4) - 5 * (1e-5) ** 0.2 * 2**0.8) < 1e-9
        assert abs(second_lemma_bound(1e-4, 16, 4) - 4 * (1e-4) ** 0.25 * 16**0.75) < 1e-9

    def test_bounds_monotone_in_p(self):
        assert first_lemma_bound(1e-6, 4, 4) < first_lemma_bound(1e-3, 4, 4)
        assert second_lemma_bound(1e-6, 4, 4) < second_lemma_bound(1e-3, 4, 4)


class TestPipeline:
    def test_pipeline_reaches_zero_rounds(self):
        result = run_speedup_pipeline(local_maximum_coloring(2, bits=1), method="exact")
        assert result.stages[0].radius == 1
        assert result.stages[-1].radius == 0
        assert result.stages[-1].kind == "node"

    def test_lemma_bounds_hold_for_all_seeds(self):
        for seed in (
            local_maximum_coloring(2, bits=1),
            local_maximum_coloring(2, bits=2),
            smaller_count_coloring(2, bits=1),
            parity_coloring(2, bits=1),
        ):
            result = run_speedup_pipeline(seed, method="exact")
            assert result.all_bounds_hold(), seed.name

    def test_lemma_bounds_hold_at_delta_6(self):
        result = run_speedup_pipeline(local_maximum_coloring(3, bits=1), method="exact")
        assert result.all_bounds_hold()

    def test_palettes_follow_recurrence(self):
        result = run_speedup_pipeline(smaller_count_coloring(2, bits=1), method="exact")
        node0, edge1, node1 = result.stages
        assert edge1.nominal_palette.to_float() == 2.0 ** (
            2 * node0.nominal_palette.to_float()
        )
        assert node1.nominal_palette.log2().to_float() == (
            4 * edge1.nominal_palette.to_float()
        )

    def test_zero_round_floor(self):
        # The 0-round endpoint cannot beat uniform guessing over its
        # *achievable* colors: p >= m^-Delta with m distinct outputs.
        result = run_speedup_pipeline(local_maximum_coloring(2, bits=1), method="exact")
        final = result.stages[-1]
        # Enumerate achievable outputs of the final 0-round algorithm.
        seed = local_maximum_coloring(2, bits=1)
        edge = first_speedup(seed, result.stages[1].threshold)
        final_alg = second_speedup(edge, result.stages[2].threshold)
        outputs = {final_alg.evaluate((v,)) for v in range(final_alg.values)}
        floor = len(outputs) ** (-4.0)
        assert final.measured_failure.as_float() >= floor - 1e-12

    def test_threshold_override(self):
        result = run_speedup_pipeline(
            local_maximum_coloring(2, bits=1),
            method="exact",
            threshold_override=Fraction(1, 2),
        )
        assert all(
            s.threshold == Fraction(1, 2) for s in result.stages if s.threshold
        )
