"""The docs link-checker must pass on the repository's own markdown."""

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_docs_links_resolve():
    proc = subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "tools", "check_doc_links.py")],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_checker_flags_broken_links(tmp_path):
    doc = tmp_path / "bad.md"
    doc.write_text("see [missing](no/such/file.md)\n")
    proc = subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "tools", "check_doc_links.py"),
         str(doc)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    assert "broken link" in proc.stdout
