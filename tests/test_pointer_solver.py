"""Tests for the P* solvers (Lemma 3 partial, Lemma 17 global)."""

import random

import pytest

from repro.algorithms import solve_pstar, solve_pstar_partial
from repro.graphs import (
    Graph,
    balanced_regular_tree,
    caterpillar,
    cycle,
    path,
    random_permutation_ids,
    random_regular_graph,
    sequential_ids,
    star,
    toroidal_grid,
)
from repro.lcl import PStar


class TestPartialSolver:
    def test_tree_partial_coverage_grows_with_radius(self):
        g = balanced_regular_tree(4, 4)
        ids = sequential_ids(g)
        fractions = [
            solve_pstar_partial(g, 4, r, ids).labeled_fraction() for r in (0, 1, 2, 4)
        ]
        assert all(b >= a for a, b in zip(fractions, fractions[1:]))
        assert fractions[-1] == 1.0

    def test_labeled_nodes_are_happy(self):
        g = balanced_regular_tree(4, 4)
        ids = sequential_ids(g)
        for r in (1, 2, 3):
            sol = solve_pstar_partial(g, 4, r, ids)
            labeled = [v for v in g.nodes() if sol.labels[v] is not None]
            # Happiness checkable where the pointer target is labeled too;
            # Lemma 3 promises it for nodes within r of an irregularity.
            checkable = [
                v
                for v in labeled
                if sol.labels[v].p is None or sol.labels[sol.labels[v].p] is not None
            ]
            assert not PStar(4, require_all=False).verify(g, sol.labels, nodes=checkable)

    def test_low_degree_nodes_always_labeled(self):
        g = balanced_regular_tree(4, 3)
        sol = solve_pstar_partial(g, 4, 0, sequential_ids(g))
        for v in g.nodes():
            if g.degree(v) < 4:
                assert sol.labels[v] is not None
                assert sol.labels[v].p is None

    def test_rounds_equal_twice_radius(self):
        g = balanced_regular_tree(4, 3)
        sol = solve_pstar_partial(g, 4, 2, sequential_ids(g))
        assert sol.rounds == 4

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            solve_pstar_partial(path(3), 3, -1, [1, 2, 3])


class TestGlobalSolver:
    @pytest.mark.parametrize(
        "graph,delta",
        [
            (balanced_regular_tree(4, 4), 4),
            (balanced_regular_tree(3, 5), 3),
            (balanced_regular_tree(6, 2), 6),
            (caterpillar(8, 2), 4),
            (star(5), 5),
            (path(12), 3),
        ],
    )
    def test_trees_fully_happy(self, graph, delta):
        sol = solve_pstar(graph, delta, sequential_ids(graph))
        assert not PStar(delta).verify(graph, sol.labels)

    def test_torus_fully_happy(self):
        g = toroidal_grid(5, 6)
        sol = solve_pstar(g, 4, sequential_ids(g))
        assert not PStar(4).verify(g, sol.labels)

    def test_odd_cycle_of_degree_delta(self):
        # A 5-cycle with pendant trees making cycle nodes degree 3.
        g = Graph(10)
        for i in range(5):
            g.add_edge(i, (i + 1) % 5)
            g.add_edge(i, 5 + i)
        sol = solve_pstar(g, 3, sequential_ids(g))
        assert not PStar(3).verify(g, sol.labels)

    def test_random_regular_graphs(self):
        rng = random.Random(4)
        for trial in range(5):
            g = random_regular_graph(24, 4, rng=random.Random(rng.getrandbits(64)))
            sol = solve_pstar(g, 4, random_permutation_ids(g, rng))
            assert not PStar(4).verify(g, sol.labels)

    def test_radius_tracks_depth_on_trees(self):
        radii = []
        for depth in (2, 3, 4, 5, 6):
            g = balanced_regular_tree(4, depth)
            radii.append(solve_pstar(g, 4, sequential_ids(g)).radius)
        # Every node is within depth of a leaf; the exact-minimal radius
        # grows by one per level (it is the depth of the interior).
        assert radii == sorted(radii)
        assert radii[-1] > radii[0]

    def test_all_low_degree_graph(self):
        g = path(6)  # all degrees < 4
        sol = solve_pstar(g, 4, sequential_ids(g))
        assert all(label.p is None for label in sol.labels)
        assert not PStar(4).verify(g, sol.labels)

    def test_degree_2_cycle_solved_via_cycle_irregularity(self):
        # A cycle with delta = 2 has no low-degree node; the cycle itself
        # is the irregularity and every node follows its orientation.
        g = cycle(6)
        sol = solve_pstar(g, 2, sequential_ids(g))
        assert all(label is not None for label in sol.labels)
        assert all(label.d == 0 and label.p is not None for label in sol.labels)

    def test_deterministic_output(self):
        g = balanced_regular_tree(4, 3)
        ids = sequential_ids(g)
        a = solve_pstar(g, 4, ids)
        b = solve_pstar(g, 4, ids)
        assert a.labels == b.labels


class TestCyclePreference:
    def test_nodes_near_cycle_point_with_d_zero(self):
        # Triangle of degree-3 nodes with pendant paths.  At a radius
        # where the cycle is in range (odd-cycle distance = max + 1 = 2)
        # the cycle is preferred over the closer degree-2 path nodes.
        g = Graph(9, [(0, 1), (1, 2), (2, 0), (0, 3), (1, 4), (2, 5), (3, 6), (4, 7), (5, 8)])
        sol = solve_pstar_partial(g, 3, 2, sequential_ids(g))
        for v in (0, 1, 2):
            assert sol.labels[v].d == 0
            assert sol.labels[v].p in (0, 1, 2)  # follows the cycle
        # And the full labeling at this radius is happy.
        assert not PStar(3).verify(g, sol.labels)
