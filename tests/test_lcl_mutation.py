"""Mutation tests: every catalog verifier must pinpoint planted bugs.

A verifier that always passes (or blames the wrong node) makes every
downstream correctness claim vacuous — the conformance fuzzer, the
experiment runner's verdicts, and the paper-facing tables all trust
``verify``.  For each LCL in ``repro/lcl/catalog.py`` this table feeds
one known-good labeling (must verify clean) and minimally-corrupted
variants (must produce violations at *exactly* the expected nodes).
"""

import pytest

import repro.lcl.catalog as catalog
from repro.graphs.generators import complete_graph, path, star, toroidal_grid
from repro.graphs.graph import edge_key
from repro.graphs.orientation import orient_torus
from repro.lcl.catalog import (
    MaximalIndependentSet,
    MaximalMatching,
    ProperColoring,
    ProperEdgeColoring,
    SinklessOrientation,
    WeakColoring,
    WeakEdgeColoring,
)


def _torus_setup():
    """4x4 torus, its natural orientation, and a good weak edge coloring.

    Dimension-0 edges alternate color with the column of their low
    endpoint (columns are even in number, so the alternation closes);
    dimension-1 edges are monochromatic.  Every node then has a
    bichromatic dimension 0, so the labeling is feasible — and
    corrupting a single dimension-0 edge makes that dimension
    monochromatic at both its endpoints.
    """
    rows = cols = 4
    graph = toroidal_grid(rows, cols)
    orientation = orient_torus(graph, rows, cols)
    labeling = {}
    for u, v in graph.edges():
        dim = orientation.dim_of(u, v)
        if dim == 0:
            low = u if orientation.sign_at(u, v) == 1 else v
            labeling[edge_key(u, v)] = (low % cols) % 2
        else:
            labeling[edge_key(u, v)] = 0
    return graph, orientation, labeling


def _corrupt_node(labeling, node, value):
    mutated = list(labeling)
    mutated[node] = value
    return mutated


def _corrupt_edge(labeling, u, v, value):
    mutated = dict(labeling)
    mutated[edge_key(u, v)] = value
    return mutated


# Each row: (case id, problem, graph, orientation, good labeling,
#            corrupted labeling, nodes the violations must name).
def _node_cases():
    p3, p5, s3 = path(3), path(5), star(3)
    return [
        (
            "weak-coloring/leaf-matches-center",
            WeakColoring(2), s3, None,
            [0, 1, 1, 1],
            _corrupt_node([0, 1, 1, 1], 1, 0),
            [1],
        ),
        (
            "weak-coloring/unlabeled-node",
            WeakColoring(2), s3, None,
            [0, 1, 1, 1],
            _corrupt_node([0, 1, 1, 1], 2, None),
            [2],
        ),
        (
            "weak-coloring/outside-palette",
            WeakColoring(2), s3, None,
            [0, 1, 1, 1],
            _corrupt_node([0, 1, 1, 1], 3, 7),
            [3],
        ),
        (
            "proper-coloring/adjacent-same",
            ProperColoring(2), p3, None,
            [0, 1, 0],
            _corrupt_node([0, 1, 0], 2, 1),
            [1, 2],
        ),
        (
            "proper-coloring/outside-palette",
            ProperColoring(2), p3, None,
            [0, 1, 0],
            _corrupt_node([0, 1, 0], 0, 5),
            [0],
        ),
        (
            "mis/not-maximal",
            MaximalIndependentSet(), p5, None,
            [True, False, True, False, True],
            _corrupt_node([True, False, True, False, True], 2, False),
            [2],
        ),
        (
            "mis/not-independent",
            MaximalIndependentSet(), p5, None,
            [True, False, True, False, True],
            _corrupt_node([True, False, True, False, True], 1, True),
            [0, 1, 2],
        ),
    ]


def _edge_cases():
    p4 = path(4)
    k4 = complete_graph(4)
    torus, torus_orientation, torus_good = _torus_setup()
    # K4 oriented as the cycle 0->1->2->3->0 plus chords 0->2 and 1->3:
    # every node has out-degree >= 1, so no sinks.
    k4_good = {
        edge_key(0, 1): 1,
        edge_key(1, 2): 2,
        edge_key(2, 3): 3,
        edge_key(0, 3): 0,
        edge_key(0, 2): 2,
        edge_key(1, 3): 3,
    }
    matching_good = {
        edge_key(0, 1): True,
        edge_key(1, 2): False,
        edge_key(2, 3): True,
    }
    return [
        (
            "weak-edge-coloring/monochromatic-dimension",
            WeakEdgeColoring(2), torus, torus_orientation,
            torus_good,
            _corrupt_edge(torus_good, 0, 1, 1),
            [0, 1],
        ),
        (
            "weak-edge-coloring/unlabeled-edge",
            WeakEdgeColoring(2), torus, torus_orientation,
            torus_good,
            _corrupt_edge(torus_good, 0, 1, None),
            [0, 1],
        ),
        (
            "sinkless-orientation/planted-sink",
            SinklessOrientation(), k4, None,
            k4_good,
            _corrupt_edge(k4_good, 0, 3, 3),
            [3],
        ),
        (
            "sinkless-orientation/head-not-endpoint",
            SinklessOrientation(), k4, None,
            k4_good,
            _corrupt_edge(k4_good, 0, 1, 9),
            [0, 1],
        ),
        (
            "proper-edge-coloring/shared-color",
            ProperEdgeColoring(3), p4, None,
            {edge_key(0, 1): 0, edge_key(1, 2): 1, edge_key(2, 3): 0},
            {edge_key(0, 1): 0, edge_key(1, 2): 0, edge_key(2, 3): 0},
            [1, 2],
        ),
        (
            "maximal-matching/dropped-edge",
            MaximalMatching(), p4, None,
            matching_good,
            _corrupt_edge(matching_good, 2, 3, False),
            [2, 3],
        ),
        (
            "maximal-matching/double-matched",
            MaximalMatching(), p4, None,
            matching_good,
            _corrupt_edge(matching_good, 1, 2, True),
            [1, 2],
        ),
    ]


ALL_CASES = _node_cases() + _edge_cases()


@pytest.mark.parametrize(
    "problem,graph,orientation,good,corrupted,expected",
    [case[1:] for case in ALL_CASES],
    ids=[case[0] for case in ALL_CASES],
)
def test_verifier_pinpoints_planted_violation(
    problem, graph, orientation, good, corrupted, expected
):
    assert problem.verify(graph, good, orientation) == []
    violations = problem.verify(graph, corrupted, orientation)
    assert sorted(v.where for v in violations) == expected
    assert all(v.reason for v in violations)


def test_every_catalog_problem_is_mutation_tested():
    # Kills silent gaps: adding a problem to the catalog without a
    # mutation row here must fail loudly.
    tested = {type(case[1]).__name__ for case in ALL_CASES}
    assert tested == set(catalog.__all__)


def test_node_verify_rejects_wrong_length_labeling():
    with pytest.raises(ValueError):
        WeakColoring(2).verify(path(3), [0, 1])


def test_isolated_node_is_vacuously_weakly_colored():
    from repro.graphs.graph import Graph

    lonely = Graph(1).freeze()
    assert WeakColoring(2).verify(lonely, [0]) == []
