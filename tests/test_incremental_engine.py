"""Unit tests for :class:`repro.core.IncrementalEngine`.

The delta-differential grid (``tests/test_differential.py``) and the
hypothesis suite (``tests/test_incremental_properties.py``) prove the
bit-identity contract at scale; this module pins the engine's *edges*:
lifecycle errors, recompute-mode fallbacks, changed-node reporting,
memo survival across mutations, tracer/metrics integration, the engine
seam (``resolve_engine`` / ``simulate``), and the stale-cache fixture
being caught by the differential harness.
"""

from __future__ import annotations

import random

import pytest

from repro.algorithms.message_passing import LubyMIS
from repro.algorithms.view_rules import make_view_rule
from repro.core import (
    ENGINE_NAMES,
    IncrementalEngine,
    SimRequest,
    resolve_engine,
    simulate,
)
from repro.graphs import GraphDelta, GraphDeltaError, cycle, path
from repro.graphs.graph import Graph
from repro.graphs.identifiers import random_permutation_ids
from repro.instrumentation import MetricsTracer
from repro.instrumentation.tracer import Tracer

from .differential import Case, assert_delta_case_identical


def _view_request(graph, rule="ball-signature", radius=2, **kwargs):
    return SimRequest(
        kind="view",
        graph=graph,
        algorithm=make_view_rule(rule, radius=radius),
        **kwargs,
    )


class _DeltaSpy(Tracer):
    """Capture every on_delta payload for assertion."""

    def __init__(self):
        self.events = []

    def on_delta(self, engine, info):
        self.events.append((engine, dict(info)))


# ----------------------------------------------------------------------
# Engine seam
# ----------------------------------------------------------------------

def test_incremental_is_a_registered_backend():
    assert "incremental" in ENGINE_NAMES
    engine = resolve_engine("incremental")
    assert isinstance(engine, IncrementalEngine)
    # Fresh state per resolution: the engine is stateful, like cached.
    assert engine is not resolve_engine("incremental")


def test_simulate_by_name_matches_direct():
    request = _view_request(cycle(12))
    report = simulate(request, engine="incremental")
    assert report.backend == "incremental"
    assert report.identity() == simulate(request, engine="direct").identity()


# ----------------------------------------------------------------------
# Lifecycle errors
# ----------------------------------------------------------------------

def test_apply_before_run_is_rejected():
    engine = IncrementalEngine()
    with pytest.raises(GraphDeltaError, match="call run\\(\\) first"):
        engine.apply(GraphDelta(cycle(6), [("add", 0, 3)]))


def test_apply_rejects_empty_and_mistyped_batches():
    engine = IncrementalEngine()
    engine.run(_view_request(cycle(8)))
    with pytest.raises(GraphDeltaError, match="at least one delta"):
        engine.apply([])
    with pytest.raises(GraphDeltaError, match="takes GraphDelta instances"):
        engine.apply(["not-a-delta"])


def test_apply_rejects_stale_deltas():
    graph = cycle(8)
    engine = IncrementalEngine()
    engine.run(_view_request(graph))
    first = GraphDelta(graph, [("add", 0, 4)])
    engine.apply(first)
    # The engine's graph is now the mutated one; a delta still built
    # against the original base is a stale handle.
    stale = GraphDelta(graph, [("add", 1, 5)])
    with pytest.raises(GraphDeltaError, match="stale delta handle"):
        engine.apply(stale)
    # Built against current_graph it applies fine.
    engine.apply(GraphDelta(engine.current_graph, [("add", 1, 5)]))


# ----------------------------------------------------------------------
# View mode: changed nodes, memo survival, round trips
# ----------------------------------------------------------------------

def test_changed_nodes_are_sound_and_local():
    graph = cycle(24)
    engine = IncrementalEngine()
    engine.run(_view_request(graph, radius=2))
    delta = GraphDelta(graph, [("add", 0, 12)])
    report = engine.apply(delta)
    fresh = simulate(
        _view_request(delta.apply(), radius=2), engine="direct"
    )
    assert report.identity() == fresh.identity()
    changed = report.changed_nodes
    assert changed is not None
    # Changed nodes are confined to the delta's radius-2 footprint...
    assert set(changed) <= set(delta.footprint(2))
    # ...include both endpoints (degree is part of even a radius-0
    # view)...
    assert {0, 12} <= set(changed)
    # ...and exclude everything far from the chord.
    assert 6 not in changed
    # The fresh run never reports changed nodes — diagnostics only.
    assert fresh.changed_nodes is None
    assert report.identity() == fresh.identity()


def test_add_then_remove_in_one_delta_changes_nothing():
    graph = cycle(16)
    engine = IncrementalEngine()
    primed = engine.run(_view_request(graph, radius=1))
    delta = GraphDelta(graph, [("add", 2, 9), ("remove", 2, 9)])
    report = engine.apply(delta)
    assert report.changed_nodes == []
    assert report.outputs == primed.outputs


def test_inverse_delta_restores_outputs_and_serves_from_memo():
    graph = cycle(16)
    engine = IncrementalEngine()
    primed = engine.run(_view_request(graph, radius=1))
    spy = _DeltaSpy()
    forward = GraphDelta(graph, [("add", 0, 8)])
    engine.apply(forward, tracer=spy)
    backward = GraphDelta(engine.current_graph, [("remove", 0, 8)])
    restored = engine.apply(backward, tracer=spy)
    assert restored.outputs == primed.outputs
    assert engine.current_node_keys() is not None
    # The second apply re-partitions the same footprint but every class
    # was already memoized by the primed run — all survivors, none new.
    _, info = spy.events[1]
    assert info["classes_invalidated"] == 0
    assert info["cache_survivors"] > 0


def test_apply_accepts_a_sequence_and_composes():
    graph = cycle(16)
    d1 = GraphDelta(graph, [("add", 0, 8)])
    d2 = GraphDelta(d1.apply(), [("remove", 3, 4)])

    chained = IncrementalEngine()
    chained.run(_view_request(graph, radius=1))
    batch_report = chained.apply([d1, d2])

    stepped = IncrementalEngine()
    stepped.run(_view_request(graph, radius=1))
    stepped.apply(d1)
    step_report = stepped.apply(d2)

    assert batch_report.identity() == step_report.identity()
    assert batch_report.changed_nodes == step_report.changed_nodes


def test_view_mode_with_ids_and_randomness_labels():
    graph = path(10)
    rng = random.Random(3)
    ids = random_permutation_ids(graph, rng)
    request = SimRequest(
        kind="view",
        graph=graph,
        algorithm=make_view_rule("local-max", radius=1),
        ids=ids,
    )
    engine = IncrementalEngine()
    engine.run(request)
    delta = GraphDelta(
        graph, [("set_id", 0, ids[9]), ("set_id", 9, ids[0])]
    )
    report = engine.apply(delta)
    new_ids, _, _ = delta.apply_to_labels(ids, None, None)
    fresh = simulate(
        SimRequest(
            kind="view",
            graph=delta.apply(),
            algorithm=make_view_rule("local-max", radius=1),
            ids=new_ids,
        ),
        engine="direct",
    )
    assert report.identity() == fresh.identity()


# ----------------------------------------------------------------------
# Edge mode
# ----------------------------------------------------------------------

def test_edge_mode_drops_removed_edges_from_outputs():
    from repro.local_model import EdgeViewAlgorithm

    graph = cycle(12)

    def output(view):
        return view.node_count

    alg = EdgeViewAlgorithm(1, output, name="edge-size")
    request = SimRequest(kind="edge", graph=graph, algorithm=alg)
    engine = IncrementalEngine()
    primed = engine.run(request)
    assert (0, 1) in primed.outputs
    delta = GraphDelta(graph, [("remove", 0, 1), ("add", 0, 6)])
    report = engine.apply(delta)
    assert (0, 1) not in report.outputs
    assert (0, 6) in report.outputs
    fresh = simulate(
        SimRequest(kind="edge", graph=delta.apply(), algorithm=alg),
        engine="direct",
    )
    assert report.identity() == fresh.identity()
    assert set(report.changed_nodes) <= set(delta.footprint(1))


# ----------------------------------------------------------------------
# Recompute mode (local kind, unfrozen, empty)
# ----------------------------------------------------------------------

def test_local_kind_recomputes_and_matches_direct():
    graph = cycle(16)
    rng = random.Random(5)
    ids = random_permutation_ids(graph, rng)
    request = SimRequest(
        kind="local", graph=graph, algorithm=LubyMIS(), ids=ids, seed=7
    )
    engine = IncrementalEngine()
    primed = engine.run(request)
    assert primed.identity() == simulate(request, engine="direct").identity()
    delta = GraphDelta(graph, [("add", 0, 8)])
    report = engine.apply(delta)
    fresh = simulate(
        SimRequest(
            kind="local", graph=delta.apply(), algorithm=LubyMIS(),
            ids=ids, seed=7,
        ),
        engine="direct",
    )
    assert report.backend == "incremental"
    assert report.identity() == fresh.identity()
    assert report.changed_nodes is not None


def test_local_kind_with_explicit_rng_cannot_apply():
    graph = cycle(8)
    request = SimRequest(
        kind="local", graph=graph, algorithm=LubyMIS(),
        ids=list(range(1, 9)), rng=random.Random(0),
    )
    engine = IncrementalEngine()
    engine.run(request)
    with pytest.raises(GraphDeltaError, match="seed-based randomness"):
        engine.apply(GraphDelta(graph, [("add", 0, 4)]))


def test_unfrozen_graph_falls_back_to_recompute():
    graph = Graph(8, [(i, (i + 1) % 8) for i in range(8)])  # not frozen
    engine = IncrementalEngine()
    report = engine.run(_view_request(graph, radius=1))
    assert report.backend == "incremental"
    assert engine.current_node_keys() is None  # recompute mode


def test_empty_graph_falls_back_to_recompute():
    graph = Graph(0).freeze()
    engine = IncrementalEngine()
    report = engine.run(_view_request(graph, radius=1))
    assert report.outputs == []
    assert engine.current_node_keys() is None


# ----------------------------------------------------------------------
# Tracing and metrics
# ----------------------------------------------------------------------

def test_on_delta_payload_and_metrics_counters():
    graph = cycle(24)
    engine = IncrementalEngine()
    engine.run(_view_request(graph, radius=2))
    spy = _DeltaSpy()
    metrics = MetricsTracer()
    delta = GraphDelta(graph, [("add", 0, 12)])
    report = engine.apply(delta, tracer=spy)
    assert len(spy.events) == 1
    name, info = spy.events[0]
    assert name == "incremental"
    assert info["ops"] == 1
    assert info["footprint"] == len(delta.footprint(2))
    assert info["changed_nodes"] == len(report.changed_nodes)
    assert info["csr_mode"] in ("patch", "recompile", "lazy")
    # Every dirty class was either served from the memo or evaluated.
    assert info["classes_invalidated"] + info["cache_survivors"] > 0
    assert info["classes_invalidated"] >= 0 and info["cache_survivors"] >= 0

    # Same apply through a MetricsTracer folds the delta_* counters.
    engine2 = IncrementalEngine()
    engine2.run(_view_request(graph, radius=2))
    engine2.apply(GraphDelta(graph, [("add", 0, 12)]), tracer=metrics)
    m = metrics.metrics
    assert m.delta_applies == 1
    assert m.delta_footprint == info["footprint"]
    assert m.delta_changed_nodes == info["changed_nodes"]
    assert m.delta_classes_invalidated == info["classes_invalidated"]
    assert m.delta_cache_survivors == info["cache_survivors"]
    payload = m.to_dict()
    for key in (
        "delta_applies", "delta_footprint", "delta_classes_invalidated",
        "delta_cache_survivors", "delta_changed_nodes",
    ):
        assert key in payload


def test_tracing_an_apply_is_passive():
    graph = cycle(20)
    untraced = IncrementalEngine()
    untraced.run(_view_request(graph, radius=1))
    traced = IncrementalEngine()
    traced.run(_view_request(graph, radius=1), tracer=MetricsTracer())
    d_u = GraphDelta(graph, [("add", 0, 10)])
    d_t = GraphDelta(graph, [("add", 0, 10)])
    r_u = untraced.apply(d_u)
    r_t = traced.apply(d_t, tracer=MetricsTracer())
    assert r_t.identity() == r_u.identity()
    assert r_t.changed_nodes == r_u.changed_nodes


# ----------------------------------------------------------------------
# The stale-cache fixture is caught by the differential harness
# ----------------------------------------------------------------------

def test_stale_cache_fixture_is_caught_by_the_harness():
    from repro.conformance.fixtures import stale_cache_incremental_engine

    caught = 0
    for graph_name in ("cycle24", "tree3d3", "star8"):
        case = Case("ball-signature", graph_name, 1, "anonymous")
        try:
            assert_delta_case_identical(
                case, engine_factory=stale_cache_incremental_engine
            )
        except AssertionError:
            caught += 1
    assert caught == 3, (
        "the stale-cache fixture must diverge from fresh recomputes on "
        "every probe graph"
    )


def test_honest_engine_passes_where_the_fixture_fails():
    for graph_name in ("cycle24", "tree3d3", "star8"):
        assert_delta_case_identical(
            Case("ball-signature", graph_name, 1, "anonymous")
        )
