"""The vectorized kernel layer is *exact* — bit for bit, errors included.

``src/repro/local_model/kernels.py`` claims that a registered kernel
(a class-table view kernel or a round-synchronous local kernel) is
indistinguishable from the reference per-node Python path except in
speed.  This suite turns that claim into properties:

* **local-kernel parity** — Cole-Vishkin, flood-leader-parity, and
  randomized weak coloring run bit-identically through the reference
  loop (``DirectEngine`` on ``layout="auto"``), the explicit
  ``layout="kernel"`` path, and the cached backend's auto-escalation,
  on hypothesis-generated frozen graphs;
* **error parity** — the kernel raises the *same* exception type and
  message as the reference loop (improper CV colors, runaway round
  budgets, malformed ``ids`` / ``inputs``);
* **stream parity** — a declined or completed kernel run leaves the
  request's master RNG in exactly the reference state, so downstream
  draws cannot depend on which path executed;
* **fallback exactness** — algorithms without a kernel, unfrozen
  graphs, and ``supports()`` declines all fall back to the reference
  loop and say so in ``SimReport.info``;
* **view-kernel parity** — class-table kernels match the dict layout
  across backends, and the per-representative fallback handles rules
  with no kernel (including non-integer outputs through
  :func:`~repro.local_model.kernels.broadcast_table`'s list path);
* **observability** — ``on_kernel`` events populate the ``kernel_*``
  metrics counters, and the sharded batch path folds worker-side
  counters into the parent via ``on_subrun`` (pooled *and* degraded);
* **multi-radius reuse** — ``node_classes_many`` partitions feed
  per-radius kernels with no stale label state between radii;
* the conformance ``broken-kernel-views`` fixture really does diverge
  (the self-test's planted bug is a live one).

The kernel-authoring contract itself is documented in
``docs/KERNELS.md``.
"""

from __future__ import annotations

import random
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.message_passing import (
    ColeVishkinMP,
    FloodLeaderParity,
    GreedySequentialColoring,
    RandomizedWeakColoring,
)
from repro.algorithms.view_rules import LocalMaximumRule, make_view_rule
from repro.core import SimRequest, simulate
from repro.core.cached import CachedEngine
from repro.core.direct import DirectEngine
from repro.core.sharded import ShardedEngine
from repro.graphs import Graph, balanced_regular_tree, cycle, path
from repro.graphs.identifiers import random_permutation_ids
from repro.instrumentation.metrics import MetricsTracer
from repro.local_model import kernels
from repro.local_model.batch_views import expander_for
from repro.local_model.edge_model import EdgeViewAlgorithm

# ----------------------------------------------------------------------
# Graph strategies (all frozen by their generators; every node has a
# neighbor, which Cole-Vishkin's successor pointers require)
# ----------------------------------------------------------------------

graphs = st.one_of(
    st.integers(3, 24).map(cycle),
    st.integers(2, 24).map(path),
    st.tuples(st.integers(2, 3), st.integers(1, 4)).map(
        lambda t: balanced_regular_tree(*t)
    ),
)


def _cv_inputs(graph):
    """Pseudoforest inputs: point at the smallest neighbor, color = v.

    Identifiers double as colors, so the initial coloring is proper
    along every edge (in particular along successor pointers).
    """
    inputs = []
    for v in graph.nodes():
        nb = list(graph.neighbors(v))
        inputs.append((nb.index(min(nb)), v))
    return inputs


def _color_bits(graph):
    return max(1, (graph.n - 1).bit_length())


def _paths(request):
    """(reference, explicit-kernel, cached-auto) reports for one request."""
    return (
        DirectEngine().run(request),
        DirectEngine().run(replace(request, layout="kernel")),
        CachedEngine().run(request),
    )


# ----------------------------------------------------------------------
# Local-kernel parity (the tentpole claim)
# ----------------------------------------------------------------------

@given(graph=graphs)
@settings(deadline=None)
def test_cole_vishkin_kernel_parity(graph):
    request = SimRequest(
        kind="local",
        graph=graph,
        algorithm=ColeVishkinMP(color_bits=_color_bits(graph)),
        inputs=_cv_inputs(graph),
        deterministic=True,
    )
    reference, kernel, auto = _paths(request)
    assert kernel.identity() == reference.identity()
    assert auto.identity() == reference.identity()
    assert kernel.info["kernel"] == "vectorized"
    assert auto.info["kernel"] == "vectorized"  # cached auto-escalates


@given(graph=graphs, seed=st.integers(0, 2**32 - 1))
@settings(deadline=None)
def test_flood_kernel_parity(graph, seed):
    request = SimRequest(
        kind="local",
        graph=graph,
        algorithm=FloodLeaderParity(),
        ids=random_permutation_ids(graph, random.Random(seed)),
        seed=seed,
    )
    reference, kernel, auto = _paths(request)
    assert kernel.identity() == reference.identity()
    assert auto.identity() == reference.identity()
    assert kernel.info["kernel"] == "vectorized"


@given(graph=graphs, seed=st.integers(0, 2**32 - 1))
@settings(deadline=None)
def test_weak_coloring_kernel_parity(graph, seed):
    """Per-node RNG streams must match the reference draw-for-draw."""
    request = SimRequest(
        kind="local",
        graph=graph,
        algorithm=RandomizedWeakColoring(),
        seed=seed,
        label=f"weak-{seed}",
    )
    reference, kernel, auto = _paths(request)
    assert kernel.identity() == reference.identity()
    assert auto.identity() == reference.identity()
    assert kernel.info["kernel"] == "vectorized"


def test_weak_coloring_kernel_handles_isolated_nodes():
    """Isolated nodes halt at round 0 and draw no colors — either path."""
    graph = Graph(5, [(0, 1), (1, 2)]).freeze()  # nodes 3, 4 isolated
    request = SimRequest(
        kind="local", graph=graph, algorithm=RandomizedWeakColoring(), seed=11
    )
    reference, kernel, _ = _paths(request)
    assert kernel.identity() == reference.identity()
    assert reference.halt_rounds[3] == 0 and reference.halt_rounds[4] == 0


# ----------------------------------------------------------------------
# Error parity: the kernel fails exactly like the reference loop
# ----------------------------------------------------------------------

def _both_raise(request, exc_type):
    """Run reference and kernel paths; return the two exception strings."""
    messages = []
    for layout in ("auto", "kernel"):
        with pytest.raises(exc_type) as info:
            DirectEngine().run(replace(request, layout=layout))
        messages.append(str(info.value))
    return messages


def test_cv_improper_coloring_error_parity():
    graph = cycle(4)
    request = SimRequest(
        kind="local",
        graph=graph,
        algorithm=ColeVishkinMP(color_bits=3),
        inputs=[(0, 5)] * 4,  # every node colored 5: improper everywhere
        deterministic=True,
    )
    reference_msg, kernel_msg = _both_raise(request, ValueError)
    assert kernel_msg == reference_msg
    assert "distinct colors" in reference_msg


def test_runaway_round_budget_error_parity():
    graph = cycle(10)
    request = SimRequest(
        kind="local",
        graph=graph,
        algorithm=FloodLeaderParity(),
        ids=list(range(10)),
        max_rounds=3,  # flood needs n rounds; 3 is a runaway budget
    )
    reference_msg, kernel_msg = _both_raise(request, RuntimeError)
    assert kernel_msg == reference_msg
    assert "still running after 3 rounds" in reference_msg


@pytest.mark.parametrize("field", ["ids", "inputs"])
def test_label_length_error_parity(field):
    graph = cycle(6)
    values = {
        "ids": {"ids": [1, 2, 3]},
        "inputs": {"inputs": [(0, 1)] * 7},
    }[field]
    request = SimRequest(
        kind="local",
        graph=graph,
        algorithm=FloodLeaderParity() if field == "ids" else ColeVishkinMP(3),
        **values,
    )
    reference_msg, kernel_msg = _both_raise(request, ValueError)
    assert kernel_msg == reference_msg
    assert f"{field} must have one entry per node" in reference_msg


# ----------------------------------------------------------------------
# Stream parity + fallback semantics
# ----------------------------------------------------------------------

def test_kernel_run_preserves_master_rng_stream():
    """After a run, the master RNG sits at the same point on both paths."""
    tails = []
    for layout in ("auto", "kernel"):
        rng = random.Random(1234)
        DirectEngine().run(
            SimRequest(
                kind="local",
                graph=cycle(9),
                algorithm=RandomizedWeakColoring(),
                rng=rng,
                layout=layout,
            )
        )
        tails.append(rng.random())
    assert tails[0] == tails[1]


def test_declined_kernel_preserves_master_rng_stream():
    """A ``supports()`` decline happens before any master-RNG draw."""
    from repro.graphs.orientation import orient_tree

    graph = path(8)
    tails = []
    for layout in ("auto", "kernel"):
        rng = random.Random(77)
        report = DirectEngine().run(
            SimRequest(
                kind="local",
                graph=graph,
                algorithm=RandomizedWeakColoring(),
                rng=rng,
                layout=layout,
                # Weak coloring's kernel refuses oriented runs, which
                # the reference loop allows: a guaranteed decline.
                orientation=orient_tree(graph, 1),
            )
        )
        if layout == "kernel":
            assert report.info["kernel"] == "fallback"
            assert "orientation" in report.info["kernel_reason"]
        tails.append(rng.random())
    assert tails[0] == tails[1]


def test_no_kernel_algorithm_falls_back_identically():
    # Greedy coloring registers no round kernel (LubyMIS now does).
    request = SimRequest(
        kind="local", graph=cycle(12), algorithm=GreedySequentialColoring(),
        ids=list(range(12)), seed=3
    )
    reference = DirectEngine().run(request)
    kernel = DirectEngine().run(replace(request, layout="kernel"))
    assert kernel.identity() == reference.identity()
    assert kernel.info["kernel"] == "fallback"
    assert kernel.info["kernel_reason"] == "no-kernel"
    assert "kernel" not in reference.info  # no kernel wanted: clean info


def test_unfrozen_graph_falls_back_identically():
    graph = Graph(6, [(i, (i + 1) % 6) for i in range(6)])  # not frozen
    request = SimRequest(
        kind="local",
        graph=graph,
        algorithm=FloodLeaderParity(),
        ids=[5, 3, 1, 0, 2, 4],
    )
    reference = DirectEngine().run(request)
    kernel = DirectEngine().run(replace(request, layout="kernel"))
    assert kernel.identity() == reference.identity()
    assert kernel.info["kernel"] == "fallback"
    assert "not frozen" in kernel.info["kernel_reason"]


def test_direct_auto_never_escalates():
    """Auto-escalation is the memoizing backends' move; direct stays put."""
    request = SimRequest(
        kind="local",
        graph=cycle(8),
        algorithm=FloodLeaderParity(),
        ids=list(range(8)),
    )
    report = DirectEngine().run(request)
    assert "kernel" not in report.info


# ----------------------------------------------------------------------
# View kernels: class-table apply + fallback
# ----------------------------------------------------------------------

@pytest.mark.parametrize("rule_name,labeling", [
    ("local-max", "ids"),
    ("random-priority", "random"),
])
@pytest.mark.parametrize("radius", [1, 2])
def test_view_kernel_matches_dict_layout(rule_name, labeling, radius):
    rng = random.Random(radius * 101 + len(rule_name))
    for graph in (cycle(17), path(12), balanced_regular_tree(3, 3)):
        rule = make_view_rule(rule_name, radius=radius)
        labels = {
            "ids": {"ids": random_permutation_ids(graph, rng)},
            "random": {"randomness": [rng.getrandbits(12) for _ in graph.nodes()]},
        }[labeling]
        request = SimRequest(kind="view", graph=graph, algorithm=rule, **labels)
        reference = simulate(replace(request, layout="dict"))
        for backend in ("direct", "cached", "sharded"):
            report = simulate(replace(request, layout="kernel"), engine=backend)
            assert report.identity() == reference.identity(), (
                f"{rule_name}-r{radius} diverges on {backend}/kernel"
            )
            assert report.info["kernel"] == "vectorized"


def test_view_kernel_fallback_handles_non_integer_outputs():
    """No kernel registered + tuple outputs: the per-rep fallback path."""
    graph = balanced_regular_tree(3, 3)
    rule = make_view_rule("ball-signature", radius=2)
    request = SimRequest(kind="view", graph=graph, algorithm=rule)
    reference = simulate(replace(request, layout="dict"))
    report = simulate(replace(request, layout="kernel"))
    assert report.identity() == reference.identity()
    assert report.info["kernel"] == "fallback"


def test_edge_kernel_layout_matches_dict_layout():
    graph = cycle(14)
    randomness = [random.Random(9).getrandbits(12) for _ in graph.nodes()]
    algorithm = EdgeViewAlgorithm(2, _edge_ball_size, name="edge-ball-size")
    request = SimRequest(
        kind="edge", graph=graph, algorithm=algorithm, randomness=randomness
    )
    reference = simulate(replace(request, layout="dict"))
    for backend in ("direct", "cached"):
        report = simulate(replace(request, layout="kernel"), engine=backend)
        assert report.identity() == reference.identity()


def _edge_ball_size(view):
    return (view.node_count, len(view.edges))


# ----------------------------------------------------------------------
# PackedRows / broadcast_table units
# ----------------------------------------------------------------------

def test_packed_rows_declines_python_path_partitions():
    graph = cycle(6)
    part = expander_for(graph, "csr").node_classes(1, inputs=["a"] * 6)
    assert part.path == "python"
    with pytest.raises(kernels.KernelUnsupported):
        kernels.PackedRows.from_partition(part)


def test_packed_rows_columns_match_graph_structure():
    graph = path(5)
    ids = [40, 10, 30, 20, 50]
    part = expander_for(graph, "csr").node_classes(1, ids=ids)
    rows = kernels.PackedRows.from_partition(part)
    assert rows.count == part.class_count
    centers = rows.center("ids")
    maxima = rows.segment_max("ids")
    for c, rep in enumerate(part.reps):
        ball = {rep} | set(graph.neighbors(rep))
        assert centers[c] == ids[rep]
        assert maxima[c] == max(ids[v] for v in ball)


def test_packed_rows_missing_slot_raises():
    graph = cycle(5)
    part = expander_for(graph, "csr").node_classes(1, ids=list(range(5)))
    rows = kernels.PackedRows.from_partition(part)
    with pytest.raises(kernels.KernelUnsupported, match="randomness"):
        rows.segment_max("randomness")


def test_broadcast_table_integer_and_object_paths():
    assert kernels.broadcast_table([7, 9], [0, 1, 1, 0]) == [7, 9, 9, 7]
    assert kernels.broadcast_table(["a", "b"], [1, 0]) == ["b", "a"]
    big = 2**80  # overflows int64: must take the list path
    assert kernels.broadcast_table([big], [0, 0]) == [big, big]
    assert kernels.broadcast_table([], []) == []


# ----------------------------------------------------------------------
# Observability: on_kernel events -> kernel_* counters
# ----------------------------------------------------------------------

def test_view_kernel_metrics_counters():
    graph = cycle(12)
    tracer = MetricsTracer()
    report = simulate(
        SimRequest(
            kind="view",
            graph=graph,
            algorithm=make_view_rule("local-max", radius=1),
            ids=list(range(12)),
            layout="kernel",
        ),
        engine="cached",
        tracer=tracer,
    )
    m = tracer.metrics
    assert m.layout_kernel_runs == 1
    assert m.kernel_runs == 1
    assert m.kernel_vectorized == 1
    assert m.kernel_fallbacks == 0
    assert m.kernel_entities == graph.n
    assert m.kernel_classes == report.info["distinct_classes"]


def test_local_kernel_metrics_counters():
    tracer = MetricsTracer()
    CachedEngine().run(
        SimRequest(
            kind="local",
            graph=cycle(10),
            algorithm=RandomizedWeakColoring(),
            seed=4,
        ),
        tracer=tracer,
    )
    m = tracer.metrics
    assert m.kernel_runs == 1
    assert m.kernel_vectorized == 1
    assert m.kernel_entities == 10


def test_kernel_fallback_metrics_counters():
    tracer = MetricsTracer()
    simulate(
        SimRequest(
            kind="view",
            graph=cycle(8),
            algorithm=make_view_rule("ball-signature", radius=1),
            layout="kernel",
        ),
        tracer=tracer,
    )
    m = tracer.metrics
    assert m.kernel_runs == 1
    assert m.kernel_fallbacks == 1
    assert m.kernel_vectorized == 0


# ----------------------------------------------------------------------
# Sharded batches fold worker-side metrics into the parent (the
# regression: workers used to run untraced, so the parent read zeros)
# ----------------------------------------------------------------------

def _batch_requests(n_requests=3):
    graph = cycle(16)
    return [
        SimRequest(
            kind="view",
            graph=graph,
            algorithm=make_view_rule("local-max", radius=1),
            ids=list(range(16)),
            label=f"batch-{i}",
        )
        for i in range(n_requests)
    ]


def test_sharded_run_many_folds_worker_metrics():
    engine = ShardedEngine(shards=2, inner="cached")
    try:
        tracer = MetricsTracer()
        reports = engine.run_many(_batch_requests(3), tracer=tracer)
    finally:
        engine.close()
    assert len(reports) == 3
    m = tracer.metrics
    assert m.subruns == 3
    # Cache activity happened inside workers; folding makes it visible.
    assert m.cache_lookups == 3 * 16
    assert m.cache_hits > 0


def test_sharded_run_many_degraded_path_folds_metrics():
    """Unpicklable payloads force the in-process path; same contract."""
    graph = cycle(10)
    randomness = [3] * 10
    requests = [
        SimRequest(
            kind="edge",
            graph=graph,
            # A lambda cannot cross a process boundary: degrade.
            algorithm=EdgeViewAlgorithm(1, lambda view: view.node_count),
            randomness=randomness,
            label=f"deg-{i}",
        )
        for i in range(3)
    ]
    engine = ShardedEngine(shards=2, inner="cached")
    try:
        tracer = MetricsTracer()
        reports = engine.run_many(requests, tracer=tracer)
    finally:
        engine.close()
    assert all("degraded" in r.info for r in reports)
    m = tracer.metrics
    assert m.subruns == 3
    assert m.degradations >= 1
    assert m.cache_lookups == 3 * 10


# ----------------------------------------------------------------------
# Multi-radius reuse: shared-BFS partitions feed per-radius kernels
# ----------------------------------------------------------------------

def test_node_classes_many_feeds_per_radius_kernels():
    graph = balanced_regular_tree(3, 3)
    ids = random_permutation_ids(graph, random.Random(7))
    radii = (1, 2, 3)
    parts = expander_for(graph, "kernel").node_classes_many(radii, ids=ids)
    # Apply kernels out of order: radius-3 state must not leak into 1.
    for i in (2, 0, 1):
        radius, part = radii[i], parts[i]
        table = kernels.run_view_kernel(LocalMaximumRule(radius=radius), part)
        outputs = kernels.broadcast_table(table, part.labels)
        reference = simulate(
            SimRequest(
                kind="view",
                graph=graph,
                algorithm=LocalMaximumRule(radius=radius),
                ids=ids,
                layout="dict",
            )
        )
        assert outputs == reference.outputs, f"radius {radius} diverges"


# ----------------------------------------------------------------------
# The conformance fixture's planted kernel really is broken
# ----------------------------------------------------------------------

def test_broken_kernel_fixture_diverges_from_reference():
    from repro.conformance.fixtures import (
        _make_broken_kernel,
        register_broken_kernel_fixture,
    )

    register_broken_kernel_fixture()  # idempotent
    request = SimRequest(
        kind="view",
        graph=cycle(8),
        algorithm=_make_broken_kernel(),
        ids=list(range(8)),
    )
    honest = simulate(replace(request, layout="dict"))
    planted = simulate(replace(request, layout="kernel"))
    assert planted.outputs == [1 - out for out in honest.outputs]
    # ...while the parent rule's kernel stays honest (MRO shadowing).
    parent = SimRequest(
        kind="view",
        graph=cycle(8),
        algorithm=LocalMaximumRule(radius=1),
        ids=list(range(8)),
    )
    assert (
        simulate(replace(parent, layout="kernel")).outputs
        == simulate(replace(parent, layout="dict")).outputs
    )
