"""Property-based proof obligations for the canonical view signature.

The view cache is exact only if :func:`view_signature` is a *perfect*
canonical key: two nodes share a signature **iff** their radius-t balls
are genuinely indistinguishable in the LOCAL model.  Hypothesis drives
three independent checks over random graph corpora:

* the signature partition coincides with the :meth:`View.key` partition
  (both directions — no false merges, no false splits);
* the signature partition coincides with an *independent* decision
  procedure: a forced port-walk isomorphism test that never looks at
  either encoding (``views_indistinguishable`` below);
* signatures are invariant under graph relabeling (a node's signature
  depends only on what it can see, never on vertex numbering), and
  distinct view classes never collide even across different graphs.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphs import Graph, random_regular_graph, random_tree
from repro.local_model import gather_view, view_signature
from repro.local_model.views import View

DEFAULT_SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# ----------------------------------------------------------------------
# An independent oracle: forced port-walk isomorphism
# ----------------------------------------------------------------------

def views_indistinguishable(va: View, vb: View) -> bool:
    """Decide indistinguishability without consulting either encoding.

    Anonymous nodes explore deterministically by port order, so any
    isomorphism between two balls is *forced*: map center to center,
    then propagate along matching ports.  The views are
    indistinguishable iff the propagation closes into a bijection that
    preserves ports, distances, degrees, orientation labels, and every
    labeling.  This shares no code with ``view_signature`` or
    ``View.key`` — it is the ground-truth definition made executable.
    """
    if va.radius != vb.radius or va.node_count != vb.node_count:
        return False
    for la, lb in (
        (va.identifiers, vb.identifiers),
        (va.inputs, vb.inputs),
        (va.randomness, vb.randomness),
    ):
        if (la is None) != (lb is None):
            return False

    mapping = {va.center: vb.center}
    queue = [(va.center, vb.center)]
    while queue:
        a, b = queue.pop()
        if va.degrees[a] != vb.degrees[b] or va.distances[a] != vb.distances[b]:
            return False
        for la, lb in (
            (va.identifiers, vb.identifiers),
            (va.inputs, vb.inputs),
            (va.randomness, vb.randomness),
        ):
            if la is not None and la[a] != lb[b]:
                return False
        nbrs_a = {pa: (j, pj, d) for j, pa, pj, d in va.local_neighbors(a)}
        nbrs_b = {pb: (j, pj, d) for j, pb, pj, d in vb.local_neighbors(b)}
        if set(nbrs_a) != set(nbrs_b):
            return False  # different ports lead inside the ball
        for port, (ja, pja, da) in nbrs_a.items():
            jb, pjb, db = nbrs_b[port]
            if pja != pjb or da != db:
                return False
            if ja in mapping:
                if mapping[ja] != jb:
                    return False
            else:
                mapping[ja] = jb
                queue.append((ja, jb))
    return (
        len(mapping) == va.node_count
        and len(set(mapping.values())) == va.node_count
    )


# ----------------------------------------------------------------------
# Corpus strategies
# ----------------------------------------------------------------------

@st.composite
def labeled_graph(draw, min_nodes=4, max_nodes=28):
    """A random tree or 4-regular graph plus optional labelings."""
    n = draw(st.integers(min_nodes, max_nodes))
    seed = draw(st.integers(0, 2**32 - 1))
    kind = draw(st.sampled_from(["tree", "regular"]))
    if kind == "tree":
        graph = random_tree(n, random.Random(seed))
    else:
        if (n * 4) % 2:
            n += 1
        graph = random_regular_graph(max(n, 6), 4, rng=random.Random(seed))
    rng = random.Random(seed ^ 0x5EED)
    ids = None
    if draw(st.booleans()):
        ids = list(range(1, graph.n + 1))
        rng.shuffle(ids)
    randomness = None
    if draw(st.booleans()):
        # A tiny value space on purpose: collisions force shared classes.
        randomness = [rng.randrange(3) for _ in range(graph.n)]
    radius = draw(st.integers(0, 3))
    return graph, ids, randomness, radius


def _signatures_and_views(graph, ids, randomness, radius):
    sigs, views = [], []
    for v in graph.nodes():
        sigs.append(
            view_signature(graph, v, radius, ids=ids, randomness=randomness)
        )
        views.append(
            gather_view(graph, v, radius, ids=ids, randomness=randomness)
        )
    return sigs, views


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------

class TestSignatureIsPerfectKey:
    @DEFAULT_SETTINGS
    @given(labeled_graph())
    def test_signature_partition_equals_key_partition(self, data):
        graph, ids, randomness, radius = data
        sigs, views = _signatures_and_views(graph, ids, randomness, radius)
        keys = [view.key() for view in views]
        for v in graph.nodes():
            for u in graph.nodes():
                assert (sigs[u] == sigs[v]) == (keys[u] == keys[v]), (
                    f"nodes {u},{v} at radius {radius}: signature and "
                    f"View.key partition the ball classes differently"
                )

    @DEFAULT_SETTINGS
    @given(labeled_graph(max_nodes=18))
    def test_signature_agrees_with_port_walk_oracle(self, data):
        graph, ids, randomness, radius = data
        sigs, views = _signatures_and_views(graph, ids, randomness, radius)
        for v in graph.nodes():
            for u in graph.nodes():
                assert (sigs[u] == sigs[v]) == views_indistinguishable(
                    views[u], views[v]
                ), (
                    f"nodes {u},{v} at radius {radius}: signature disagrees "
                    f"with the independent isomorphism decision"
                )


class TestRelabelingInvariance:
    @DEFAULT_SETTINGS
    @given(labeled_graph(), st.integers(0, 2**32 - 1))
    def test_signature_survives_vertex_renumbering(self, data, perm_seed):
        graph, ids, randomness, radius = data
        perm = list(graph.nodes())
        random.Random(perm_seed).shuffle(perm)  # perm[v] = new name of v
        adjacency = [[] for _ in range(graph.n)]
        for v in graph.nodes():
            adjacency[perm[v]] = [perm[u] for u in graph.adjacency_rows()[v]]
        relabeled = Graph.from_adjacency(adjacency).freeze()
        new_ids = new_rand = None
        if ids is not None:
            new_ids = [0] * graph.n
            for v in graph.nodes():
                new_ids[perm[v]] = ids[v]
        if randomness is not None:
            new_rand = [0] * graph.n
            for v in graph.nodes():
                new_rand[perm[v]] = randomness[v]
        for v in graph.nodes():
            assert view_signature(
                graph, v, radius, ids=ids, randomness=randomness
            ) == view_signature(
                relabeled, perm[v], radius, ids=new_ids, randomness=new_rand
            ), f"signature of node {v} changed under renumbering"


class TestNoCrossGraphCollisions:
    @DEFAULT_SETTINGS
    @given(st.lists(labeled_graph(max_nodes=16), min_size=2, max_size=4))
    def test_signature_key_bijection_across_corpus(self, corpus):
        # One global map signature -> key over every node of every graph:
        # a signature may never stand for two different view classes,
        # and a view class may never acquire two signatures.
        sig_to_key = {}
        key_to_sig = {}
        for graph, ids, randomness, radius in corpus:
            sigs, views = _signatures_and_views(graph, ids, randomness, radius)
            for sig, view in zip(sigs, views):
                key = view.key()
                assert sig_to_key.setdefault(sig, key) == key, (
                    "signature collision: one signature, two view classes"
                )
                assert key_to_sig.setdefault(key, sig) == sig, (
                    "signature split: one view class, two signatures"
                )
