"""Integration tests: cross-module stories the paper tells end to end."""

import random
from fractions import Fraction

from repro.algorithms import (
    odd_degree_weak_two_coloring,
    solve_all_pstar,
    solve_pstar,
    weak_two_coloring_from_ids,
    weak_two_coloring_from_weak_coloring,
)
from repro.analysis import (
    claim10_set_size_bound,
    independent_execution_set,
    lemma9_evaluate,
    tower,
    zero_round_optimal_failure,
)
from repro.experiments import plant_distance_k_weak_coloring
from repro.graphs import (
    balanced_regular_tree,
    lemma18_pair,
    orient_tree,
    random_permutation_ids,
    random_regular_high_girth,
    sequential_ids,
)
from repro.lcl import (
    HomogeneousLCL,
    PStar,
    WeakColoring,
)
from repro.local_model import gather_view
from repro.speedup import (
    local_maximum_coloring,
    node_local_failure,
    run_speedup_pipeline,
    zero_round_uniform,
)


class TestMinimalityStory:
    """Section 3: any nontrivial homogeneous output weakly 2-colors."""

    def test_any_planted_weak_coloring_reduces(self):
        # Whatever (k, c) a hypothetical fast algorithm produced, Lemma 2
        # turns it into a weak 2-coloring in rounds independent of n.
        rng = random.Random(0)
        rounds_by_params = {}
        for k, c in ((1, 2), (2, 3), (3, 5)):
            rounds = set()
            for depth in (3, 4, 5):
                tree = balanced_regular_tree(4, depth)
                phi = plant_distance_k_weak_coloring(tree, k, c, rng)
                out = weak_two_coloring_from_weak_coloring(tree, phi, k=k, c=c)
                assert WeakColoring(2).is_feasible(tree, out.labels)
                rounds.add(out.rounds)
            rounds_by_params[(k, c)] = rounds
            assert len(rounds) == 1  # constant in n for each (k, c)

    def test_high_girth_graphs_also_work(self):
        g = random_regular_high_girth(60, 3, girth_at_least=5, rng=random.Random(2))
        out = weak_two_coloring_from_ids(g, sequential_ids(g))
        assert WeakColoring(2).is_feasible(g, out.labels)


class TestOddEvenDichotomy:
    """Table 1 rows 3-4: odd degree is constant, even degree is not."""

    def test_odd_constant_even_growing_with_id_space(self):
        odd_rounds = set()
        for depth in (2, 3, 4):
            tree = balanced_regular_tree(3, depth)
            out = odd_degree_weak_two_coloring(tree, sequential_ids(tree))
            odd_rounds.add(out.rounds)
        assert len(odd_rounds) == 1

        # Even-degree pipeline rounds grow with the identifier space
        # (the log* mechanism); the odd pipeline would not change.
        tree = balanced_regular_tree(4, 3)
        small = weak_two_coloring_from_ids(
            tree, sequential_ids(tree), id_space=tree.n**2
        ).rounds
        rng = random.Random(1)
        big_ids = sorted(rng.sample(range(1, 1 << 40), tree.n))
        big = weak_two_coloring_from_ids(tree, big_ids, id_space=1 << 40).rounds
        assert big >= small


class TestHomogeneousUpperBounds:
    """Theorem 5's universal O(log n) fallback, across inner problems."""

    def test_all_pstar_solution_serves_every_verifier(self):
        tree = balanced_regular_tree(4, 4)
        sol = solve_all_pstar(tree, 4, sequential_ids(tree))
        for inner in (WeakColoring(2), WeakColoring(3, distance=2)):
            assert HomogeneousLCL(inner, 4).is_feasible(tree, sol.labels)


class TestLowerBoundStory:
    """Sections 4-7 assembled: speedup + amplification + calibration."""

    def test_speedup_then_zero_round_floor(self):
        # Run the pipeline to 0 rounds; the endpoint's failure cannot be
        # below the uniform floor over its achievable palette — the
        # anchor Claim 12 drives the contradiction with.
        seed = local_maximum_coloring(2, bits=1)
        result = run_speedup_pipeline(seed, method="exact")
        final_failure = result.final_failure()
        # Uniform floor over even the *nominal* palette is tiny, so the
        # informative check is achievability-based; at minimum, the
        # failure must be positive: 0-round algorithms cannot win.
        assert final_failure > 0
        assert result.all_bounds_hold()

    def test_uniform_zero_round_matches_claim12_floor(self):
        for c in (2, 4):
            alg = zero_round_uniform(2, c)
            measured = node_local_failure(alg, method="exact")
            assert measured.probability == Fraction(1, c**4)
            assert float(measured.probability) == zero_round_optimal_failure(c, 4)

    def test_claim10_set_inside_real_tree(self):
        tree = balanced_regular_tree(4, 9)
        orientation = orient_tree(tree, 2)
        result = independent_execution_set(
            tree, orientation, 0, t=1, ball_radius=8, seed_radius=2, verify=True
        )
        effective_n = len(tree.ball(0, 8)) ** 3
        assert result.size >= claim10_set_size_bound(effective_n, 1)

    def test_theorem13_regime(self):
        assert lemma9_evaluate(tower(12), b=1).below_half
        assert lemma9_evaluate(tower(6), b=1).below_half is None


class TestTheorem4Story:
    """P* upper/lower bounds interlock."""

    def test_solver_radius_grows_while_views_pin_lower_bound(self):
        radii = []
        for depth in (3, 4, 5):
            tree = balanced_regular_tree(4, depth)
            sol = solve_pstar(tree, 4, sequential_ids(tree))
            assert not PStar(4).verify(tree, sol.labels)
            radii.append(sol.radius)
        assert radii == sorted(radii) and radii[-1] > radii[0]

        t, t_prime, center = lemma18_pair(4, 5)
        # Any algorithm faster than depth-1 sees identical views...
        assert gather_view(t, center, 3).key() == gather_view(t_prime, center, 3).key()
        # ...but the chains force different d values on the two inputs:
        # T ends at leaves (degree 1), T' at degree-3 nodes.
        sol_t = solve_pstar(t, 4, sequential_ids(t))
        sol_tp = solve_pstar(t_prime, 4, sequential_ids(t_prime))
        assert sol_t.labels[center].d != sol_tp.labels[center].d
