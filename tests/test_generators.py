"""Unit tests for graph generators."""

import random

import pytest

from repro.graphs import (
    balanced_regular_tree,
    balanced_regular_tree_size,
    caterpillar,
    complete_graph,
    cycle,
    hypercube,
    lemma18_pair,
    path,
    random_regular_graph,
    random_regular_high_girth,
    random_tree,
    regular_tree_of_depth_at_least,
    star,
    toroidal_grid,
)
from repro.local_model import gather_view


class TestBasicFamilies:
    def test_path(self):
        g = path(6)
        assert g.n == 6 and g.m == 5 and g.is_tree()
        assert path(1).n == 1
        with pytest.raises(ValueError):
            path(0)

    def test_cycle(self):
        g = cycle(7)
        assert g.is_regular(2) and g.girth() == 7
        with pytest.raises(ValueError):
            cycle(2)

    def test_star(self):
        g = star(5)
        assert g.degree(0) == 5
        assert all(g.degree(v) == 1 for v in range(1, 6))

    def test_complete_graph(self):
        g = complete_graph(5)
        assert g.m == 10 and g.is_regular(4)

    def test_caterpillar(self):
        g = caterpillar(4, 2)
        assert g.n == 12
        assert g.degree(0) == 3  # spine end: 1 spine + 2 legs
        assert g.degree(1) == 4  # interior: 2 spine + 2 legs
        assert g.is_tree()

    def test_hypercube(self):
        g = hypercube(4)
        assert g.n == 16 and g.is_regular(4) and g.girth() == 4


class TestBalancedTrees:
    def test_size_formula_matches_construction(self):
        for delta in (3, 4, 6):
            for depth in range(0, 5):
                g = balanced_regular_tree(delta, depth)
                assert g.n == balanced_regular_tree_size(delta, depth)

    def test_degree_2_is_a_path(self):
        g = balanced_regular_tree(2, 4)
        assert g.n == 9
        assert sorted(g.degree(v) for v in g.nodes()).count(2) == 7

    def test_interior_degrees(self):
        g = balanced_regular_tree(4, 3)
        dist = g.bfs_distances(0)
        for v in g.nodes():
            if dist[v] < 3:
                assert g.degree(v) == 4
            else:
                assert g.degree(v) == 1

    def test_root_eccentricity_is_depth(self):
        for depth in (1, 2, 3):
            assert balanced_regular_tree(3, depth).eccentricity(0) == depth

    def test_depth_zero(self):
        assert balanced_regular_tree(5, 0).n == 1

    def test_regular_tree_of_depth_at_least(self):
        g, depth = regular_tree_of_depth_at_least(4, 100)
        assert g.n >= 100
        smaller = balanced_regular_tree_size(4, depth - 1)
        assert smaller < 100

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            balanced_regular_tree(1, 2)
        with pytest.raises(ValueError):
            balanced_regular_tree(3, -1)


class TestTorus:
    def test_torus_is_4_regular_leafless(self):
        g = toroidal_grid(4, 5)
        assert g.n == 20 and g.is_regular(4)

    def test_torus_edge_count(self):
        g = toroidal_grid(3, 3)
        assert g.m == 2 * 9

    def test_torus_rejects_thin_dimensions(self):
        with pytest.raises(ValueError):
            toroidal_grid(2, 5)


class TestRandomFamilies:
    def test_random_regular_graph_is_regular(self):
        rng = random.Random(0)
        for d in (2, 3, 4):
            g = random_regular_graph(24, d, rng=rng)
            assert g.is_regular(d)

    def test_random_regular_parity_check(self):
        with pytest.raises(ValueError, match="even"):
            random_regular_graph(5, 3)

    def test_random_regular_degree_too_big(self):
        with pytest.raises(ValueError):
            random_regular_graph(4, 4)

    def test_random_regular_deterministic_given_seed(self):
        a = random_regular_graph(20, 3, rng=random.Random(7))
        b = random_regular_graph(20, 3, rng=random.Random(7))
        assert a == b

    def test_high_girth(self):
        g = random_regular_high_girth(60, 3, girth_at_least=5, rng=random.Random(1))
        assert g.is_regular(3)
        girth = g.girth()
        assert girth is None or girth >= 5

    def test_random_tree_is_tree(self):
        for n in (1, 2, 3, 10, 40):
            assert random_tree(n, random.Random(n)).is_tree()

    def test_random_tree_deterministic(self):
        assert random_tree(15, random.Random(3)) == random_tree(15, random.Random(3))


class TestLemma18Pair:
    def test_same_size(self):
        t, t_prime, center = lemma18_pair(4, 3)
        assert t.n == t_prime.n
        assert center == 0

    def test_t_prime_has_degree_delta_minus_1_ring(self):
        delta, depth = 4, 3
        t, t_prime, _ = lemma18_pair(delta, depth)
        dist = t.bfs_distances(0)
        for v in t.nodes():
            if dist[v] == depth - 1:
                assert t_prime.degree(v) == delta - 1

    def test_views_indistinguishable_up_to_depth_minus_2(self):
        t, t_prime, c = lemma18_pair(4, 4)
        for radius in range(0, 3):  # 0 .. depth-2
            assert gather_view(t, c, radius).key() == gather_view(t_prime, c, radius).key()

    def test_views_distinguishable_at_depth_minus_1(self):
        t, t_prime, c = lemma18_pair(4, 4)
        assert gather_view(t, c, 3).key() != gather_view(t_prime, c, 3).key()

    def test_minimum_depth_enforced(self):
        with pytest.raises(ValueError):
            lemma18_pair(4, 1)
        with pytest.raises(ValueError):
            lemma18_pair(2, 3)

    def test_delta_3(self):
        t, t_prime, _ = lemma18_pair(3, 3)
        assert t.n == t_prime.n
        assert gather_view(t, 0, 1).key() == gather_view(t_prime, 0, 1).key()
