"""Tests for homogeneous LCLs (Section 3.2) and their solvers."""

import pytest

from repro.algorithms import (
    solve_all_pstar,
    solve_weak2_homogeneous,
    solve_with_constant_label,
)
from repro.graphs import (
    balanced_regular_tree,
    caterpillar,
    sequential_ids,
    star,
    toroidal_grid,
)
from repro.lcl import (
    AlwaysAccept,
    HomogeneousLCL,
    HomogeneousLabel,
    PStarLabel,
    WeakColoring,
)


class TestHomogeneousLabel:
    def test_exactly_one_part(self):
        with pytest.raises(ValueError):
            HomogeneousLabel()
        with pytest.raises(ValueError):
            HomogeneousLabel(p_label=1, pstar_label=PStarLabel(0, None))

    def test_constructors(self):
        a = HomogeneousLabel.solve_p("x")
        assert a.p_label == "x" and a.pstar_label is None
        b = HomogeneousLabel.solve_pstar(PStarLabel(1, None))
        assert b.p_label is None and b.pstar_label is not None


class TestHomogeneousVerifier:
    def test_pstar_branch_checked(self):
        g = star(4)
        h = HomogeneousLCL(AlwaysAccept(), 4)
        labels = [HomogeneousLabel.solve_pstar(PStarLabel(1, 1))] + [
            HomogeneousLabel.solve_pstar(PStarLabel(1, None)) for _ in range(4)
        ]
        assert h.is_feasible(g, labels)

    def test_pstar_branch_violation_reported(self):
        g = star(4)
        h = HomogeneousLCL(AlwaysAccept(), 4)
        labels = [HomogeneousLabel.solve_pstar(PStarLabel(0, None))] + [
            HomogeneousLabel.solve_pstar(PStarLabel(1, None)) for _ in range(4)
        ]
        violations = h.verify(g, labels)
        assert any("P* branch" in v.reason for v in violations)

    def test_p_branch_checked(self):
        g = star(4)
        h = HomogeneousLCL(WeakColoring(2), 4)
        labels = [HomogeneousLabel.solve_p(0)] + [
            HomogeneousLabel.solve_p(1) for _ in range(4)
        ]
        assert h.is_feasible(g, labels)

    def test_p_branch_cannot_lean_on_pstar_nodes(self):
        # A P-labeled node whose only neighbors chose P* has no weakly
        # colored partner: the chain-termination mechanism of Section 3.2.
        g = star(4)
        h = HomogeneousLCL(WeakColoring(2), 4)
        labels = [HomogeneousLabel.solve_p(0)] + [
            HomogeneousLabel.solve_pstar(PStarLabel(1, None)) for _ in range(4)
        ]
        violations = h.verify(g, labels)
        assert any("P branch" in v.reason and v.where == 0 for v in violations)

    def test_unlabeled_node_fails(self):
        g = star(3)
        h = HomogeneousLCL(AlwaysAccept(), 4)
        labels = [None] * 4
        assert len(h.verify(g, labels)) == 4

    def test_foreign_label_type_rejected(self):
        g = star(3)
        h = HomogeneousLCL(AlwaysAccept(), 4)
        with pytest.raises(TypeError):
            h.verify(g, ["plain string"] * 4)

    def test_delta_minimum(self):
        with pytest.raises(ValueError):
            HomogeneousLCL(AlwaysAccept(), 2)


class TestHomogeneousSolvers:
    def test_constant_label_solver_on_trees(self):
        g = balanced_regular_tree(4, 4)
        h = HomogeneousLCL(AlwaysAccept(), 4)
        sol = solve_with_constant_label(g, 4, "c", radius=2, ids=sequential_ids(g))
        assert h.is_feasible(g, sol.labels)
        assert sol.rounds == 4  # 2 * radius

    def test_constant_label_rounds_independent_of_n(self):
        rounds = set()
        for depth in (2, 3, 4, 5):
            g = balanced_regular_tree(4, depth)
            sol = solve_with_constant_label(g, 4, "c", radius=1, ids=sequential_ids(g))
            rounds.add(sol.rounds)
        assert len(rounds) == 1

    def test_constant_label_mixes_p_and_pstar(self):
        g = balanced_regular_tree(4, 4)
        sol = solve_with_constant_label(g, 4, "c", radius=1, ids=sequential_ids(g))
        kinds = {label.pstar_label is not None for label in sol.labels}
        assert kinds == {True, False}  # interior plays P, boundary plays P*

    def test_weak2_homogeneous_on_trees(self):
        g = balanced_regular_tree(4, 3)
        h = HomogeneousLCL(WeakColoring(2), 4)
        sol = solve_weak2_homogeneous(g, sequential_ids(g))
        assert h.is_feasible(g, sol.labels)

    def test_all_pstar_satisfies_any_inner_problem(self):
        g = balanced_regular_tree(4, 3)
        sol = solve_all_pstar(g, 4, sequential_ids(g))
        for inner in (AlwaysAccept(), WeakColoring(2), WeakColoring(7)):
            h = HomogeneousLCL(inner, 4)
            assert h.is_feasible(g, sol.labels)

    def test_all_pstar_on_torus(self):
        g = toroidal_grid(4, 5)
        sol = solve_all_pstar(g, 4, sequential_ids(g))
        h = HomogeneousLCL(AlwaysAccept(), 4)
        assert h.is_feasible(g, sol.labels)

    def test_all_pstar_on_caterpillar(self):
        g = caterpillar(6, 2)
        sol = solve_all_pstar(g, 4, sequential_ids(g))
        h = HomogeneousLCL(AlwaysAccept(), 4)
        assert h.is_feasible(g, sol.labels)
