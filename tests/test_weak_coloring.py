"""Tests for the Lemma 2 pipeline (weak coloring reductions)."""

import random

import pytest

from repro.algorithms import (
    BLACK,
    WHITE,
    choose_successors,
    distance_parity_recoloring,
    mis_on_pseudoforest,
    weak_two_coloring_from_ids,
    weak_two_coloring_from_weak_coloring,
)
from repro.graphs import (
    Graph,
    balanced_regular_tree,
    caterpillar,
    cycle,
    path,
    random_permutation_ids,
    random_regular_graph,
    random_tree,
    sequential_ids,
    star,
    toroidal_grid,
)
from repro.lcl import WeakColoring


class TestDistanceParityRecoloring:
    def test_distance_one_input_unchanged_distances(self):
        g = path(4)
        phi = [0, 1, 0, 1]
        out, rounds = distance_parity_recoloring(g, phi, k=1)
        assert rounds == 1
        # Every node has a differing neighbor at distance 1: parity 1.
        assert out == [(0, 1), (1, 1), (0, 1), (1, 1)]

    def test_distance_k_blocks(self):
        g = path(6)
        phi = [0, 0, 0, 1, 1, 1]
        out, _ = distance_parity_recoloring(g, phi, k=3)
        # Node 0: closest differing at distance 3 -> parity 1; node 2 at 1.
        assert out[0] == (0, 1)
        assert out[2] == (0, 1)
        assert out[1] == (0, 0)  # distance 2

    def test_result_is_weak(self):
        rng = random.Random(0)
        g = balanced_regular_tree(4, 3)
        # Build a distance-2 weak 3-coloring by BFS layers // 2.
        dist = g.bfs_distances(0)
        phi = [(dist[v] // 2) % 3 for v in g.nodes()]
        out, _ = distance_parity_recoloring(g, phi, k=2)
        for v in g.nodes():
            assert any(out[u] != out[v] for u in g.neighbors(v))

    def test_invalid_input_raises(self):
        g = path(4)
        with pytest.raises(ValueError, match="not a distance-k"):
            distance_parity_recoloring(g, [0, 0, 0, 0], k=2)


class TestChooseSuccessors:
    def test_points_at_differing_neighbor(self):
        g = path(4)
        labels = [(0, 1), (1, 1), (0, 1), (1, 1)]
        successor = choose_successors(g, labels)
        for v in g.nodes():
            assert labels[successor[v]] != labels[v]
            assert successor[v] in g.neighbors(v)

    def test_raises_without_differing_neighbor(self):
        g = path(3)
        with pytest.raises(ValueError, match="not a weak coloring"):
            choose_successors(g, [(0, 0)] * 3)

    def test_tiebreak_smallest_label(self):
        g = star(3)
        labels = [(5, 0), (1, 0), (2, 0), (3, 0)]
        successor = choose_successors(g, labels)
        assert successor[0] == 1


class TestMISOnPseudoforest:
    def test_directed_cycle(self):
        successor = [1, 2, 3, 0]
        colors = [0, 1, 0, 2]
        in_mis, rounds = mis_on_pseudoforest(successor, colors)
        assert rounds == 3
        # Independence and maximality over the pseudoforest edges.
        edges = {(v, successor[v]) for v in range(4)}
        for v, u in edges:
            assert not (in_mis[v] and in_mis[u])
        for v in range(4):
            if not in_mis[v]:
                neighbors = {successor[v]} | {u for u in range(4) if successor[u] == v}
                assert any(in_mis[u] for u in neighbors)


def assert_weak2(graph, labels):
    assert not WeakColoring(2).verify(graph, labels)


class TestFullPipeline:
    def test_on_paths_and_cycles(self):
        for g in (path(2), path(9), cycle(5), cycle(12)):
            ids = sequential_ids(g)
            out = weak_two_coloring_from_ids(g, ids)
            assert_weak2(g, out.labels)

    def test_on_trees(self):
        for depth in (1, 2, 4):
            g = balanced_regular_tree(4, depth)
            out = weak_two_coloring_from_ids(g, sequential_ids(g))
            assert_weak2(g, out.labels)

    def test_on_random_graphs(self):
        rng = random.Random(1)
        for trial in range(10):
            g = random_regular_graph(30, 4, rng=random.Random(rng.getrandbits(64)))
            out = weak_two_coloring_from_ids(g, random_permutation_ids(g, rng))
            assert_weak2(g, out.labels)

    def test_on_random_trees(self):
        rng = random.Random(2)
        for trial in range(10):
            g = random_tree(rng.randrange(2, 60), random.Random(trial))
            out = weak_two_coloring_from_ids(g, random_permutation_ids(g, rng))
            assert_weak2(g, out.labels)

    def test_on_torus(self):
        g = toroidal_grid(5, 5)
        out = weak_two_coloring_from_ids(g, sequential_ids(g))
        assert_weak2(g, out.labels)

    def test_round_count_independent_of_n_for_fixed_palette(self):
        rounds = set()
        for depth in (2, 3, 4, 5):
            g = balanced_regular_tree(4, depth)
            dist = g.bfs_distances(0)
            phi = [(dist[v] // 2) % 3 for v in g.nodes()]
            out = weak_two_coloring_from_weak_coloring(g, phi, k=2, c=3)
            assert_weak2(g, out.labels)
            rounds.add(out.rounds)
        assert len(rounds) == 1  # Lemma 2: O(1), independent of n

    def test_phase_accounting_sums_to_total(self):
        g = balanced_regular_tree(4, 3)
        out = weak_two_coloring_from_ids(g, sequential_ids(g))
        assert sum(out.phase_rounds.values()) == out.rounds

    def test_output_palette_is_binary(self):
        g = cycle(10)
        out = weak_two_coloring_from_ids(g, sequential_ids(g))
        assert set(out.labels) <= {WHITE, BLACK}

    def test_black_nodes_form_independent_set_in_pseudoforest(self):
        g = balanced_regular_tree(4, 3)
        out = weak_two_coloring_from_ids(g, sequential_ids(g))
        for v in g.nodes():
            if out.labels[v] == BLACK:
                assert out.labels[out.successor[v]] == WHITE

    def test_isolated_node_rejected(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(ValueError, match="minimum degree"):
            weak_two_coloring_from_ids(g, [1, 2, 3])

    def test_color_range_validated(self):
        g = path(3)
        with pytest.raises(ValueError, match="outside"):
            weak_two_coloring_from_weak_coloring(g, [0, 9, 0], k=1, c=2)

    def test_id_space_validated(self):
        g = path(3)
        with pytest.raises(ValueError, match="ids must lie"):
            weak_two_coloring_from_ids(g, [1, 2, 100], id_space=10)

    def test_caterpillar_mixed_degrees(self):
        g = caterpillar(6, 3)
        out = weak_two_coloring_from_ids(g, sequential_ids(g))
        assert_weak2(g, out.labels)

    def test_huge_id_space_still_few_rounds(self):
        g = path(8)
        space = 1 << 256
        ids = [1 << (20 * (v + 1)) for v in g.nodes()]
        out = weak_two_coloring_from_ids(g, ids, id_space=space)
        assert_weak2(g, out.labels)
        assert out.rounds < 30  # log*(2^256) territory, not 256
