"""Lifecycle and degradation contract of the simulation daemon.

Two layers of coverage:

* **In-process** — a :class:`~repro.serve.server.ServiceServer` booted
  inside ``asyncio.run`` and poked with raw sockets: malformed HTTP
  dies as a structured 4xx (never a traceback on the wire), keep-alive
  serves multiple requests per connection, and a per-request timeout
  answers 503 with the PR 4 ``pool-error`` degradation vocabulary
  instead of hanging the connection.
* **Subprocess** — a real ``python -m repro.serve`` daemon booted via
  :func:`~repro.serve.loadgen.spawn_daemon`: concurrent clients get
  bit-identical responses, eviction under a tiny ``--max-bytes``
  budget stays exact and visible in ``/metrics``, and ``/shutdown``
  exits 0 with no orphaned worker processes.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core import simulate
from repro.serve.client import ServiceClient, ServiceError
from repro.serve.loadgen import mixed_specs, run_load, spawn_daemon
from repro.serve.protocol import build_request
from repro.serve.server import ServiceServer


# ----------------------------------------------------------------------
# In-process: raw HTTP and the timeout contract
# ----------------------------------------------------------------------

async def _read_response(reader):
    """Parse one HTTP/1.1 response: (status, headers, json_body)."""
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = await reader.readexactly(int(headers["content-length"]))
    return status, headers, json.loads(body.decode("utf-8"))


def _raw_exchange(requests, **server_kwargs):
    """Boot a server, send raw bytes per request, return the responses."""

    async def go():
        server = ServiceServer(**server_kwargs)
        await server.start()
        responses = []
        try:
            for payload in requests:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                try:
                    writer.write(payload)
                    await writer.drain()
                    responses.append(await _read_response(reader))
                finally:
                    writer.close()
        finally:
            await server.stop()
        return responses

    return asyncio.run(go())


def _http(method, path, body=b"", keep_alive=True):
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n\r\n"
    )
    return head.encode("latin-1") + body


def _spec(i=0, n=12):
    return mixed_specs(i + 1, n=n)[i]


def test_healthz_and_unknown_paths():
    responses = _raw_exchange([
        _http("GET", "/healthz"),
        _http("GET", "/nowhere"),
        _http("GET", "/simulate"),   # wrong method
        _http("GET", "/shutdown"),   # wrong method
    ])
    assert responses[0][0] == 200
    assert responses[0][2] == {"ok": True, "engine": "service"}
    assert responses[1][0] == 404
    assert responses[2][0] == 405
    assert responses[3][0] == 405
    for _, _, body in responses[1:]:
        assert body["error"]["type"] == "ProtocolError"


@pytest.mark.parametrize("payload,status", [
    (b"garbage\r\n\r\n", 400),                               # bad request line
    (_http("POST", "/simulate", b"not json"), 400),          # body not JSON
    (_http("POST", "/simulate", b'{"kind": "bogus"}'), 400),  # bad spec
    (_http("POST", "/simulate",
           json.dumps({"requests": 7}).encode()), 400),      # bad batch shape
])
def test_malformed_requests_die_structured(payload, status):
    ((got_status, _, body),) = _raw_exchange([payload])
    assert got_status == status
    assert set(body["error"]) >= {"type", "message"}
    assert "Traceback" not in json.dumps(body)


def test_oversized_headers_rejected():
    payload = (
        b"GET /healthz HTTP/1.1\r\n"
        + b"X-Pad: " + b"a" * (70 * 1024) + b"\r\n\r\n"
    )
    ((status, _, body),) = _raw_exchange([payload])
    assert status == 431
    assert body["error"]["type"] == "_HTTPError"


def test_keep_alive_serves_multiple_requests_per_connection():
    spec = json.dumps(_spec()).encode("utf-8")

    async def go():
        server = ServiceServer()
        await server.start()
        try:
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            try:
                first = second = None
                writer.write(_http("POST", "/simulate", spec))
                await writer.drain()
                first = await _read_response(reader)
                writer.write(_http("POST", "/simulate", spec, keep_alive=False))
                await writer.drain()
                second = await _read_response(reader)
            finally:
                writer.close()
            return first, second, server.served
        finally:
            await server.stop()

    first, second, served = asyncio.run(go())
    assert first[0] == 200 and second[0] == 200
    assert first[2]["report"]["outputs"] == second[2]["report"]["outputs"]
    assert served == 2


def test_timeout_answers_structured_503_degradation():
    spec = json.dumps(_spec()).encode("utf-8")
    ((status, _, body),) = _raw_exchange(
        [_http("POST", "/simulate", spec)], timeout=1e-9
    )
    assert status == 503
    error = body["error"]
    assert error["degraded"].startswith("pool-error: TimeoutError")
    assert "service timeout" in error["degraded"]


def test_stop_is_idempotent_and_start_restarts():
    async def go():
        server = ServiceServer()
        await server.start()
        await server.start()  # idempotent
        port = server.port
        await server.stop()
        await server.stop()  # idempotent
        return port

    assert asyncio.run(go()) > 0


# ----------------------------------------------------------------------
# Subprocess: the real daemon under real clients
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def daemon():
    proc, host, port = spawn_daemon()
    try:
        yield host, port
    finally:
        try:
            if proc.poll() is None:
                with ServiceClient(host, port) as client:
                    client.shutdown()
                proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()


def test_daemon_serves_bit_identical_reports(daemon):
    host, port = daemon
    specs = mixed_specs(7, n=16)
    with ServiceClient(host, port) as client:
        assert client.healthz()["ok"] is True
        for spec in specs:
            served = client.simulate(spec)
            local = simulate(build_request(spec), engine="direct")
            assert served.identity() == local.identity()
            assert served.backend == "service"


def test_daemon_batch_round_trip_preserves_order(daemon):
    host, port = daemon
    specs = mixed_specs(5, n=14, seed=3)
    with ServiceClient(host, port) as client:
        reports = client.simulate_many(specs)
    assert len(reports) == len(specs)
    for spec, report in zip(specs, reports):
        local = simulate(build_request(spec), engine="direct")
        assert report.identity() == local.identity()


def test_daemon_rejects_bad_specs_without_dying(daemon):
    host, port = daemon
    with ServiceClient(host, port) as client:
        with pytest.raises(ServiceError) as excinfo:
            client.simulate({"kind": "view", "graph": {"family": "nope",
                                                       "params": {}},
                             "algorithm": {"name": "local-max",
                                           "params": {"radius": 1}}})
        assert excinfo.value.status == 400
        assert excinfo.value.error_type == "ProtocolError"
        assert "Traceback" not in excinfo.value.message
        # The connection and the daemon both survive the rejection.
        assert client.healthz()["ok"] is True


def test_daemon_metrics_expose_cache_counters(daemon):
    host, port = daemon
    spec = _spec(n=20)
    with ServiceClient(host, port) as client:
        client.simulate(spec)
        before = client.metrics()
        client.simulate(spec)
        after = client.metrics()
    assert after["served"] == before["served"] + 1
    assert after["requests"] == before["requests"] + 1
    assert after["table_hits"] >= before["table_hits"] + 1
    for field in ("bytes", "tables", "graphs", "batches", "evictions"):
        assert field in after


def test_concurrent_clients_get_bit_identical_responses(daemon):
    host, port = daemon
    summary = run_load(host, port, mixed_specs(14, n=16, seed=5),
                       clients=4, verify=True)
    assert summary["completed"] == 14
    assert summary["errors"] == []
    assert summary["identity_mismatches"] == []
    assert summary["throughput_rps"] > 0


def test_eviction_under_tiny_budget_daemon_stays_exact():
    proc, host, port = spawn_daemon(["--max-bytes", "1"])
    try:
        specs = [s for s in mixed_specs(8, n=16) if s["kind"] == "view"]
        with ServiceClient(host, port) as client:
            for spec in specs:
                served = client.simulate(spec)
                local = simulate(build_request(spec), engine="direct")
                assert served.identity() == local.identity()
            metrics = client.metrics()
            assert metrics["evictions"] >= 1
            assert metrics["tables"] == 0
            client.shutdown()
        assert proc.wait(timeout=30) == 0
        proc = None
    finally:
        if proc is not None:
            proc.kill()
            proc.wait()


def test_daemon_shutdown_releases_worker_pool():
    # Local-kind batches spin the engine's internal process pool; a
    # clean /shutdown must still exit 0 promptly (no orphaned workers
    # holding the interpreter open).
    proc, host, port = spawn_daemon(["--shards", "2"])
    try:
        local_specs = [s for s in mixed_specs(14, n=12) if s["kind"] == "local"]
        assert len(local_specs) >= 2
        with ServiceClient(host, port) as client:
            reports = client.simulate_many(local_specs)
            for spec, report in zip(local_specs, reports):
                local = simulate(build_request(spec), engine="direct")
                assert report.identity() == local.identity()
            client.shutdown()
        assert proc.wait(timeout=30) == 0
        proc = None
    finally:
        if proc is not None:
            proc.kill()
            proc.wait()
