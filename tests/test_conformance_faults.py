"""Fault-injection tests: the sharded engine degrades, never lies.

Each test plants one failure mode from ``repro/conformance/faults.py``
and asserts the degradation contract documented in
``repro/core/sharded.py``: outputs stay bit-identical to the direct
backend, the reason lands in ``SimReport.info["degraded"]``, and the
``on_degraded`` tracer hook fires so metrics count it.
"""

import pytest

from repro.conformance.faults import (
    CorruptedSeedEngine,
    CrashInWorkerRule,
    FaultOutcome,
    UnpicklableRule,
    run_fault_suite,
)
from repro.core.engine import SimRequest, simulate
from repro.core.sharded import ShardedEngine
from repro.graphs.generators import path
from repro.instrumentation.metrics import MetricsTracer, RunMetrics

FAST_TIMEOUT = 2.0


@pytest.fixture
def engine():
    eng = ShardedEngine(shards=2, timeout=FAST_TIMEOUT)
    yield eng
    eng.close()


def _view_request(algorithm, n=8):
    # Distinct ids give every node its own view class, forcing sharding.
    return SimRequest(
        kind="view",
        graph=path(n),
        algorithm=algorithm,
        ids=list(range(1, n + 1)),
        label=f"fault-test:{algorithm.name}",
    )


def test_worker_crash_degrades_and_recovers(engine):
    request = _view_request(CrashInWorkerRule())
    tracer = MetricsTracer()
    report = engine.run(request, tracer=tracer)
    assert report.info["degraded"].startswith("pool-error")
    assert report.info["pooled"] is False
    assert report.identity() == simulate(request, engine="direct").identity()
    assert tracer.metrics.degradations == 1
    assert tracer.metrics.degraded_reasons[0].startswith("pool-error")


def test_unpicklable_payload_detected_before_dispatch(engine):
    request = _view_request(UnpicklableRule())
    tracer = MetricsTracer()
    report = engine.run(request, tracer=tracer)
    assert report.info["degraded"] == "unpicklable"
    assert report.identity() == simulate(request, engine="direct").identity()
    assert "unpicklable" in tracer.metrics.degraded_reasons


def test_corrupted_shard_seeds_cannot_change_outputs():
    from repro.algorithms.view_rules import DegreeProfileRule

    engine = CorruptedSeedEngine(shards=2, timeout=FAST_TIMEOUT)
    try:
        request = _view_request(DegreeProfileRule(radius=1))
        report = engine.run(request)
        assert "degraded" not in report.info
        assert report.identity() == simulate(
            request, engine="direct"
        ).identity()
    finally:
        engine.close()


def test_run_many_crash_annotates_every_report(engine):
    requests = [_view_request(CrashInWorkerRule(), n=6 + i) for i in range(3)]
    tracer = MetricsTracer()
    reports = engine.run_many(requests, tracer=tracer)
    assert len(reports) == 3
    for request, report in zip(requests, reports):
        assert str(report.info["degraded"]).startswith("pool-error")
        assert report.identity() == simulate(
            request, engine="direct"
        ).identity()
    assert tracer.metrics.degradations >= 1


def test_pool_respawns_after_crash(engine):
    from repro.algorithms.view_rules import DegreeProfileRule

    crashed = engine.run(_view_request(CrashInWorkerRule()))
    assert "degraded" in crashed.info
    clean_request = _view_request(DegreeProfileRule(radius=1))
    clean = engine.run(clean_request)
    assert clean.info["pooled"] is True
    assert "degraded" not in clean.info
    assert clean.identity() == simulate(
        clean_request, engine="direct"
    ).identity()


def test_crash_rule_is_harmless_in_process():
    # The daemon guard must keep the crash inside pool workers: running
    # the rule on the direct backend (this very process) must succeed.
    report = simulate(_view_request(CrashInWorkerRule()), engine="direct")
    assert report.outputs == [1, 2, 2, 2, 2, 2, 2, 1]  # path degrees


def test_fault_suite_all_paths_hold():
    outcomes = run_fault_suite(timeout=FAST_TIMEOUT)
    assert [o.fault for o in outcomes] == [
        "worker-crash-view",
        "unpicklable-payload",
        "corrupted-shard-seeds",
        "worker-crash-run-many",
        "pool-restart-after-crash",
    ]
    for outcome in outcomes:
        assert isinstance(outcome, FaultOutcome)
        assert outcome.ok, (outcome.fault, outcome.detail)


def test_metrics_round_trip_includes_degradations():
    tracer = MetricsTracer()
    tracer.on_degraded("sharded", "unpicklable")
    tracer.on_degraded("sharded", "pool-error: RuntimeError: boom")
    data = tracer.metrics.to_dict()
    assert RunMetrics().to_dict()["degradations"] == 0
    assert data["degradations"] == 2
    assert data["degraded_reasons"] == [
        "unpicklable", "pool-error: RuntimeError: boom",
    ]
