"""Unit tests for :mod:`repro.graphs.delta`: validated mutation batches.

Covers the whole GraphDelta contract: up-front op validation (every
rejection is a :class:`GraphDeltaError` naming the offending op index),
functional application (the base graph and its cached CSR arrays are
*never* mutated — the regression pin for the freeze/CSR staleness bug),
stale-handle rejection, ordered port bookkeeping (add-then-remove
round-trips rows bit-for-bit), label application, dirty-ball footprints,
CSR patch-vs-recompile equivalence, and :func:`random_delta`
feasibility on degenerate graphs.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.graphs import (
    GraphDelta,
    GraphDeltaError,
    complete_graph,
    cycle,
    path,
    random_delta,
    star,
)
from repro.graphs.csr import CSRGraph
from repro.graphs.graph import Graph


def _frozen_path(n: int = 6) -> Graph:
    return path(n)  # generators freeze their graphs


# ----------------------------------------------------------------------
# Construction and validation
# ----------------------------------------------------------------------

def test_base_must_be_a_graph():
    with pytest.raises(GraphDeltaError, match="must be a Graph"):
        GraphDelta([[1], [0]], [("add", 0, 1)])


def test_base_must_be_frozen():
    g = Graph(4, [(0, 1)])
    with pytest.raises(GraphDeltaError, match="must be frozen"):
        GraphDelta(g, [("add", 1, 2)])


@pytest.mark.parametrize(
    "ops,message",
    [
        ([("grow", 0, 1)], "op 0: unknown delta op"),
        ([()], "op 0: unknown delta op"),
        ([("add", 0)], "op 0: 'add' takes exactly 2 operands"),
        ([("add", 0, 1, 2)], "op 0: 'add' takes exactly 2 operands"),
        ([("add", 0.5, 1)], "op 0: endpoints must be ints"),
        ([("add", 0, 99)], r"op 0: edge \(0, 99\) out of range"),
        ([("add", -1, 1)], r"op 0: edge \(-1, 1\) out of range"),
        ([("add", 2, 2)], "op 0: self-loop at node 2"),
        ([("add", 0, 1)], r"op 0: duplicate edge \(0, 1\)"),
        ([("remove", 0, 3)], r"op 0: cannot remove missing edge \(0, 3\)"),
        ([("set_id", "a", 7)], "op 0: label target must be an int"),
        ([("set_id", 99, 7)], "op 0: node 99 out of range"),
    ],
)
def test_invalid_ops_are_rejected(ops, message):
    with pytest.raises(GraphDeltaError, match=message):
        GraphDelta(_frozen_path(), ops)


def test_validation_replays_sequentially():
    g = _frozen_path(6)
    # add(0,2) then remove(0,2) is valid even though (0,2) is no base edge
    delta = GraphDelta(g, [("add", 0, 2), ("remove", 0, 2)])
    assert delta.ops == (("add", 0, 2), ("remove", 0, 2))
    # ...but the error positions still count from the start of the batch
    with pytest.raises(GraphDeltaError, match=r"op 1: duplicate edge \(0, 2\)"):
        GraphDelta(g, [("add", 0, 2), ("add", 0, 2)])


def test_touched_nodes_cover_edge_endpoints_and_label_targets():
    g = _frozen_path(6)
    delta = GraphDelta(g, [("add", 0, 2), ("set_randomness", 5, 7)])
    assert delta.touched_nodes() == (0, 2, 5)
    assert delta.n == 6


# ----------------------------------------------------------------------
# Functional application (the freeze/CSR staleness regression)
# ----------------------------------------------------------------------

def test_apply_never_mutates_the_base():
    g = _frozen_path(6)
    before_rows = [list(r) for r in g.adjacency_rows()]
    before_edges = set(g.edge_set())
    delta = GraphDelta(g, [("add", 0, 3), ("remove", 1, 2)])
    mutated = delta.apply()
    assert [list(r) for r in g.adjacency_rows()] == before_rows
    assert set(g.edge_set()) == before_edges
    assert mutated is not g
    assert mutated.is_frozen
    assert mutated.has_edge(0, 3) and not mutated.has_edge(1, 2)


def test_base_cached_csr_survives_apply_bit_for_bit():
    """Regression: a delta must not corrupt the base's compiled layout.

    The base's ``csr()`` arrays are cached on the Graph object; the
    mutated result must get its *own* (patched) arrays while the base's
    stay exactly the arrays its rows compile to.
    """
    g = cycle(12)
    base_csr = g.csr()
    indptr, indices = base_csr.indptr.copy(), base_csr.indices.copy()
    delta = GraphDelta(g, [("add", 0, 6)])
    mutated = delta.apply()
    # Same object, same bits, still matching a fresh compile of the base.
    assert g.csr() is base_csr
    assert np.array_equal(base_csr.indptr, indptr)
    assert np.array_equal(base_csr.indices, indices)
    fresh = CSRGraph.from_graph(g)
    assert np.array_equal(base_csr.indptr, fresh.indptr)
    assert np.array_equal(base_csr.indices, fresh.indices)
    # The mutated graph's layout reflects the new rows, not the stale base.
    assert mutated.csr() is not base_csr
    assert mutated.csr().degree(0) == 3


def test_apply_to_rejects_stale_handles():
    g1 = cycle(8)
    g2 = cycle(8)
    delta = GraphDelta(g1, [("add", 0, 4)])
    with pytest.raises(GraphDeltaError, match="stale delta handle"):
        delta.apply_to(g2)
    # Even a handle to the *mutated* graph is stale for this delta.
    mutated = delta.apply()
    with pytest.raises(GraphDeltaError, match="stale delta handle"):
        delta.apply_to(mutated)


def test_apply_result_is_cached():
    g = _frozen_path(5)
    delta = GraphDelta(g, [("add", 0, 4)])
    assert delta.apply() is delta.apply_to(g)


def test_untouched_rows_are_shared_with_the_base():
    g = _frozen_path(8)
    delta = GraphDelta(g, [("add", 0, 2)])
    mutated = delta.apply()
    assert mutated.adjacency_rows()[6] is g.adjacency_rows()[6]
    assert mutated.adjacency_rows()[0] is not g.adjacency_rows()[0]


# ----------------------------------------------------------------------
# Port bookkeeping
# ----------------------------------------------------------------------

def test_insert_occupies_the_highest_port():
    g = cycle(6)
    delta = GraphDelta(g, [("add", 0, 3)])
    mutated = delta.apply()
    assert tuple(mutated.neighbors(0)) == (1, 5, 3)
    assert mutated.port_to(0, 3) == 2
    assert mutated.port_to(3, 0) == 2


def test_remove_shifts_later_ports_down():
    g = star(4)  # center 0 with leaves 1..4
    delta = GraphDelta(g, [("remove", 0, 2)])
    mutated = delta.apply()
    assert tuple(mutated.neighbors(0)) == (1, 3, 4)
    assert mutated.port_to(0, 3) == 1  # was port 2 before the removal


def test_add_then_remove_round_trips_rows_bit_for_bit():
    g = cycle(10)
    delta = GraphDelta(g, [("add", 2, 7), ("remove", 2, 7)])
    mutated = delta.apply()
    assert [list(r) for r in mutated.adjacency_rows()] == [
        list(r) for r in g.adjacency_rows()
    ]
    assert set(mutated.edge_set()) == set(g.edge_set())


# ----------------------------------------------------------------------
# Label application
# ----------------------------------------------------------------------

def test_apply_to_labels_rewrites_copies():
    g = _frozen_path(4)
    delta = GraphDelta(
        g,
        [("set_id", 1, 99), ("set_input", 2, 5), ("set_randomness", 3, 8)],
    )
    ids, inputs, randomness = [10, 11, 12, 13], [0, 0, 0, 0], [1, 1, 1, 1]
    new_ids, new_inputs, new_rand = delta.apply_to_labels(
        ids, inputs, randomness
    )
    assert new_ids == [10, 99, 12, 13]
    assert new_inputs == [0, 0, 5, 0]
    assert new_rand == [1, 1, 1, 8]
    # Inputs were copied, not mutated.
    assert ids == [10, 11, 12, 13]
    assert inputs == [0, 0, 0, 0]
    assert randomness == [1, 1, 1, 1]


@pytest.mark.parametrize(
    "op,missing",
    [
        (("set_id", 0, 1), "set_id requires an ids labeling"),
        (("set_input", 0, 1), "set_input requires an inputs labeling"),
        (("set_randomness", 0, 1), "set_randomness requires a randomness"),
    ],
)
def test_label_ops_require_their_labeling(op, missing):
    delta = GraphDelta(_frozen_path(4), [op])
    with pytest.raises(GraphDeltaError, match=missing):
        delta.apply_to_labels()


def test_label_passthrough_when_no_label_ops():
    delta = GraphDelta(_frozen_path(4), [("add", 0, 2)])
    new_ids, new_inputs, new_rand = delta.apply_to_labels([1, 2, 3, 4])
    assert new_ids == [1, 2, 3, 4]
    assert new_inputs is None and new_rand is None


# ----------------------------------------------------------------------
# Dirty-ball footprints
# ----------------------------------------------------------------------

def test_footprint_radius_zero_is_the_touched_set():
    g = cycle(12)
    delta = GraphDelta(g, [("add", 0, 6), ("set_randomness", 3, 1)])
    assert delta.footprint(0) == [0, 3, 6]


def test_footprint_grows_with_radius_and_stays_local():
    g = cycle(12)
    delta = GraphDelta(g, [("set_input", 0, 1)])
    assert delta.footprint(1) == [0, 1, 11]
    assert delta.footprint(2) == [0, 1, 2, 10, 11]
    assert len(delta.footprint(2)) < g.n


def test_footprint_covers_old_and_new_balls():
    # Removing (2,3) disconnects the path; radius-1 must still cover the
    # *old* neighbors across the cut (3 is adjacent to 2 only pre-delta)
    # and the new ball misses nothing.
    g = path(6)
    delta = GraphDelta(g, [("remove", 2, 3)])
    assert delta.footprint(1) == [1, 2, 3, 4]
    # Adding a chord reaches radius-1 neighbors in the *new* graph.
    delta2 = GraphDelta(g, [("add", 0, 5)])
    assert delta2.footprint(1) == [0, 1, 4, 5]


def test_footprint_empty_ops_and_negative_radius():
    g = _frozen_path(5)
    delta = GraphDelta(g, [])
    assert delta.footprint(3) == []
    with pytest.raises(ValueError, match="radius must be non-negative"):
        GraphDelta(g, [("add", 0, 2)]).footprint(-1)


# ----------------------------------------------------------------------
# CSR patch vs recompile
# ----------------------------------------------------------------------

def _assert_csr_equal(a: CSRGraph, b: CSRGraph) -> None:
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.rev_ports, b.rev_ports)


def test_small_delta_patches_the_compiled_layout():
    g = cycle(32)
    g.csr()  # compile the base layout so the delta can patch it
    delta = GraphDelta(g, [("add", 0, 16)])
    mutated = delta.apply()
    assert delta.csr_mode == "patch"
    _assert_csr_equal(mutated.csr(), CSRGraph.from_graph(mutated))


def test_large_delta_recompiles_the_layout():
    g = cycle(8)
    g.csr()
    ops = [("add", u, (u + 3) % 8) for u in range(4)]
    delta = GraphDelta(g, ops)
    mutated = delta.apply()
    assert delta.csr_mode == "recompile"
    _assert_csr_equal(mutated.csr(), CSRGraph.from_graph(mutated))


def test_uncompiled_base_defers_layout():
    g = Graph(6, [(i, i + 1) for i in range(5)]).freeze()
    delta = GraphDelta(g, [("add", 0, 5)])
    assert delta.csr_mode is None  # not built yet
    mutated = delta.apply()
    assert delta.csr_mode == "lazy"
    _assert_csr_equal(mutated.csr(), CSRGraph.from_graph(mutated))


# ----------------------------------------------------------------------
# random_delta feasibility
# ----------------------------------------------------------------------

def test_random_delta_is_always_valid():
    rng = random.Random(0)
    graph = cycle(10)
    ids = list(range(10))
    randomness = [rng.getrandbits(8) for _ in range(10)]
    for _ in range(200):
        delta = random_delta(
            graph, rng, ids=ids, randomness=randomness, max_ops=3
        )
        assert delta is not None
        mutated = delta.apply_to(graph)
        ids, _, randomness = delta.apply_to_labels(ids, None, randomness)
        assert sorted(ids) == list(range(10))  # swaps preserve uniqueness
        graph = mutated


def test_random_delta_on_a_complete_graph_never_adds():
    rng = random.Random(1)
    g = complete_graph(5)
    for _ in range(50):
        delta = random_delta(g, rng, max_ops=1)
        assert delta is not None
        assert delta.ops[0][0] == "remove"


def test_random_delta_returns_none_when_nothing_is_feasible():
    g = Graph(1).freeze()
    assert random_delta(g, random.Random(0)) is None
