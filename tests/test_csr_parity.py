"""Differential property suite: the CSR core is bit-identical.

Hypothesis generates port-numbered graphs across four shapes — trees,
cycles, irregular random graphs, and multihub (hub-and-spoke) graphs —
each with an adversarially drawn port numbering, and asserts:

* :class:`~repro.graphs.csr.CSRGraph` agrees with :class:`Graph` on
  every structural query (neighbors, ports, degrees, endpoints,
  reverse ports);
* the batched expander's node/edge partitions coincide *exactly* with
  the partition induced by the reference
  :func:`~repro.local_model.views.view_signature` /
  :func:`~repro.local_model.views.edge_view_signature` — same classes,
  same labels, same first-occurrence representatives;
* every (backend × layout) combination of the engine seam reproduces
  the direct/dict report bit for bit, on generated graphs and on the
  deterministic differential grid (``tests/differential.py``).

The suite deliberately pins no ``max_examples``: the CI hypothesis
profile (``tests/conftest.py``) raises the case count, so one CI run
drives well over the 300-case floor the acceptance criteria name.

Freeze-contract regressions ride along at the bottom: a frozen graph
must refuse mutation, and ``csr()`` must refuse a mutable graph.
"""

from __future__ import annotations

import pickle
import random

import pytest
from hypothesis import given, strategies as st

from repro.graphs import CSRGraph, Graph
from repro.graphs.identifiers import random_permutation_ids
from repro.local_model.batch_views import BatchBallExpander, LAYOUTS
from repro.local_model.views import edge_view_signature, view_signature

from .differential import (
    BACKENDS,
    Case,
    assert_layout_reports_identical,
    run_case_layouts,
    run_edge_case_layouts,
)

# ----------------------------------------------------------------------
# Graph strategies: four shapes, adversarial port numberings
# ----------------------------------------------------------------------


def _permuted_rows(draw, rows):
    """Shuffle each adjacency row with a drawn permutation."""
    return [draw(st.permutations(row)) if row else [] for row in rows]


@st.composite
def tree_graphs(draw):
    """Random trees: node v > 0 attaches to a drawn earlier node."""
    n = draw(st.integers(min_value=1, max_value=24))
    rows = [[] for _ in range(n)]
    for v in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=v - 1))
        rows[parent].append(v)
        rows[v].append(parent)
    return Graph.from_adjacency(_permuted_rows(draw, rows)).freeze()


@st.composite
def cycle_graphs(draw):
    n = draw(st.integers(min_value=3, max_value=24))
    rows = [[(v - 1) % n, (v + 1) % n] for v in range(n)]
    return Graph.from_adjacency(_permuted_rows(draw, rows)).freeze()


@st.composite
def irregular_graphs(draw):
    """Erdős–Rényi-style: each candidate edge flipped independently."""
    n = draw(st.integers(min_value=2, max_value=14))
    rows = [[] for _ in range(n)]
    for u in range(n):
        for v in range(u + 1, n):
            if draw(st.booleans()):
                rows[u].append(v)
                rows[v].append(u)
    return Graph.from_adjacency(_permuted_rows(draw, rows)).freeze()


@st.composite
def multihub_graphs(draw):
    """A few high-degree hubs sharing many spokes — degree-skewed."""
    hubs = draw(st.integers(min_value=1, max_value=3))
    leaves = draw(st.integers(min_value=2, max_value=12))
    n = hubs + leaves
    rows = [[] for _ in range(n)]
    for a in range(hubs):
        for b in range(a + 1, hubs):
            rows[a].append(b)
            rows[b].append(a)
    for leaf in range(hubs, n):
        for hub in range(hubs):
            if hub == 0 or draw(st.booleans()):  # always reach hub 0
                rows[hub].append(leaf)
                rows[leaf].append(hub)
    return Graph.from_adjacency(_permuted_rows(draw, rows)).freeze()


graphs = st.one_of(
    tree_graphs(), cycle_graphs(), irregular_graphs(), multihub_graphs()
)

radii = st.integers(min_value=0, max_value=3)

#: Label variants the partition tests draw: nothing, ids, randomness,
#: or both — covering every flag combination the packed stream encodes.
labelings = st.sampled_from(("anonymous", "ids", "random", "both"))


def _labels(graph, labeling):
    rng = random.Random(graph.n * 1013 + graph.m)
    ids = (
        random_permutation_ids(graph, rng)
        if labeling in ("ids", "both")
        else None
    )
    randomness = (
        [rng.getrandbits(16) for _ in graph.nodes()]
        if labeling in ("random", "both")
        else None
    )
    return ids, randomness


# ----------------------------------------------------------------------
# CSRGraph <-> Graph structural parity
# ----------------------------------------------------------------------


@given(graph=graphs)
def test_csr_matches_graph_structure(graph):
    csr = graph.csr()
    assert isinstance(csr, CSRGraph)
    assert (csr.n, csr.m) == (graph.n, graph.m)
    for v in graph.nodes():
        assert csr.degree(v) == graph.degree(v)
        neighbors = graph.neighbors(v)
        assert list(csr.neighbors(v)) == list(neighbors)
        for port, u in enumerate(neighbors):
            assert csr.endpoint(v, port) == graph.endpoint(v, port) == u
            assert csr.port_to(u, v) == graph.port_to(u, v)
            # rev_port is the O(1) answer to "through which of u's
            # ports did v's port-`port` message arrive?"
            assert csr.rev_port(v, port) == graph.port_to(u, v)


@given(graph=graphs)
def test_csr_round_trips_through_pickle(graph):
    csr = graph.csr()
    clone = pickle.loads(pickle.dumps(csr))
    assert (clone.n, clone.m) == (csr.n, csr.m)
    assert clone.indptr.tolist() == csr.indptr.tolist()
    assert clone.indices.tolist() == csr.indices.tolist()
    assert clone.rev_ports.tolist() == csr.rev_ports.tolist()


# ----------------------------------------------------------------------
# Batched partitions == reference-signature partitions, bit for bit
# ----------------------------------------------------------------------


def _assert_partition_matches(part, signatures):
    """The partition equals the one induced by reference signatures.

    Bit-identity here means: same number of classes, same entity ->
    class labeling (up to the shared first-occurrence numbering), and
    each class key standing for exactly one reference signature.
    """
    sig_label = {}
    expected_labels = []
    expected_reps = []
    for i, sig in enumerate(signatures):
        if sig not in sig_label:
            sig_label[sig] = len(sig_label)
            expected_reps.append(i)
        expected_labels.append(sig_label[sig])
    assert part.class_count == len(sig_label)
    assert list(part.labels) == expected_labels
    assert list(part.reps) == expected_reps
    # One key per class, and keys are as distinct as the signatures.
    assert len(set(part.keys)) == part.class_count


@given(graph=graphs, radius=radii, labeling=labelings)
def test_node_partition_matches_reference_signatures(graph, radius, labeling):
    ids, randomness = _labels(graph, labeling)
    part = BatchBallExpander(graph).node_classes(
        radius, ids=ids, randomness=randomness
    )
    signatures = [
        view_signature(graph, v, radius, ids=ids, randomness=randomness)
        for v in graph.nodes()
    ]
    _assert_partition_matches(part, signatures)


@given(graph=graphs, radius=radii, labeling=labelings)
def test_edge_partition_matches_reference_signatures(graph, radius, labeling):
    edges = list(graph.edges())
    if not edges:
        return
    ids, randomness = _labels(graph, labeling)
    part = BatchBallExpander(graph).edge_classes(
        edges, radius, ids=ids, randomness=randomness
    )
    signatures = [
        edge_view_signature(graph, e, radius, ids=ids, randomness=randomness)
        for e in edges
    ]
    _assert_partition_matches(part, signatures)


@given(graph=graphs, labeling=labelings)
def test_multi_radius_partitions_match_single_radius(graph, labeling):
    """One BFS serving several radii equals one BFS per radius."""
    ids, randomness = _labels(graph, labeling)
    expander = BatchBallExpander(graph)
    many = expander.node_classes_many(
        (0, 1, 2), ids=ids, randomness=randomness
    )
    for radius, part in zip((0, 1, 2), many):
        single = expander.node_classes(radius, ids=ids, randomness=randomness)
        assert list(part.labels) == list(single.labels)
        assert list(part.reps) == list(single.reps)
        assert part.keys == single.keys


# ----------------------------------------------------------------------
# Engine seam: every backend × layout reproduces direct/dict
# ----------------------------------------------------------------------


@given(graph=graphs, radius=st.integers(min_value=0, max_value=2))
def test_backend_layout_grid_on_generated_graphs(graph, radius):
    from repro.algorithms.view_rules import make_view_rule
    from repro.core import SimRequest, simulate
    from dataclasses import replace

    rule = make_view_rule("ball-signature", radius=radius)
    ids, _ = _labels(graph, "ids")
    request = SimRequest(
        kind="view", graph=graph, algorithm=rule, ids=ids,
        label="csr-parity",
    )
    reports = {
        (backend, layout): simulate(
            replace(request, layout=layout), engine=backend
        )
        for backend in BACKENDS
        for layout in LAYOUTS
    }
    assert_layout_reports_identical(reports, f"generated-n{graph.n}-r{radius}")


#: Deterministic spot checks over the differential grid — one case per
#: (graph family, labeling) flavor, full backend × layout fan-out.
_GRID_CASES = [
    Case("ball-signature", "cycle24", 2, "anonymous"),
    Case("ball-signature", "tree3d3", 3, "anonymous"),
    Case("local-max", "torus5x6", 1, "ids"),
    Case("local-max", "caterpillar6x2", 2, "ids"),
    Case("random-priority", "rr20d4", 2, "random"),
    Case("degree-profile", "star8", 1, "anonymous"),
    Case("ball-signature", "clique7", 2, "anonymous"),
    Case("degree-profile", "path17", 3, "anonymous"),
]


@pytest.mark.parametrize(
    "case", _GRID_CASES, ids=[c.case_id for c in _GRID_CASES]
)
def test_layout_grid_on_differential_cases(case):
    assert_layout_reports_identical(run_case_layouts(case), case.case_id)


@pytest.mark.parametrize(
    "graph_name,rounds",
    [("cycle24", 1), ("tree3d3", 2), ("torus5x6", 3), ("rr20d4", 2)],
)
def test_layout_grid_on_edge_cases(graph_name, rounds):
    assert_layout_reports_identical(
        run_edge_case_layouts(graph_name, rounds),
        f"edge-t{rounds}-{graph_name}",
    )


# ----------------------------------------------------------------------
# Freeze contract regressions
# ----------------------------------------------------------------------


def test_add_edge_after_freeze_raises():
    graph = Graph(4, edges=[(0, 1), (1, 2)])
    graph.freeze()
    with pytest.raises(ValueError, match="frozen"):
        graph.add_edge(2, 3)
    # The failed mutation left nothing behind.
    assert graph.m == 2
    assert graph.degree(3) == 0


def test_from_adjacency_freeze_then_add_edge_raises():
    graph = Graph.from_adjacency([[1], [0], []]).freeze()
    with pytest.raises(ValueError, match="frozen"):
        graph.add_edge(1, 2)


def test_freeze_is_idempotent_and_visible():
    graph = Graph(3, edges=[(0, 1)])
    assert not graph.is_frozen
    assert graph.freeze() is graph
    assert graph.freeze() is graph  # second freeze is a no-op
    assert graph.is_frozen


def test_csr_requires_frozen_graph():
    graph = Graph(3, edges=[(0, 1), (1, 2)])
    with pytest.raises(ValueError, match="frozen"):
        graph.csr()
    graph.freeze()
    csr = graph.csr()
    assert csr is graph.csr()  # built once, cached


def test_csr_from_graph_requires_frozen_graph():
    with pytest.raises(ValueError, match="frozen"):
        CSRGraph.from_graph(Graph(2, edges=[(0, 1)]))


def test_graph_pickle_drops_cached_csr():
    graph = Graph(3, edges=[(0, 1), (1, 2)]).freeze()
    first = graph.csr()
    clone = pickle.loads(pickle.dumps(graph))
    assert clone.is_frozen
    rebuilt = clone.csr()
    assert rebuilt is not first  # lazily rebuilt, not shipped
    assert rebuilt.indices.tolist() == first.indices.tolist()
