"""Differential property suite: the implicit path is bit-identical.

Hypothesis draws implicit family handles (cycle, path, torus, balanced
tree) at sizes where the materialized twin also exists, and asserts:

* the handle agrees with its materialized twin on every structural
  query (rows, ports, degrees, edges order, BFS distances, pickle);
* :class:`~repro.local_model.batch_views.ImplicitBallExpander`
  partitions (node, edge, subset-of-sources, every labeling flavor)
  coincide *exactly* — keys, labels, first-occurrence representatives —
  with :class:`~repro.local_model.batch_views.BatchBallExpander` over
  the materialized twin;
* the closed-form class counter's multiplicities equal the bincount of
  the full partition's labels, with the same keys and representatives;
* every backend reproduces the materialized SimReport bit for bit from
  the implicit handle, including RNG streams on the ``local`` kind.

Golden pins at the bottom freeze the packed-row byte digests and the
class-multiplicity tables for one instance per family, so a signature
scheme or closed-form drift is caught even without hypothesis.
Freeze/pickle regressions for the generator families (satellite of the
implicit refactor) ride along.
"""

from __future__ import annotations

import hashlib
import pickle
import random

import pytest
from hypothesis import given, strategies as st

from repro.core import SimRequest, simulate
from repro.core.registry import (
    GRAPH_FAMILIES,
    RegistryError,
    build_graph,
    ensure_builtins,
)
from repro.graphs import (
    Graph,
    ImplicitCycle,
    ImplicitGraph,
    ImplicitMaterializeError,
    ImplicitPath,
    ImplicitTorus,
    ImplicitTree,
    implicit_tree_of_size_at_least,
)
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import (
    balanced_regular_tree,
    cycle,
    path,
    toroidal_grid,
)
from repro.local_model.batch_views import (
    BatchBallExpander,
    ClassCounts,
    ImplicitBallExpander,
    expander_for,
    known_layouts,
    resolve_layout,
)

# ----------------------------------------------------------------------
# Handle strategies: every implicit family at materializable sizes
# ----------------------------------------------------------------------


@st.composite
def implicit_cycles(draw):
    return ImplicitCycle(draw(st.integers(min_value=3, max_value=30)))


@st.composite
def implicit_paths(draw):
    return ImplicitPath(draw(st.integers(min_value=1, max_value=30)))


@st.composite
def implicit_tori(draw):
    rows = draw(st.integers(min_value=3, max_value=7))
    cols = draw(st.integers(min_value=3, max_value=7))
    return ImplicitTorus(rows, cols)


@st.composite
def implicit_trees(draw):
    delta = draw(st.integers(min_value=2, max_value=4))
    depth = draw(st.integers(min_value=0, max_value=4))
    return ImplicitTree(delta, depth)


handles = st.one_of(
    implicit_cycles(), implicit_paths(), implicit_tori(), implicit_trees()
)

radii = st.integers(min_value=0, max_value=3)

labelings = st.sampled_from(("anonymous", "ids", "random", "both"))


def _labels(graph, labeling):
    rng = random.Random(graph.n * 2029 + graph.m)
    ids = (
        [int(x) for x in rng.sample(range(1, 4 * graph.n + 2), graph.n)]
        if labeling in ("ids", "both")
        else None
    )
    randomness = (
        [rng.getrandbits(16) for _ in range(graph.n)]
        if labeling in ("random", "both")
        else None
    )
    return ids, randomness


def _assert_partitions_equal(a, b, context):
    assert a.keys == b.keys, context
    assert list(a.labels) == list(b.labels), context
    assert list(a.reps) == list(b.reps), context


# ----------------------------------------------------------------------
# Structural parity: handle == materialized twin on the Graph API
# ----------------------------------------------------------------------


@given(handle=handles)
def test_implicit_structure_matches_materialized(handle):
    twin = handle.materialized()
    assert (handle.n, handle.m) == (twin.n, twin.m)
    assert handle.max_degree() == twin.max_degree()
    assert handle.min_degree() == twin.min_degree()
    assert list(handle.nodes()) == list(twin.nodes())
    for v in twin.nodes():
        row = list(twin.neighbors(v))
        assert list(handle.neighbors(v)) == row
        assert handle.degree(v) == twin.degree(v)
        assert list(handle.adjacency_rows()[v]) == row
        for port, u in enumerate(row):
            assert handle.endpoint(v, port) == u
            assert handle.port_to(v, u) == twin.port_to(v, u)
            assert handle.has_edge(v, u)
    assert list(handle.edges()) == list(twin.edges())
    # Closed-form identifier assignment matches sequential_ids(twin).
    from repro.graphs.identifiers import sequential_ids

    assert [
        handle.sequential_id(v) for v in handle.nodes()
    ] == sequential_ids(twin)


@given(handle=handles)
def test_implicit_bfs_and_csr_match_materialized(handle):
    twin = handle.materialized()
    source = handle.n // 2
    assert handle.bfs_distances(source) == twin.bfs_distances(source)
    assert handle.bfs_distances(source, cutoff=2) == twin.bfs_distances(
        source, cutoff=2
    )
    csr_i, csr_m = handle.csr(), twin.csr()
    assert csr_i.indptr.tolist() == csr_m.indptr.tolist()
    assert csr_i.indices.tolist() == csr_m.indices.tolist()
    assert csr_i.rev_ports.tolist() == csr_m.rev_ports.tolist()


@given(handle=handles)
def test_implicit_handle_round_trips_through_pickle(handle):
    clone = pickle.loads(pickle.dumps(handle))
    assert type(clone) is type(handle)
    assert (clone.n, clone.m) == (handle.n, handle.m)
    probe = min(handle.n - 1, 3)
    assert list(clone.neighbors(probe)) == list(handle.neighbors(probe))


def test_implicit_port_to_error_matches_graph():
    handle = ImplicitCycle(9)
    twin = handle.materialized()
    with pytest.raises(ValueError) as got:
        handle.port_to(0, 4)
    with pytest.raises(ValueError) as want:
        twin.port_to(0, 4)
    assert str(got.value) == str(want.value)


def test_implicit_is_frozen_and_freeze_is_identity():
    handle = ImplicitTorus(3, 4)
    assert handle.is_frozen
    assert handle.freeze() is handle


# ----------------------------------------------------------------------
# Window lemma: synthesized windows are exact and self-contained
# ----------------------------------------------------------------------


@given(handle=handles, radius=radii)
def test_window_core_matches_bfs_ball(handle, radius):
    sources = sorted({0, handle.n // 2, handle.n - 1})
    core, boundary = handle.window(sources, radius)
    dist = {}
    for s in sources:
        for v, d in handle.bfs_distances(s, cutoff=radius + 1).items():
            dist[v] = min(dist.get(v, d), d)
    assert sorted(core) == sorted(v for v, d in dist.items() if d <= radius)
    assert sorted(boundary) == sorted(
        v for v, d in dist.items() if d == radius + 1
    )
    assert not set(core) & set(boundary)


def test_synthesize_window_rejects_missing_neighbor():
    handle = ImplicitCycle(10)
    with pytest.raises(ValueError, match="self-contained"):
        CSRGraph.synthesize_window(handle.neighbors, [0, 1], [2])


def test_synthesize_window_rejects_duplicates():
    handle = ImplicitCycle(10)
    with pytest.raises(ValueError, match="duplicate"):
        CSRGraph.synthesize_window(handle.neighbors, [0, 1], [1, 2, 9])


# ----------------------------------------------------------------------
# Partition parity: implicit expander == materialized expander
# ----------------------------------------------------------------------


@given(handle=handles, radius=radii, labeling=labelings)
def test_node_partition_parity(handle, radius, labeling):
    ids, randomness = _labels(handle, labeling)
    got = ImplicitBallExpander(handle).node_classes(
        radius, ids=ids, randomness=randomness
    )
    want = BatchBallExpander(handle.materialized()).node_classes(
        radius, ids=ids, randomness=randomness
    )
    _assert_partitions_equal(got, want, (handle, radius, labeling))


@given(handle=handles, radius=radii, labeling=labelings, data=st.data())
def test_subset_node_partition_parity(handle, radius, labeling, data):
    ids, randomness = _labels(handle, labeling)
    sources = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=handle.n - 1),
            min_size=0,
            max_size=6,
            unique=True,
        )
    )
    got = ImplicitBallExpander(handle).node_classes(
        radius, ids=ids, randomness=randomness, sources=sources
    )
    want = BatchBallExpander(handle.materialized()).node_classes(
        radius, ids=ids, randomness=randomness, sources=sources
    )
    _assert_partitions_equal(got, want, (handle, radius, labeling, sources))


@given(handle=handles, radius=radii, labeling=labelings)
def test_edge_partition_parity(handle, radius, labeling):
    twin = handle.materialized()
    edges = list(twin.edges())
    if not edges:
        return
    ids, randomness = _labels(handle, labeling)
    got = ImplicitBallExpander(handle).edge_classes(
        edges, radius, ids=ids, randomness=randomness
    )
    want = BatchBallExpander(twin).edge_classes(
        edges, radius, ids=ids, randomness=randomness
    )
    _assert_partitions_equal(got, want, (handle, radius, labeling))


@given(handle=handles, radius=st.integers(min_value=0, max_value=2))
def test_fallback_labeling_parity(handle, radius):
    """Non-integer inputs force the per-entity reference fallback."""
    inputs = [f"label-{v % 3}" for v in range(handle.n)]
    got = ImplicitBallExpander(handle).node_classes(radius, inputs=inputs)
    want = BatchBallExpander(handle.materialized()).node_classes(
        radius, inputs=inputs
    )
    _assert_partitions_equal(got, want, (handle, radius, "fallback"))


# ----------------------------------------------------------------------
# Class counts: exact multiplicities from closed-form strata
# ----------------------------------------------------------------------


@given(handle=handles)
def test_class_counts_equal_full_partition_bincount(handle):
    counter = ImplicitBallExpander(handle)
    full = BatchBallExpander(handle.materialized())
    counts = counter.class_counts_many((0, 1, 2, 3))
    parts = full.node_classes_many((0, 1, 2, 3))
    for cc, part in zip(counts, parts):
        assert isinstance(cc, ClassCounts)
        bincount = [0] * part.class_count
        for label in part.labels:
            bincount[label] += 1
        assert cc.keys == part.keys
        assert list(cc.reps) == list(part.reps)
        assert list(cc.counts) == bincount
        assert cc.total == handle.n
        assert cc.class_count == part.class_count


@given(handle=handles, radius=radii)
def test_strata_are_sound_and_cover(handle, radius):
    """Strata partition [0, n) and members share their rep's class."""
    strata = handle.strata(radius)
    covered = 0
    reps = []
    for rep, count in strata:
        assert count >= 1
        reps.append(rep)
        covered += count
    assert covered == handle.n
    assert reps == sorted(reps)
    part = BatchBallExpander(handle.materialized()).node_classes(radius)
    rep_iter = iter(reps)
    # Reps must hit every class in first-occurrence order.
    seen = []
    for rep in rep_iter:
        label = part.labels[rep]
        if label not in seen:
            seen.append(label)
    assert seen == list(range(part.class_count))


def test_class_counts_at_headline_scale_stay_tiny():
    """n = 10^6 instances: O(1)/O(depth) classes, exact coverage."""
    for handle, ceiling in (
        (ImplicitCycle(1_000_000), 7),
        (ImplicitTorus(1000, 1000), 49),
        (implicit_tree_of_size_at_least(4, 1_000_000)[0], 200),
    ):
        cc = expander_for(handle, "implicit").class_counts(2)
        assert cc.total == handle.n
        assert cc.class_count <= ceiling


# ----------------------------------------------------------------------
# Engine parity: SimReports identical from handle and twin
# ----------------------------------------------------------------------

_ENGINE_HANDLES = [ImplicitCycle(13), ImplicitTorus(3, 5), ImplicitTree(3, 2)]


@pytest.mark.parametrize(
    "handle", _ENGINE_HANDLES, ids=lambda h: repr(h).lower()
)
@pytest.mark.parametrize("backend", ["direct", "cached"])
def test_view_reports_identical_across_layout_grid(handle, backend):
    from repro.algorithms.view_rules import make_view_rule

    twin = handle.materialized()
    ids = [3 * v + 7 for v in range(handle.n)]
    reports = {}
    for graph, layout in (
        (handle, "auto"),
        (handle, "implicit"),
        (handle, "dict"),
        (twin, "auto"),
        (twin, "dict"),
        (twin, "csr"),
        (twin, "kernel"),
    ):
        request = SimRequest(
            kind="view",
            graph=graph,
            algorithm=make_view_rule("local-max", radius=1),
            ids=ids,
            layout=layout,
            label="implicit-parity",
        )
        reports[(graph is handle, layout)] = simulate(request, engine=backend)
    baseline = reports[(False, "dict")]
    for key, report in reports.items():
        assert report.outputs == baseline.outputs, key
        assert report.rounds == baseline.rounds, key
        assert report.halt_rounds == baseline.halt_rounds, key


@pytest.mark.parametrize(
    "handle", _ENGINE_HANDLES, ids=lambda h: repr(h).lower()
)
def test_local_rng_streams_identical(handle):
    """The seeded ``local`` kind must draw identical RNG streams."""
    from repro.core.registry import ALGORITHMS

    ensure_builtins()
    twin = handle.materialized()
    algorithm = ALGORITHMS.get("randomized-weak-coloring")
    for backend in ("direct", "cached"):
        got = simulate(
            SimRequest(
                kind="local", graph=handle, algorithm=algorithm.create(),
                seed=424242, label="implicit-rng",
            ),
            engine=backend,
        )
        want = simulate(
            SimRequest(
                kind="local", graph=twin, algorithm=algorithm.create(),
                seed=424242, label="implicit-rng",
            ),
            engine=backend,
        )
        assert got.outputs == want.outputs
        assert got.rounds == want.rounds
        assert got.halt_rounds == want.halt_rounds


def test_sharded_backend_accepts_implicit_handles():
    handle = ImplicitCycle(12)
    twin = handle.materialized()
    from repro.algorithms.view_rules import make_view_rule

    got = simulate(
        SimRequest(
            kind="view", graph=handle,
            algorithm=make_view_rule("ball-signature", radius=1),
            label="implicit-sharded",
        ),
        engine="sharded",
    )
    want = simulate(
        SimRequest(
            kind="view", graph=twin,
            algorithm=make_view_rule("ball-signature", radius=1),
            label="implicit-sharded",
        ),
        engine="sharded",
    )
    assert got.outputs == want.outputs


# ----------------------------------------------------------------------
# Guards: materialization never sneaks past the limit
# ----------------------------------------------------------------------


def test_over_limit_materialization_raises():
    handle = ImplicitCycle(ImplicitGraph.materialize_limit + 1)
    assert not handle.can_materialize
    for attempt in (
        handle.csr,
        handle.materialized,
        lambda: list(handle.edges()),
        lambda: handle.bfs_distances(0),
    ):
        with pytest.raises(ImplicitMaterializeError, match="IMPLICIT"):
            attempt()
    # Windowed access stays fine at any n.
    core, boundary = handle.window([0], 1)
    assert len(core) == 3 and len(boundary) == 2


def test_under_limit_materialization_is_allowed():
    handle = ImplicitCycle(64)
    assert handle.can_materialize
    assert handle.materialized().n == 64


def test_layout_registry_guards():
    assert "implicit" in known_layouts()
    materialized = cycle(8)
    handle = ImplicitCycle(8)
    assert resolve_layout("auto", handle, True) == "implicit"
    assert resolve_layout("auto", handle, False) == "implicit"
    assert resolve_layout("implicit", handle, True) == "implicit"
    with pytest.raises(ValueError, match="implicit"):
        resolve_layout("implicit", materialized, True)
    with pytest.raises(ValueError, match="ImplicitGraph"):
        expander_for(materialized, "implicit")
    assert expander_for(handle, "implicit") is expander_for(handle, "implicit")


# ----------------------------------------------------------------------
# Registry: implicit builders and the no-closed-form error
# ----------------------------------------------------------------------


def test_build_graph_returns_implicit_handles():
    ensure_builtins()
    for params, expected in (
        ({"graph": "cycle", "n": 17}, ImplicitCycle),
        ({"graph": "path", "n": 9}, ImplicitPath),
        ({"graph": "torus", "rows": 4, "cols": 6}, ImplicitTorus),
        ({"graph": "tree", "delta": 3, "depth": 2}, ImplicitTree),
    ):
        handle = build_graph({**params, "implicit": True})
        assert isinstance(handle, expected)
        twin = build_graph(params)
        assert (handle.n, handle.m) == (twin.n, twin.m)
        assert not getattr(twin, "is_implicit", False)


def test_build_graph_no_closed_form_names_fallback():
    ensure_builtins()
    with pytest.raises(RegistryError, match="random_regular_graph"):
        build_graph({"graph": "random-regular", "n": 10, "d": 3,
                     "implicit": True})
    fallback = build_graph({"graph": "random-regular", "n": 10, "d": 3})
    assert fallback.n == 10 and fallback.is_regular(3)


def test_registered_implicit_families_carry_builders():
    ensure_builtins()
    flagged = {
        entry.name
        for entry in GRAPH_FAMILIES.entries()
        if entry.metadata.get("implicit")
        and not entry.metadata.get("fixture")
    }
    assert flagged == {"cycle", "path", "torus", "tree"}
    for name in flagged:
        assert GRAPH_FAMILIES.get(name).metadata["implicit_builder"] is not None


# ----------------------------------------------------------------------
# Generator freeze contract (satellite): frozen returns, pickle rebuilds
# ----------------------------------------------------------------------

_GENERATOR_TWINS = [
    ("cycle", lambda: cycle(14)),
    ("path", lambda: path(11)),
    ("torus", lambda: toroidal_grid(4, 5)),
    ("tree", lambda: balanced_regular_tree(3, 3)),
]


@pytest.mark.parametrize(
    "name,factory", _GENERATOR_TWINS, ids=[n for n, _ in _GENERATOR_TWINS]
)
def test_generators_return_frozen_graphs(name, factory):
    graph = factory()
    assert graph.is_frozen
    assert graph.freeze() is graph  # idempotent, no re-freeze dance


@pytest.mark.parametrize(
    "name,factory", _GENERATOR_TWINS, ids=[n for n, _ in _GENERATOR_TWINS]
)
def test_generator_freeze_pickle_csr_rebuilds(name, factory):
    graph = factory()
    first = graph.csr()
    expander = BatchBallExpander(graph)
    assert first._expander is expander or first._expander is None
    clone = pickle.loads(pickle.dumps(graph))
    assert clone.is_frozen
    assert clone is not graph
    rebuilt = clone.csr()
    assert rebuilt is not first  # cache was dropped, not smuggled
    assert rebuilt.indptr.tolist() == first.indptr.tolist()
    assert rebuilt.indices.tolist() == first.indices.tolist()
    assert rebuilt.rev_ports.tolist() == first.rev_ports.tolist()
    assert rebuilt._expander is None  # expander cache dropped too


# ----------------------------------------------------------------------
# Golden pins: packed-row digests + class multiplicities per family
# ----------------------------------------------------------------------

#: (handle factory, radius) -> (sha256[:16] of concatenated class-key
#: stream bytes, class counts, class representatives).  Any drift in
#: the packed-stream scheme, the closed-form rows, or the strata shows
#: up here without hypothesis in the loop.
_GOLDEN = {
    ("cycle12", 0): ("5f3a137061e8f874", [12], [0]),
    ("cycle12", 1): ("60915ed5d23b59e0", [1, 1, 9, 1], [0, 1, 2, 11]),
    ("cycle12", 2): (
        "30c0db86ca316c90", [1, 1, 1, 7, 1, 1], [0, 1, 2, 3, 10, 11]
    ),
    ("torus4x5", 0): ("79cc36396f7b0ded", [20], [0]),
    ("torus4x5", 1): (
        "a6c81e6c6fe72da1",
        [1, 1, 2, 1, 1, 1, 2, 1, 1, 1, 2, 1, 1, 1, 2, 1],
        [0, 1, 2, 4, 5, 6, 7, 9, 10, 11, 12, 14, 15, 16, 17, 19],
    ),
    ("torus4x5", 2): ("caabb386739e1534", [1] * 20, list(range(20))),
    ("tree3d3", 0): ("a3bdfb4989ada960", [10, 12], [0, 10]),
    ("tree3d3", 1): (
        "94fe6b15c4172fa8", [2, 1, 1, 3, 3, 6, 6], [0, 2, 3, 4, 5, 10, 11]
    ),
    ("tree3d3", 2): (
        "59867d0ebb385051",
        [1] * 10 + [3] * 4,
        list(range(14)),
    ),
}

_GOLDEN_HANDLES = {
    "cycle12": lambda: ImplicitCycle(12),
    "torus4x5": lambda: ImplicitTorus(4, 5),
    "tree3d3": lambda: ImplicitTree(3, 3),
}


@pytest.mark.parametrize(
    "name,radius", sorted(_GOLDEN), ids=[f"{n}-r{r}" for n, r in sorted(_GOLDEN)]
)
def test_golden_class_counts_and_stream_digests(name, radius):
    handle = _GOLDEN_HANDLES[name]()
    expected_digest, expected_counts, expected_reps = _GOLDEN[(name, radius)]
    cc = ImplicitBallExpander(handle).class_counts(radius)
    digest = hashlib.sha256()
    for key in cc.keys:
        digest.update(key[-1])  # the packed stream bytes
    assert digest.hexdigest()[:16] == expected_digest
    assert list(cc.counts) == expected_counts
    assert list(cc.reps) == expected_reps
    # The materialized path pins to the very same bytes.
    part = BatchBallExpander(handle.materialized()).node_classes(radius)
    assert part.keys == cc.keys
