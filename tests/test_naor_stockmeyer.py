"""Tests for the odd-degree O(1) weak 2-coloring (Naor-Stockmeyer row)."""

import random

import pytest

from repro.algorithms import (
    in_degree_labeling,
    is_distance_k_weak,
    odd_degree_weak_two_coloring,
    order_type_labeling,
)
from repro.graphs import (
    Graph,
    balanced_regular_tree,
    cycle,
    path,
    random_permutation_ids,
    random_regular_graph,
    sequential_ids,
    sorted_by_bfs_ids,
    star,
)
from repro.lcl import WeakColoring


class TestInDegreeLabeling:
    def test_one_round(self):
        g = path(3)
        labels, rounds = in_degree_labeling(g, [2, 1, 3])
        assert rounds == 1
        assert labels == [1, 0, 1]

    def test_counts_smaller_neighbors(self):
        g = star(4)
        labels, _ = in_degree_labeling(g, [5, 1, 2, 3, 4])
        assert labels[0] == 4

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            in_degree_labeling(path(3), [1, 1, 2])

    def test_documented_negative_result(self):
        """BFS-order identifiers flatten the in-degree labeling on trees.

        This is the worst case that rules the in-degree shortcut out as
        an O(1) weak coloring — kept as a regression anchor for the
        docstring's claim.
        """
        g = balanced_regular_tree(3, 5)
        labels, _ = in_degree_labeling(g, sorted_by_bfs_ids(g))
        assert not is_distance_k_weak(g, labels, 2)
        # Indeed everything except the root is in-degree 1.
        assert set(labels[1:]) == {1}


class TestOrderTypeLabeling:
    def test_round_cost_is_radius(self):
        g = path(4)
        _, rounds = order_type_labeling(g, sequential_ids(g), radius=2)
        assert rounds == 2

    def test_weak_on_odd_regular_random(self):
        rng = random.Random(0)
        for d in (3, 5):
            for trial in range(5):
                g = random_regular_graph(30 if d == 3 else 36, d,
                                         rng=random.Random(rng.getrandbits(64)))
                labels, _ = order_type_labeling(g, random_permutation_ids(g, rng))
                assert is_distance_k_weak(g, labels, 1)

    def test_weak_on_odd_trees_with_adversarial_ids(self):
        g = balanced_regular_tree(3, 5)
        for ids in (sequential_ids(g), sorted_by_bfs_ids(g)):
            labels, _ = order_type_labeling(g, ids)
            assert is_distance_k_weak(g, labels, 1)

    def test_weak_on_matchings(self):
        g = Graph(6, [(0, 1), (2, 3), (4, 5)])
        labels, _ = order_type_labeling(g, [6, 1, 5, 2, 4, 3])
        assert is_distance_k_weak(g, labels, 1)

    def test_fails_on_even_degree_negative_control(self):
        # The even-degree case is exactly where the paper's lower bound
        # lives: increasing identifiers on a cycle are order-homogeneous.
        g = cycle(12)
        labels, _ = order_type_labeling(g, sequential_ids(g))
        assert not is_distance_k_weak(g, labels, 1)

    def test_types_are_injectively_encoded(self):
        g = star(3)
        labels, _ = order_type_labeling(g, sequential_ids(g))
        # Center and leaves must differ (different degrees).
        assert labels[0] != labels[1]

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            order_type_labeling(path(3), [1, 1, 2])


class TestOddDegreeWeakTwoColoring:
    def assert_weak2(self, g, labels):
        assert not WeakColoring(2).verify(g, labels)

    def test_on_3_regular_trees(self):
        for depth in (1, 2, 4):
            g = balanced_regular_tree(3, depth)
            out = odd_degree_weak_two_coloring(g, sequential_ids(g))
            self.assert_weak2(g, out.labels)

    def test_on_3_and_5_regular_graphs(self):
        rng = random.Random(7)
        for d, n in ((3, 20), (5, 24)):
            g = random_regular_graph(n, d, rng=rng)
            out = odd_degree_weak_two_coloring(g, random_permutation_ids(g, rng))
            self.assert_weak2(g, out.labels)

    def test_on_matching(self):
        g = Graph(4, [(0, 1), (2, 3)])
        out = odd_degree_weak_two_coloring(g, [4, 1, 3, 2])
        self.assert_weak2(g, out.labels)

    def test_on_star_with_odd_center(self):
        g = star(3)
        out = odd_degree_weak_two_coloring(g, sequential_ids(g))
        self.assert_weak2(g, out.labels)

    def test_rounds_constant_across_sizes(self):
        rounds = set()
        for depth in (2, 3, 4, 5):
            g = balanced_regular_tree(3, depth)
            out = odd_degree_weak_two_coloring(g, sequential_ids(g))
            rounds.add(out.rounds)
        assert len(rounds) == 1

    def test_rounds_constant_under_adversarial_ids(self):
        g = balanced_regular_tree(3, 4)
        r1 = odd_degree_weak_two_coloring(g, sequential_ids(g)).rounds
        r2 = odd_degree_weak_two_coloring(g, sorted_by_bfs_ids(g)).rounds
        assert r1 == r2

    def test_even_degree_rejected(self):
        g = cycle(6)
        with pytest.raises(ValueError, match="odd"):
            odd_degree_weak_two_coloring(g, sequential_ids(g))

    def test_mixed_parity_rejected(self):
        g = path(3)  # middle node has degree 2
        with pytest.raises(ValueError, match="odd"):
            odd_degree_weak_two_coloring(g, sequential_ids(g))
