"""Property-based tests (hypothesis) for core invariants.

Each property mirrors a theorem-level guarantee of the library:
verifier/solver agreement, pipeline correctness on arbitrary trees and
regular graphs, CV properness preservation, view canonicality, and the
odd-degree order-type weak-coloring claim under adversarial identifiers.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    cv_step,
    linial_coloring,
    mis_via_linial,
    odd_degree_weak_two_coloring,
    order_type_labeling,
    is_distance_k_weak,
    solve_pstar,
    weak_two_coloring_from_ids,
)
from repro.graphs import Graph, balanced_regular_tree, random_regular_graph, random_tree
from repro.lcl import MaximalIndependentSet, PStar, ProperColoring, WeakColoring
from repro.local_model import gather_view
from repro.speedup import OrientedBall, reduce_word


DEFAULT_SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def tree_with_ids(draw, min_nodes=2, max_nodes=40):
    """A random tree plus a random identifier permutation."""
    n = draw(st.integers(min_nodes, max_nodes))
    seed = draw(st.integers(0, 2**32 - 1))
    tree = random_tree(n, random.Random(seed))
    ids = list(range(1, n + 1))
    random.Random(seed ^ 0xDEADBEEF).shuffle(ids)
    return tree, ids


@st.composite
def regular_graph_with_ids(draw, d=4, min_nodes=8, max_nodes=36):
    n = draw(st.integers(min_nodes, max_nodes))
    if (n * d) % 2:
        n += 1
    seed = draw(st.integers(0, 2**32 - 1))
    g = random_regular_graph(n, d, rng=random.Random(seed))
    ids = list(range(1, g.n + 1))
    random.Random(seed ^ 0xABCDEF).shuffle(ids)
    return g, ids


class TestWeakColoringProperties:
    @DEFAULT_SETTINGS
    @given(tree_with_ids())
    def test_pipeline_on_random_trees(self, data):
        tree, ids = data
        out = weak_two_coloring_from_ids(tree, ids)
        assert WeakColoring(2).is_feasible(tree, out.labels)

    @DEFAULT_SETTINGS
    @given(regular_graph_with_ids(d=4))
    def test_pipeline_on_random_4_regular(self, data):
        g, ids = data
        out = weak_two_coloring_from_ids(g, ids)
        assert WeakColoring(2).is_feasible(g, out.labels)

    @DEFAULT_SETTINGS
    @given(regular_graph_with_ids(d=3, min_nodes=8, max_nodes=30))
    def test_order_types_weakly_color_odd_regular(self, data):
        g, ids = data
        labels, _ = order_type_labeling(g, ids)
        assert is_distance_k_weak(g, labels, 1)

    @DEFAULT_SETTINGS
    @given(regular_graph_with_ids(d=3, min_nodes=8, max_nodes=24))
    def test_odd_degree_constant_round_pipeline(self, data):
        g, ids = data
        out = odd_degree_weak_two_coloring(g, ids)
        assert WeakColoring(2).is_feasible(g, out.labels)


class TestPStarProperties:
    @DEFAULT_SETTINGS
    @given(tree_with_ids(min_nodes=2, max_nodes=50))
    def test_solver_output_always_happy_on_trees(self, data):
        tree, ids = data
        delta = max(3, tree.max_degree())
        sol = solve_pstar(tree, delta, ids)
        assert not PStar(delta).verify(tree, sol.labels)

    @DEFAULT_SETTINGS
    @given(regular_graph_with_ids(d=4, min_nodes=10, max_nodes=26))
    def test_solver_output_happy_on_regular_graphs(self, data):
        g, ids = data
        sol = solve_pstar(g, 4, ids)
        assert not PStar(4).verify(g, sol.labels)


class TestColoringProperties:
    @DEFAULT_SETTINGS
    @given(tree_with_ids())
    def test_linial_proper_on_trees(self, data):
        tree, ids = data
        out = linial_coloring(tree, ids)
        assert ProperColoring(tree.max_degree() + 1).is_feasible(tree, out.colors)

    @DEFAULT_SETTINGS
    @given(tree_with_ids())
    def test_mis_on_trees(self, data):
        tree, ids = data
        out = mis_via_linial(tree, ids)
        assert MaximalIndependentSet().is_feasible(tree, out.in_mis)

    @given(
        st.integers(0, 2**20 - 1),
        st.integers(0, 2**20 - 1),
        st.integers(0, 2**20 - 1),
    )
    @settings(max_examples=200, deadline=None)
    def test_cv_step_chain_properness(self, a, b, c):
        # For any proper chain a -> b -> c the new pair stays proper.
        if a == b or b == c:
            return
        assert cv_step(a, b) != cv_step(b, c)


class TestViewProperties:
    @DEFAULT_SETTINGS
    @given(tree_with_ids(min_nodes=3, max_nodes=30), st.integers(0, 3))
    def test_view_sizes_match_balls(self, data, radius):
        tree, ids = data
        for v in list(tree.nodes())[:5]:
            view = gather_view(tree, v, radius, ids=ids)
            assert view.node_count == len(tree.ball(v, radius))

    @DEFAULT_SETTINGS
    @given(tree_with_ids(min_nodes=3, max_nodes=30))
    def test_view_edges_are_graph_edges(self, data):
        tree, ids = data
        view = gather_view(tree, 0, 2, ids=ids)
        for i, j, pi, pj, _ in view.edges:
            u, v = view.originals[i], view.originals[j]
            assert tree.has_edge(u, v)
            assert tree.port_to(u, v) == pi
            assert tree.port_to(v, u) == pj


class TestWordProperties:
    @given(st.lists(st.tuples(st.integers(0, 2), st.sampled_from([1, -1])), max_size=12))
    @settings(max_examples=200, deadline=None)
    def test_reduce_word_idempotent(self, word):
        once = reduce_word(word)
        assert reduce_word(once) == once

    @given(st.lists(st.tuples(st.integers(0, 1), st.sampled_from([1, -1])), max_size=10))
    @settings(max_examples=200, deadline=None)
    def test_reduced_words_non_backtracking(self, word):
        reduced = reduce_word(word)
        for a, b in zip(reduced, reduced[1:]):
            assert b != (a[0], -a[1])

    @given(st.integers(1, 3), st.integers(0, 3))
    @settings(max_examples=50, deadline=None)
    def test_ball_size_formula(self, k, t):
        ball = OrientedBall(k, t)
        delta = 2 * k
        expected = 1
        layer = delta
        for _ in range(t):
            expected += layer
            layer *= delta - 1
        assert ball.size == (expected if t > 0 else 1)
