"""Regression tests: ``ShardedEngine.run_many`` metrics folding.

The folded parent-side totals must equal the per-shard sums exactly —
on the pooled path, on the fully-degraded path, and (the regression
that motivated the per-chunk rework) on a *mixed* batch where some
chunks pool and others degrade.  The old implementation decided
degradation for the whole batch and relayed pooled metrics inside its
``try`` block, so an exception after a partial relay re-folded every
request through the serial mirror, double-counting ``cache_*`` fields.
The rework performs one assembly pass after all evaluation: exactly one
``on_subrun`` per request, one ``on_degraded`` per degraded chunk.
"""

import pytest

from repro.algorithms.view_rules import make_view_rule
from repro.core import SimRequest, simulate
from repro.core.engine import resolve_engine
from repro.core.sharded import ShardedEngine, _split
from repro.graphs.generators import cycle
from repro.instrumentation.metrics import MetricsTracer
from repro.local_model.edge_model import EdgeViewAlgorithm


def _view_request(i, n=12):
    return SimRequest(
        kind="view",
        graph=cycle(n),
        algorithm=make_view_rule("local-max", radius=1),
        ids=list(range(n)),
        label=f"fold-view-{i}",
    )


def _lambda_edge_request(i, n=10):
    # A lambda cannot cross a process boundary: its chunk must degrade.
    return SimRequest(
        kind="edge",
        graph=cycle(n),
        algorithm=EdgeViewAlgorithm(1, lambda view: view.node_count),
        randomness=[3] * n,
        label=f"fold-edge-{i}",
    )


def _per_shard_sums(requests, shards, inner="cached"):
    """The ground truth: run each contiguous chunk through a fresh
    ``inner`` engine (exactly what workers and the serial mirror do)
    and sum the per-request metrics."""
    totals = {"cache_lookups": 0, "cache_hits": 0, "cache_misses": 0,
              "cache_distinct_classes": 0, "subruns": 0}
    reports = []
    for chunk in _split(requests, shards):
        engine = resolve_engine(inner)
        for request in chunk:
            metrics = MetricsTracer()
            reports.append(engine.run(request, tracer=metrics))
            m = metrics.metrics
            totals["cache_lookups"] += m.cache_lookups
            totals["cache_hits"] += m.cache_hits
            totals["cache_misses"] += m.cache_misses
            totals["cache_distinct_classes"] += m.cache_distinct_classes
            totals["subruns"] += 1
    return totals, reports


def _assert_fold_matches(tracer, expected):
    m = tracer.metrics
    for name, want in expected.items():
        assert getattr(m, name) == want, (
            f"{name}: folded {getattr(m, name)} != per-shard sum {want}"
        )


@pytest.mark.parametrize("shards", [2, 3])
def test_pooled_batch_folds_exact_per_shard_sums(shards):
    requests = [_view_request(i) for i in range(4)]
    expected, want_reports = _per_shard_sums(requests, shards)
    engine = ShardedEngine(shards=shards, inner="cached")
    try:
        tracer = MetricsTracer()
        reports = engine.run_many(requests, tracer=tracer)
    finally:
        engine.close()
    _assert_fold_matches(tracer, expected)
    assert tracer.metrics.degradations == 0
    for got, want in zip(reports, want_reports):
        assert got.identity() == want.identity()
        assert "degraded" not in got.info


def test_fully_degraded_batch_folds_exact_per_shard_sums():
    requests = [_lambda_edge_request(i) for i in range(3)]
    expected, want_reports = _per_shard_sums(requests, 2)
    engine = ShardedEngine(shards=2, inner="cached")
    try:
        tracer = MetricsTracer()
        reports = engine.run_many(requests, tracer=tracer)
    finally:
        engine.close()
    _assert_fold_matches(tracer, expected)
    # One on_degraded per degraded chunk (both chunks are unpicklable).
    assert tracer.metrics.degradations == 2
    assert tracer.metrics.degraded_reasons == ["unpicklable", "unpicklable"]
    for got, want in zip(reports, want_reports):
        assert got.identity() == want.identity()
        assert got.info["degraded"] == "unpicklable"


def test_mixed_batch_pools_healthy_chunk_and_degrades_the_other():
    """The motivating case: chunk 1 picklable, chunk 2 holds lambdas.

    Folded totals must equal per-shard sums (no double-count), only
    the degraded chunk's reports carry ``info["degraded"]``, and every
    report stays bit-identical to a direct run.
    """
    requests = [_view_request(0), _view_request(1),
                _lambda_edge_request(2), _lambda_edge_request(3)]
    expected, _ = _per_shard_sums(requests, 2)
    engine = ShardedEngine(shards=2, inner="cached")
    try:
        tracer = MetricsTracer()
        reports = engine.run_many(requests, tracer=tracer)
    finally:
        engine.close()
    _assert_fold_matches(tracer, expected)
    assert tracer.metrics.degradations == 1
    assert tracer.metrics.degraded_reasons == ["unpicklable"]
    assert "degraded" not in reports[0].info
    assert "degraded" not in reports[1].info
    assert reports[2].info["degraded"] == "unpicklable"
    assert reports[3].info["degraded"] == "unpicklable"
    for request, report in zip(requests, reports):
        assert report.identity() == simulate(request, engine="direct").identity()


def test_untraced_mixed_batch_matches_direct():
    requests = [_view_request(0), _view_request(1),
                _lambda_edge_request(2)]
    engine = ShardedEngine(shards=2, inner="cached")
    try:
        reports = engine.run_many(requests)
    finally:
        engine.close()
    assert "degraded" not in reports[0].info
    assert reports[2].info["degraded"] == "unpicklable"
    for request, report in zip(requests, reports):
        assert report.identity() == simulate(request, engine="direct").identity()


def test_relay_exception_does_not_refold_the_batch():
    """A tracer that raises mid-relay must propagate, never re-fold.

    The old implementation caught *any* exception from the pooled
    branch — including one raised by the user's tracer after some
    requests were already relayed — and re-ran the whole batch through
    the serial mirror, folding those requests' counters twice."""

    class ExplodingTracer(MetricsTracer):
        def __init__(self):
            super().__init__()
            self.relayed = 0

        def on_subrun(self, metrics):
            self.relayed += 1
            if self.relayed == 2:
                raise RuntimeError("tracer exploded mid-relay")
            super().on_subrun(metrics)

    requests = [_view_request(i) for i in range(4)]
    engine = ShardedEngine(shards=2, inner="cached")
    try:
        tracer = ExplodingTracer()
        with pytest.raises(RuntimeError, match="mid-relay"):
            engine.run_many(requests, tracer=tracer)
    finally:
        engine.close()
    # Exactly one subrun folded (the second relay raised before
    # folding); nothing was double-counted by a serial re-run.
    assert tracer.metrics.subruns == 1
    single = MetricsTracer()
    resolve_engine("cached").run(requests[0], tracer=single)
    assert tracer.metrics.cache_lookups == single.metrics.cache_lookups


def test_single_chunk_batch_runs_in_process_without_degradation():
    engine = ShardedEngine(shards=4, inner="cached")
    try:
        tracer = MetricsTracer()
        reports = engine.run_many([_lambda_edge_request(0)], tracer=tracer)
    finally:
        engine.close()
    # One chunk: the in-process path is the happy path, not a fallback.
    assert tracer.metrics.degradations == 0
    assert "degraded" not in reports[0].info
    assert tracer.metrics.subruns == 1
