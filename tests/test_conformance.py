"""Tests for the conformance subsystem (contracts, fuzzer, shrinker, CLI).

The fault-injection suite has its own module
(``test_conformance_faults.py``); this one covers the contract layer,
case sampling/materialization, the check battery on known-good
algorithms, shrinking of the planted broken fixture, repro artifacts,
and the ``python -m repro.conformance`` entry point.
"""

import json
import random

import pytest

from repro.conformance import (
    BACKENDS,
    BROKEN_MIS,
    CaseSpec,
    collect_contracts,
    contract_for,
    explicit_case,
    load_repro_artifact,
    materialize_case,
    minimal_repro,
    register_broken_fixture,
    replay_artifact,
    run_case,
    sample_cases,
    shrink_case,
    write_repro_artifact,
)
from repro.conformance.contracts import resolve_auto, sample_range
from repro.conformance.fuzzer import CheckFailure
from repro.conformance.__main__ import main as conformance_main
from repro.core.engine import derive_seed
from repro.graphs.generators import path

EXPECTED_CONTRACTS = {
    "luby-mis",
    "greedy-sequential-coloring",
    "randomized-weak-coloring",
    "flood-leader-parity",
    "local-max",
    "random-priority",
    "ball-signature",
    "degree-profile",
    "edge-profile",
    "edge-parity",
    "finite-local-maximum",
    "finite-smaller-count",
}


def _path_adjacency(n):
    graph = path(n)
    return [list(graph.neighbors(v)) for v in graph.nodes()]


def _broken_case(n=10):
    # Ascending ids on a path: only the last node is a local maximum,
    # so the false "solves MIS" claim fails at every interior node.
    return CaseSpec(
        algorithm=BROKEN_MIS,
        seed=derive_seed(0, "broken-case"),
        adjacency=_path_adjacency(n),
        ids=list(range(1, n + 1)),
    )


# ---------------------------------------------------------------------------
# contracts
# ---------------------------------------------------------------------------


class TestContracts:
    def test_collect_contracts_matches_registry(self):
        names = {c.algorithm for c in collect_contracts()}
        assert names == EXPECTED_CONTRACTS

    def test_entries_without_domains_are_not_fuzzable(self):
        names = {c.algorithm for c in collect_contracts()}
        assert "cole-vishkin-mp" not in names  # needs an input coloring
        with pytest.raises(ValueError, match="no conformance domains"):
            contract_for("cole-vishkin-mp")

    def test_fixtures_are_excluded_unless_asked(self):
        register_broken_fixture()
        assert BROKEN_MIS not in {c.algorithm for c in collect_contracts()}
        with_fixtures = {
            c.algorithm for c in collect_contracts(include_fixtures=True)
        }
        assert BROKEN_MIS in with_fixtures

    def test_register_broken_fixture_is_idempotent(self):
        register_broken_fixture()
        register_broken_fixture()
        assert contract_for(BROKEN_MIS).solves[0] == "mis"

    def test_contract_shape(self):
        contract = contract_for("luby-mis")
        assert contract.kind == "local"
        assert contract.solves == ("mis", {})
        assert contract.domains
        assert set(contract.invariances) <= {
            "determinism", "backend-identity",
            "port-permutation", "label-order",
        }

    def test_auto_verifier_kwarg_resolves_against_graph(self):
        contract = contract_for("greedy-sequential-coloring")
        verifier = contract.verifier(path(4))  # max degree 2
        assert verifier.colors == 3

    def test_resolve_auto(self):
        assert resolve_auto("auto:max-degree+1", path(5)) == 3
        assert resolve_auto(7, path(5)) == 7
        assert resolve_auto("plain-string", path(5)) == "plain-string"
        with pytest.raises(ValueError, match="unknown auto"):
            resolve_auto("auto:chromatic-number", path(5))

    def test_sample_range(self):
        rng = random.Random(0)
        assert all(2 <= sample_range((2, 5), rng) <= 5 for _ in range(20))
        assert all(sample_range((4, 16, 2), rng) % 2 == 0 for _ in range(20))
        assert sample_range("cycle", rng) == "cycle"
        with pytest.raises(ValueError, match="range spec"):
            sample_range((1, 2, 3, 4), rng)


# ---------------------------------------------------------------------------
# sampling + materialization
# ---------------------------------------------------------------------------


class TestSampling:
    def test_sample_cases_is_seed_deterministic(self):
        contracts = collect_contracts()
        a = sample_cases(contracts, 12, base_seed=7)
        b = sample_cases(contracts, 12, base_seed=7)
        assert [case.to_dict() for _, case in a] == [
            case.to_dict() for _, case in b
        ]
        c = sample_cases(contracts, 12, base_seed=8)
        assert [case.to_dict() for _, case in a] != [
            case.to_dict() for _, case in c
        ]

    def test_sample_cases_round_robins_contracts(self):
        contracts = collect_contracts()
        cases = sample_cases(contracts, 2 * len(contracts), base_seed=0)
        seen = [contract.algorithm for contract, _ in cases]
        assert seen == 2 * [c.algorithm for c in contracts]

    def test_sampled_params_respect_the_domain(self):
        contract = contract_for("flood-leader-parity")
        for _, case in sample_cases([contract], 30, base_seed=3):
            if case.graph_family == "cycle":
                assert case.graph_params["n"] % 2 == 0  # bipartite only

    def test_materialize_is_deterministic(self):
        contract = contract_for("luby-mis")
        (_, case), = sample_cases([contract], 1, base_seed=5)
        g1, ids1, rand1 = materialize_case(contract, case)
        g2, ids2, rand2 = materialize_case(contract, case)
        rows = [list(g1.neighbors(v)) for v in g1.nodes()]
        assert rows == [list(g2.neighbors(v)) for v in g2.nodes()]
        assert ids1 == ids2
        assert rand1 == rand2

    def test_explicit_case_pins_everything(self):
        contract = contract_for("luby-mis")
        (_, case), = sample_cases([contract], 1, base_seed=5)
        pinned = explicit_case(contract, case)
        assert pinned.adjacency is not None
        assert pinned.ids is not None
        graph, ids, randomness = materialize_case(contract, case)
        pg, pids, prand = materialize_case(contract, pinned)
        assert [list(pg.neighbors(v)) for v in pg.nodes()] == [
            list(graph.neighbors(v)) for v in graph.nodes()
        ]
        assert pids == ids
        assert prand == randomness

    def test_case_spec_json_round_trip(self):
        case = _broken_case(4)
        again = CaseSpec.from_dict(
            json.loads(json.dumps(case.to_dict()))
        )
        assert again.to_dict() == case.to_dict()


# ---------------------------------------------------------------------------
# run_case
# ---------------------------------------------------------------------------


class TestRunCase:
    def test_known_good_contracts_pass(self):
        contracts = collect_contracts()
        for contract, case in sample_cases(contracts, len(contracts), 0):
            result = run_case(contract, case)
            assert result.ok, (contract.algorithm, result.failures)

    def test_runs_all_backends(self):
        assert BACKENDS == ("direct", "cached", "sharded")

    def test_broken_fixture_fails_the_verifier(self):
        register_broken_fixture()
        result = run_case(contract_for(BROKEN_MIS), _broken_case())
        assert "verifier" in result.failed_checks()
        assert not result.ok

    def test_checks_subset_restricts_what_runs(self):
        register_broken_fixture()
        result = run_case(
            contract_for(BROKEN_MIS), _broken_case(),
            checks={"determinism"},
        )
        assert result.ok  # the verifier bug is invisible to this check

    def test_crash_is_a_finding_not_an_abort(self):
        contract = contract_for("luby-mis")
        bad = CaseSpec(algorithm="luby-mis", seed=0,
                       graph_family="no-such-family")
        result = run_case(contract, bad)
        assert result.failed_checks() == {"crash"}

    def test_check_failure_formatting(self):
        failure = CheckFailure("verifier", "node 3 violates mis")
        assert str(failure) == "[verifier] node 3 violates mis"


# ---------------------------------------------------------------------------
# shrinking
# ---------------------------------------------------------------------------


class TestShrink:
    def test_broken_fixture_shrinks_to_three_node_path(self):
        register_broken_fixture()
        contract = contract_for(BROKEN_MIS)
        shrunk = shrink_case(contract, _broken_case(), {"verifier"})
        # 1- and 2-node graphs always satisfy the claim (an isolated or
        # top-id node is a local maximum), so 3 nodes / 2 edges is the
        # true minimum — the shrinker must reach it, not approximate it.
        assert shrunk.nodes == 3
        assert shrunk.edges == 2
        assert {f.check for f in shrunk.failures} == {"verifier"}
        replay = run_case(contract, shrunk.case)
        assert "verifier" in replay.failed_checks()

    def test_shrink_respects_evaluation_budget(self):
        register_broken_fixture()
        shrunk = shrink_case(
            contract_for(BROKEN_MIS), _broken_case(), {"verifier"},
            max_evaluations=3,
        )
        assert shrunk.evaluations <= 3
        assert shrunk.nodes >= 3  # best-so-far, not necessarily minimal

    def test_shrink_of_passing_case_returns_immediately(self):
        contract = contract_for("luby-mis")
        (_, case), = sample_cases([contract], 1, base_seed=0)
        shrunk = shrink_case(contract, case, {"verifier"})
        assert shrunk.evaluations == 1
        assert shrunk.failures == []

    def test_minimal_repro_convenience(self):
        register_broken_fixture()
        assert minimal_repro(contract_for(BROKEN_MIS), _broken_case())
        contract = contract_for("degree-profile")
        (_, good), = sample_cases([contract], 1, base_seed=0)
        assert minimal_repro(contract, good) is None

    def test_shrink_summary_mentions_size(self):
        register_broken_fixture()
        shrunk = shrink_case(
            contract_for(BROKEN_MIS), _broken_case(), {"verifier"}
        )
        assert "3 nodes" in shrunk.summary()


# ---------------------------------------------------------------------------
# artifacts
# ---------------------------------------------------------------------------


class TestArtifacts:
    def test_write_load_replay_round_trip(self, tmp_path):
        register_broken_fixture()
        contract = contract_for(BROKEN_MIS)
        shrunk = shrink_case(contract, _broken_case(), {"verifier"})
        artifact = write_repro_artifact(
            str(tmp_path), contract, shrunk.case, shrunk.failures
        )
        payload, case = load_repro_artifact(artifact)
        assert payload["contract"]["algorithm"] == BROKEN_MIS
        assert payload["failures"][0]["check"] == "verifier"
        assert case.adjacency == shrunk.case.adjacency
        replayed = replay_artifact(artifact)
        assert "verifier" in replayed.failed_checks()

    def test_unknown_schema_is_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "something-else/9"}))
        with pytest.raises(ValueError, match="unknown schema"):
            load_repro_artifact(str(bad))


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_list_exits_clean(self, capsys):
        assert conformance_main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPECTED_CONTRACTS:
            assert name in out

    def test_small_fuzz_run_passes(self, capsys):
        assert conformance_main(["--cases", "10", "--seed", "0"]) == 0
        assert "10/10 cases passed" in capsys.readouterr().out

    def test_self_test_catches_shrinks_and_replays(self, tmp_path, capsys):
        code = conformance_main([
            "--cases", "0", "--self-test", "--report", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "self-test ok" in out
        summary = json.loads(
            (tmp_path / "conformance-summary.json").read_text()
        )
        assert summary["exit_code"] == 0
        artifacts = list(tmp_path.glob("conformance-repro-*.json"))
        assert artifacts, "self-test must leave a replayable artifact"
