"""Unit tests for radius-t views (node and edge)."""

import pytest

from repro.graphs import (
    balanced_regular_tree,
    cycle,
    orient_tree,
    path,
    sequential_ids,
    toroidal_grid,
    orient_torus,
)
from repro.local_model import gather_edge_view, gather_view


class TestNodeViews:
    def test_radius_zero_sees_only_self(self):
        g = balanced_regular_tree(4, 2)
        view = gather_view(g, 0, 0)
        assert view.node_count == 1
        assert view.degrees == (4,)
        assert view.edges == ()

    def test_ball_sizes(self):
        g = balanced_regular_tree(4, 3)
        assert gather_view(g, 0, 1).node_count == 5
        assert gather_view(g, 0, 2).node_count == 17
        assert gather_view(g, 0, 3).node_count == 53

    def test_center_is_local_zero(self):
        g = cycle(8)
        view = gather_view(g, 3, 2)
        assert view.center == 0
        assert view.distances[0] == 0
        assert view.originals[0] == 3

    def test_degrees_are_global_degrees(self):
        # Boundary nodes report their true degree even though their
        # neighbors are not in the view.
        g = balanced_regular_tree(4, 2)
        view = gather_view(g, 0, 1)
        assert set(view.degrees[1:]) == {4}

    def test_induced_edges_included(self):
        # In a cycle, radius n/2 closes the loop: the far edge appears.
        g = cycle(6)
        view = gather_view(g, 0, 3)
        assert view.node_count == 6
        assert len(view.edges) == 6

    def test_edges_respect_radius(self):
        g = cycle(6)
        view = gather_view(g, 0, 2)
        assert view.node_count == 5
        assert len(view.edges) == 4  # the induced path, loop not closed

    def test_identifiers_travel_with_view(self):
        g = path(5)
        ids = [10, 20, 30, 40, 50]
        view = gather_view(g, 2, 1, ids=ids)
        assert sorted(view.identifiers) == [20, 30, 40]

    def test_isomorphic_positions_same_key(self):
        # Anonymous interior cycle nodes share port patterns (node 0's
        # ports differ because the wrap-around edge lands last), so any
        # two nonzero nodes far from the wrap look alike.
        g = cycle(9)
        a = gather_view(g, 3, 2, ids=None)
        b = gather_view(g, 6, 2, ids=None)
        assert a.key() == b.key()

    def test_different_structures_different_keys(self):
        tree = balanced_regular_tree(3, 2)
        a = gather_view(tree, 0, 1)  # center, degree 3
        leaf = tree.sphere(0, 2)[0]
        b = gather_view(tree, leaf, 1)
        assert a.key() != b.key()

    def test_orientation_directions_in_view(self):
        g = toroidal_grid(4, 4)
        o = orient_torus(g, 4, 4)
        view = gather_view(g, 0, 1, orientation=o)
        dirs = {d for *_rest, d in view.edges}
        assert dirs <= {(0, 1), (0, -1), (1, 1), (1, -1)}
        # Center has one neighbor in each direction.
        assert view.neighbor_in_direction(0, 0, 1) is not None
        assert view.neighbor_in_direction(0, 1, -1) is not None

    def test_local_neighbors_sorted_by_port(self):
        g = balanced_regular_tree(4, 2)
        view = gather_view(g, 0, 1)
        ports = [p for _, p, _, _ in view.local_neighbors(0)]
        assert ports == sorted(ports)

    def test_nodes_at_distance(self):
        g = balanced_regular_tree(4, 2)
        view = gather_view(g, 0, 2)
        assert len(view.nodes_at_distance(0)) == 1
        assert len(view.nodes_at_distance(1)) == 4
        assert len(view.nodes_at_distance(2)) == 12

    def test_randomness_labels(self):
        g = path(3)
        view = gather_view(g, 1, 1, randomness=[7, 8, 9])
        assert sorted(view.randomness) == [7, 8, 9]

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            gather_view(path(3), 0, -1)

    def test_view_equality_and_hash(self):
        g = cycle(8)
        a = gather_view(g, 3, 1)
        b = gather_view(g, 5, 1)
        assert a == b
        assert hash(a) == hash(b)
        c = gather_view(g, 3, 1, ids=list(range(1, 9)))
        assert a != c


class TestEdgeViews:
    def test_edge_view_radius_zero_is_two_nodes(self):
        g = balanced_regular_tree(4, 2)
        view = gather_edge_view(g, (0, 1), 0)
        assert view.node_count == 2
        assert len(view.edges) == 1

    def test_edge_view_union_of_balls(self):
        g = balanced_regular_tree(4, 3)
        view = gather_edge_view(g, (0, 1), 1)
        expected = set(g.ball(0, 1)) | set(g.ball(1, 1))
        assert set(view.originals) == expected

    def test_edge_view_orientation_canonicalizes_endpoint_order(self):
        tree = balanced_regular_tree(4, 3)
        o = orient_tree(tree, 2)
        u, v = next(iter(tree.edges()))
        a = gather_edge_view(tree, (u, v), 1, orientation=o)
        b = gather_edge_view(tree, (v, u), 1, orientation=o)
        assert a.key() == b.key()

    def test_edge_view_rejects_non_edge(self):
        g = path(4)
        with pytest.raises(ValueError, match="not an edge"):
            gather_edge_view(g, (0, 3), 1)

    def test_edge_views_of_symmetric_positions_match(self):
        # Away from node 0's irregular port pattern, translated edges of
        # an anonymous cycle are indistinguishable.
        g = cycle(10)
        a = gather_edge_view(g, (3, 4), 1)
        b = gather_edge_view(g, (5, 6), 1)
        assert a.key() == b.key()
