"""Golden pins for the one seed-derivation scheme.

Every recorded benchmark baseline, experiment artifact, and conformance
repro artifact encodes seeds produced by
:func:`repro.core.engine.derive_seed` (``sha256(f"{base}:{label}")``,
first 8 bytes, big-endian).  A refactor that changes the scheme —
different hash, different slice, different formatting — would silently
invalidate all of them while every behavioral test still passes.  This
table is the tripwire: if it fails, either revert the scheme or
consciously version every artifact format that embeds seeds.
"""

from repro.core.engine import derive_seed
from repro.experiments.runner import derive_cell_seed

# (base_seed, label) -> expected 64-bit seed.  Computed once from the
# original sha256 scheme; NEVER regenerate without bumping artifact
# schemas (see module docstring).
GOLDEN = {
    (0, ""): 13436079590000323820,
    (0, "a"): 11381658363930578919,
    (0, "case-0"): 1145236966165020301,
    (0, "case-1"): 5959083417789655697,
    (1, "case-0"): 13334860160997366561,
    (0, "cell:table1:row0"): 8038215571587219451,
    (42, "shard-3"): 552323588476383325,
    (123456789, "conformance:luby-mis"): 13010097619980731149,
    (-7, "negative-base"): 11198832648702197070,
    (2**63, "big-base"): 15165842683223383362,
}


def test_derive_seed_matches_golden_table():
    for (base, label), expected in GOLDEN.items():
        assert derive_seed(base, label) == expected, (base, label)


def test_derive_seed_is_64_bit():
    for (base, label) in GOLDEN:
        assert 0 <= derive_seed(base, label) < 2**64


def test_cell_seed_delegates_to_derive_seed():
    # The experiment runner's scheme IS the engine's scheme; if they
    # ever diverge, recorded cell artifacts stop being reproducible.
    assert derive_cell_seed(0, "cell:table1:row0") == GOLDEN[
        (0, "cell:table1:row0")
    ]


def test_distinct_labels_distinct_seeds():
    seeds = {derive_seed(0, f"case-{i}") for i in range(256)}
    assert len(seeds) == 256
