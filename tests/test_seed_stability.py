"""Golden pins for the one seed-derivation scheme.

Every recorded benchmark baseline, experiment artifact, and conformance
repro artifact encodes seeds produced by
:func:`repro.core.engine.derive_seed` (``sha256(f"{base}:{label}")``,
first 8 bytes, big-endian).  A refactor that changes the scheme —
different hash, different slice, different formatting — would silently
invalidate all of them while every behavioral test still passes.  This
table is the tripwire: if it fails, either revert the scheme or
consciously version every artifact format that embeds seeds.
"""

from repro.core.engine import derive_seed
from repro.experiments.runner import derive_cell_seed

# (base_seed, label) -> expected 64-bit seed.  Computed once from the
# original sha256 scheme; NEVER regenerate without bumping artifact
# schemas (see module docstring).
GOLDEN = {
    (0, ""): 13436079590000323820,
    (0, "a"): 11381658363930578919,
    (0, "case-0"): 1145236966165020301,
    (0, "case-1"): 5959083417789655697,
    (1, "case-0"): 13334860160997366561,
    (0, "cell:table1:row0"): 8038215571587219451,
    (42, "shard-3"): 552323588476383325,
    (123456789, "conformance:luby-mis"): 13010097619980731149,
    (-7, "negative-base"): 11198832648702197070,
    (2**63, "big-base"): 15165842683223383362,
    # Sharded-engine shard seeds (f"{label}:{kind}:shard-{i}") for the
    # batched-view fan-out: the CSR layout changes *how* classes are
    # detected, never which seed a shard evaluates under.
    (0, "csr-parity:view:shard-0"): 8877914581975635878,
    (0, "csr-parity:view:shard-1"): 18312293899060393529,
    (0, "csr-parity:edge:shard-0"): 6504253960809091843,
    (7, "bench-csr:view:shard-2"): 5431547783688781935,
}

# Delta-chain seeds: the conformance fuzzer draws its per-step mutation
# RNG from derive_seed(case.seed, f"delta-{step}") and the differential
# harness from derive_seed(0, f"{case_id}:delta-{step}").  These pins
# freeze the replayable mutation surface: a recorded delta repro
# artifact must keep meaning the same edge flips forever.
GOLDEN_DELTA = {
    (0, "delta-0"): 12337490131408107686,
    (0, "delta-1"): 7959757194295194756,
    (0, "delta-7"): 17945920780345780611,
    (1, "delta-0"): 13375119850343404296,
    (42, "delta-3"): 7956202219129321057,
    (0, "ball-signature-r2-cycle24-anonymous:delta-0"): 15027493840121054896,
    (0, "ball-signature-r2-cycle24-anonymous:delta-1"): 8218961485147617807,
    (0, "local-max-r1-tree3d3-ids:delta-0"): 16424448999603291166,
    (0, "edge-t2-torus5x6:delta-0"): 2334578590427418611,
    (123456789, "delta-0"): 2211226511165810134,
}


def test_derive_seed_matches_golden_table():
    for (base, label), expected in GOLDEN.items():
        assert derive_seed(base, label) == expected, (base, label)


def test_derive_seed_is_64_bit():
    for (base, label) in GOLDEN:
        assert 0 <= derive_seed(base, label) < 2**64


def test_cell_seed_delegates_to_derive_seed():
    # The experiment runner's scheme IS the engine's scheme; if they
    # ever diverge, recorded cell artifacts stop being reproducible.
    assert derive_cell_seed(0, "cell:table1:row0") == GOLDEN[
        (0, "cell:table1:row0")
    ]


def test_distinct_labels_distinct_seeds():
    seeds = {derive_seed(0, f"case-{i}") for i in range(256)}
    assert len(seeds) == 256


def test_delta_seeds_match_golden_table():
    for (base, label), expected in GOLDEN_DELTA.items():
        assert derive_seed(base, label) == expected, (base, label)


def test_random_delta_draw_order_is_pinned():
    # random_delta's per-op-kind draw sequence is part of the replayable
    # fuzzing surface (see its docstring).  This pins the exact op
    # stream one seeded RNG produces on cycle(8): reordering the draws,
    # adding one, or changing the feasibility-kind order would silently
    # re-randomize every recorded delta repro artifact.
    import random

    from repro.graphs import cycle, random_delta

    graph = cycle(8)
    rng = random.Random(derive_seed(0, "delta-0"))
    randomness = [7] * 8
    drawn = []
    for _ in range(4):
        delta = random_delta(graph, rng, randomness=randomness, max_ops=2)
        drawn.append(delta.ops)
        graph = delta.apply()
        _, _, randomness = delta.apply_to_labels(None, None, randomness)
    assert drawn == [
        (("add", 5, 7), ("add", 1, 4)),
        (("add", 4, 6),),
        (("add", 0, 6),),
        (("set_randomness", 7, 1247899262), ("add", 3, 7)),
    ]


# Batched-trial pins: the speedup trial kernel promises that
# draw_randrange_block consumes the Mersenne-Twister stream exactly
# like the scalar randrange loop, and that the batched
# estimate_global_success reproduces the per-trial outcomes.  Each
# entry pins, for (algorithm, seed) on the oriented 3x4 torus with 8
# trials: the first six drawn values, the sum of the whole 96-value
# block, and the per-trial failing-node counts.  Computed once from
# the reference scalar loop; NEVER regenerate without bumping the
# speedup-bench schema (see module docstring).
GOLDEN_TRIALS = {
    ("local-maximum", 0): ((1, 1, 0, 1, 1, 1), 49, (12, 12, 12, 7, 12, 7, 12, 7)),
    ("local-maximum", 1): ((0, 0, 1, 0, 1, 1), 52, (12, 12, 12, 7, 12, 12, 12, 12)),
    ("local-maximum", 2): ((0, 0, 0, 1, 0, 1), 49, (12, 12, 12, 12, 12, 7, 12, 12)),
    ("local-maximum", 3): ((0, 0, 1, 1, 0, 0), 52, (12, 4, 12, 12, 7, 12, 12, 12)),
    ("local-maximum", 4): ((0, 1, 0, 1, 1, 0), 51, (4, 12, 12, 12, 12, 12, 7, 12)),
    ("smaller-count", 0): ((1, 1, 0, 1, 1, 1), 49, (0, 0, 0, 0, 0, 1, 0, 1)),
    ("smaller-count", 1): ((0, 0, 1, 0, 1, 1), 52, (0, 1, 0, 0, 0, 0, 0, 0)),
    ("smaller-count", 2): ((0, 0, 0, 1, 0, 1), 49, (0, 0, 0, 0, 0, 0, 2, 4)),
    ("smaller-count", 3): ((0, 0, 1, 1, 0, 0), 52, (0, 2, 0, 0, 0, 0, 1, 0)),
    ("smaller-count", 4): ((0, 1, 0, 1, 1, 0), 51, (0, 1, 0, 0, 0, 0, 0, 0)),
}


def test_batched_trial_draws_and_outcomes_match_golden_table():
    import random

    from repro.graphs.generators import toroidal_grid
    from repro.graphs.orientation import orient_torus
    from repro.instrumentation.tracer import Tracer
    from repro.speedup import trial_kernel as tk
    from repro.speedup.algorithms import (
        local_maximum_coloring,
        smaller_count_coloring,
    )
    from repro.speedup.finite_runner import estimate_global_success

    class _Rec(Tracer):
        def __init__(self):
            self.failing = []

        def on_trial(self, index, succeeded, failing_nodes):
            self.failing.append(failing_nodes)

    factories = {
        "local-maximum": local_maximum_coloring,
        "smaller-count": smaller_count_coloring,
    }
    graph = toroidal_grid(3, 4)
    orientation = orient_torus(graph, 3, 4)
    trials = 8
    for (name, seed), (head, total, failing) in GOLDEN_TRIALS.items():
        alg = factories[name](2, 1)
        block = tk.draw_randrange_block(
            random.Random(seed), alg.values, trials * graph.n
        )
        assert tuple(int(x) for x in block[:6]) == head, (name, seed)
        assert int(block.sum()) == total, (name, seed)
        rec = _Rec()
        estimate_global_success(
            alg, graph, orientation, trials, rng=random.Random(seed),
            tracer=rec, layout="kernel",
        )
        assert tuple(rec.failing) == failing, (name, seed)


def test_shard_seeds_are_layout_independent():
    # The sharded engine derives shard seeds from (seed, label, kind,
    # shard index) only — switching the class-detection layout between
    # "dict" and "csr" must not move any shard onto a different seed,
    # or every recorded sharded artifact would silently re-randomize.
    from repro.algorithms.view_rules import make_view_rule
    from repro.core.engine import SimRequest
    from repro.core.sharded import ShardedEngine

    from repro.graphs import cycle

    engine = ShardedEngine(shards=2)
    rule = make_view_rule("ball-signature", radius=1)
    seeds = {}
    for layout in ("dict", "csr"):
        request = SimRequest(
            kind="view", graph=cycle(8), algorithm=rule,
            seed=0, layout=layout, label="csr-parity",
        )
        seeds[layout] = engine._shard_seeds(request, 2)
    assert seeds["dict"] == seeds["csr"] == [
        GOLDEN[(0, "csr-parity:view:shard-0")],
        GOLDEN[(0, "csr-parity:view:shard-1")],
    ]
