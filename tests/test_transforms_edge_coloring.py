"""Tests for graph transforms, edge coloring, trichotomy, global failure,
and the experiments CLI."""

import random

import pytest

from repro.algorithms import edge_coloring_via_line_graph
from repro.experiments import run_cycle_trichotomy, run_global_failure
from repro.experiments.__main__ import main as experiments_main
from repro.graphs import (
    Graph,
    balanced_regular_tree,
    cycle,
    graph_power,
    line_graph,
    path,
    random_permutation_ids,
    random_regular_graph,
    sequential_ids,
    star,
)
from repro.lcl import ProperEdgeColoring, WeakColoring
from repro.speedup import local_maximum_coloring


class TestLineGraph:
    def test_path_line_graph_is_shorter_path(self):
        lg, edges = line_graph(path(5))
        assert lg.n == 4
        assert lg.m == 3
        assert lg.is_tree()

    def test_cycle_line_graph_is_cycle(self):
        lg, _ = line_graph(cycle(7))
        assert lg.n == 7 and lg.is_regular(2)
        assert lg.girth() == 7

    def test_star_line_graph_is_complete(self):
        lg, _ = line_graph(star(4))
        assert lg.n == 4
        assert lg.m == 6  # K4

    def test_degree_bound(self):
        g = random_regular_graph(20, 4, rng=random.Random(0))
        lg, _ = line_graph(g)
        assert lg.max_degree() <= 2 * (4 - 1)

    def test_edge_mapping_consistent(self):
        g = balanced_regular_tree(3, 2)
        lg, edges = line_graph(g)
        assert len(edges) == g.m
        assert lg.n == g.m

    def test_empty_graph(self):
        lg, edges = line_graph(Graph(3))
        assert lg.n == 0 and edges == []


class TestGraphPower:
    def test_square_of_path(self):
        g2 = graph_power(path(5), 2)
        assert g2.has_edge(0, 2)
        assert not g2.has_edge(0, 3)

    def test_power_one_is_identity(self):
        g = cycle(8)
        assert graph_power(g, 1) == g

    def test_distance_k_weak_becomes_distance_1(self):
        g = path(7)
        colors = [(v // 3) % 2 for v in g.nodes()]
        assert WeakColoring(2, distance=3).is_feasible(g, colors)
        assert WeakColoring(2, distance=1).is_feasible(graph_power(g, 3), colors)

    def test_invalid_power(self):
        with pytest.raises(ValueError):
            graph_power(path(3), 0)


class TestEdgeColoring:
    @pytest.mark.parametrize(
        "graph",
        [cycle(10), path(9), balanced_regular_tree(3, 3), star(5)],
    )
    def test_proper_and_within_palette(self, graph):
        out = edge_coloring_via_line_graph(graph, sequential_ids(graph))
        assert ProperEdgeColoring(out.palette).is_feasible(graph, out.colors)
        assert out.palette <= 2 * graph.max_degree() - 1

    def test_random_regular(self):
        g = random_regular_graph(20, 4, rng=random.Random(1))
        out = edge_coloring_via_line_graph(g, random_permutation_ids(g, random.Random(2)))
        assert ProperEdgeColoring(out.palette).is_feasible(g, out.colors)

    def test_edgeless(self):
        out = edge_coloring_via_line_graph(Graph(4), [1, 2, 3, 4])
        assert out.colors == {} and out.rounds == 0

    def test_rounds_constant_in_n_on_cycles(self):
        rounds = {
            edge_coloring_via_line_graph(cycle(n), sequential_ids(cycle(n))).rounds
            for n in (32, 128, 512)
        }
        assert max(rounds) - min(rounds) <= 3  # log*-flat


class TestCycleTrichotomy:
    def test_rows_and_fits(self):
        result = run_cycle_trichotomy(sizes=(16, 64, 256, 1024))
        assert [row.fit.best for row in result.rows] == [
            "constant",
            "log_star",
            "linear",
        ]
        assert all(row.all_verified for row in result.rows)

    def test_global_row_tracks_half_n(self):
        result = run_cycle_trichotomy(sizes=(16, 64, 256))
        global_row = result.rows[2]
        for n, rounds in global_row.measurements:
            assert rounds == n // 2  # cycle diameter


class TestGlobalFailureExperiment:
    def test_success_decays_and_respects_ceiling(self):
        result = run_global_failure(sizes=(3, 6, 9), trials=100)
        assert result.success_decays()
        for point in result.points:
            # Measured success cannot consistently beat the ceiling; give
            # Monte Carlo 3-sigma slack.
            sigma = (point.analytic_ceiling * (1 - point.analytic_ceiling) / 100) ** 0.5
            assert point.measured_success <= point.analytic_ceiling + 3 * sigma + 0.05

    def test_radius_validation(self):
        with pytest.raises(ValueError, match="radius 1"):
            run_global_failure(
                algorithm=_radius2_algorithm(), sizes=(3,), trials=1
            )

    def test_format_table(self):
        result = run_global_failure(sizes=(3,), trials=10)
        assert "local failure" in result.format_table()


def _radius2_algorithm():
    from repro.speedup import NodeAlgorithm

    return NodeAlgorithm(2, 2, 1, 2, lambda a: 0, name="radius2")


class TestExperimentsCLI:
    def test_quick_run_exits_zero(self, capsys):
        assert experiments_main(["--quick"]) == 0
        out = capsys.readouterr().out
        assert "[PASS] Table 1 verified" in out
        assert "[FAIL]" not in out
