"""Tests for the order-invariance framework and the finite runner."""

import random

import pytest

from repro.graphs import (
    cycle,
    path,
    sequential_ids,
    toroidal_grid,
    orient_torus,
    balanced_regular_tree,
    orient_tree,
)
from repro.local_model import (
    OrderInvariantProjection,
    ViewAlgorithm,
    gather_view,
    is_order_invariant,
    order_homogeneous_failure,
    order_projected_view,
)
from repro.speedup import (
    local_maximum_coloring,
    run_node_algorithm_on_oriented_graph,
    estimate_global_success,
    smaller_count_coloring,
    node_local_failure,
)


class LocalMaxById(ViewAlgorithm):
    """Color 1 iff the center's identifier tops its radius-1 view."""

    name = "local-max-by-id"
    radius = 1

    def output(self, view):
        return 1 if view.identifiers[0] == max(view.identifiers) else 0


class IdValueParity(ViewAlgorithm):
    """Color = identifier parity: the canonical NON-order-invariant rule."""

    name = "id-value-parity"
    radius = 1

    def output(self, view):
        return view.identifiers[0] % 2


class TestOrderProjection:
    def test_projection_replaces_ids_by_ranks(self):
        g = path(4)
        view = gather_view(g, 1, 1, ids=[40, 10, 30, 20])
        projected = order_projected_view(view)
        assert sorted(projected.identifiers) == [1, 2, 3]
        # Ranks preserve comparisons.
        for i in range(view.node_count):
            for j in range(view.node_count):
                assert (view.identifiers[i] < view.identifiers[j]) == (
                    projected.identifiers[i] < projected.identifiers[j]
                )

    def test_anonymous_views_pass_through(self):
        g = path(3)
        view = gather_view(g, 1, 1)
        assert order_projected_view(view) is view

    def test_projection_wrapper_forces_invariance(self):
        wrapped = OrderInvariantProjection(IdValueParity())
        g = cycle(10)
        assert is_order_invariant(wrapped, g, sequential_ids(g), rng=random.Random(0))


class TestInvarianceChecker:
    def test_order_invariant_algorithm_passes(self):
        g = cycle(12)
        assert is_order_invariant(
            LocalMaxById(), g, sequential_ids(g), rng=random.Random(1)
        )

    def test_value_dependent_algorithm_fails(self):
        g = cycle(12)
        assert not is_order_invariant(
            IdValueParity(), g, sequential_ids(g), rng=random.Random(2)
        )


class TestOrderHomogeneity:
    def test_every_order_invariant_rule_fails_on_increasing_cycles(self):
        # Theorem 21's engine: interior views are order-isomorphic, so
        # the outputs are constant on a long stretch.
        for alg in (LocalMaxById(), OrderInvariantProjection(IdValueParity())):
            failing = order_homogeneous_failure(alg, 24)
            assert failing  # some node's whole neighborhood is monochromatic

    def test_failure_count_grows_with_cycle_length(self):
        short = len(order_homogeneous_failure(LocalMaxById(), 12))
        long = len(order_homogeneous_failure(LocalMaxById(), 48))
        assert long > short


class TestFiniteRunner:
    def test_torus_run_is_sound_at_radius_1(self):
        g = toroidal_grid(5, 5)
        o = orient_torus(g, 5, 5)
        alg = local_maximum_coloring(2, bits=2)
        values = [random.Random(0).randrange(4) for _ in g.nodes()]
        rng = random.Random(0)
        values = [rng.randrange(alg.values) for _ in g.nodes()]
        run = run_node_algorithm_on_oriented_graph(alg, g, o, values)
        assert len(run.outputs) == g.n
        assert set(run.outputs) <= {0, 1}

    def test_failing_nodes_detected(self):
        # Force all values equal: nobody is a local max, everyone fails.
        g = toroidal_grid(4, 4)
        o = orient_torus(g, 4, 4)
        alg = local_maximum_coloring(2, bits=1)
        run = run_node_algorithm_on_oriented_graph(alg, g, o, [0] * g.n)
        assert len(run.failing_nodes) == g.n
        assert not run.succeeded

    def test_value_validation(self):
        g = toroidal_grid(4, 4)
        o = orient_torus(g, 4, 4)
        alg = local_maximum_coloring(2, bits=1)
        with pytest.raises(ValueError):
            run_node_algorithm_on_oriented_graph(alg, g, o, [5] * g.n)
        with pytest.raises(ValueError):
            run_node_algorithm_on_oriented_graph(alg, g, o, [0] * (g.n - 1))

    def test_tree_region_rejected_at_boundary(self):
        # A finite tree's leaves cannot resolve all directions.
        tree = balanced_regular_tree(4, 2)
        o = orient_tree(tree, 2)
        alg = local_maximum_coloring(2, bits=1)
        with pytest.raises(ValueError, match="leaves the oriented region"):
            run_node_algorithm_on_oriented_graph(alg, tree, o, [0] * tree.n)

    def test_global_success_estimate_in_unit_interval(self):
        g = toroidal_grid(4, 4)
        o = orient_torus(g, 4, 4)
        alg = smaller_count_coloring(2, bits=2)
        rate = estimate_global_success(alg, g, o, trials=50, rng=random.Random(1))
        assert 0.0 <= rate <= 1.0

    def test_better_local_failure_better_global_success(self):
        g = toroidal_grid(6, 6)
        o = orient_torus(g, 6, 6)
        weak_alg = local_maximum_coloring(2, bits=1)
        strong_alg = smaller_count_coloring(2, bits=2)
        p_weak = node_local_failure(weak_alg, method="exact").as_float()
        p_strong = node_local_failure(strong_alg, method="exact").as_float()
        assert p_strong < p_weak
        rate_weak = estimate_global_success(weak_alg, g, o, 80, random.Random(2))
        rate_strong = estimate_global_success(strong_alg, g, o, 80, random.Random(2))
        assert rate_strong >= rate_weak
