"""Tests for the pointer problem P*: verifier, irregularities, cycles."""

import pytest

from repro.graphs import (
    Graph,
    balanced_regular_tree,
    caterpillar,
    cycle,
    path,
    sequential_ids,
    star,
    toroidal_grid,
)
from repro.lcl import (
    CycleIrregularity,
    LowDegreeIrregularity,
    PStar,
    PStarLabel,
    closest_irregularity,
    degree_delta_cycles,
    enumerate_cycles,
    irregularity_distance,
)


class TestPStarVerifier:
    def test_low_degree_forced_label(self):
        g = star(3)  # center degree 3, leaves degree 1
        lcl = PStar(4)
        labels = [PStarLabel(3, None)] + [PStarLabel(1, None)] * 3
        assert lcl.is_feasible(g, labels)

    def test_condition1_degree_delta_needs_pointer(self):
        g = star(4)
        lcl = PStar(4)
        labels = [PStarLabel(0, None)] + [PStarLabel(1, None)] * 4
        violations = lcl.verify(g, labels)
        assert any("cond. 1" in v.reason for v in violations)

    def test_condition2_wrong_degree_advertised(self):
        g = star(3)
        lcl = PStar(4)
        labels = [PStarLabel(2, None)] + [PStarLabel(1, None)] * 3
        violations = lcl.verify(g, labels)
        assert any("cond. 2" in v.reason for v in violations)

    def test_condition2_low_degree_pointer_forbidden(self):
        g = star(3)
        lcl = PStar(4)
        labels = [PStarLabel(3, 1)] + [PStarLabel(1, None)] * 3
        violations = lcl.verify(g, labels)
        assert any("cond. 2" in v.reason for v in violations)

    def test_condition3_chain_label_mismatch(self):
        g = path(3)  # degrees 1,2,1 with delta=2... use delta=2? P* needs >=3
        # Build a 3-regular-ish chain instead: K4 minus handled below.
        g = star(4)
        lcl = PStar(4)
        labels = [PStarLabel(2, 1), PStarLabel(1, None)] + [PStarLabel(1, None)] * 3
        violations = lcl.verify(g, labels)
        assert any("cond. 3" in v.reason for v in violations)

    def test_condition4_backtracking(self):
        # Two adjacent degree-4 nodes pointing at each other.
        g = Graph(8)
        g.add_edge(0, 1)
        for leaf, host in ((2, 0), (3, 0), (4, 0), (5, 1), (6, 1), (7, 1)):
            g.add_edge(host, leaf)
        lcl = PStar(4)
        labels = [PStarLabel(1, 1), PStarLabel(1, 0)] + [PStarLabel(1, None)] * 6
        violations = lcl.verify(g, labels)
        assert any("cond. 4" in v.reason for v in violations)

    def test_condition5_chain_ends_at_wrong_degree(self):
        g = star(4)  # center deg 4, leaves deg 1
        lcl = PStar(4)
        labels = [PStarLabel(3, 1)] + [PStarLabel(1, None)] * 4
        violations = lcl.verify(g, labels)
        # center points at a leaf with degree 1 but advertises 3 -> cond 3
        # is checked first (d mismatch with leaf's forced label).
        assert violations

    def test_valid_chain_into_leaf(self):
        g = star(4)
        lcl = PStar(4)
        labels = [PStarLabel(1, 1)] + [PStarLabel(1, None)] * 4
        assert lcl.is_feasible(g, labels)

    def test_unlabeled_policy(self):
        g = star(4)
        labels = [None] * 5
        assert PStar(4, require_all=False).is_feasible(g, labels)
        assert not PStar(4, require_all=True).is_feasible(g, labels)

    def test_d_range_checked(self):
        g = star(4)
        labels = [PStarLabel(7, 1)] + [PStarLabel(1, None)] * 4
        violations = PStar(4).verify(g, labels)
        assert any("outside" in v.reason for v in violations)

    def test_delta_minimum(self):
        with pytest.raises(ValueError):
            PStar(2)

    def test_cycle_of_pointers_is_happy(self):
        # A 4-cycle of degree-delta nodes pointing around the cycle.
        g = Graph(12)
        for i in range(4):
            g.add_edge(i, (i + 1) % 4)
        leaf = 4
        for i in range(4):
            g.add_edge(i, leaf)
            g.add_edge(i, leaf + 1)
            leaf += 2
        lcl = PStar(4)
        labels = [PStarLabel(0, (i + 1) % 4) for i in range(4)]
        labels += [PStarLabel(1, None)] * 8
        assert lcl.is_feasible(g, labels)


class TestCycleEnumeration:
    def test_single_cycle(self):
        cycles = enumerate_cycles(cycle(6), max_length=6)
        assert len(cycles) == 1
        assert cycles[0] == (0, 1, 2, 3, 4, 5)

    def test_length_cutoff(self):
        assert enumerate_cycles(cycle(6), max_length=5) == []

    def test_tree_has_no_cycles(self):
        assert enumerate_cycles(balanced_regular_tree(3, 3), max_length=10) == []

    def test_k4_counts(self):
        from repro.graphs import complete_graph

        cycles = enumerate_cycles(complete_graph(4), max_length=4)
        triangles = [c for c in cycles if len(c) == 3]
        squares = [c for c in cycles if len(c) == 4]
        assert len(triangles) == 4
        assert len(squares) == 3

    def test_canonical_no_duplicates(self):
        cycles = enumerate_cycles(toroidal_grid(3, 3), max_length=4)
        assert len(cycles) == len(set(cycles))
        lengths = sorted(len(c) for c in cycles)
        assert lengths.count(3) == 6  # 3 row wraps + 3 column wraps
        assert lengths.count(4) == 9  # one unit square per position

    def test_restricted_node_set(self):
        g = toroidal_grid(3, 3)
        cycles = enumerate_cycles(g, max_length=3, nodes=[0, 1, 2])
        assert cycles == [(0, 1, 2)]

    def test_degree_delta_filter(self):
        g = cycle(5)
        assert degree_delta_cycles(g, 2, max_length=5)[0].length == 5
        assert degree_delta_cycles(g, 3, max_length=5) == []


class TestIrregularityDistance:
    def test_low_degree_distance(self):
        g = path(5)
        irr = LowDegreeIrregularity(node=0, degree=1)
        assert irregularity_distance(g, 3, irr) == 3

    def test_even_cycle_distance_is_max(self):
        g = cycle(4)
        irr = CycleIrregularity((0, 1, 2, 3))
        assert irregularity_distance(g, 0, irr) == 2

    def test_odd_cycle_distance_is_max_plus_one(self):
        g = cycle(5)
        irr = CycleIrregularity((0, 1, 2, 3, 4))
        assert irregularity_distance(g, 0, irr) == 3


class TestClosestIrregularity:
    def test_prefers_cycles_over_low_degree(self):
        # A triangle of degree-3 nodes with a pendant path.
        g = Graph(6, [(0, 1), (1, 2), (2, 0), (0, 3), (1, 4), (2, 5)])
        ids = sequential_ids(g)
        irr = closest_irregularity(g, 0, 3, r=4, ids=ids)
        assert isinstance(irr, CycleIrregularity)

    def test_low_degree_node_is_its_own_irregularity(self):
        g = caterpillar(3, 2)  # spine ends have degree 3 < 4
        ids = sequential_ids(g)
        irr = closest_irregularity(g, 0, 4, r=1, ids=ids)
        assert isinstance(irr, LowDegreeIrregularity)
        assert irr.node == 0 and irr.degree == 3  # closest-first: itself

    def test_low_degree_tiebreak_smallest_degree(self):
        # Node 1 of the caterpillar spine (degree 4) sees the spine end
        # (degree 3) and leaves (degree 1) all at distance 1: the degree
        # tie-break picks a leaf.
        g = caterpillar(3, 2)
        ids = sequential_ids(g)
        irr = closest_irregularity(g, 1, 4, r=1, ids=ids)
        assert isinstance(irr, LowDegreeIrregularity)
        assert irr.degree == 1

    def test_out_of_range_returns_none(self):
        g = balanced_regular_tree(4, 4)
        ids = sequential_ids(g)
        assert closest_irregularity(g, 0, 4, r=2, ids=ids) is None
        assert closest_irregularity(g, 0, 4, r=4, ids=ids) is not None
