"""Tests for anonymous-symmetry impossibility, explicit ports,
d-dimensional tori, and the Appendix A.1 gap oracle."""

import random

import pytest

from repro.analysis import (
    GapViolation,
    HOMOGENEOUS_CLASSES,
    classify_homogeneous,
    derandomization_instance_size,
    derandomized_bound,
    forbidden_deterministic_gap,
    forbidden_randomized_gap,
    tower,
)
from repro.experiments import run_classification, run_table1
from repro.graphs import (
    Graph,
    cycle,
    orient_torus_nd,
    symmetric_cycle,
    toroidal_grid_nd,
)
from repro.lcl import WeakColoring
from repro.local_model import ViewAlgorithm, gather_view, run_view_algorithm
from repro.speedup import estimate_global_success, local_maximum_coloring


class TestExplicitPorts:
    def test_from_adjacency_roundtrip(self):
        adjacency = [[1, 2], [0, 2], [0, 1]]
        g = Graph.from_adjacency(adjacency)
        assert g.neighbors(0) == (1, 2)
        assert g.m == 3

    def test_asymmetry_rejected(self):
        with pytest.raises(ValueError, match="asymmetric"):
            Graph.from_adjacency([[1], []])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            Graph.from_adjacency([[0]])

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Graph.from_adjacency([[1, 1], [0, 0]])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            Graph.from_adjacency([[5]])


class TestAnonymousSymmetry:
    def test_all_views_identical_at_every_radius(self):
        g = symmetric_cycle(9)
        for radius in (0, 1, 2, 3):
            keys = {gather_view(g, v, radius).key() for v in g.nodes()}
            assert len(keys) == 1

    def test_plain_cycle_is_not_port_symmetric(self):
        # The insertion-order cycle leaks asymmetry through node 0's ports.
        g = cycle(9)
        keys = {gather_view(g, v, 2).key() for v in g.nodes()}
        assert len(keys) > 1

    def test_deterministic_anonymous_algorithms_are_constant(self):
        g = symmetric_cycle(8)

        class AnyRule(ViewAlgorithm):
            name = "any-rule"
            radius = 2

            def output(self, view):
                # Arbitrary deterministic function of the (anonymous) view.
                return hash(view.key()) % 7

        result = run_view_algorithm(g, AnyRule())
        assert len(set(result.outputs)) == 1  # constant output, forced
        # ... and therefore no weak 2-coloring: every node fails.
        violations = WeakColoring(7, palette=None).verify(g, result.outputs)
        assert len(violations) == g.n

    def test_symmetric_cycle_structure(self):
        g = symmetric_cycle(10)
        assert g.is_regular(2) and g.girth() == 10
        with pytest.raises(ValueError):
            symmetric_cycle(2)


class TestNdTorus:
    def test_structure(self):
        g = toroidal_grid_nd((3, 4, 5))
        assert g.n == 60
        assert g.is_regular(6)

    def test_matches_2d_torus_semantics(self):
        from repro.graphs import toroidal_grid

        a = toroidal_grid_nd((4, 5))
        b = toroidal_grid(4, 5)
        assert a.n == b.n and a.m == b.m

    def test_orientation_validates(self):
        dims = (3, 3, 4)
        g = toroidal_grid_nd(dims)
        o = orient_torus_nd(g, dims)
        o.validate()
        # Walking +axis wraps after dims[axis] steps.
        v = 0
        for _ in range(dims[0]):
            v = o.neighbor(v, 0, 1)
        assert v == 0

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            toroidal_grid_nd((2, 3))
        with pytest.raises(ValueError):
            toroidal_grid_nd(())

    def test_delta6_finite_run(self):
        dims = (3, 3, 3)
        g = toroidal_grid_nd(dims)
        o = orient_torus_nd(g, dims)
        rate = estimate_global_success(
            local_maximum_coloring(3, bits=2), g, o, trials=40,
            rng=random.Random(0),
        )
        assert 0.0 <= rate <= 1.0


class TestGapOracle:
    def test_allowed_classes(self):
        assert "O(1)" in classify_homogeneous("constant")
        assert "log*" in classify_homogeneous("log_star")
        assert "log n" in classify_homogeneous("log")

    def test_forbidden_classes_raise(self):
        for label in ("sqrt", "linear", "log_log_star", "sqrt_log_star"):
            with pytest.raises(GapViolation):
                classify_homogeneous(label)

    def test_gap_predicates(self):
        assert forbidden_deterministic_gap("sqrt_log_star")
        assert not forbidden_deterministic_gap("log_star")
        assert forbidden_randomized_gap("between_log_star_and_log_log")
        assert not forbidden_randomized_gap("log")

    def test_derandomization_sizes(self):
        assert derandomization_instance_size(4).to_float() == 2.0**16
        big = derandomization_instance_size(64)
        assert not big.is_finite_float() or big.to_float() > 1e300

    def test_derandomized_bound_combinator(self):
        # A randomized Theta(log log n) curve derandomizes to O(log n):
        # rand(2^(n^2)) = log log 2^(n^2) = log(n^2) = 2 log n.
        import math

        def rand_complexity(size):
            return size.log2().log2().to_float()

        bound = derandomized_bound(rand_complexity, 256)
        assert bound == pytest.approx(2 * math.log2(256))

    def test_measured_curves_land_in_allowed_classes(self):
        # The harness's own measurements never hit a gap.
        table = run_table1(sizes=(50, 200, 800))
        for row in table.rows:
            classify_homogeneous(row.fit.best)  # must not raise

    def test_every_class_is_realized(self):
        result = run_classification(sizes=(50, 200, 800, 3200))
        labels = {row.fit.best for row in result.rows}
        assert labels == {"constant", "log"} or labels == {"constant", "log_star", "log"}
        # (log* measures flat at feasible n; both outcomes name all classes.)
