"""Shared pytest configuration: hypothesis profiles.

Two profiles, selected by the ``HYPOTHESIS_PROFILE`` environment
variable (CI exports ``ci``; anything else falls back to ``dev``):

``dev``
    Library defaults minus the deadline (view gathering on the larger
    generated graphs is legitimately slow on shared machines).

``ci``
    More examples and a fixed, derandomized seed — every CI run drills
    the exact same example sequence, so a red build is reproducible by
    exporting the same variable locally.  The parity suite
    (``tests/test_csr_parity.py``) deliberately does *not* pin
    ``max_examples`` so this profile scales its case count.

Tests that pin their own ``@settings(...)`` keep their pinned values;
profiles only fill in what a test leaves unspecified.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile("dev", deadline=None)
settings.register_profile(
    "ci",
    max_examples=150,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
