"""Differential tests: caching and tracing never change results.

Two families of invariants:

* **Cached vs direct** (the view-cache exactness contract): every case
  of :mod:`tests.differential`'s grid — algorithm × graph family ×
  radius × labeling — must produce bit-identical execution results
  through the canonical-view cache and without it.

* **Traced vs untraced vs cached** (observer passivity): attaching a
  :class:`~repro.instrumentation.MetricsTracer` to any engine, or
  routing a view engine through the cache, must not perturb outputs or
  halt rounds.  Covered for every message-passing algorithm of the
  quick experiment grid and every view rule.

* **Incremental vs from-scratch** (the delta-differential contract):
  priming an :class:`~repro.core.IncrementalEngine` on a grid case and
  chaining seed-derived random :class:`~repro.graphs.GraphDelta`
  batches must stay bit-identical to fresh direct recomputes on every
  mutated graph, for node views and edge views alike — over 400
  randomized delta steps across the radius-1/2 grid.
"""

from __future__ import annotations

import random

import pytest

from repro.algorithms.message_passing import (
    FloodLeaderParity,
    LubyMIS,
    RandomizedWeakColoring,
)
from repro.algorithms.view_rules import make_view_rule
from repro.graphs import balanced_regular_tree, cycle
from repro.graphs.identifiers import random_permutation_ids
from repro.instrumentation import MetricsTracer
from repro.local_model import ViewCache
from repro.local_model.network import run_local, run_view_algorithm

from .differential import (
    assert_delta_case_identical,
    assert_identical,
    edge_cases,
    grid,
    run_case,
    run_edge_case,
    run_edge_delta_case,
)


# ----------------------------------------------------------------------
# Cached vs direct: the full grid, one test per case
# ----------------------------------------------------------------------

@pytest.mark.parametrize("case", grid(), ids=lambda c: c.case_id)
def test_cached_run_is_bit_identical(case):
    direct, cached, stats = run_case(case)
    assert_identical(direct, cached, case)
    # The cache did real work: one lookup per node, no lookup lost.
    assert stats["lookups"] == len(direct.outputs)
    assert stats["hits"] + stats["misses"] == stats["lookups"]
    assert stats["distinct_classes"] == stats["misses"]


@pytest.mark.parametrize(
    "graph_name,rounds", edge_cases(), ids=lambda p: str(p)
)
def test_cached_edge_run_is_bit_identical(graph_name, rounds):
    direct, cached = run_edge_case(graph_name, rounds)
    assert cached.outputs == direct.outputs
    assert cached.rounds == direct.rounds


# ----------------------------------------------------------------------
# Traced vs untraced vs cached: observers are passive
# ----------------------------------------------------------------------

_QUICK_GRAPHS = [
    ("cycle64", lambda: cycle(64)),
    ("tree3d4", lambda: balanced_regular_tree(3, 4)),
]

_MESSAGE_ALGORITHMS = [
    ("luby-mis", LubyMIS, True),
    ("randomized-weak-coloring", RandomizedWeakColoring, False),
    ("flood-leader-parity", FloodLeaderParity, True),
]


def _run_message_passing(factory, needs_ids, build_graph, seed, tracer=None):
    graph = build_graph()
    rng = random.Random(seed)
    ids = random_permutation_ids(graph, rng) if needs_ids else None
    return run_local(graph, factory(), ids=ids, rng=rng, tracer=tracer)


@pytest.mark.parametrize("graph_name,build_graph", _QUICK_GRAPHS)
@pytest.mark.parametrize(
    "alg_name,factory,needs_ids",
    _MESSAGE_ALGORITHMS,
    ids=[a[0] for a in _MESSAGE_ALGORITHMS],
)
@pytest.mark.parametrize("seed", [0, 1])
def test_tracing_is_passive_for_message_passing(
    graph_name, build_graph, alg_name, factory, needs_ids, seed
):
    untraced = _run_message_passing(factory, needs_ids, build_graph, seed)
    traced = _run_message_passing(
        factory, needs_ids, build_graph, seed, tracer=MetricsTracer()
    )
    assert traced.outputs == untraced.outputs
    assert traced.halt_rounds == untraced.halt_rounds
    assert traced.rounds == untraced.rounds


_VIEW_RULES = [
    ("local-max", 1, "ids"),
    ("random-priority", 1, "random"),
    ("ball-signature", 2, "anonymous"),
    ("degree-profile", 2, "anonymous"),
]


@pytest.mark.parametrize("graph_name,build_graph", _QUICK_GRAPHS)
@pytest.mark.parametrize(
    "rule_name,radius,labeling", _VIEW_RULES, ids=[r[0] for r in _VIEW_RULES]
)
@pytest.mark.parametrize("seed", [0, 1])
def test_view_rules_agree_traced_untraced_cached(
    graph_name, build_graph, rule_name, radius, labeling, seed
):
    graph = build_graph()
    rng = random.Random(seed)
    ids = random_permutation_ids(graph, rng) if labeling == "ids" else None
    randomness = (
        [rng.getrandbits(12) for _ in graph.nodes()]
        if labeling == "random"
        else None
    )
    rule = make_view_rule(rule_name, radius=radius)

    untraced = run_view_algorithm(graph, rule, ids=ids, randomness=randomness)
    traced = run_view_algorithm(
        graph, rule, ids=ids, randomness=randomness, tracer=MetricsTracer()
    )
    tracer = MetricsTracer()
    cache = ViewCache()
    cached = run_view_algorithm(
        graph, rule, ids=ids, randomness=randomness,
        tracer=tracer, view_cache=cache,
    )

    for other in (traced, cached):
        assert other.outputs == untraced.outputs
        assert other.halt_rounds == untraced.halt_rounds
        assert other.rounds == untraced.rounds
    # The traced cached run reported its cache to the tracer.
    assert tracer.metrics.cache_lookups == graph.n
    assert tracer.metrics.cache_hits == cache.stats.hits
    # Unique labels can make every view class distinct (hit rate 0);
    # anonymous symmetric graphs must actually share classes.
    assert 0.0 <= tracer.metrics.cache_hit_rate <= 1.0
    if labeling == "anonymous":
        assert tracer.metrics.cache_hit_rate > 0.0


# ----------------------------------------------------------------------
# Incremental vs from-scratch: the delta-differential grid
# ----------------------------------------------------------------------

#: Radii 1 and 2 cover every interesting footprint shape (radius 0 has
#: no propagation; radius 3 adds wall-clock, not coverage) — 128 cases
#: x 3 delta steps each.
_DELTA_GRID = [c for c in grid() if c.radius in (1, 2)]


@pytest.mark.parametrize("case", _DELTA_GRID, ids=lambda c: c.case_id)
def test_incremental_delta_chain_is_bit_identical(case):
    assert_delta_case_identical(case, steps=3)


@pytest.mark.parametrize(
    "graph_name,rounds", edge_cases(), ids=lambda p: str(p)
)
def test_incremental_edge_delta_chain_is_bit_identical(graph_name, rounds):
    pairs = run_edge_delta_case(graph_name, rounds, steps=3)
    assert len(pairs) >= 2  # primed + at least one applied delta
    for step, (incremental, fresh) in enumerate(pairs):
        assert incremental.identity() == fresh.identity(), (
            f"edge-t{rounds}-{graph_name}: incremental step {step} "
            f"diverges from a fresh direct run"
        )


def test_standalone_harness_reports_zero_failures():
    from .differential import run_grid

    assert run_grid(verbose=False) == 0
