"""Tests for the LCL problem catalog and verifier framework."""

import pytest

from repro.graphs import (
    Graph,
    balanced_regular_tree,
    cycle,
    edge_key,
    orient_torus,
    orient_tree,
    path,
    star,
    toroidal_grid,
)
from repro.lcl import (
    MaximalIndependentSet,
    MaximalMatching,
    ProperColoring,
    SinklessOrientation,
    WeakColoring,
    WeakEdgeColoring,
)


class TestWeakColoring:
    def test_valid_weak_two_coloring(self):
        g = path(4)
        assert WeakColoring(2).is_feasible(g, [0, 1, 0, 1])

    def test_all_same_color_fails(self):
        g = path(3)
        violations = WeakColoring(2).verify(g, [1, 1, 1])
        assert len(violations) == 3

    def test_one_node_surrounded_fails(self):
        g = star(3)
        violations = WeakColoring(2).verify(g, [0, 0, 0, 1])
        bad = {v.where for v in violations}
        assert 1 in bad and 2 in bad and 0 not in bad

    def test_isolated_node_vacuous(self):
        g = Graph(2)
        assert WeakColoring(2).is_feasible(g, [0, 0])

    def test_palette_enforced(self):
        g = path(2)
        violations = WeakColoring(2).verify(g, [0, 5])
        assert any("palette" in v.reason for v in violations)

    def test_open_palette(self):
        g = path(2)
        assert WeakColoring(2, palette=None).is_feasible(g, ["a", "b"])

    def test_distance_k(self):
        g = path(5)
        # Colors 0 0 0 0 1: node 0 has a differing node at distance 4.
        assert not WeakColoring(2, distance=3).is_feasible(g, [0, 0, 0, 0, 1])
        assert WeakColoring(2, distance=4).is_feasible(g, [0, 0, 0, 0, 1])

    def test_unlabeled_node_fails(self):
        g = path(2)
        violations = WeakColoring(2).verify(g, [None, 1])
        assert violations and violations[0].where == 0

    def test_restricted_sweep(self):
        g = path(3)
        violations = WeakColoring(2).verify(g, [1, 1, 1], nodes=[1])
        assert len(violations) == 1

    def test_labeling_length_checked(self):
        with pytest.raises(ValueError):
            WeakColoring(2).verify(path(3), [0, 1])

    def test_custom_palette(self):
        g = path(2)
        lcl = WeakColoring(2, palette=("black", "white"))
        assert lcl.is_feasible(g, ["black", "white"])

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            WeakColoring(0)
        with pytest.raises(ValueError):
            WeakColoring(2, distance=0)
        with pytest.raises(ValueError):
            WeakColoring(3, palette=(1, 2))


class TestProperColoring:
    def test_valid(self):
        assert ProperColoring(2).is_feasible(cycle(6), [0, 1] * 3)

    def test_adjacent_same_color(self):
        violations = ProperColoring(2).verify(path(3), [0, 0, 1])
        assert {v.where for v in violations} == {0, 1}

    def test_odd_cycle_needs_three(self):
        g = cycle(5)
        assert not ProperColoring(2).is_feasible(g, [0, 1, 0, 1, 0])
        assert ProperColoring(3).is_feasible(g, [0, 1, 0, 1, 2])


class TestMIS:
    def test_valid_mis(self):
        g = path(5)
        assert MaximalIndependentSet().is_feasible(g, [1, 0, 1, 0, 1])

    def test_not_independent(self):
        g = path(3)
        violations = MaximalIndependentSet().verify(g, [1, 1, 0])
        assert any("adjacent" in v.reason for v in violations)

    def test_not_maximal(self):
        g = path(5)
        violations = MaximalIndependentSet().verify(g, [1, 0, 0, 0, 1])
        assert any(v.where == 2 for v in violations)

    def test_empty_set_on_edgeless_graph_fails_nothing(self):
        g = Graph(3)
        violations = MaximalIndependentSet().verify(g, [0, 0, 0])
        assert len(violations) == 3  # all non-dominated

    def test_center_of_star(self):
        g = star(4)
        assert MaximalIndependentSet().is_feasible(g, [1, 0, 0, 0, 0])
        assert MaximalIndependentSet().is_feasible(g, [0, 1, 1, 1, 1])


class TestWeakEdgeColoring:
    def _torus(self):
        g = toroidal_grid(4, 4)
        return g, orient_torus(g, 4, 4)

    def test_requires_orientation(self):
        g, _ = self._torus()
        with pytest.raises(ValueError, match="orientation"):
            WeakEdgeColoring(2).verify(g, {})

    def test_alternating_columns_satisfy(self):
        g, o = self._torus()
        # Color horizontal edges by column parity: every node's L and R
        # edges differ.
        labeling = {}
        for u, v in g.edges():
            if o.dim_of(u, v) == 0:
                low = u if o.sign_at(u, v) == 1 else v
                labeling[edge_key(u, v)] = (low % 4) % 2
            else:
                labeling[edge_key(u, v)] = 0
        assert WeakEdgeColoring(2).is_feasible(g, labeling, orientation=o)

    def test_monochromatic_fails_everywhere(self):
        g, o = self._torus()
        labeling = {e: 0 for e in g.edges()}
        violations = WeakEdgeColoring(2).verify(g, labeling, orientation=o)
        assert len(violations) == g.n

    def test_missing_label_is_violation(self):
        g, o = self._torus()
        labeling = {e: 0 for e in g.edges()}
        labeling.pop(next(iter(g.edges())))
        violations = WeakEdgeColoring(2).verify(g, labeling, orientation=o)
        assert any("unlabeled" in v.reason for v in violations)

    def test_boundary_nodes_vacuous_on_trees(self):
        tree = balanced_regular_tree(4, 2)
        o = orient_tree(tree, 2)
        labeling = {e: 0 for e in tree.edges()}
        violations = WeakEdgeColoring(2).verify(tree, labeling, orientation=o)
        bad = {v.where for v in violations}
        assert 0 in bad  # the center has complete dimensions, all mono
        leaves = set(tree.sphere(0, 2))
        assert not (bad & leaves)  # leaves are vacuously satisfied

    def test_strict_mode_flags_boundary(self):
        tree = balanced_regular_tree(4, 1)
        o = orient_tree(tree, 2)
        labeling = {e: i for i, e in enumerate(tree.edges())}
        violations = WeakEdgeColoring(8, strict=True).verify(
            tree, labeling, orientation=o
        )
        assert len(violations) == 4  # the four leaves


class TestSinklessOrientation:
    def test_all_toward_larger_on_path_ok(self):
        g = path(4)  # degrees < 3: unconstrained
        labeling = {edge_key(u, v): max(u, v) for u, v in g.edges()}
        assert SinklessOrientation().is_feasible(g, labeling)

    def test_sink_detected(self):
        g = star(3)
        labeling = {edge_key(0, v): 0 for v in (1, 2, 3)}  # all into center
        violations = SinklessOrientation().verify(g, labeling)
        assert any("sink" in v.reason for v in violations)

    def test_center_with_one_out_edge_ok(self):
        g = star(3)
        labeling = {edge_key(0, 1): 1, edge_key(0, 2): 0, edge_key(0, 3): 0}
        assert SinklessOrientation().is_feasible(g, labeling)

    def test_invalid_head_rejected(self):
        g = path(2)
        violations = SinklessOrientation().verify(g, {edge_key(0, 1): 9})
        assert any("not an endpoint" in v.reason for v in violations)


class TestMaximalMatching:
    def test_perfect_matching_on_path4(self):
        g = path(4)
        labeling = {
            edge_key(0, 1): True,
            edge_key(1, 2): False,
            edge_key(2, 3): True,
        }
        assert MaximalMatching().is_feasible(g, labeling)

    def test_two_matched_at_one_node(self):
        g = path(3)
        labeling = {edge_key(0, 1): True, edge_key(1, 2): True}
        violations = MaximalMatching().verify(g, labeling)
        assert any("two matched" in v.reason for v in violations)

    def test_not_maximal(self):
        g = path(4)
        labeling = {e: False for e in g.edges()}
        violations = MaximalMatching().verify(g, labeling)
        assert violations

    def test_middle_edge_only_is_maximal(self):
        g = path(4)
        labeling = {
            edge_key(0, 1): False,
            edge_key(1, 2): True,
            edge_key(2, 3): False,
        }
        assert MaximalMatching().is_feasible(g, labeling)
