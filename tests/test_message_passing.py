"""Tests for the genuine message-passing algorithm implementations."""

import random

import pytest

from repro.algorithms import (
    ColeVishkinMP,
    FloodLeaderParity,
    GreedySequentialColoring,
    LubyMIS,
    choose_successors,
    cv_iterations_needed,
    distance_parity_recoloring,
    reduce_to_three_colors,
)
from repro.graphs import (
    Graph,
    balanced_regular_tree,
    caterpillar,
    cycle,
    path,
    random_permutation_ids,
    random_regular_graph,
    random_tree,
    sequential_ids,
    star,
)
from repro.lcl import MaximalIndependentSet, ProperColoring
from repro.local_model import run_local


def pseudoforest_graph(successor):
    """The simple graph spanned by successor pointers, plus port inputs."""
    n = len(successor)
    g = Graph(n)
    for v, s in enumerate(successor):
        if not g.has_edge(v, s):
            g.add_edge(v, s)
    return g


class TestColeVishkinMP:
    def _run(self, successor, colors, bits):
        g = pseudoforest_graph(successor)
        inputs = [
            (g.port_to(v, successor[v]), colors[v]) for v in range(len(successor))
        ]
        alg = ColeVishkinMP(bits)
        result = run_local(g, alg, inputs=inputs, deterministic=True)
        return g, result

    def test_directed_cycle(self):
        n = 12
        successor = [(v + 1) % n for v in range(n)]
        g, result = self._run(successor, list(range(n)), bits=4)
        out = result.outputs
        assert set(out) <= {0, 1, 2}
        for v in range(n):
            assert out[v] != out[successor[v]]

    def test_matches_functional_round_count(self):
        n = 10
        successor = [(v + 1) % n for v in range(n)]
        colors = list(range(n))
        _, result = self._run(successor, colors, bits=4)
        _, functional_rounds = reduce_to_three_colors(colors, successor, 4)
        assert result.rounds == functional_rounds

    def test_random_pseudoforests(self):
        rng = random.Random(1)
        for trial in range(8):
            n = rng.randrange(4, 30)
            successor = []
            for v in range(n):
                u = rng.randrange(n - 1)
                successor.append(u if u < v else u + 1)
            colors = list(range(n))
            rng.shuffle(colors)
            g, result = self._run(successor, colors, bits=6)
            out = result.outputs
            assert set(out) <= {0, 1, 2}
            for v in range(n):
                assert out[v] != out[successor[v]]

    def test_two_cycle(self):
        g, result = self._run([1, 0], [0, 1], bits=2)
        assert result.outputs[0] != result.outputs[1]


class TestLubyMIS:
    @pytest.mark.parametrize(
        "graph",
        [cycle(15), path(10), star(6), balanced_regular_tree(3, 3)],
    )
    def test_output_is_mis(self, graph):
        result = run_local(graph, LubyMIS(), rng=random.Random(3))
        assert result.all_halted()
        assert MaximalIndependentSet().is_feasible(graph, result.outputs)

    def test_on_random_regular(self):
        rng = random.Random(4)
        for trial in range(5):
            g = random_regular_graph(24, 4, rng=random.Random(rng.getrandbits(64)))
            result = run_local(g, LubyMIS(), rng=random.Random(trial))
            assert MaximalIndependentSet().is_feasible(g, result.outputs)

    def test_on_random_trees(self):
        rng = random.Random(5)
        for trial in range(5):
            g = random_tree(rng.randrange(2, 40), random.Random(trial))
            result = run_local(g, LubyMIS(), rng=random.Random(trial ^ 7))
            assert MaximalIndependentSet().is_feasible(g, result.outputs)

    def test_isolated_nodes_join(self):
        g = Graph(3, [(0, 1)])
        result = run_local(g, LubyMIS(), rng=random.Random(0))
        assert result.outputs[2] is True
        assert MaximalIndependentSet().is_feasible(g, result.outputs)

    def test_rounds_are_modest(self):
        g = random_regular_graph(60, 4, rng=random.Random(9))
        result = run_local(g, LubyMIS(), rng=random.Random(10))
        # O(log n) w.h.p.; allow a generous constant.
        assert result.rounds <= 40

    @pytest.mark.parametrize("backend", ["direct", "cached", "sharded"])
    def test_halts_with_mis_on_irregular_frozen_graphs(self, backend):
        # Degree-irregular instances (the kernel's neighborhood-maximum
        # reduction must handle ragged rows, halted neighbors, and
        # leaves that win vacuously), frozen so the memoizing backends
        # auto-escalate to the round kernel.
        from repro.core import SimRequest, simulate

        irregular = [
            caterpillar(5, 2).freeze(),
            star(7).freeze(),
            Graph.from_adjacency(
                [[1, 2, 3], [0], [0, 3], [0, 2, 4], [3], []]
            ).freeze(),
        ]
        for seed, graph in enumerate(irregular):
            report = simulate(
                SimRequest(
                    kind="local", graph=graph, algorithm=LubyMIS(),
                    seed=seed,
                ),
                engine=backend,
            )
            assert report.all_halted()
            assert MaximalIndependentSet().is_feasible(
                graph, report.outputs
            )

    def test_kernel_matches_reference_bit_for_bit(self):
        # The registered Luby round kernel must reproduce the reference
        # loop's outputs AND halt rounds on an irregular frozen graph.
        from dataclasses import replace

        from repro.core import SimRequest, simulate

        graph = caterpillar(6, 3).freeze()
        for seed in range(4):
            request = SimRequest(
                kind="local", graph=graph, algorithm=LubyMIS(), seed=seed
            )
            reference = simulate(request, engine="direct")
            kernel = simulate(
                replace(request, layout="kernel"), engine="direct"
            )
            assert kernel.identity() == reference.identity()
            assert kernel.info["kernel"] == "vectorized"
            assert "kernel" not in reference.info


class TestGreedySequentialColoring:
    @pytest.mark.parametrize(
        "graph",
        [cycle(10), path(8), star(5), balanced_regular_tree(4, 2)],
    )
    def test_proper_coloring(self, graph):
        ids = random_permutation_ids(graph, random.Random(1))
        result = run_local(graph, GreedySequentialColoring(), ids=ids)
        assert ProperColoring(graph.max_degree() + 1).is_feasible(
            graph, result.outputs
        )

    def test_worst_case_is_linear(self):
        # Increasing identifiers along a path force sequential commits.
        g = path(20)
        result = run_local(g, GreedySequentialColoring(), ids=sequential_ids(g))
        assert result.rounds >= g.n // 2

    def test_best_case_is_fast(self):
        # Alternating high/low identifiers let every other node commit
        # immediately.
        g = path(20)
        ids = [(v % 2) * 100 + v + 1 for v in g.nodes()]
        result = run_local(g, GreedySequentialColoring(), ids=ids)
        assert result.rounds <= 6


class TestFloodLeaderParity:
    def test_two_colors_trees(self):
        g = balanced_regular_tree(3, 3)
        result = run_local(g, FloodLeaderParity(), ids=sequential_ids(g))
        assert ProperColoring(2).is_feasible(g, result.outputs)

    def test_even_cycle(self):
        g = cycle(12)
        result = run_local(g, FloodLeaderParity(), ids=random_permutation_ids(g, random.Random(2)))
        assert ProperColoring(2).is_feasible(g, result.outputs)

    def test_agrees_with_functional_solver(self):
        from repro.algorithms import proper_two_coloring

        g = path(9)
        ids = random_permutation_ids(g, random.Random(3))
        mp = run_local(g, FloodLeaderParity(), ids=ids)
        fn = proper_two_coloring(g, ids)
        assert mp.outputs == fn.colors


class TestRandomizedWeakColoring:
    def test_succeeds_where_determinism_cannot(self):
        # On the port-symmetric cycle every deterministic anonymous
        # algorithm is constant (tests/test_anonymity_gaps.py); the
        # randomized retry algorithm weakly 2-colors it.
        from repro.algorithms import RandomizedWeakColoring
        from repro.graphs import symmetric_cycle
        from repro.lcl import WeakColoring

        g = symmetric_cycle(12)
        for seed in range(10):
            result = run_local(g, RandomizedWeakColoring(), rng=random.Random(seed))
            assert WeakColoring(2).is_feasible(g, result.outputs)

    def test_on_trees_and_regular_graphs(self):
        from repro.algorithms import RandomizedWeakColoring
        from repro.lcl import WeakColoring

        rng = random.Random(1)
        for g in (
            balanced_regular_tree(4, 3),
            random_regular_graph(24, 4, rng=rng),
            star(5),
        ):
            result = run_local(
                g, RandomizedWeakColoring(), rng=random.Random(rng.getrandbits(64))
            )
            assert WeakColoring(2).is_feasible(g, result.outputs)

    def test_isolated_node(self):
        from repro.algorithms import RandomizedWeakColoring

        g = Graph(1)
        result = run_local(g, RandomizedWeakColoring(), rng=random.Random(0))
        assert result.rounds == 0

    def test_rounds_logarithmicish(self):
        from repro.algorithms import RandomizedWeakColoring

        g = balanced_regular_tree(3, 6)  # n = 190
        worst = max(
            run_local(g, RandomizedWeakColoring(), rng=random.Random(s)).rounds
            for s in range(10)
        )
        assert worst <= 30  # O(log n) w.h.p., generous constant

    def test_frozen_pairs_differ(self):
        # The safety argument: every node's committed color differs from
        # some neighbor's committed color; check the invariant directly.
        from repro.algorithms import RandomizedWeakColoring

        g = balanced_regular_tree(4, 3)
        result = run_local(g, RandomizedWeakColoring(), rng=random.Random(9))
        for v in g.nodes():
            assert any(
                result.outputs[u] != result.outputs[v] for u in g.neighbors(v)
            )
