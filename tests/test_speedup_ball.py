"""Tests for oriented-ball combinatorics (the speedup engine's geometry)."""

import pytest

from repro.speedup import (
    EdgeBall,
    OrientedBall,
    all_directions,
    inverse,
    reduce_word,
)


class TestWords:
    def test_inverse(self):
        assert inverse((0, 1)) == (0, -1)
        assert inverse((2, -1)) == (2, 1)

    def test_all_directions_order(self):
        assert all_directions(2) == [(0, 1), (0, -1), (1, 1), (1, -1)]
        assert len(all_directions(3)) == 6

    def test_reduce_word_cancels_pairs(self):
        assert reduce_word([(0, 1), (0, -1)]) == ()
        assert reduce_word([(0, 1), (1, 1), (1, -1)]) == ((0, 1),)
        assert reduce_word([(0, 1), (1, 1)]) == ((0, 1), (1, 1))

    def test_reduce_word_cascades(self):
        word = [(0, 1), (1, 1), (1, -1), (0, -1), (1, 1)]
        assert reduce_word(word) == ((1, 1),)


class TestOrientedBall:
    def test_sizes_4_regular(self):
        # 1, 5, 17, 53: 1 + 4 * (3^t - 1) / 2 * ... the standard growth.
        sizes = [OrientedBall(2, t).size for t in range(4)]
        assert sizes == [1, 5, 17, 53]

    def test_sizes_6_regular(self):
        sizes = [OrientedBall(3, t).size for t in range(3)]
        assert sizes == [1, 7, 37]

    def test_degree_2_is_a_line(self):
        sizes = [OrientedBall(1, t).size for t in range(4)]
        assert sizes == [1, 3, 5, 7]

    def test_words_are_non_backtracking(self):
        ball = OrientedBall(2, 3)
        for w in ball.words:
            for a, b in zip(w, w[1:]):
                assert b != inverse(a)

    def test_center_is_index_zero(self):
        ball = OrientedBall(2, 2)
        assert ball.words[0] == ()
        assert ball.index[()] == 0

    def test_neighbor_moves(self):
        ball = OrientedBall(2, 2)
        assert ball.neighbor((), (0, 1)) == ((0, 1),)
        assert ball.neighbor(((0, 1),), (0, -1)) == ()
        assert ball.neighbor(((0, 1),), (1, 1)) == ((0, 1), (1, 1))

    def test_neighbor_outside_is_none(self):
        ball = OrientedBall(2, 1)
        assert ball.neighbor(((0, 1),), (0, 1)) is None

    def test_instances_are_cached(self):
        assert OrientedBall(2, 2) is OrientedBall(2, 2)

    def test_outer_extends_inner_order(self):
        inner = OrientedBall(2, 1)
        outer = OrientedBall(2, 2)
        assert outer.words[: inner.size] == inner.words

    def test_shift_map_identity_at_center(self):
        inner = OrientedBall(2, 1)
        outer = OrientedBall(2, 2)
        assert outer.shift_map((), inner) == list(range(inner.size))

    def test_shift_map_neighbor(self):
        inner = OrientedBall(2, 1)
        outer = OrientedBall(2, 2)
        shift = outer.shift_map(((0, 1),), inner)
        # Moving back from the neighbor lands on the center.
        back_position = inner.index[((0, -1),)]
        assert shift[back_position] == 0

    def test_shift_map_out_of_range_raises(self):
        inner = OrientedBall(2, 2)
        outer = OrientedBall(2, 2)
        with pytest.raises(ValueError, match="outside"):
            outer.shift_map(((0, 1),), inner)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            OrientedBall(0, 1)
        with pytest.raises(ValueError):
            OrientedBall(2, -1)


class TestEdgeBall:
    def test_size_r0(self):
        assert EdgeBall(2, 0, (0, 1)).size == 2

    def test_size_r1_4_regular(self):
        # B_1(a) has 5 nodes; B_1(b) adds b's 3 other neighbors.
        assert EdgeBall(2, 1, (0, 1)).size == 8

    def test_endpoints(self):
        ball = EdgeBall(2, 1, (1, 1))
        low, high = ball.endpoint_words()
        assert low == ()
        assert high == ((1, 1),)
        assert low in ball.index and high in ball.index

    def test_anchored_at_low_endpoint_only(self):
        with pytest.raises(ValueError, match="low endpoint"):
            EdgeBall(2, 1, (0, -1))

    def test_shift_map_positive_anchor(self):
        eb = EdgeBall(2, 0, (0, 1))
        outer = OrientedBall(2, 1)
        shift = eb.shift_map_from(outer, ())
        assert shift[0] == 0  # low endpoint = center
        assert outer.words[shift[1]] == ((0, 1),)

    def test_shift_map_negative_anchor(self):
        # The edge in direction (0,-1) from the center: low endpoint is
        # the neighbor, so anchoring there maps 'high' back to the center.
        eb = EdgeBall(2, 0, (0, 1))
        outer = OrientedBall(2, 1)
        shift = eb.shift_map_from(outer, ((0, -1),))
        assert outer.words[shift[0]] == ((0, -1),)
        assert shift[1] == 0

    def test_edge_ball_within_radius_plus_one(self):
        eb = EdgeBall(2, 1, (0, 1))
        outer = OrientedBall(2, 2)
        # Both anchorings must fit inside B_{r+1}.
        eb.shift_map_from(outer, ())
        eb.shift_map_from(outer, ((0, -1),))

    def test_instances_cached(self):
        assert EdgeBall(2, 1, (0, 1)) is EdgeBall(2, 1, (0, 1))

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            EdgeBall(2, 1, (5, 1))
