"""Unit contract of the long-lived service backend.

:class:`~repro.core.service.ServiceEngine` promises warmth without
drift: repeat requests reuse class tables, warm graphs, and memoized
partitions, yet every response stays bit-identical on ``identity()``
to a cold direct run.  This suite pins the cache layers one at a time
— table reuse, graph LRU, whole-table eviction under a byte budget,
the unkeyable-algorithm escape hatch — plus the ``service_*`` metrics
and ``on_service`` events that make them observable.
"""

from __future__ import annotations

import random

import pytest

from repro.algorithms.message_passing import LubyMIS
from repro.algorithms.view_rules import make_view_rule
from repro.core import ENGINE_NAMES, ServiceEngine, SimRequest, resolve_engine, simulate
from repro.core.service import algorithm_cache_key
from repro.graphs import cycle, orient_torus, toroidal_grid
from repro.graphs.identifiers import random_permutation_ids
from repro.instrumentation import MetricsTracer
from repro.local_model import EdgeViewAlgorithm


def _view_request(n=16, radius=1, seed=3):
    graph = cycle(n)
    return SimRequest(
        kind="view",
        graph=graph,
        algorithm=make_view_rule("local-max", radius=radius),
        ids=random_permutation_ids(graph, random.Random(seed)),
        label=f"svc-view-{n}-{radius}-{seed}",
    )


def _edge_count_output(view):
    """Module-level on purpose: keyable by import path."""
    return (view.node_count, len(view.edges))


def _local_request(seed=0, n=12):
    graph = cycle(n)
    return SimRequest(
        kind="local",
        graph=graph,
        algorithm=LubyMIS(),
        ids=random_permutation_ids(graph, random.Random(seed)),
        seed=seed,
        label=f"svc-local-{seed}",
    )


def _finite_request():
    from repro.speedup import local_maximum_coloring

    graph = toroidal_grid(4, 4)
    orientation = orient_torus(graph, 4, 4)
    alg = local_maximum_coloring(2, bits=2)
    values = [random.Random(9).randrange(alg.values) for _ in graph.nodes()]
    return SimRequest(kind="finite", graph=graph, algorithm=alg,
                      orientation=orientation, values=values,
                      label="svc-finite")


def test_service_is_a_registered_backend():
    assert "service" in ENGINE_NAMES
    first = resolve_engine("service")
    second = resolve_engine("service")
    assert isinstance(first, ServiceEngine)
    assert first is not second  # warmth must not leak across callers
    report = simulate(_view_request(), engine="service")
    assert report.backend == "service"
    assert report.identity() == simulate(_view_request(), engine="direct").identity()


def test_warm_table_reuse_is_bit_identical():
    engine = ServiceEngine()
    try:
        base = simulate(_view_request(), engine="direct")
        cold = engine.run(_view_request())
        warm = engine.run(_view_request())
        assert cold.info["service"]["table_hit"] is False
        assert warm.info["service"]["table_hit"] is True
        assert cold.identity() == base.identity()
        assert warm.identity() == base.identity()
        assert engine.counters["table_hits"] == 1
        assert engine.counters["table_misses"] == 1
    finally:
        engine.close()


def test_table_reuse_spans_distinct_graph_objects():
    # The table keys on view signatures, not on the graph object, so a
    # *different* build of the same family still hits warm classes.
    engine = ServiceEngine()
    try:
        engine.run(_view_request(seed=3))
        lookups_before = engine.total_bytes()
        warm = engine.run(_view_request(seed=3))
        assert warm.info["service"]["table_hit"] is True
        assert warm.info["service"]["graph_hit"] is False  # fresh object
        assert engine.total_bytes() == lookups_before  # no new classes
    finally:
        engine.close()


def test_warm_graph_lru_bounds_and_hits():
    engine = ServiceEngine(max_graphs=2)
    try:
        g1 = engine.warm_graph("cycle", {"n": 10})
        assert engine.warm_graph("cycle", {"n": 10}) is g1
        assert engine.counters["graph_hits"] == 1
        engine.warm_graph("path", {"n": 10})
        engine.warm_graph("cycle", {"n": 12})  # evicts the LRU entry
        assert engine.service_info()["graphs"] == 2
        assert engine.warm_graph("cycle", {"n": 10}) is not g1  # rebuilt
    finally:
        engine.close()


def test_warm_graph_runs_bit_identically():
    engine = ServiceEngine()
    try:
        graph = engine.warm_graph("cycle", {"n": 16})
        request = _view_request()
        warm_request = SimRequest(
            kind="view", graph=graph, algorithm=request.algorithm,
            ids=request.ids, label=request.label,
        )
        base = simulate(_view_request(), engine="direct")
        assert engine.run(warm_request).identity() == base.identity()
        # Repeat on the same warm graph: partitions memoized, still exact.
        assert engine.run(warm_request).identity() == base.identity()
    finally:
        engine.close()


def test_eviction_under_tiny_byte_budget_stays_exact():
    engine = ServiceEngine(max_bytes=1)
    try:
        base = simulate(_view_request(), engine="direct")
        first = engine.run(_view_request())
        assert first.identity() == base.identity()
        assert engine.counters["evictions"] >= 1
        assert engine.service_info()["tables"] == 0  # all evicted
        # Post-eviction requests recompute from scratch — never warm,
        # never wrong.
        second = engine.run(_view_request())
        assert second.info["service"]["table_hit"] is False
        assert second.identity() == base.identity()
    finally:
        engine.close()


def test_no_eviction_when_budget_disabled():
    engine = ServiceEngine(max_bytes=None)
    try:
        engine.run(_view_request())
        engine.run(_view_request(n=18, seed=4))
        assert engine.counters["evictions"] == 0
        assert engine.service_info()["tables"] >= 1
    finally:
        engine.close()


def test_unkeyable_algorithm_served_from_private_table():
    def make_request():
        graph = cycle(10)
        alg = EdgeViewAlgorithm(1, lambda view: view.node_count,
                                name="svc-lambda-edge")
        return SimRequest(kind="edge", graph=graph, algorithm=alg,
                          label="svc-unkeyable")

    engine = ServiceEngine()
    try:
        base = simulate(make_request(), engine="direct")
        for expected_unkeyable in (1, 2):
            report = engine.run(make_request())
            assert report.identity() == base.identity()
            assert report.info["service"]["unkeyable"] is True
            assert report.info["service"]["table_hit"] is False
            assert engine.counters["unkeyable"] == expected_unkeyable
        assert engine.service_info()["tables"] == 0  # never shared
    finally:
        engine.close()


def test_algorithm_cache_key_is_structural():
    a = make_view_rule("local-max", radius=2)
    b = make_view_rule("local-max", radius=2)
    c = make_view_rule("local-max", radius=1)
    assert algorithm_cache_key(a) == algorithm_cache_key(b)
    assert algorithm_cache_key(a) != algorithm_cache_key(c)
    # Module-level callables key by import path ...
    keyed = EdgeViewAlgorithm(1, _edge_count_output, name="svc-keyed")
    keyed2 = EdgeViewAlgorithm(1, _edge_count_output, name="svc-keyed")
    assert algorithm_cache_key(keyed) is not None
    assert algorithm_cache_key(keyed) == algorithm_cache_key(keyed2)
    # ... anonymous ones have no stable identity.
    anon = EdgeViewAlgorithm(1, lambda view: view.node_count, name="svc-anon")
    assert algorithm_cache_key(anon) is None


def test_local_and_finite_kinds_pass_through():
    engine = ServiceEngine()
    try:
        for request_fn in (_local_request, _finite_request):
            base = simulate(request_fn(), engine="direct")
            report = engine.run(request_fn())
            assert report.identity() == base.identity()
            assert report.backend == "service"
            assert report.info["service"]["table_hit"] is False
        assert engine.service_info()["tables"] == 0
    finally:
        engine.close()


def test_run_many_mixed_batch_pools_local_requests():
    engine = ServiceEngine(shards=2)
    try:
        requests = [
            _local_request(seed=0), _view_request(), _local_request(seed=1),
            _view_request(n=18, seed=4), _local_request(seed=2),
        ]
        expected = [simulate(r, engine="direct").identity() for r in requests]
        reports = engine.run_many(requests)
        assert [r.identity() for r in reports] == expected
        assert engine.counters["requests"] == len(requests)
    finally:
        engine.close()
    engine.close()  # idempotent


def test_metrics_tracer_records_service_counters():
    # RunMetrics is per-run (on_run_start resets), so trace each run
    # with its own tracer and compare the cold and warm snapshots.
    engine = ServiceEngine()
    cold_tracer, warm_tracer = MetricsTracer(), MetricsTracer()
    try:
        engine.run(_view_request(), tracer=cold_tracer)
        engine.run(_view_request(), tracer=warm_tracer)
        cold, warm = cold_tracer.metrics, warm_tracer.metrics
        assert cold.service_requests == 1
        assert cold.service_table_misses == 1
        assert cold.service_table_hits == 0
        assert warm.service_requests == 1
        assert warm.service_table_hits == 1
        assert warm.service_table_misses == 0
        assert warm.service_graph_misses == 1  # fresh graph object
        assert warm.service_bytes == engine.total_bytes()  # snapshot
        assert warm.to_dict()["service_table_hits"] == 1
    finally:
        engine.close()


def test_on_service_event_shape():
    events = []

    class _Recorder(MetricsTracer):
        def on_service(self, engine_name, info):
            events.append((engine_name, dict(info)))
            super().on_service(engine_name, info)

    engine = ServiceEngine()
    try:
        engine.run(_view_request(), tracer=_Recorder())
    finally:
        engine.close()
    assert len(events) == 1
    name, info = events[0]
    assert name == "service"
    assert info["event"] == "request"
    assert info["kind"] == "view"
    for field in ("requests", "table_hits", "table_misses", "graph_hits",
                  "graph_misses", "evictions", "bytes", "tables", "unkeyable"):
        assert field in info


def test_constructor_defaults_are_sane():
    engine = ServiceEngine()
    assert engine.max_bytes > 0
    assert engine.max_graphs > 0
    info = engine.service_info()
    assert info["requests"] == 0
    assert info["bytes"] == 0
    assert info["tables"] == 0
    assert info["graphs"] == 0
    engine.close()


@pytest.mark.parametrize("radius", [0, 1, 2])
def test_warm_partition_memo_does_not_cross_radii(radius):
    # Distinct radii on the same warm graph must partition separately.
    engine = ServiceEngine()
    try:
        graph = engine.warm_graph("cycle", {"n": 14})
        for r in (radius, radius + 1):
            request = SimRequest(
                kind="view", graph=graph,
                algorithm=make_view_rule("ball-signature", radius=r),
                label=f"svc-radius-{r}",
            )
            base = simulate(SimRequest(
                kind="view", graph=cycle(14),
                algorithm=make_view_rule("ball-signature", radius=r),
                label=f"svc-radius-{r}",
            ), engine="direct")
            assert engine.run(request).identity() == base.identity()
    finally:
        engine.close()
