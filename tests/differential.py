"""Differential harness: every engine backend must be *exact*.

The cache (:mod:`repro.local_model.cache`) claims that keying on the
canonical view signature and broadcasting one computed output per
distinct view class is indistinguishable from running the algorithm at
every node; the sharded engine (:mod:`repro.core.sharded`) makes the
same claim for its dedup-and-pool evaluation plan.  This module turns
both claims into an executable oracle:

* :func:`grid` enumerates a (algorithm × graph family × radius ×
  labeling) case grid — id-driven, anonymous, and randomness-driven
  rules over cycles, paths, trees, tori, stars, caterpillars, cliques,
  and random regular graphs, at radii 0 through 3;
* :func:`run_case` executes one case twice, directly and through a
  fresh :class:`~repro.local_model.ViewCache`;
* :func:`assert_identical` demands the two
  :class:`~repro.local_model.ExecutionResult`s agree **bit for bit** —
  outputs, halt rounds, and round count;
* :func:`run_case_backends` / :func:`run_edge_case_backends` run the
  same case once per :mod:`repro.core` backend (direct, cached,
  sharded) and return the :class:`~repro.core.SimReport`s, whose
  ``identity()`` projections must coincide;
* :func:`run_case_layouts` / :func:`run_edge_case_layouts` extend that
  comparison with the graph-layout axis: every (backend × layout)
  combination — the reference ``"dict"`` path and the batched
  ``"csr"`` expander — must reproduce the direct/dict report bit for
  bit (:func:`assert_layout_reports_identical`);
* :func:`run_delta_case` / :func:`run_edge_delta_case` add the
  *mutation* axis: an :class:`~repro.core.IncrementalEngine` is primed
  on the case, a seed-derived chain of random
  :class:`~repro.graphs.GraphDelta` batches is applied, and after every
  step the incremental report must match a fresh
  :class:`~repro.core.DirectEngine` run on the mutated graph bit for
  bit (:func:`assert_delta_case_identical`) — including the final class
  partition against from-scratch
  :func:`~repro.local_model.view_signature` grouping.

``tests/test_differential.py`` parametrizes over the full grid;
``tests/test_engine_backends.py`` adds the three-backend comparison;
``python -m tests.differential`` (with ``src`` on the path) runs both
standalone and prints a per-case table, which is handy when a cache or
backend change needs forensic rather than pass/fail output.

Every case derives its labelings from ``sha256(case_id)``, so the grid
is deterministic across processes, job counts, and Python hash seeds.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.algorithms.view_rules import make_view_rule
from repro.core import IncrementalEngine, SimRequest, derive_seed, simulate
from repro.graphs.delta import random_delta
from repro.local_model.views import view_signature
from repro.graphs import (
    balanced_regular_tree,
    caterpillar,
    complete_graph,
    cycle,
    path,
    random_regular_graph,
    star,
    toroidal_grid,
)
from repro.graphs.identifiers import random_permutation_ids
from repro.local_model import EdgeViewAlgorithm, ViewCache
from repro.local_model.batch_views import LAYOUTS
from repro.local_model.edge_model import run_edge_view_algorithm
from repro.local_model.network import run_view_algorithm

__all__ = [
    "Case",
    "BACKENDS",
    "LAYOUTS",
    "GRAPH_FAMILIES",
    "grid",
    "run_case",
    "run_case_backends",
    "run_case_layouts",
    "run_edge_case_backends",
    "run_edge_case_layouts",
    "assert_identical",
    "assert_reports_identical",
    "assert_layout_reports_identical",
    "DELTA_BASE_SEED",
    "delta_rng",
    "run_delta_case",
    "run_edge_delta_case",
    "assert_delta_case_identical",
    "run_grid",
]

#: Every interchangeable :mod:`repro.core` backend, in comparison order
#: (``direct`` first: it is the reference semantics).
BACKENDS = ("direct", "cached", "sharded")

#: name -> zero-argument graph builder.  Sizes are chosen so the whole
#: grid stays in CI-friendly territory while still covering high-girth,
#: high-symmetry, irregular, and dense topologies.
GRAPH_FAMILIES = {
    "cycle24": lambda: cycle(24),
    "path17": lambda: path(17),
    "tree3d3": lambda: balanced_regular_tree(3, 3),
    "torus5x6": lambda: toroidal_grid(5, 6),
    "star8": lambda: star(8),
    "caterpillar6x2": lambda: caterpillar(6, 2),
    "clique7": lambda: complete_graph(7),
    "rr20d4": lambda: random_regular_graph(20, 4, rng=random.Random(7)),
}

#: labeling -> the view rules it can drive (rules needing ids or
#: randomness only appear under the labeling that provides them).
_RULES_BY_LABELING = {
    "anonymous": ("ball-signature", "degree-profile"),
    "ids": ("local-max", "ball-signature", "degree-profile"),
    "random": ("random-priority", "ball-signature", "degree-profile"),
}

RADII = (0, 1, 2, 3)


@dataclass(frozen=True)
class Case:
    """One point of the differential grid."""

    rule: str
    graph: str
    radius: int
    labeling: str

    @property
    def case_id(self) -> str:
        return f"{self.rule}-r{self.radius}-{self.graph}-{self.labeling}"


def grid() -> List[Case]:
    """The full differential grid, in deterministic order."""
    cases: List[Case] = []
    for labeling, rules in _RULES_BY_LABELING.items():
        for rule in rules:
            for radius in RADII:
                if radius < 1 and rule in ("local-max", "random-priority"):
                    continue  # comparison rules need at least one neighbor
                for graph in GRAPH_FAMILIES:
                    cases.append(Case(rule, graph, radius, labeling))
    return cases


def _case_rng(case: Case) -> random.Random:
    digest = hashlib.sha256(case.case_id.encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def _labelings(
    case: Case, graph
) -> Tuple[Optional[List[int]], Optional[List[int]]]:
    """(ids, randomness) for the case, derived from its identity."""
    rng = _case_rng(case)
    if case.labeling == "ids":
        return random_permutation_ids(graph, rng), None
    if case.labeling == "random":
        return None, [rng.getrandbits(12) for _ in graph.nodes()]
    return None, None


def run_case(case: Case) -> Tuple[Any, Any, Dict[str, Any]]:
    """Run one case directly and through a fresh cache.

    Returns ``(direct, cached, cache_stats_dict)``.
    """
    graph = GRAPH_FAMILIES[case.graph]()
    rule = make_view_rule(case.rule, radius=case.radius)
    ids, randomness = _labelings(case, graph)
    direct = run_view_algorithm(graph, rule, ids=ids, randomness=randomness)
    cache = ViewCache()
    cached = run_view_algorithm(
        graph, rule, ids=ids, randomness=randomness, view_cache=cache
    )
    return direct, cached, cache.stats.to_dict()


def assert_identical(direct: Any, cached: Any, case: Case) -> None:
    """Bit-identical or AssertionError naming the first divergence."""
    assert cached.outputs == direct.outputs, (
        f"{case.case_id}: outputs diverge at nodes "
        f"{[v for v, (a, b) in enumerate(zip(direct.outputs, cached.outputs)) if a != b][:5]}"
    )
    assert cached.halt_rounds == direct.halt_rounds, (
        f"{case.case_id}: halt rounds diverge"
    )
    assert cached.rounds == direct.rounds, (
        f"{case.case_id}: round counts diverge "
        f"({direct.rounds} direct vs {cached.rounds} cached)"
    )


# ----------------------------------------------------------------------
# Three-backend comparison (direct vs cached vs sharded SimReports)
# ----------------------------------------------------------------------

def build_request(case: Case) -> SimRequest:
    """The :class:`~repro.core.SimRequest` for one grid case."""
    graph = GRAPH_FAMILIES[case.graph]()
    rule = make_view_rule(case.rule, radius=case.radius)
    ids, randomness = _labelings(case, graph)
    return SimRequest(
        kind="view",
        graph=graph,
        algorithm=rule,
        ids=ids,
        randomness=randomness,
        label=case.case_id,
    )


def run_case_backends(case: Case) -> Dict[str, Any]:
    """Run one case through every backend; backend name -> SimReport."""
    return {
        backend: simulate(build_request(case), engine=backend)
        for backend in BACKENDS
    }


def assert_reports_identical(reports: Dict[str, Any], label: str) -> None:
    """All reports share the direct report's ``identity()`` projection."""
    reference = reports["direct"].identity()
    for backend, report in reports.items():
        assert report.backend == backend, (
            f"{label}: report from {backend!r} claims backend {report.backend!r}"
        )
        assert report.identity() == reference, (
            f"{label}: backend {backend!r} diverges from direct"
        )


def run_case_layouts(case: Case) -> Dict[Tuple[str, str], Any]:
    """One case over the full (backend × layout) grid.

    Returns ``(backend, layout) -> SimReport``.  Every grid graph is
    frozen by its generator, so the ``"csr"`` layout is legal on all of
    them.
    """
    request = build_request(case)
    return {
        (backend, layout): simulate(
            replace(request, layout=layout), engine=backend
        )
        for backend in BACKENDS
        for layout in LAYOUTS
    }


def assert_layout_reports_identical(
    reports: Dict[Tuple[str, str], Any], label: str
) -> None:
    """Every (backend, layout) report matches direct/dict bit for bit."""
    reference = reports[("direct", "dict")].identity()
    for (backend, layout), report in reports.items():
        assert report.identity() == reference, (
            f"{label}: backend {backend!r} with layout {layout!r} "
            f"diverges from direct/dict"
        )


# ----------------------------------------------------------------------
# Edge-model differential cases (B_t(e) = B_{t-1}(u) ∪ B_{t-1}(v))
# ----------------------------------------------------------------------

def edge_cases() -> List[Tuple[str, int]]:
    """(graph family, rounds) pairs for the edge-engine differential."""
    return [
        (graph, rounds)
        for rounds in (1, 2, 3)
        for graph in ("cycle24", "tree3d3", "torus5x6", "rr20d4")
    ]


def _edge_profile_output(view: Any) -> Tuple[int, int, int]:
    """Edge output: ball size, edge count, minimum randomness.

    A module-level function (not a lambda) so the algorithm pickles and
    the sharded backend can ship it to pool workers.
    """
    return (view.node_count, len(view.edges), min(view.randomness))


def _edge_case_inputs(graph_name: str, rounds: int):
    graph = GRAPH_FAMILIES[graph_name]()
    rng = random.Random(rounds * 1009 + len(graph_name))
    randomness = [rng.getrandbits(12) for _ in graph.nodes()]
    alg = EdgeViewAlgorithm(
        rounds, _edge_profile_output, name=f"edge-profile-t{rounds}"
    )
    return graph, alg, randomness


def run_edge_case(graph_name: str, rounds: int) -> Tuple[Any, Any]:
    """One edge-view algorithm, cached vs direct, on one graph."""
    graph, alg, randomness = _edge_case_inputs(graph_name, rounds)
    direct = run_edge_view_algorithm(graph, alg, randomness=randomness)
    cached = run_edge_view_algorithm(
        graph, alg, randomness=randomness, view_cache=True
    )
    return direct, cached


def run_edge_case_backends(graph_name: str, rounds: int) -> Dict[str, Any]:
    """One edge case through every backend; backend name -> SimReport."""
    graph, alg, randomness = _edge_case_inputs(graph_name, rounds)
    request = SimRequest(
        kind="edge",
        graph=graph,
        algorithm=alg,
        randomness=randomness,
        label=f"edge-t{rounds}-{graph_name}",
    )
    return {backend: simulate(request, engine=backend) for backend in BACKENDS}


def run_edge_case_layouts(
    graph_name: str, rounds: int
) -> Dict[Tuple[str, str], Any]:
    """One edge case over the full (backend × layout) grid."""
    graph, alg, randomness = _edge_case_inputs(graph_name, rounds)
    request = SimRequest(
        kind="edge",
        graph=graph,
        algorithm=alg,
        randomness=randomness,
        label=f"edge-t{rounds}-{graph_name}",
    )
    return {
        (backend, layout): simulate(
            replace(request, layout=layout), engine=backend
        )
        for backend in BACKENDS
        for layout in LAYOUTS
    }


# ----------------------------------------------------------------------
# Delta-differential harness (IncrementalEngine vs fresh recompute)
# ----------------------------------------------------------------------

#: Base seed every delta chain derives from.  The derived per-step
#: seeds are golden-pinned in ``tests/test_seed_stability.py``.
DELTA_BASE_SEED = 0


def delta_rng(case_id: str, step: int) -> random.Random:
    """The per-step delta RNG: ``derive_seed(0, f"{case_id}:delta-{k}")``.

    sha256-derived like every other seed in the repository, so the
    mutation sequence is identical across processes, job counts, and
    Python hash seeds.
    """
    return random.Random(derive_seed(DELTA_BASE_SEED, f"{case_id}:delta-{step}"))


def run_delta_case(
    case: Case, steps: int = 3, engine_factory: Any = None
) -> Dict[str, Any]:
    """Prime an incremental engine on ``case`` and chain random deltas.

    Per step, a seed-derived :func:`~repro.graphs.random_delta` batch is
    applied through :meth:`~repro.core.IncrementalEngine.apply` and the
    same mutated inputs are re-run from scratch on the direct backend.
    Returns a dict with the ``engine``, the per-step ``pairs`` of
    ``(incremental_report, fresh_report)`` (index 0 is the primed run),
    and the final ``graph`` / ``ids`` / ``randomness``.

    ``engine_factory`` swaps in a different engine constructor — the
    negative tests route the deliberately-broken stale-cache fixture
    through the exact same harness.
    """
    request = build_request(case)
    engine = (engine_factory or IncrementalEngine)()
    pairs = [(engine.run(request), simulate(request, engine="direct"))]
    graph, ids, randomness = request.graph, request.ids, request.randomness
    for step in range(steps):
        rng = delta_rng(case.case_id, step)
        delta = random_delta(graph, rng, ids=ids, randomness=randomness)
        if delta is None:
            break
        incremental = engine.apply(delta)
        graph = delta.apply()
        ids, _, randomness = delta.apply_to_labels(ids, None, randomness)
        mutated = replace(request, graph=graph, ids=ids, randomness=randomness)
        pairs.append((incremental, simulate(mutated, engine="direct")))
    return {
        "engine": engine,
        "pairs": pairs,
        "graph": graph,
        "ids": ids,
        "randomness": randomness,
    }


def assert_delta_case_identical(
    case: Case, steps: int = 3, engine_factory: Any = None
) -> None:
    """Every delta step bit-identical to a fresh direct recompute.

    Checks per step: the two reports' ``identity()`` projections (the
    full outputs / rounds / halt-rounds tuple) coincide.  After the
    final step the engine's memoized class partition
    (:meth:`~repro.core.IncrementalEngine.current_node_keys`) must
    induce exactly the same node grouping as from-scratch
    :func:`~repro.local_model.view_signature` keys on the mutated
    graph — a stale or over-merged memo cannot hide behind
    coincidentally equal outputs.
    """
    run = run_delta_case(case, steps=steps, engine_factory=engine_factory)
    for step, (incremental, fresh) in enumerate(run["pairs"]):
        assert incremental.identity() == fresh.identity(), (
            f"{case.case_id}: incremental step {step} diverges from a "
            f"fresh direct run on the mutated graph"
        )
    keys = run["engine"].current_node_keys()
    graph, ids, randomness = run["graph"], run["ids"], run["randomness"]
    signatures = [
        view_signature(graph, v, case.radius, ids=ids, randomness=randomness)
        for v in graph.nodes()
    ]
    by_key: Dict[Any, List[int]] = {}
    by_signature: Dict[Any, List[int]] = {}
    for v in graph.nodes():
        by_key.setdefault(keys[v], []).append(v)
        by_signature.setdefault(signatures[v], []).append(v)
    key_partition = sorted(map(tuple, by_key.values()))
    signature_partition = sorted(map(tuple, by_signature.values()))
    assert key_partition == signature_partition, (
        f"{case.case_id}: after {len(run['pairs']) - 1} deltas the "
        f"memoized class partition diverges from from-scratch signatures"
    )


def run_edge_delta_case(
    graph_name: str, rounds: int, steps: int = 3
) -> List[Tuple[Any, Any]]:
    """The edge-kind analogue of :func:`run_delta_case`.

    Returns the per-step ``(incremental_report, fresh_report)`` pairs
    (index 0 is the primed run); callers assert the ``identity()``
    projections coincide pairwise.
    """
    graph, alg, randomness = _edge_case_inputs(graph_name, rounds)
    request = SimRequest(
        kind="edge",
        graph=graph,
        algorithm=alg,
        randomness=randomness,
        label=f"edge-delta-t{rounds}-{graph_name}",
    )
    engine = IncrementalEngine()
    pairs = [(engine.run(request), simulate(request, engine="direct"))]
    for step in range(steps):
        rng = delta_rng(f"edge-t{rounds}-{graph_name}", step)
        delta = random_delta(graph, rng, randomness=randomness)
        if delta is None:
            break
        incremental = engine.apply(delta)
        graph = delta.apply()
        _, _, randomness = delta.apply_to_labels(None, None, randomness)
        mutated = replace(request, graph=graph, randomness=randomness)
        pairs.append((incremental, simulate(mutated, engine="direct")))
    return pairs


# ----------------------------------------------------------------------
# Standalone runner
# ----------------------------------------------------------------------

def run_grid(verbose: bool = True) -> int:
    """Run every case; return the number of failures."""
    failures = 0
    for case in grid():
        direct, cached, stats = run_case(case)
        try:
            assert_identical(direct, cached, case)
            status = "ok"
        except AssertionError as exc:
            failures += 1
            status = f"FAIL ({exc})"
        if verbose:
            print(
                f"  {case.case_id:<48s} classes={stats['distinct_classes']:>4d} "
                f"hit={stats['hit_rate']:.2f}  {status}"
            )
    for graph_name, rounds in edge_cases():
        direct, cached = run_edge_case(graph_name, rounds)
        ok = cached.outputs == direct.outputs and cached.rounds == direct.rounds
        failures += 0 if ok else 1
        if verbose:
            print(
                f"  edge-t{rounds}-{graph_name:<32s} "
                f"{'ok' if ok else 'FAIL'}"
            )
        try:
            assert_reports_identical(
                run_edge_case_backends(graph_name, rounds),
                f"edge-t{rounds}-{graph_name}",
            )
            backend_status = "backends ok"
        except AssertionError as exc:
            failures += 1
            backend_status = f"backends FAIL ({exc})"
        if verbose:
            print(f"  edge-t{rounds}-{graph_name:<32s} {backend_status}")
    return failures


if __name__ == "__main__":
    import sys

    n_failures = run_grid()
    total = len(grid()) + len(edge_cases())
    print(f"{total - n_failures}/{total} differential cases identical")
    sys.exit(1 if n_failures else 0)
