"""Unit and regression tests for the canonical-view cache layer.

Covers the cache substrate (:class:`KeyedCache` / :class:`CacheStats`),
the ``on_cache`` tracer hook end to end (MetricsTracer aggregation,
TraceRecorder events, artifact round-trips), cache reuse across runs,
and the speedup engine's shared keying function — including the
regression guard for the finite runner's injectivity refusal on tori at
radius >= 2.
"""

from __future__ import annotations

import random

import pytest

from repro.algorithms.view_rules import BallSignatureColoring, DegreeProfileRule
from repro.graphs import (
    balanced_regular_tree,
    cycle,
    orient_torus,
    symmetric_cycle,
    toroidal_grid,
)
from repro.instrumentation import MetricsTracer, RunMetrics, TraceRecorder
from repro.local_model import (
    CacheStats,
    KeyedCache,
    ViewCache,
    ball_assignment_key,
    run_view_algorithm_cached,
)
from repro.local_model.network import run_view_algorithm
from repro.speedup import (
    local_maximum_coloring,
    two_round_local_maximum,
)
from repro.speedup.finite_runner import (
    resolve_ball_tables,
    run_node_algorithm_on_oriented_graph,
)


# ----------------------------------------------------------------------
# CacheStats
# ----------------------------------------------------------------------

def test_stats_hit_rate_and_dict():
    stats = CacheStats(lookups=10, hits=7, misses=3, bytes=100, distinct_classes=3)
    assert stats.hit_rate == 0.7
    d = stats.to_dict()
    assert d["hits"] == 7 and d["hit_rate"] == 0.7
    assert CacheStats().hit_rate == 0.0  # no division by zero when idle


def test_stats_copy_is_independent_and_delta_subtracts():
    stats = CacheStats(lookups=5, hits=2, misses=3, bytes=40, distinct_classes=3)
    snap = stats.copy()
    stats.lookups += 4
    stats.hits += 4
    assert snap.lookups == 5 and snap.hits == 2
    delta = stats.delta(snap)
    assert delta.lookups == 4 and delta.hits == 4 and delta.misses == 0


# ----------------------------------------------------------------------
# KeyedCache
# ----------------------------------------------------------------------

def test_keyed_cache_counts_hits_and_misses():
    cache = KeyedCache()
    assert cache.get("a") is KeyedCache.MISS
    cache.store("a", 1)
    assert cache.get("a") == 1
    assert cache.stats.lookups == 2
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.distinct_classes == len(cache) == 1
    assert cache.stats.bytes > 0


def test_keyed_cache_caches_none_values():
    # Regression: the pre-cache NodeAlgorithm memo used ``dict.get`` with
    # a None default, so a legitimately-None output was recomputed every
    # time.  The MISS sentinel must distinguish "absent" from "None".
    cache = KeyedCache()
    cache.store("k", None)
    assert cache.get("k") is None
    assert cache.stats.hits == 1


def test_get_or_compute_runs_once():
    cache = KeyedCache()
    calls = []
    for _ in range(3):
        value = cache.get_or_compute("key", lambda: calls.append(1) or 42)
    assert value == 42
    assert len(calls) == 1


def test_clear_drops_entries_but_keeps_cumulative_lookups():
    cache = KeyedCache()
    cache.store("a", 1)
    cache.get("a")
    cache.clear()
    assert len(cache) == 0
    assert cache.stats.distinct_classes == 0
    assert cache.stats.bytes == 0
    assert cache.stats.lookups == 1  # history survives


# ----------------------------------------------------------------------
# Cached view engine
# ----------------------------------------------------------------------

def test_cache_reuse_across_runs_hits_everything():
    graph = cycle(32)
    rule = BallSignatureColoring(radius=2, palette=4)
    cache = ViewCache()
    first = run_view_algorithm_cached(graph, rule, cache=cache)
    after_first = cache.stats.copy()
    second = run_view_algorithm_cached(graph, rule, cache=cache)
    assert second.outputs == first.outputs
    delta = cache.stats.delta(after_first)
    assert delta.misses == 0 and delta.hits == graph.n  # warm cache: all hits
    assert delta.distinct_classes == 0


def test_view_cache_true_flag_delegates():
    graph = balanced_regular_tree(3, 3)
    rule = DegreeProfileRule(radius=1)
    direct = run_view_algorithm(graph, rule)
    cached = run_view_algorithm(graph, rule, view_cache=True)
    assert cached.outputs == direct.outputs
    assert cached.halt_rounds == direct.halt_rounds


def test_cached_engine_materializes_one_view_per_class():
    # symmetric_cycle: rotation-invariant ports, so exactly one view class.
    graph = symmetric_cycle(40)
    rule = BallSignatureColoring(radius=2, palette=4)
    recorder = TraceRecorder()
    cache = ViewCache()
    run_view_algorithm_cached(graph, rule, tracer=recorder, cache=cache)
    # on_view fires only for misses — one per distinct class.
    assert len(recorder.of_kind("view")) == cache.stats.distinct_classes == 1
    (event,) = recorder.of_kind("cache")
    assert event.data["engine"] == "view"
    assert event.data["lookups"] == graph.n
    assert event.data["hits"] == graph.n - 1
    # Hook ordering: cache stats land before run_end.
    kinds = [e.kind for e in recorder.events]
    assert kinds.index("cache") < kinds.index("run_end")


def test_metrics_tracer_reports_hit_rate():
    graph = symmetric_cycle(40)
    rule = BallSignatureColoring(radius=2, palette=4)
    tracer = MetricsTracer()
    run_view_algorithm_cached(graph, rule, tracer=tracer)
    m = tracer.metrics
    assert m.cache_lookups == 40
    assert m.cache_misses == m.cache_distinct_classes == 1
    assert m.cache_hit_rate == pytest.approx(39 / 40)
    assert m.views_gathered == 1  # only the materialized ball


def test_run_metrics_round_trip_preserves_cache_counters():
    graph = cycle(24)
    tracer = MetricsTracer()
    run_view_algorithm_cached(graph, BallSignatureColoring(radius=1), tracer=tracer)
    loaded = RunMetrics.from_dict(tracer.metrics.to_dict())
    assert loaded.cache_lookups == tracer.metrics.cache_lookups
    assert loaded.cache_hits == tracer.metrics.cache_hits
    assert loaded.cache_hit_rate == tracer.metrics.cache_hit_rate


def test_run_metrics_loads_pre_cache_artifacts():
    # Artifacts written before the cache counters existed must still load.
    graph = cycle(8)
    tracer = MetricsTracer()
    run_view_algorithm(graph, DegreeProfileRule(radius=1), tracer=tracer)
    legacy = tracer.metrics.to_dict()
    for key in list(legacy):
        if key.startswith("cache_"):
            del legacy[key]
    loaded = RunMetrics.from_dict(legacy)
    assert loaded.cache_lookups == 0
    assert loaded.cache_hit_rate == 0.0


# ----------------------------------------------------------------------
# Shared keying with the speedup engine (satellite: one key function)
# ----------------------------------------------------------------------

def test_ball_assignment_key_is_projection():
    values = [10, 20, 30, 40]
    assert ball_assignment_key(values, [3, 0, 0]) == (40, 10, 10)
    assert ball_assignment_key(values, []) == ()


def test_finite_runner_reports_cache_delta_per_run():
    graph = toroidal_grid(6, 6)
    orientation = orient_torus(graph, 6, 6)
    alg = local_maximum_coloring(2)
    rng = random.Random(3)
    values = [rng.randrange(alg.values) for _ in graph.nodes()]

    first = MetricsTracer()
    run_node_algorithm_on_oriented_graph(alg, graph, orientation, values, tracer=first)
    second = MetricsTracer()
    run_node_algorithm_on_oriented_graph(alg, graph, orientation, values, tracer=second)

    # The algorithm's memo outlives runs, but each tracer sees only its
    # own run's lookups; the warm second run is all hits.
    assert first.metrics.cache_lookups == graph.n
    assert second.metrics.cache_lookups == graph.n
    assert second.metrics.cache_hits == graph.n
    assert second.metrics.cache_hit_rate == 1.0
    assert alg.cache.stats.lookups == 2 * graph.n


def test_node_algorithm_memoizes_through_keyed_cache():
    calls = []

    def fn(assignment):
        calls.append(assignment)
        return assignment[0]

    alg = local_maximum_coloring(1)
    alg.fn = fn  # count underlying evaluations directly
    alg.cache.clear()
    key = ball_assignment_key([1, 0, 1], [0, 1, 2])
    assert alg.evaluate(key) == alg.evaluate(key)
    assert len(calls) == 1
    assert alg.cache.stats.hits == 1


# ----------------------------------------------------------------------
# Regression: torus injectivity refusal at radius >= 2
# ----------------------------------------------------------------------

def test_torus_is_tree_like_at_radius_one():
    graph = toroidal_grid(5, 5)
    orientation = orient_torus(graph, 5, 5)
    tables = resolve_ball_tables(local_maximum_coloring(2), graph, orientation)
    assert len(tables) == graph.n
    assert all(len(set(t)) == len(t) for t in tables)


def test_torus_refused_at_radius_two():
    # Torus moves commute (RU = UR), so radius-2 ball words collide; the
    # runner must refuse rather than silently aliasing ball positions.
    graph = toroidal_grid(5, 5)
    orientation = orient_torus(graph, 5, 5)
    with pytest.raises(ValueError, match="ball words collide"):
        resolve_ball_tables(two_round_local_maximum(2), graph, orientation)
    # ... and the refusal propagates through the runner entry point.
    values = [0] * graph.n
    with pytest.raises(ValueError, match="ball words collide"):
        run_node_algorithm_on_oriented_graph(
            two_round_local_maximum(2), graph, orientation, values
        )
