"""Unit tests for orientations and identifier schemes."""

import random

import pytest

from repro.graphs import (
    Graph,
    Orientation,
    adversarial_interval_ids,
    balanced_regular_tree,
    cycle,
    direction_name,
    orient_torus,
    orient_tree,
    path,
    random_ids,
    random_permutation_ids,
    sequential_ids,
    sorted_by_bfs_ids,
    toroidal_grid,
    validate_ids,
)


class TestOrientation:
    def test_orient_tree_validates(self):
        for delta, depth in ((4, 3), (6, 2), (2, 5)):
            tree = balanced_regular_tree(delta, depth)
            o = orient_tree(tree, delta // 2)
            o.validate()

    def test_every_edge_labeled(self):
        tree = balanced_regular_tree(4, 3)
        o = orient_tree(tree, 2)
        for u, v in tree.edges():
            assert o.is_labeled(u, v)

    def test_signs_opposite_at_endpoints(self):
        tree = balanced_regular_tree(4, 3)
        o = orient_tree(tree, 2)
        for u, v in tree.edges():
            assert o.sign_at(u, v) == -o.sign_at(v, u)
            assert o.dim_of(u, v) == o.dim_of(v, u)

    def test_neighbor_lookup_consistency(self):
        tree = balanced_regular_tree(4, 3)
        o = orient_tree(tree, 2)
        for v in tree.nodes():
            for (dim, sign), u in o.labeled_neighbors(v).items():
                assert o.neighbor(v, dim, sign) == u
                assert o.neighbor(u, dim, -sign) == v

    def test_full_degree_nodes_have_all_directions(self):
        tree = balanced_regular_tree(4, 3)
        o = orient_tree(tree, 2)
        for v in tree.nodes():
            if tree.degree(v) == 4:
                assert len(o.labeled_neighbors(v)) == 4

    def test_orient_tree_rejects_high_degree(self):
        tree = balanced_regular_tree(6, 2)
        with pytest.raises(ValueError, match="exceeds"):
            orient_tree(tree, 2)

    def test_orient_tree_rejects_non_tree(self):
        with pytest.raises(ValueError, match="tree"):
            orient_tree(cycle(6), 2)

    def test_orient_torus(self):
        g = toroidal_grid(4, 5)
        o = orient_torus(g, 4, 5)
        o.validate()
        # Moving right 5 times returns home.
        v = 0
        for _ in range(5):
            v = o.neighbor(v, 0, 1)
        assert v == 0

    def test_torus_vertical_wraparound(self):
        g = toroidal_grid(4, 5)
        o = orient_torus(g, 4, 5)
        v = 7
        for _ in range(4):
            v = o.neighbor(v, 1, 1)
        assert v == 7

    def test_direction_names(self):
        assert direction_name(0, 1) == "R"
        assert direction_name(0, -1) == "L"
        assert direction_name(1, 1) == "U"
        assert direction_name(1, -1) == "D"
        assert direction_name(2, 1, k=3) == "+2"

    def test_duplicate_direction_rejected(self):
        g = Graph(3, [(0, 1), (0, 2)])
        with pytest.raises(ValueError, match="two edges"):
            Orientation(g, 1, {(0, 1): (0, 0), (0, 2): (0, 0)})

    def test_unlabeled_edge_fails_validation(self):
        g = Graph(2, [(0, 1)])
        o = Orientation(g, 1, {})
        with pytest.raises(ValueError, match="unlabeled"):
            o.validate()
        o.validate(require_full=False)

    def test_edges_of_dimension(self):
        g = toroidal_grid(3, 3)
        o = orient_torus(g, 3, 3)
        assert len(o.edges_of_dimension(0)) == 9
        assert len(o.edges_of_dimension(1)) == 9


class TestIdentifiers:
    def test_sequential(self):
        g = path(5)
        assert sequential_ids(g) == [1, 2, 3, 4, 5]
        assert validate_ids(g, sequential_ids(g), c=1)

    def test_random_permutation_is_permutation(self):
        g = cycle(10)
        ids = random_permutation_ids(g, random.Random(1))
        assert sorted(ids) == list(range(1, 11))

    def test_random_ids_in_range(self):
        g = cycle(10)
        ids = random_ids(g, c=2, rng=random.Random(2))
        assert all(1 <= i <= 100 for i in ids)

    def test_sorted_by_bfs(self):
        g = path(5)
        ids = sorted_by_bfs_ids(g, root=0)
        assert ids == [1, 2, 3, 4, 5]
        ids_mid = sorted_by_bfs_ids(g, root=2)
        assert ids_mid[2] == 1

    def test_sorted_by_bfs_requires_connected(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(ValueError):
            sorted_by_bfs_ids(g)

    def test_adversarial_interval(self):
        g = cycle(5)
        assert adversarial_interval_ids(g, start=10) == [10, 11, 12, 13, 14]
        with pytest.raises(ValueError):
            adversarial_interval_ids(g, start=0)

    def test_validate_rejects_duplicates(self):
        g = path(3)
        assert not validate_ids(g, [1, 1, 2])
        assert not validate_ids(g, [0, 1, 2])
        assert not validate_ids(g, [1, 2])
        assert not validate_ids(g, [1, 2, 100], c=1)
        assert validate_ids(g, [1, 2, 9], c=2)
