"""Unit tests for the :mod:`repro.core` registry and engine seam.

Two surfaces:

* the :class:`~repro.core.Registry` mechanics — decorator registration,
  duplicate handling, error messages, builtin population, and graph
  construction from experiment params;
* the :func:`~repro.core.simulate` facade plumbing — request
  validation, seed derivation, backend resolution, and the legacy
  entry-point signatures the refactor promised to keep intact.
"""

from __future__ import annotations

import inspect
import random

import pytest

from repro.core import (
    ALGORITHMS,
    ENGINE_NAMES,
    GRAPH_FAMILIES,
    PROBLEMS,
    REPORTS,
    CachedEngine,
    DirectEngine,
    Registry,
    RegistryError,
    ShardedEngine,
    SimRequest,
    build_graph,
    derive_seed,
    ensure_builtins,
    resolve_engine,
    simulate,
)
from repro.graphs import cycle


# ----------------------------------------------------------------------
# Registry mechanics
# ----------------------------------------------------------------------

class TestRegistry:
    def test_register_and_create(self):
        reg = Registry("widget")

        @reg.register("box", size=3)
        class Box:
            """A box."""

            def __init__(self, lid=False):
                self.lid = lid

        entry = reg.get("box")
        assert entry.name == "box"
        assert entry.metadata["size"] == 3
        assert entry.description == "A box."
        assert isinstance(reg.create("box", lid=True), Box)
        assert reg.create("box", lid=True).lid is True
        assert "box" in reg
        assert reg.names() == ("box",)

    def test_duplicate_name_rejected_unless_replace(self):
        reg = Registry("widget")
        reg.add("x", factory=lambda: 1)
        with pytest.raises(RegistryError):
            reg.add("x", factory=lambda: 2)
        reg.add("x", factory=lambda: 2, replace=True)
        assert reg.create("x") == 2

    def test_unknown_name_error_lists_known_names(self):
        reg = Registry("widget")
        reg.add("alpha", factory=lambda: 1)
        reg.add("beta", factory=lambda: 2)
        with pytest.raises(RegistryError) as exc:
            reg.get("gamma")
        message = str(exc.value)
        assert "gamma" in message
        assert "alpha" in message and "beta" in message

    def test_registry_error_is_a_key_error(self):
        # Callers that guarded string dispatch with KeyError keep working.
        assert issubclass(RegistryError, KeyError)

    def test_unknown_kwarg_error_names_valid_parameters(self):
        reg = Registry("widget")
        reg.add("crate", factory=lambda size=1, lid=False: (size, lid))
        with pytest.raises(RegistryError) as exc:
            reg.create("crate", colour="red")
        message = str(exc.value)
        assert "crate" in message
        assert "colour" in message
        assert "valid parameters: size, lid" in message  # signature order

    def test_type_error_raised_inside_factory_body_propagates(self):
        # Only *signature* mismatches become RegistryError; a factory
        # that itself raises TypeError must not be mislabeled.
        def exploding(size=1):
            raise TypeError("boom from the body")

        reg = Registry("widget")
        reg.add("bomb", factory=exploding)
        with pytest.raises(TypeError, match="boom from the body"):
            reg.create("bomb", size=2)

    def test_uninspectable_factory_still_creates(self):
        # Builtins like dict defeat inspect.signature on some versions;
        # create() must fall through to a plain call, not crash.
        reg = Registry("widget")
        reg.add("mapping", factory=dict)
        assert reg.create("mapping", a=1) == {"a": 1}

    def test_entries_are_sorted_by_name(self):
        reg = Registry("widget")
        reg.add("zeta", factory=lambda: 1)
        reg.add("alpha", factory=lambda: 2)
        assert [e.name for e in reg.entries()] == ["alpha", "zeta"]


class TestBuiltins:
    def test_builtin_algorithms_present(self):
        ensure_builtins()
        names = set(ALGORITHMS.names())
        assert {"local-max", "random-priority", "ball-signature",
                "degree-profile"} <= names
        assert {"luby-mis", "cole-vishkin-mp",
                "randomized-weak-coloring"} <= names

    def test_builtin_graph_families_present(self):
        ensure_builtins()
        assert {"cycle", "path", "tree", "torus", "star", "caterpillar",
                "clique", "hypercube"} <= set(GRAPH_FAMILIES.names())

    def test_builtin_problems_present(self):
        ensure_builtins()
        assert {"weak-coloring", "proper-coloring", "mis",
                "weak-edge-coloring", "sinkless-orientation",
                "maximal-matching"} <= set(PROBLEMS.names())

    def test_builtin_reports_present_and_lazy_factories_work(self):
        ensure_builtins()
        assert {"table1", "logstar-sweep", "theorem4",
                "cycle-trichotomy"} <= set(REPORTS.names())
        spec = REPORTS.get("table1").create()
        assert callable(spec.fn) and callable(spec.verdict)

    def test_algorithm_metadata_drives_cell_resolution(self):
        ensure_builtins()
        entry = ALGORITHMS.get("luby-mis")
        assert entry.metadata["kind"] == "local"
        assert entry.metadata["needs_ids"] is True
        problem_name, problem_kwargs = entry.metadata["solves"]
        assert problem_name == "mis"
        assert PROBLEMS.create(problem_name, **problem_kwargs) is not None

    def test_build_graph_from_params(self):
        g = build_graph({"graph": "cycle", "n": 12, "unrelated": "x"})
        assert g.n == 12
        g = build_graph({"graph": "tree", "delta": 3, "depth": 2})
        assert g.degree(0) == 3

    def test_build_graph_missing_param_raises(self):
        with pytest.raises(RegistryError):
            build_graph({"graph": "cycle"})


# ----------------------------------------------------------------------
# Engine seam plumbing
# ----------------------------------------------------------------------

class TestEngineSeam:
    def test_engine_names_cover_all_backends(self):
        assert ENGINE_NAMES == (
            "direct", "cached", "sharded", "incremental", "service",
        )

    def test_resolve_engine(self):
        from repro.core import IncrementalEngine

        assert isinstance(resolve_engine(None), DirectEngine)
        assert isinstance(resolve_engine("direct"), DirectEngine)
        assert isinstance(resolve_engine("cached"), CachedEngine)
        assert isinstance(resolve_engine("sharded"), ShardedEngine)
        assert isinstance(resolve_engine("incremental"), IncrementalEngine)
        from repro.core import ServiceEngine

        assert isinstance(resolve_engine("service"), ServiceEngine)
        engine = DirectEngine()
        assert resolve_engine(engine) is engine
        with pytest.raises(ValueError):
            resolve_engine("turbo")

    def test_derive_seed_is_stable_and_label_sensitive(self):
        assert derive_seed(0, "a") == derive_seed(0, "a")
        assert derive_seed(0, "a") != derive_seed(0, "b")
        assert derive_seed(0, "a") != derive_seed(1, "a")
        assert 0 <= derive_seed(0, "a") < 2 ** 64

    def test_derive_seed_matches_runner_cell_scheme(self):
        from repro.experiments.runner import derive_cell_seed

        assert derive_cell_seed(7, "cell") == derive_seed(7, "cell")

    def test_request_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            SimRequest(kind="quantum", graph=cycle(4), algorithm=None)

    def test_resolved_rng_precedence(self):
        graph = cycle(4)
        explicit = random.Random(3)
        request = SimRequest(kind="view", graph=graph, algorithm=None,
                             rng=explicit, seed=5, label="x")
        assert request.resolved_rng() is explicit
        seeded = SimRequest(kind="view", graph=graph, algorithm=None,
                            seed=5, label="x")
        expected = random.Random(derive_seed(5, "x"))
        assert seeded.resolved_rng().random() == expected.random()

    def test_sharded_engine_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            ShardedEngine(shards=0)

    def test_simulate_reports_backend_name(self):
        from repro.algorithms.view_rules import make_view_rule

        request = SimRequest(kind="view", graph=cycle(8),
                             algorithm=make_view_rule("ball-signature", radius=1))
        for name in ENGINE_NAMES:
            assert simulate(request, engine=name).backend == name


class TestLegacySignatures:
    """The refactor's compatibility promise, pinned as tests."""

    def test_run_local_signature(self):
        from repro.local_model.network import run_local

        params = list(inspect.signature(run_local).parameters)
        assert params == ["graph", "algorithm", "ids", "inputs",
                          "orientation", "rng", "deterministic",
                          "max_rounds", "tracer"]

    def test_run_view_algorithm_signature(self):
        from repro.local_model.network import run_view_algorithm

        params = list(inspect.signature(run_view_algorithm).parameters)
        assert params == ["graph", "algorithm", "ids", "inputs",
                          "randomness", "orientation", "tracer",
                          "view_cache"]

    def test_run_edge_view_algorithm_signature(self):
        from repro.local_model.edge_model import run_edge_view_algorithm

        params = list(inspect.signature(run_edge_view_algorithm).parameters)
        assert params == ["graph", "algorithm", "ids", "inputs",
                          "randomness", "orientation", "tracer",
                          "view_cache"]

    def test_finite_runner_signature(self):
        from repro.speedup.finite_runner import (
            run_node_algorithm_on_oriented_graph,
        )

        params = list(
            inspect.signature(run_node_algorithm_on_oriented_graph).parameters
        )
        assert params == ["alg", "graph", "orientation", "values", "tables",
                          "tracer"]
