"""Tests for tower arithmetic, recurrences, independence, and bounds."""

import math

import pytest

from repro.analysis import (
    TowerNumber,
    claim10_ball_radius,
    claim10_global_success_bound,
    claim10_set_size_bound,
    claim11_failure_floor_log2,
    claim12_c0_ceiling,
    claim12_failure_floor_reciprocal,
    claim12_round_threshold,
    first_lemma_bound,
    id_collision_probability_bound,
    independent_execution_set,
    iterated_log,
    lemma9_evaluate,
    log_star_float,
    palette_trajectory,
    second_lemma_bound,
    theorem6_round_floor,
    theorem13_crossover_height,
    tower,
    zero_round_failure_of_distribution,
    zero_round_optimal_failure,
)
from repro.graphs import balanced_regular_tree, orient_tree


class TestTowerNumber:
    def test_small_towers_exact(self):
        assert tower(0).to_float() == 1.0
        assert tower(1).to_float() == 2.0
        assert tower(2).to_float() == 4.0
        assert tower(3).to_float() == 16.0
        assert tower(4).to_float() == 65536.0

    def test_tower_5_exceeds_floats(self):
        assert not tower(5).is_finite_float()
        assert tower(5).to_float() == math.inf

    def test_log2_peels(self):
        assert tower(4).log2() == tower(3)
        assert abs(TowerNumber.from_float(10.0).log2().to_float() - math.log2(10)) < 1e-12

    def test_log_star(self):
        for h in range(1, 9):
            assert tower(h).log_star() == h

    def test_log_star_float(self):
        assert log_star_float(1) == 0
        assert log_star_float(65536) == 4

    def test_iterated_log(self):
        assert iterated_log(tower(6), 2) == tower(4)
        assert iterated_log(tower(3), 10) == TowerNumber(0, 1.0)

    def test_comparisons_across_heights(self):
        assert tower(5) > tower(4)
        assert tower(4) > 65535
        assert tower(2) < 5
        assert tower(7) >= tower(7)
        assert not (tower(6) < tower(5))

    def test_comparison_same_height(self):
        a = TowerNumber(2, 2000.0)
        b = TowerNumber(2, 3000.0)
        assert a < b

    def test_exp2(self):
        assert TowerNumber.from_float(4.0).exp2() == tower(0, 16.0) or True
        assert TowerNumber.from_float(4.0).exp2().to_float() == 16.0
        assert tower(4).exp2() == tower(5)

    def test_domain_validation(self):
        with pytest.raises(ValueError):
            TowerNumber.from_float(0.5)
        with pytest.raises(ValueError):
            TowerNumber(-1, 2.0)
        with pytest.raises(ValueError):
            TowerNumber(0, 1.0).log2()

    def test_hash_consistency(self):
        assert hash(tower(3)) == hash(TowerNumber(0, 16.0))


class TestClaim10Formulas:
    def test_ball_radius_delta4(self):
        n = 10**6
        k = claim10_ball_radius(n, 4)
        # 3^k ~ (n^{1/3}+1)/2.
        assert abs(3**k - (n ** (1 / 3) + 1) / 2) < 1e-6

    def test_ball_radius_general_matches_at_reasonable_n(self):
        assert claim10_ball_radius(10**6, 6) < claim10_ball_radius(10**6, 4)

    def test_set_size_bound_decreasing_in_t(self):
        assert claim10_set_size_bound(10**9, 1) > claim10_set_size_bound(10**9, 3)

    def test_global_success_bound_shrinks_with_p(self):
        assert claim10_global_success_bound(0.2, 10**9, 1) < claim10_global_success_bound(
            0.01, 10**9, 1
        )

    def test_t_zero_rejected(self):
        with pytest.raises(ValueError):
            claim10_set_size_bound(100, 0)


class TestIndependentSet:
    def test_construction_respects_bound(self):
        tree = balanced_regular_tree(4, 9)
        orientation = orient_tree(tree, 2)
        result = independent_execution_set(
            tree, orientation, 0, t=1, ball_radius=8, seed_radius=2, verify=True
        )
        assert result.verified
        effective_n = len(tree.ball(0, 8)) ** 3
        assert result.size >= claim10_set_size_bound(effective_n, 1)

    def test_members_at_stride_multiples(self):
        tree = balanced_regular_tree(4, 8)
        orientation = orient_tree(tree, 2)
        result = independent_execution_set(
            tree, orientation, 0, t=1, ball_radius=7, seed_radius=1, verify=True
        )
        dist = tree.bfs_distances(0)
        for v in result.nodes:
            assert (dist[v] - 1) % 3 == 0

    def test_growth_factor_is_delta_minus_1(self):
        tree = balanced_regular_tree(4, 9)
        orientation = orient_tree(tree, 2)
        result = independent_execution_set(
            tree, orientation, 0, t=1, ball_radius=8, seed_radius=1, verify=False
        )
        # Seed sphere has 4 nodes; layers grow by factor 3.
        assert result.seed_size == 4
        assert result.size == 4 * 3 + 4 * 9

    def test_shallow_tree_raises(self):
        tree = balanced_regular_tree(4, 3)
        orientation = orient_tree(tree, 2)
        with pytest.raises(ValueError, match="shallow"):
            independent_execution_set(tree, orientation, 0, t=1, ball_radius=3,
                                      seed_radius=7)

    def test_t_validation(self):
        tree = balanced_regular_tree(4, 4)
        orientation = orient_tree(tree, 2)
        with pytest.raises(ValueError):
            independent_execution_set(tree, orientation, 0, t=0, ball_radius=3)


class TestRecurrences:
    def test_palette_trajectory_growth(self):
        traj = palette_trajectory(3, 4)
        assert traj[0] == 2
        assert all(b > a for a, b in zip(traj, traj[1:]))
        # log* grows by 2 per step (two exponentials per round trip).
        stars = [c.log_star() for c in traj]
        assert stars[-1] - stars[-2] == 2

    def test_palette_first_step_exact(self):
        # c_hat = 2^(2*2) = 16, c_0 = 2^(4*16) = 2^64.
        traj = palette_trajectory(1, 4)
        assert traj[1].to_float() == 2.0**64

    def test_palette_delta6_first_step(self):
        traj = palette_trajectory(1, 6)
        assert traj[1].to_float() == 2.0**96  # 2^(6 * 16)

    def test_odd_delta_rejected(self):
        with pytest.raises(ValueError):
            palette_trajectory(2, 5)

    def test_claim11_floor_matches_formula(self):
        # (p0 / (5 c0))^(5^(2t+1)) at p0 = 2^-8, c0 = 2^4, t = 1.
        expected = (5**3) * (-8 - math.log2(5) - 4)
        assert abs(claim11_failure_floor_log2(-8, 4, 1, 4) - expected) < 1e-9

    def test_claim11_floor_decreases_in_t(self):
        floors = [claim11_failure_floor_log2(-8, 4, t, 4) for t in range(1, 5)]
        assert all(b < a for a, b in zip(floors, floors[1:]))

    def test_claim12_round_threshold(self):
        assert claim12_round_threshold(14, 1) == 3.0
        with pytest.raises(ValueError):
            claim12_round_threshold(10, 0)

    def test_claim12_ceiling_and_floor(self):
        n = tower(10)
        assert claim12_c0_ceiling(n, 1) == tower(7)
        assert claim12_failure_floor_reciprocal(n, 1) == tower(8)


class TestLemma9Theorem13:
    def test_regime_not_reached_at_small_n(self):
        evaluation = lemma9_evaluate(tower(6), b=1)
        assert not evaluation.regime_reached
        assert evaluation.below_half is None

    def test_below_half_in_regime(self):
        evaluation = lemma9_evaluate(tower(12), b=1)
        assert evaluation.regime_reached
        assert evaluation.below_half
        assert evaluation.first_term_upper() < 0.25

    def test_crossover_height(self):
        h = theorem13_crossover_height(b=1)
        assert h == 10
        before = lemma9_evaluate(tower(h - 1), b=1)
        assert not (before.regime_reached and before.below_half)

    def test_crossover_moves_with_b(self):
        assert theorem13_crossover_height(b=2) > theorem13_crossover_height(b=1)


class TestBounds:
    def test_zero_round_uniform_is_optimal(self):
        uniform = zero_round_optimal_failure(4, 4)
        skewed = zero_round_failure_of_distribution([0.7, 0.1, 0.1, 0.1], 4)
        assert uniform < skewed
        assert abs(uniform - 4.0**-4) < 1e-15

    def test_distribution_validation(self):
        with pytest.raises(ValueError):
            zero_round_failure_of_distribution([0.5, 0.2], 4)

    def test_id_collision_bound(self):
        n = 10**6
        m = round(n ** (1 / 3))
        assert id_collision_probability_bound(m, n) < 1 / (2 * n ** (1 / 3)) + 1e-9

    def test_theorem6_round_floor(self):
        assert theorem6_round_floor(2**16, b=1) == pytest.approx(4 / 2 - 4)

    def test_lemma_bounds_reexported(self):
        assert first_lemma_bound(0.001, 2, 4) > 0
        assert second_lemma_bound(0.001, 2, 4) > 0
