"""Property-based proof obligations for the incremental data layer.

Hypothesis drives the three claims ``docs/INCREMENTAL.md`` rests on:

* **Footprint soundness** — any node whose canonical radius-t view
  signature differs between the base and the mutated graph lies inside
  :meth:`GraphDelta.footprint(t) <repro.graphs.delta.GraphDelta.
  footprint>` (the dirty-ball tracker never under-approximates, which
  is what makes memo splicing exact);
* **Delta composition** — ``apply([d1, d2])`` is indistinguishable
  from ``apply(d1); apply(d2)``: same report identity, same changed
  nodes, same memoized class partition;
* **Insert-then-delete round trips** — adding an edge and removing it
  again (in one batch or across two applies) restores the adjacency
  rows, the outputs, and the class partition bit-for-bit (the ordered
  port-bookkeeping contract).

Graphs are seed-derived Erdős–Rényi-ish corpora plus the repo's tree
and regular generators, so shrinking stays meaningful.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.algorithms.view_rules import make_view_rule
from repro.core import IncrementalEngine, SimRequest
from repro.graphs import Graph, GraphDelta, random_delta, random_tree
from repro.local_model import view_signature

DEFAULT_SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _random_graph(rng: random.Random, n: int) -> Graph:
    """A seed-derived graph: half trees, half sparse G(n, 0.3)."""
    if n >= 2 and rng.random() < 0.5:
        return random_tree(n, rng=rng)
    g = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < 0.3:
                g.add_edge(u, v)
    return g.freeze()


def _view_request(graph: Graph, radius: int, randomness=None) -> SimRequest:
    return SimRequest(
        kind="view",
        graph=graph,
        algorithm=make_view_rule("ball-signature", radius=radius),
        randomness=randomness,
    )


# ----------------------------------------------------------------------
# Footprint soundness
# ----------------------------------------------------------------------

@DEFAULT_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n=st.integers(min_value=2, max_value=14),
    radius=st.integers(min_value=0, max_value=2),
)
def test_footprint_contains_every_changed_signature(seed, n, radius):
    rng = random.Random(seed)
    graph = _random_graph(rng, n)
    randomness = [rng.getrandbits(8) for _ in graph.nodes()]
    delta = random_delta(graph, rng, randomness=randomness, max_ops=3)
    assume(delta is not None)
    mutated = delta.apply()
    _, _, new_rand = delta.apply_to_labels(None, None, randomness)
    footprint = set(delta.footprint(radius))
    for v in graph.nodes():
        old_sig = view_signature(graph, v, radius, randomness=randomness)
        new_sig = view_signature(mutated, v, radius, randomness=new_rand)
        if old_sig != new_sig:
            assert v in footprint, (
                f"node {v} changed its radius-{radius} view but is not in "
                f"the footprint {sorted(footprint)} (ops={delta.ops})"
            )


@DEFAULT_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n=st.integers(min_value=2, max_value=12),
)
def test_touched_endpoints_always_change_class(seed, n):
    """An edge op's endpoints always change: degree is in the view."""
    rng = random.Random(seed)
    graph = _random_graph(rng, n)
    delta = random_delta(graph, rng, max_ops=1)
    assume(delta is not None and delta.ops[0][0] in ("add", "remove"))
    mutated = delta.apply()
    for v in delta.touched_nodes():
        assert view_signature(graph, v, 0) != view_signature(mutated, v, 0)


# ----------------------------------------------------------------------
# Delta composition
# ----------------------------------------------------------------------

@DEFAULT_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n=st.integers(min_value=3, max_value=12),
    radius=st.integers(min_value=0, max_value=2),
)
def test_batched_apply_equals_sequential_applies(seed, n, radius):
    rng = random.Random(seed)
    graph = _random_graph(rng, n)
    randomness = [rng.getrandbits(8) for _ in graph.nodes()]
    d1 = random_delta(graph, rng, randomness=randomness, max_ops=2)
    assume(d1 is not None)
    _, _, rand1 = d1.apply_to_labels(None, None, randomness)
    d2 = random_delta(d1.apply(), rng, randomness=rand1, max_ops=2)
    assume(d2 is not None)

    batched = IncrementalEngine()
    batched.run(_view_request(graph, radius, randomness))
    batch_report = batched.apply([d1, d2])

    stepped = IncrementalEngine()
    stepped.run(_view_request(graph, radius, randomness))
    stepped.apply(d1)
    step_report = stepped.apply(d2)

    assert batch_report.identity() == step_report.identity()
    assert batch_report.changed_nodes == step_report.changed_nodes
    assert batched.current_node_keys() == stepped.current_node_keys()


# ----------------------------------------------------------------------
# Insert-then-delete round trips
# ----------------------------------------------------------------------

def _sample_non_edge(graph: Graph, rng: random.Random):
    non_edges = [
        (u, v)
        for u in graph.nodes()
        for v in range(u + 1, graph.n)
        if not graph.has_edge(u, v)
    ]
    if not non_edges:
        return None
    return non_edges[rng.randrange(len(non_edges))]


@DEFAULT_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n=st.integers(min_value=2, max_value=12),
    radius=st.integers(min_value=0, max_value=2),
    one_batch=st.booleans(),
)
def test_insert_then_delete_restores_the_partition(seed, n, radius, one_batch):
    rng = random.Random(seed)
    graph = _random_graph(rng, n)
    pair = _sample_non_edge(graph, rng)
    assume(pair is not None)
    u, v = pair
    randomness = [rng.getrandbits(8) for _ in graph.nodes()]

    engine = IncrementalEngine()
    primed = engine.run(_view_request(graph, radius, randomness))
    primed_keys = engine.current_node_keys()

    if one_batch:
        final = engine.apply(
            GraphDelta(graph, [("add", u, v), ("remove", u, v)])
        )
        assert final.changed_nodes == []
    else:
        engine.apply(GraphDelta(graph, [("add", u, v)]))
        final = engine.apply(
            GraphDelta(engine.current_graph, [("remove", u, v)])
        )

    # Outputs, class partition, and adjacency rows all restored exactly.
    assert final.outputs == primed.outputs
    assert engine.current_node_keys() == primed_keys
    assert [list(r) for r in engine.current_graph.adjacency_rows()] == [
        list(r) for r in graph.adjacency_rows()
    ]
