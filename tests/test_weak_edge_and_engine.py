"""Tests for the weak-edge-coloring upper bound and engine orientation."""

import random

import pytest

from repro.algorithms import weak_edge_coloring_via_proper
from repro.graphs import (
    balanced_regular_tree,
    orient_torus,
    orient_torus_nd,
    orient_tree,
    sequential_ids,
    toroidal_grid,
    toroidal_grid_nd,
)
from repro.lcl import WeakEdgeColoring
from repro.local_model import LocalAlgorithm, run_local


class TestWeakEdgeColoringUpperBound:
    def test_on_2d_torus(self):
        g = toroidal_grid(4, 5)
        o = orient_torus(g, 4, 5)
        out = weak_edge_coloring_via_proper(g, sequential_ids(g))
        assert WeakEdgeColoring(out.palette, k=2).is_feasible(
            g, out.colors, orientation=o
        )
        assert out.palette <= 2 * 4 - 1

    def test_on_3d_torus(self):
        dims = (3, 3, 4)
        g = toroidal_grid_nd(dims)
        o = orient_torus_nd(g, dims)
        out = weak_edge_coloring_via_proper(g, sequential_ids(g))
        assert WeakEdgeColoring(out.palette, k=3).is_feasible(
            g, out.colors, orientation=o
        )

    def test_on_oriented_tree(self):
        g = balanced_regular_tree(4, 3)
        o = orient_tree(g, 2)
        out = weak_edge_coloring_via_proper(g, sequential_ids(g))
        assert WeakEdgeColoring(out.palette, k=2).is_feasible(
            g, out.colors, orientation=o
        )

    def test_rounds_logstar_flat(self):
        rounds = set()
        for side in (4, 6, 8):
            g = toroidal_grid(side, side)
            rounds.add(weak_edge_coloring_via_proper(g, sequential_ids(g)).rounds)
        assert max(rounds) - min(rounds) <= 3


class DirectionEcho(LocalAlgorithm):
    """Outputs the (dim, sign) labels of its ports — engine orientation test."""

    name = "direction-echo"

    def send(self, ctx):
        return {}

    def receive(self, ctx, messages):
        ctx.halt(tuple(sorted(ctx.port_directions.items())))


class TestEngineOrientation:
    def test_contexts_receive_port_directions(self):
        g = toroidal_grid(3, 4)
        o = orient_torus(g, 3, 4)
        result = run_local(g, DirectionEcho(), orientation=o)
        for v in g.nodes():
            directions = dict(result.outputs[v])
            assert set(directions.values()) == {(0, 1), (0, -1), (1, 1), (1, -1)}
            # Each port's direction matches the orientation's view.
            for port, (dim, sign) in directions.items():
                u = g.endpoint(v, port)
                assert o.direction_at(v, u) == (dim, sign)

    def test_unoriented_run_has_no_directions(self):
        g = toroidal_grid(3, 3)

        class NullCheck(LocalAlgorithm):
            name = "null-check"

            def send(self, ctx):
                return {}

            def receive(self, ctx, messages):
                ctx.halt(ctx.port_directions)

        result = run_local(g, NullCheck())
        assert all(out is None for out in result.outputs)

    def test_partial_orientation_on_tree(self):
        g = balanced_regular_tree(4, 2)
        o = orient_tree(g, 2)
        result = run_local(g, DirectionEcho(), orientation=o)
        # Leaves see exactly one labeled port.
        for v in g.sphere(0, 2):
            assert len(result.outputs[v]) == 1
