"""Tests for Linial coloring, MIS, 2-coloring, sinkless orientation,
and the brute-force oracle."""

import random

import pytest

from repro.algorithms import (
    count_feasible,
    exists_feasible,
    find_feasible_labeling,
    greedy_mis_from_coloring,
    linial_coloring,
    mis_via_linial,
    polynomial_color_reduction_step,
    polynomial_step_parameters,
    proper_two_coloring,
    sinkless_from_pstar,
    sinkless_random_repair,
    smallest_prime_at_least,
    weak_two_coloring_from_mis,
)
from repro.graphs import (
    Graph,
    balanced_regular_tree,
    cycle,
    path,
    random_permutation_ids,
    random_regular_graph,
    sequential_ids,
    star,
    toroidal_grid,
)
from repro.lcl import (
    MaximalIndependentSet,
    ProperColoring,
    SinklessOrientation,
    WeakColoring,
)


class TestPrimesAndParameters:
    def test_smallest_prime(self):
        assert smallest_prime_at_least(1) == 2
        assert smallest_prime_at_least(2) == 2
        assert smallest_prime_at_least(8) == 11
        assert smallest_prime_at_least(14) == 17
        assert smallest_prime_at_least(97) == 97

    def test_parameters_satisfy_constraints(self):
        for palette in (16, 100, 10_000, 10**6):
            for delta in (3, 4, 6):
                d, p = polynomial_step_parameters(palette, delta)
                assert p >= delta * d + 1
                assert p ** (d + 1) >= palette

    def test_invalid_palette(self):
        with pytest.raises(ValueError):
            polynomial_step_parameters(1, 3)


class TestPolynomialStep:
    def test_step_preserves_properness(self):
        rng = random.Random(0)
        g = random_regular_graph(30, 4, rng=rng)
        colors = [i for i in range(30)]
        new_colors, new_palette = polynomial_color_reduction_step(g, colors, 30, 4)
        assert all(c < new_palette for c in new_colors)
        for u, v in g.edges():
            assert new_colors[u] != new_colors[v]

    def test_step_shrinks_large_palettes(self):
        g = cycle(40)
        _, new_palette = polynomial_color_reduction_step(g, list(range(40)), 10**6, 2)
        assert new_palette < 10**6


class TestLinialColoring:
    @pytest.mark.parametrize(
        "graph",
        [cycle(30), balanced_regular_tree(4, 3), toroidal_grid(4, 5), path(17)],
    )
    def test_proper_delta_plus_one(self, graph):
        out = linial_coloring(graph, sequential_ids(graph))
        assert ProperColoring(graph.max_degree() + 1).is_feasible(graph, out.colors)

    def test_palette_trajectory_monotone(self):
        g = balanced_regular_tree(4, 4)
        out = linial_coloring(g, sequential_ids(g))
        assert all(b <= a for a, b in zip(out.palette_trajectory, out.palette_trajectory[1:]))

    def test_edgeless_graph(self):
        g = Graph(5)
        out = linial_coloring(g, [1, 2, 3, 4, 5])
        assert out.colors == [0] * 5
        assert out.rounds == 0

    def test_random_ids(self):
        g = random_regular_graph(26, 3, rng=random.Random(2))
        out = linial_coloring(g, random_permutation_ids(g, random.Random(3)))
        assert ProperColoring(4).is_feasible(g, out.colors)


class TestMIS:
    def test_greedy_from_coloring(self):
        g = cycle(9)
        colors = [v % 3 for v in g.nodes()]
        # v % 3 is proper on a 9-cycle.
        mis = greedy_mis_from_coloring(g, colors, 3)
        assert MaximalIndependentSet().is_feasible(g, mis.in_mis)
        assert mis.rounds == 3

    @pytest.mark.parametrize(
        "graph",
        [cycle(12), balanced_regular_tree(3, 3), star(6), path(9)],
    )
    def test_mis_via_linial(self, graph):
        out = mis_via_linial(graph, sequential_ids(graph))
        assert MaximalIndependentSet().is_feasible(graph, out.in_mis)

    def test_weak_two_coloring_from_mis(self):
        g = cycle(10)
        out = mis_via_linial(g, sequential_ids(g))
        labels = weak_two_coloring_from_mis(g, out.in_mis)
        assert WeakColoring(2).is_feasible(g, labels)

    def test_weak_from_mis_needs_degree(self):
        g = Graph(2)
        with pytest.raises(ValueError):
            weak_two_coloring_from_mis(g, [True, False])


class TestTwoColoring:
    def test_on_trees(self):
        g = balanced_regular_tree(3, 4)
        out = proper_two_coloring(g, sequential_ids(g))
        assert ProperColoring(2).is_feasible(g, out.colors)
        assert out.rounds == g.diameter()

    def test_on_even_cycle(self):
        g = cycle(10)
        out = proper_two_coloring(g, sequential_ids(g))
        assert ProperColoring(2).is_feasible(g, out.colors)

    def test_odd_cycle_rejected(self):
        with pytest.raises(ValueError, match="bipartite"):
            proper_two_coloring(cycle(5), sequential_ids(cycle(5)))

    def test_disconnected_rejected(self):
        g = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError, match="connected"):
            proper_two_coloring(g, [1, 2, 3, 4])

    def test_leader_is_global_min(self):
        g = path(5)
        out = proper_two_coloring(g, [9, 2, 7, 1, 5])
        assert out.leader == 3


class TestSinkless:
    def test_deterministic_on_trees(self):
        for delta, depth in ((3, 4), (4, 3), (6, 2)):
            g = balanced_regular_tree(delta, depth)
            out = sinkless_from_pstar(g, delta, sequential_ids(g))
            assert SinklessOrientation().is_feasible(g, out.orientation)
            assert not out.sinks(g)

    def test_deterministic_on_torus(self):
        g = toroidal_grid(4, 5)
        out = sinkless_from_pstar(g, 4, sequential_ids(g))
        assert SinklessOrientation().is_feasible(g, out.orientation)

    def test_random_repair_terminates_and_is_valid(self):
        rng = random.Random(11)
        for trial in range(5):
            g = balanced_regular_tree(4, 4)
            out = sinkless_random_repair(g, random.Random(rng.getrandbits(64)))
            assert SinklessOrientation().is_feasible(g, out.orientation)

    def test_random_repair_on_regular_graph(self):
        g = random_regular_graph(30, 4, rng=random.Random(5))
        out = sinkless_random_repair(g, random.Random(6))
        assert not out.sinks(g)

    def test_every_edge_oriented(self):
        g = balanced_regular_tree(3, 3)
        out = sinkless_from_pstar(g, 3, sequential_ids(g))
        assert set(out.orientation) == set(g.edges())


class TestBruteForce:
    def test_finds_proper_coloring(self):
        g = cycle(7)
        labeling = find_feasible_labeling(g, ProperColoring(3), [0, 1, 2])
        assert labeling is not None
        assert ProperColoring(3).is_feasible(g, labeling)

    def test_detects_infeasibility(self):
        assert not exists_feasible(cycle(5), ProperColoring(2), [0, 1])
        assert exists_feasible(cycle(6), ProperColoring(2), [0, 1])

    def test_weak_coloring_always_feasible_on_connected(self):
        for g in (path(5), cycle(5), star(4), balanced_regular_tree(3, 2)):
            assert exists_feasible(g, WeakColoring(2), [0, 1])

    def test_count_proper_2_colorings_of_even_cycle(self):
        assert count_feasible(cycle(6), ProperColoring(2), [0, 1]) == 2

    def test_count_weak_colorings_of_single_edge(self):
        g = path(2)
        # Valid: 01 and 10 (00/11 fail weakness).
        assert count_feasible(g, WeakColoring(2), [0, 1]) == 2

    def test_count_respects_limit(self):
        g = path(8)
        assert count_feasible(g, WeakColoring(2), [0, 1], limit=3) == 3

    def test_mis_search(self):
        g = star(4)
        labeling = find_feasible_labeling(g, MaximalIndependentSet(), [True, False])
        assert labeling is not None
        assert MaximalIndependentSet().is_feasible(g, labeling)
