"""Unit tests for NodeContext, base-class plumbing, and small utilities."""

import random

import pytest

from repro.graphs import Graph, edge_key, path, star
from repro.lcl import EdgeLCL, PStarLabel, Violation, WeakColoring
from repro.local_model import UNSET, NodeContext


def make_ctx(**overrides):
    defaults = dict(
        degree=3,
        n=10,
        delta=4,
        identifier=7,
        input_label=None,
        port_directions={0: (0, 1), 1: (0, -1), 2: (1, 1)},
        rng=random.Random(0),
    )
    defaults.update(overrides)
    return NodeContext(**defaults)


class TestNodeContext:
    def test_halt_commits_output(self):
        ctx = make_ctx()
        assert ctx.output is UNSET
        ctx.halt("answer")
        assert ctx.halted
        assert ctx.output == "answer"

    def test_double_halt_rejected(self):
        ctx = make_ctx()
        ctx.halt(1)
        with pytest.raises(RuntimeError):
            ctx.halt(2)

    def test_set_output_without_halting(self):
        ctx = make_ctx()
        ctx.set_output("tentative")
        assert not ctx.halted
        assert ctx.output == "tentative"
        ctx.set_output("final")
        assert ctx.output == "final"

    def test_port_in_direction(self):
        ctx = make_ctx()
        assert ctx.port_in_direction(0, 1) == 0
        assert ctx.port_in_direction(1, 1) == 2
        assert ctx.port_in_direction(1, -1) is None

    def test_port_in_direction_unoriented(self):
        ctx = make_ctx(port_directions=None)
        assert ctx.port_in_direction(0, 1) is None

    def test_forbidden_randomness_raises(self):
        ctx = make_ctx(forbid_randomness=True)
        with pytest.raises(RuntimeError):
            ctx.rng.random()
        with pytest.raises(RuntimeError):
            ctx.rng.getrandbits(4)

    def test_unset_is_singleton_with_repr(self):
        assert repr(UNSET) == "UNSET"
        assert type(UNSET)() is UNSET


class TestSmallTypes:
    def test_violation_str(self):
        v = Violation(where=3, reason="bad")
        assert "3" in str(v) and "bad" in str(v)

    def test_pstar_label_str(self):
        assert "⊥" in str(PStarLabel(2, None))
        assert "5" in str(PStarLabel(0, 5))

    def test_edge_lcl_label_of(self):
        labeling = {edge_key(2, 1): "x"}
        assert EdgeLCL.label_of(labeling, 1, 2) == "x"
        assert EdgeLCL.label_of(labeling, 0, 1) is None

    def test_weak_coloring_name(self):
        assert "weak 2-coloring" in WeakColoring(2).name
        assert "distance-3" in WeakColoring(4, distance=3).name


class TestEdgeKeyUtilities:
    def test_edge_set_frozen(self):
        g = Graph(3, [(0, 1), (1, 2)])
        es = g.edge_set()
        assert es == frozenset({(0, 1), (1, 2)})

    def test_star_sphere(self):
        g = star(4)
        assert g.sphere(0, 1) == [1, 2, 3, 4]
        assert g.sphere(1, 2) == [2, 3, 4]

    def test_path_ports_linear(self):
        g = path(4)
        assert g.neighbors(1) == (0, 2)
        assert g.neighbors(2) == (1, 3)
