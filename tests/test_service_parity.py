"""Property-based cold/warm parity for the service backend.

The service engine's one non-negotiable claim: a *warm* response —
served from cross-request class tables, memoized partitions, and warm
graphs — is bit-identical on ``identity()`` to a cold direct run.
Hypothesis drives that claim across all four request kinds, reusing
the :mod:`tests.differential` grid for view and edge cases, and adds
the pollution property the conformance probe is built on: interleaving
*different* algorithms over the same graphs never bleeds one rule's
outputs into another's.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.message_passing import LubyMIS
from repro.core import ServiceEngine, SimRequest, simulate
from repro.graphs import orient_torus, toroidal_grid
from repro.graphs.identifiers import random_permutation_ids

from .differential import (
    _edge_case_inputs,
    GRAPH_FAMILIES,
    build_request,
    edge_cases,
    grid,
)

DEFAULT_SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

_VIEW_CASES = grid()
_EDGE_CASES = edge_cases()


def _assert_cold_warm_parity(make_request, label):
    """Cold run, warm repeat, and direct reference all coincide."""
    engine = ServiceEngine()
    try:
        base = simulate(make_request(), engine="direct")
        cold = engine.run(make_request())
        warm = engine.run(make_request())
        assert cold.identity() == base.identity(), f"{label}: cold diverges"
        assert warm.identity() == base.identity(), f"{label}: warm diverges"
        assert cold.backend == warm.backend == "service"
    finally:
        engine.close()
    return cold, warm


@DEFAULT_SETTINGS
@given(case=st.sampled_from(_VIEW_CASES))
def test_view_cold_warm_parity(case):
    cold, warm = _assert_cold_warm_parity(
        lambda: build_request(case), case.case_id
    )
    assert warm.info["service"]["table_hit"] is True


@DEFAULT_SETTINGS
@given(case=st.sampled_from(_EDGE_CASES))
def test_edge_cold_warm_parity(case):
    graph_name, rounds = case

    def make_request():
        graph, alg, randomness = _edge_case_inputs(graph_name, rounds)
        return SimRequest(kind="edge", graph=graph, algorithm=alg,
                          randomness=randomness,
                          label=f"svc-edge-t{rounds}-{graph_name}")

    # The differential edge algorithm keys by its module-level output
    # function, so it is keyable and the warm run must hit the table.
    cold, warm = _assert_cold_warm_parity(
        make_request, f"edge-t{rounds}-{graph_name}"
    )
    assert warm.info["service"]["table_hit"] is True


@DEFAULT_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    family=st.sampled_from(sorted(GRAPH_FAMILIES)),
)
def test_local_cold_warm_parity(seed, family):
    def make_request():
        graph = GRAPH_FAMILIES[family]()
        ids = random_permutation_ids(graph, random.Random(seed))
        return SimRequest(kind="local", graph=graph, algorithm=LubyMIS(),
                          ids=ids, seed=seed,
                          label=f"svc-local-{family}-{seed}")

    # Seed-based randomness: the warm repeat must replay the exact RNG
    # stream, halt rounds included.
    _assert_cold_warm_parity(make_request, f"local-{family}-{seed}")


@DEFAULT_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    rows=st.integers(min_value=3, max_value=5),
    cols=st.integers(min_value=4, max_value=6),
)
def test_finite_cold_warm_parity(seed, rows, cols):
    from repro.speedup import local_maximum_coloring

    def make_request():
        graph = toroidal_grid(rows, cols)
        orientation = orient_torus(graph, rows, cols)
        alg = local_maximum_coloring(2, bits=2)
        rng = random.Random(seed)
        values = [rng.randrange(alg.values) for _ in graph.nodes()]
        return SimRequest(kind="finite", graph=graph, algorithm=alg,
                          orientation=orientation, values=values,
                          label=f"svc-finite-{rows}x{cols}-{seed}")

    # identity() includes failing_nodes, so the checker verdict must
    # also reproduce warm.
    _assert_cold_warm_parity(make_request, f"finite-{rows}x{cols}-{seed}")


@DEFAULT_SETTINGS
@given(
    pair=st.tuples(
        st.sampled_from(_VIEW_CASES), st.sampled_from(_VIEW_CASES)
    ).filter(lambda p: (p[0].rule, p[0].radius) != (p[1].rule, p[1].radius))
)
def test_interleaved_algorithms_never_pollute(pair):
    # Two different rules, one shared engine, alternating requests: the
    # tables key per algorithm, so each response must keep matching its
    # own direct reference (the property the conformance probe checks
    # adversarially with colliding signature radii).
    a, b = pair
    engine = ServiceEngine()
    try:
        base_a = simulate(build_request(a), engine="direct")
        base_b = simulate(build_request(b), engine="direct")
        for _ in range(2):
            assert engine.run(build_request(a)).identity() == base_a.identity()
            assert engine.run(build_request(b)).identity() == base_b.identity()
    finally:
        engine.close()


@DEFAULT_SETTINGS
@given(case=st.sampled_from(_VIEW_CASES), budget=st.sampled_from([1, 512]))
def test_parity_survives_eviction_pressure(case, budget):
    # A byte budget small enough to evict between requests must never
    # change what is served — only how warm it is.
    engine = ServiceEngine(max_bytes=budget)
    try:
        base = simulate(build_request(case), engine="direct")
        for _ in range(3):
            assert engine.run(build_request(case)).identity() == base.identity()
    finally:
        engine.close()
