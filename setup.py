"""Setup shim.

The environment this library is developed in has no network and no
``wheel`` package, so PEP 517 editable installs (which require
``bdist_wheel``) fail.  This shim lets ``pip install -e . --no-use-pep517``
(or a plain ``python setup.py develop``) work offline.  All metadata lives
in ``pyproject.toml``.
"""

from setuptools import setup

setup()
