"""Message-size estimation for bandwidth accounting.

The LOCAL model itself does not meter bandwidth — message size is
unbounded — but CONGEST-style accounting is what makes instrumented runs
comparable ("CV sends O(log c)-bit colors, Luby sends 48-bit
priorities").  :func:`estimate_size` assigns every payload a size in
*bits* using information-theoretic conventions:

* ``None`` costs 1 (presence bit);
* ``bool`` costs 1;
* ``int`` costs its two's-complement bit length (min 1);
* ``float`` costs 64;
* ``str``/``bytes`` cost 8 per character/byte;
* containers (tuple/list/set/frozenset/dict) cost the sum of their
  elements plus 2 bits of framing per element;
* anything else falls back to ``8 * len(repr(payload))``.

The estimator is *pluggable*: every consumer
(:class:`~repro.instrumentation.metrics.MetricsTracer`,
:class:`~repro.instrumentation.recorder.TraceRecorder`) takes a
``message_size=`` callable, so a CONGEST experiment can substitute a
strict ``O(log n)``-enforcing estimator, or a constant-1 estimator that
turns byte counts back into message counts.
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["estimate_size", "SizeEstimator", "constant_size"]

#: Type of a pluggable size estimator: payload -> size in bits.
SizeEstimator = Callable[[Any], int]


def estimate_size(payload: Any) -> int:
    """Estimated size of ``payload`` in bits (see module docstring)."""
    if payload is None:
        return 1
    if payload is True or payload is False:
        return 1
    if isinstance(payload, int):
        return max(1, payload.bit_length() + (1 if payload < 0 else 0))
    if isinstance(payload, float):
        return 64
    if isinstance(payload, (str, bytes)):
        return 8 * len(payload)
    if isinstance(payload, dict):
        return sum(
            4 + estimate_size(k) + estimate_size(v) for k, v in payload.items()
        )
    if isinstance(payload, (tuple, list, set, frozenset)):
        return sum(2 + estimate_size(x) for x in payload)
    return 8 * len(repr(payload))


def constant_size(bits: int = 1) -> SizeEstimator:
    """An estimator charging every message a flat ``bits`` — message
    counting in byte-accounting clothes."""

    def estimator(_payload: Any) -> int:
        return bits

    return estimator
