"""The tracer protocol: how execution engines report what they do.

A *tracer* is a passive observer handed to an engine entry point
(:func:`~repro.local_model.network.run_local`,
:func:`~repro.local_model.network.run_view_algorithm`,
:func:`~repro.local_model.edge_model.run_edge_view_algorithm`,
:func:`~repro.speedup.finite_runner.run_node_algorithm_on_oriented_graph`,
:func:`~repro.speedup.pipeline.run_speedup_pipeline`) via the optional
``tracer=`` keyword.  Engines call the hooks below at well-defined
points; tracers never influence execution — an instrumented run must
produce the exact same :class:`~repro.local_model.network.ExecutionResult`
as an uninstrumented one.

Zero-overhead contract
----------------------
``tracer=None`` (the default) and ``tracer=NullTracer()`` are the *same
path*: engines normalize both to ``None`` via :func:`effective_tracer`
and guard every hook site with a single ``if tracer is not None``.  No
event objects are built, no sizes estimated, no clocks read.  This is
what lets every benchmark in ``benchmarks/`` keep its numbers while the
observability layer exists.

Event vocabulary
----------------
==================  ====================================================
hook                fired by
==================  ====================================================
on_run_start        every engine, once, before any work
on_round_start      message-passing engine, once per synchronous round
on_message          message-passing engine, once per sent message
on_halt             message-passing engine, when a node commits + stops
on_round_end        message-passing engine, after deliveries + receives
on_view             view engines, once per materialized ball
on_layout           view engines, once per run, with the resolved
                    graph layout (dict vs batched CSR vs kernel) and
                    class counts
on_kernel           kernel-layout runs, once per run, saying whether the
                    vectorized kernel or the exact Python fallback ran
on_cache            cached engines, once per run, with lookup stats
on_service          service engine, once per served request, with
                    cross-request cache counters (evictions ride the
                    event that triggered them)
on_delta            incremental engine, once per applied GraphDelta,
                    with footprint / invalidation / survivor counts
on_shard            sharded engine, once per dispatched shard
on_subrun           sharded batch runs, once per worker-side request,
                    with that subrun's folded metrics dict
on_trial            finite runner, once per Monte Carlo trial
on_stage            speedup pipeline, once per ladder stage
on_run_end          every engine, once, after the result is assembled
==================  ====================================================

``engine`` strings: ``"local"`` (message passing), ``"view"`` (node
views), ``"edge"`` (edge views), ``"finite"`` (oriented finite runner),
``"pipeline"`` (speedup ladder).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

__all__ = ["Tracer", "NullTracer", "MultiTracer", "effective_tracer"]


class Tracer:
    """Base tracer: every hook is a no-op.

    Subclass and override the hooks you care about; see
    :class:`~repro.instrumentation.metrics.MetricsTracer` for an
    aggregating example and
    :class:`~repro.instrumentation.recorder.TraceRecorder` for a
    full-fidelity event log.
    """

    def on_run_start(self, engine: str, algorithm: str, n: int, **info: Any) -> None:
        """A run begins: ``n`` nodes (or edges/trials — engine-specific)."""

    def on_round_start(self, round_number: int, active: int) -> None:
        """A synchronous round begins with ``active`` non-halted nodes."""

    def on_message(
        self,
        sender: int,
        receiver: int,
        port: int,
        payload: Any,
        delivered: bool,
    ) -> None:
        """One message crosses (or fails to cross) an edge.

        ``port`` is the *sender's* port.  ``delivered`` is False when the
        receiver has already halted — the model drops the message, but
        the sender still paid for it, so bandwidth accounting sees both.
        """

    def on_halt(self, node: int, round_number: int, output: Any) -> None:
        """``node`` commits ``output`` and goes silent after this round."""

    def on_round_end(self, round_number: int) -> None:
        """The round's sends, deliveries, and receives are all done."""

    def on_view(
        self,
        center: Any,
        radius: int,
        nodes: int,
        edges: int,
    ) -> None:
        """A radius-``radius`` ball was materialized around ``center``.

        ``nodes``/``edges`` size the ball — the view-engine analogue of
        bandwidth (everything in the ball crossed the wire to reach the
        center in the operational model).
        """

    def on_layout(self, engine: str, layout: str, info: Dict[str, Any]) -> None:
        """A view engine reports which graph layout served the run.

        Fired once per ``view`` / ``edge`` run by every backend.
        ``layout`` is the resolved layout name (``"dict"`` for the
        reference per-entity path, ``"csr"`` for the batched expander,
        or a registered fixture layout); ``info`` carries ``requested``
        (the request's knob, e.g. ``"auto"``), ``entities``, and — on
        expander-backed layouts — ``path`` (``"numpy"`` or the exact
        ``"python"`` fallback) and ``classes`` (the partition size).
        """

    def on_kernel(self, engine: str, algorithm: str, info: Dict[str, Any]) -> None:
        """A kernel-layout run reports which execution path served it.

        Fired once per run that resolved to ``layout="kernel"`` (see
        ``docs/KERNELS.md``), by every backend.  ``info`` carries
        ``path`` — ``"vectorized"`` when a registered NumPy kernel ran,
        ``"fallback"`` when the exact per-entity Python path did —
        plus ``reason`` (why the fallback ran: ``"no-kernel"``,
        ``"unsupported: ..."``, ``"python-partition"``; ``None`` on the
        vectorized path), ``entities``, and, for view/edge kinds,
        ``classes`` (the partition size) or, for the local kind,
        ``rounds``.  Kernel choice never changes results — only how
        they were computed.
        """

    def on_cache(self, engine: str, stats: Dict[str, Any]) -> None:
        """A memoizing engine reports its per-run cache statistics.

        Fired once, just before :meth:`on_run_end`, by the cached view
        engines and the finite runner.  ``stats`` is the JSON-ready
        form of :class:`~repro.local_model.cache.CacheStats`
        (``lookups``, ``hits``, ``misses``, ``bytes``,
        ``distinct_classes``, ``hit_rate``), covering this run only
        even when the underlying cache is shared across runs.
        """

    def on_service(self, engine: str, info: Dict[str, Any]) -> None:
        """The service engine reports cross-request cache activity.

        Fired by :class:`~repro.core.service.ServiceEngine` once per
        served request, after the run completes.  ``info`` carries
        ``event`` (``"request"`` or ``"evict"``), ``requests`` (1 for a
        request event), ``table_hits`` / ``table_misses`` (whether the
        request's algorithm found a warm cross-request class table),
        ``graph_hits`` / ``graph_misses`` (whether its graph found a
        warm frozen/CSR layout), ``evictions`` (whole tables dropped by
        the LRU sweep during this event), ``bytes`` (current estimated
        footprint of all live tables, a snapshot — not additive), and,
        when the algorithm could not be given a stable cross-request
        key, ``unkeyable`` (the run was served correctly from a fresh
        private table).  Serving from the service cache never changes
        results — responses stay bit-identical to a cold direct run.
        """

    def on_delta(self, engine: str, info: Dict[str, Any]) -> None:
        """The incremental engine applied one :class:`GraphDelta`.

        Fired once per applied delta by
        :meth:`~repro.core.incremental.IncrementalEngine.apply`.
        ``info`` carries ``ops`` (batch size), ``footprint`` (dirty
        nodes re-partitioned), ``classes_invalidated`` (classes
        evaluated fresh), ``cache_survivors`` (dirty classes served
        from the memo), ``changed_nodes`` (entities whose class
        actually changed), and ``csr_mode`` (``"patch"`` /
        ``"recompile"`` / ``"lazy"`` — how the mutated graph's CSR
        layout was produced).  Deltas never change results relative to
        a fresh run on the mutated graph — only how much work it took.
        """

    def on_shard(self, index: int, items: int, seed: int) -> None:
        """The sharded engine dispatched one shard of work.

        ``items`` counts the view-equivalence classes (or requests, for
        batch runs) in the shard; ``seed`` is the shard's sha256-derived
        seed (:func:`~repro.core.engine.derive_seed`'s scheme).
        """

    def on_degraded(self, engine: str, reason: str) -> None:
        """A backend fell back to a slower-but-correct execution path.

        Fired by the sharded engine whenever the process pool cannot be
        used (or stops responding) and the run continues in-process:
        ``reason`` is a short machine-checkable string
        (``"unpicklable"``, ``"no-fork"``, ``"pool-error: ..."``).
        Degradation never changes results — only how they were computed
        — and the matching :class:`~repro.core.SimReport` carries the
        same reason under ``info["degraded"]``.
        """

    def on_subrun(self, metrics: Dict[str, Any]) -> None:
        """A fanned-out subrun finished; ``metrics`` is its folded summary.

        Fired by the sharded engine's :meth:`~repro.core.engine.Engine.
        run_many` once per request when a tracer is attached: each
        worker-side run is observed by its own
        :class:`~repro.instrumentation.metrics.MetricsTracer`, and the
        resulting :meth:`~repro.instrumentation.metrics.RunMetrics.
        to_dict` payload is relayed to the parent through this hook —
        so cache/layout/kernel counters from worker processes are never
        lost.  :class:`MetricsTracer` folds the additive counters into
        the parent's :class:`~repro.instrumentation.metrics.RunMetrics`.
        """

    def on_trial(self, index: int, succeeded: bool, failing_nodes: int) -> None:
        """One Monte Carlo trial of the finite runner finished."""

    def on_stage(self, kind: str, radius: int, info: Dict[str, Any]) -> None:
        """One rung of the speedup ladder was constructed and measured."""

    def on_run_end(self, rounds: int, **info: Any) -> None:
        """The run is over; ``rounds`` is the engine's round count."""


class NullTracer(Tracer):
    """The do-nothing tracer.

    Engines treat it as identical to passing no tracer at all (see
    :func:`effective_tracer`), so it is guaranteed zero-overhead — not
    merely cheap.
    """


class MultiTracer(Tracer):
    """Fan one event stream out to several tracers, in order."""

    def __init__(self, *tracers: Tracer):
        self.tracers: Tuple[Tracer, ...] = tuple(
            t for t in tracers if effective_tracer(t) is not None
        )

    def on_run_start(self, engine: str, algorithm: str, n: int, **info: Any) -> None:
        for t in self.tracers:
            t.on_run_start(engine, algorithm, n, **info)

    def on_round_start(self, round_number: int, active: int) -> None:
        for t in self.tracers:
            t.on_round_start(round_number, active)

    def on_message(
        self, sender: int, receiver: int, port: int, payload: Any, delivered: bool
    ) -> None:
        for t in self.tracers:
            t.on_message(sender, receiver, port, payload, delivered)

    def on_halt(self, node: int, round_number: int, output: Any) -> None:
        for t in self.tracers:
            t.on_halt(node, round_number, output)

    def on_round_end(self, round_number: int) -> None:
        for t in self.tracers:
            t.on_round_end(round_number)

    def on_view(self, center: Any, radius: int, nodes: int, edges: int) -> None:
        for t in self.tracers:
            t.on_view(center, radius, nodes, edges)

    def on_layout(self, engine: str, layout: str, info: Dict[str, Any]) -> None:
        for t in self.tracers:
            t.on_layout(engine, layout, info)

    def on_kernel(self, engine: str, algorithm: str, info: Dict[str, Any]) -> None:
        for t in self.tracers:
            t.on_kernel(engine, algorithm, info)

    def on_cache(self, engine: str, stats: Dict[str, Any]) -> None:
        for t in self.tracers:
            t.on_cache(engine, stats)

    def on_service(self, engine: str, info: Dict[str, Any]) -> None:
        for t in self.tracers:
            t.on_service(engine, info)

    def on_delta(self, engine: str, info: Dict[str, Any]) -> None:
        for t in self.tracers:
            t.on_delta(engine, info)

    def on_shard(self, index: int, items: int, seed: int) -> None:
        for t in self.tracers:
            t.on_shard(index, items, seed)

    def on_subrun(self, metrics: Dict[str, Any]) -> None:
        for t in self.tracers:
            t.on_subrun(metrics)

    def on_degraded(self, engine: str, reason: str) -> None:
        for t in self.tracers:
            t.on_degraded(engine, reason)

    def on_trial(self, index: int, succeeded: bool, failing_nodes: int) -> None:
        for t in self.tracers:
            t.on_trial(index, succeeded, failing_nodes)

    def on_stage(self, kind: str, radius: int, info: Dict[str, Any]) -> None:
        for t in self.tracers:
            t.on_stage(kind, radius, info)

    def on_run_end(self, rounds: int, **info: Any) -> None:
        for t in self.tracers:
            t.on_run_end(rounds, **info)


def effective_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Normalize a tracer argument to the engine-internal form.

    ``None`` and :class:`NullTracer` instances (including an empty
    :class:`MultiTracer`) collapse to ``None`` so the hot loops pay one
    pointer comparison and nothing else.  Anything else is returned
    unchanged.
    """
    if tracer is None or type(tracer) is NullTracer:
        return None
    if isinstance(tracer, MultiTracer) and not tracer.tracers:
        return None
    return tracer
