"""Full-fidelity event log: every hook call, in order, exportable.

Where :class:`~repro.instrumentation.metrics.MetricsTracer` aggregates,
:class:`TraceRecorder` *remembers*: each engine hook appends one
:class:`TraceEvent` with a monotonically increasing sequence number.
The log exports to JSON (one array) or JSONL (one event per line — the
format ``docs/ENGINE.md`` walks through), and loads back for assertion
or replay.

Payload/output values are stored as-is in memory; export passes them
through :func:`jsonable`, which falls back to ``repr`` for anything the
``json`` module cannot encode, so exporting never raises.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

from .sizes import SizeEstimator, estimate_size
from .tracer import Tracer

__all__ = ["TraceEvent", "TraceRecorder", "jsonable"]


def jsonable(value: Any) -> Any:
    """``value`` coerced to something ``json.dumps`` accepts."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [jsonable(x) for x in value]
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    return repr(value)


@dataclass
class TraceEvent:
    """One recorded hook call."""

    seq: int
    kind: str
    data: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return {"seq": self.seq, "kind": self.kind, **jsonable(self.data)}


class TraceRecorder(Tracer):
    """Record the complete event stream of one (or more) runs.

    Parameters
    ----------
    record_payloads:
        Store message payloads and halt outputs in the events.  Disable
        to trace message *flow* on runs with bulky payloads.
    message_size:
        Estimator used to annotate each message event with ``bits``.
    """

    def __init__(
        self,
        record_payloads: bool = True,
        message_size: Optional[SizeEstimator] = None,
    ):
        self.record_payloads = record_payloads
        self.message_size: SizeEstimator = message_size or estimate_size
        self.events: List[TraceEvent] = []

    def _emit(self, kind: str, **data: Any) -> None:
        self.events.append(TraceEvent(seq=len(self.events), kind=kind, data=data))

    # -- engine hooks ---------------------------------------------------
    def on_run_start(self, engine: str, algorithm: str, n: int, **info: Any) -> None:
        self._emit("run_start", engine=engine, algorithm=algorithm, n=n, **info)

    def on_round_start(self, round_number: int, active: int) -> None:
        self._emit("round_start", round=round_number, active=active)

    def on_message(
        self, sender: int, receiver: int, port: int, payload: Any, delivered: bool
    ) -> None:
        data: Dict[str, Any] = {
            "sender": sender,
            "receiver": receiver,
            "port": port,
            "bits": self.message_size(payload),
            "delivered": delivered,
        }
        if self.record_payloads:
            data["payload"] = payload
        self._emit("message", **data)

    def on_halt(self, node: int, round_number: int, output: Any) -> None:
        data: Dict[str, Any] = {"node": node, "round": round_number}
        if self.record_payloads:
            data["output"] = output
        self._emit("halt", **data)

    def on_round_end(self, round_number: int) -> None:
        self._emit("round_end", round=round_number)

    def on_view(self, center: Any, radius: int, nodes: int, edges: int) -> None:
        self._emit("view", center=center, radius=radius, nodes=nodes, edges=edges)

    def on_layout(self, engine: str, layout: str, info: Dict[str, Any]) -> None:
        self._emit("layout", engine=engine, layout=layout, **info)

    def on_cache(self, engine: str, stats: Dict[str, Any]) -> None:
        self._emit("cache", engine=engine, **stats)

    def on_shard(self, index: int, items: int, seed: int) -> None:
        self._emit("shard", index=index, items=items, seed=seed)

    def on_trial(self, index: int, succeeded: bool, failing_nodes: int) -> None:
        self._emit(
            "trial", index=index, succeeded=succeeded, failing_nodes=failing_nodes
        )

    def on_stage(self, kind: str, radius: int, info: Dict[str, Any]) -> None:
        self._emit("stage", stage_kind=kind, radius=radius, **info)

    def on_run_end(self, rounds: int, **info: Any) -> None:
        self._emit("run_end", rounds=rounds, **info)

    # -- querying -------------------------------------------------------
    def of_kind(self, kind: str) -> List[TraceEvent]:
        """All events of one kind, in order."""
        return [e for e in self.events if e.kind == kind]

    def clear(self) -> None:
        """Drop all recorded events (sequence numbers restart at 0)."""
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    # -- export ---------------------------------------------------------
    def to_json(self, indent: Optional[int] = None) -> str:
        """The whole log as one JSON array."""
        return json.dumps([e.to_dict() for e in self.events], indent=indent)

    def to_jsonl(self) -> str:
        """The log as JSON Lines: one compact event per line."""
        return "\n".join(
            json.dumps(e.to_dict(), separators=(",", ":")) for e in self.events
        )

    def save(self, path: str, jsonl: bool = True) -> None:
        """Write the log to ``path`` (JSONL by default)."""
        text = self.to_jsonl() if jsonl else self.to_json(indent=2)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")

    @staticmethod
    def load_events(text: str) -> List[Dict[str, Any]]:
        """Parse a :meth:`to_json` or :meth:`to_jsonl` export back into
        dicts (payloads stay in their JSON-coerced form)."""
        stripped = text.strip()
        if not stripped:
            return []
        if stripped.startswith("["):
            return json.loads(stripped)
        return [json.loads(line) for line in stripped.splitlines() if line.strip()]
