"""Observability for the LOCAL-model engines.

Every execution engine accepts an optional ``tracer=``; this package
provides the protocol (:class:`Tracer`), the guaranteed-zero-overhead
default (:class:`NullTracer`), an aggregating metrics collector
(:class:`MetricsTracer` -> :class:`RunMetrics`), a full event log
(:class:`TraceRecorder`), and pluggable message-size estimation
(:func:`estimate_size`).  See ``docs/OBSERVABILITY.md`` for the guide
and the JSON schemas.
"""

from .tracer import Tracer, NullTracer, MultiTracer, effective_tracer
from .sizes import estimate_size, constant_size, SizeEstimator
from .metrics import MetricsTracer, RunMetrics, RoundMetrics
from .recorder import TraceRecorder, TraceEvent, jsonable

__all__ = [
    "Tracer",
    "NullTracer",
    "MultiTracer",
    "effective_tracer",
    "estimate_size",
    "constant_size",
    "SizeEstimator",
    "MetricsTracer",
    "RunMetrics",
    "RoundMetrics",
    "TraceRecorder",
    "TraceEvent",
    "jsonable",
]
