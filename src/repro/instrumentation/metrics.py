"""Aggregating tracer: per-round message/byte/halt/wall-clock metrics.

:class:`MetricsTracer` folds the engine's event stream into a compact
:class:`RunMetrics` summary — the object the parallel experiment runner
serializes into its JSON artifacts.  It keeps O(rounds) state, not
O(messages): each message updates a handful of counters.

The metrics schema (``RunMetrics.to_dict``) is documented in
``docs/OBSERVABILITY.md`` and is covered by a JSON round-trip test, so
downstream consumers can treat it as stable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional

from .sizes import SizeEstimator, estimate_size
from .tracer import Tracer

__all__ = ["RoundMetrics", "RunMetrics", "MetricsTracer"]


@dataclass
class RoundMetrics:
    """Counters for one synchronous round."""

    round: int
    active: int
    messages_sent: int = 0
    messages_delivered: int = 0
    bits_sent: int = 0
    halts: int = 0
    wall_seconds: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "round": self.round,
            "active": self.active,
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "bits_sent": self.bits_sent,
            "halts": self.halts,
            "wall_seconds": self.wall_seconds,
        }


@dataclass
class RunMetrics:
    """The whole run, aggregated.

    ``halt_histogram`` maps halting round -> number of nodes that halted
    in that round (key 0 = halted during ``init``, before any
    communication).  View engines populate ``views_gathered`` /
    ``view_nodes`` / ``view_edges`` instead of the message counters;
    the finite runner populates ``trials`` / ``trial_successes``.
    Memoizing engines (the cached view engines, the finite runner's
    ball tables) populate the ``cache_*`` counters — one lookup per
    computing entity, each a hit or a miss; ``cache_hit_rate`` is the
    fraction served from the cache.  Kernel-layout runs populate the
    ``kernel_*`` counters (``kernel_vectorized`` + ``kernel_fallbacks``
    == ``kernel_runs``; see
    :meth:`~repro.instrumentation.tracer.Tracer.on_kernel`).  The
    sharded engine populates ``shards`` and, when it falls back to an
    in-process path, ``degradations`` / ``degraded_reasons`` (see
    :meth:`~repro.instrumentation.tracer.Tracer.on_degraded`); its
    batch runs fold each worker-side request's counters back in through
    :meth:`~repro.instrumentation.tracer.Tracer.on_subrun`,
    incrementing ``subruns`` once per folded request.  The incremental
    engine populates the ``delta_*`` counters, one
    :meth:`~repro.instrumentation.tracer.Tracer.on_delta` event per
    applied :class:`~repro.graphs.delta.GraphDelta`: dirty-footprint
    size, classes evaluated fresh vs served from the memo, and entities
    whose class actually changed.  The service engine populates the
    ``service_*`` counters, one
    :meth:`~repro.instrumentation.tracer.Tracer.on_service` event per
    served request: whether the request's algorithm and graph found
    warm cross-request entries, how many whole tables the LRU sweep
    evicted, and — ``service_bytes``, a snapshot rather than a sum —
    the current estimated footprint of all live class tables.
    """

    engine: str = ""
    algorithm: str = ""
    n: int = 0
    rounds: int = 0
    messages_sent: int = 0
    messages_delivered: int = 0
    bits_sent: int = 0
    views_gathered: int = 0
    view_nodes: int = 0
    view_edges: int = 0
    trials: int = 0
    trial_successes: int = 0
    cache_lookups: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_bytes: int = 0
    cache_distinct_classes: int = 0
    layout_dict_runs: int = 0
    layout_csr_runs: int = 0
    layout_kernel_runs: int = 0
    layout_fallbacks: int = 0
    layout_entities: int = 0
    layout_classes: int = 0
    kernel_runs: int = 0
    kernel_vectorized: int = 0
    kernel_fallbacks: int = 0
    kernel_entities: int = 0
    kernel_classes: int = 0
    delta_applies: int = 0
    delta_footprint: int = 0
    delta_classes_invalidated: int = 0
    delta_cache_survivors: int = 0
    delta_changed_nodes: int = 0
    service_requests: int = 0
    service_table_hits: int = 0
    service_table_misses: int = 0
    service_graph_hits: int = 0
    service_graph_misses: int = 0
    service_evictions: int = 0
    service_bytes: int = 0
    subruns: int = 0
    shards: int = 0
    degradations: int = 0
    degraded_reasons: List[str] = field(default_factory=list)
    wall_seconds: float = 0.0
    halt_histogram: Dict[int, int] = field(default_factory=dict)
    per_round: List[RoundMetrics] = field(default_factory=list)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of cache lookups that hit (0.0 when no cache ran)."""
        return self.cache_hits / self.cache_lookups if self.cache_lookups else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict (the artifact ``metrics`` schema)."""
        return {
            "engine": self.engine,
            "algorithm": self.algorithm,
            "n": self.n,
            "rounds": self.rounds,
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "bits_sent": self.bits_sent,
            "views_gathered": self.views_gathered,
            "view_nodes": self.view_nodes,
            "view_edges": self.view_edges,
            "trials": self.trials,
            "trial_successes": self.trial_successes,
            "cache_lookups": self.cache_lookups,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_bytes": self.cache_bytes,
            "cache_distinct_classes": self.cache_distinct_classes,
            "cache_hit_rate": self.cache_hit_rate,
            "layout_dict_runs": self.layout_dict_runs,
            "layout_csr_runs": self.layout_csr_runs,
            "layout_kernel_runs": self.layout_kernel_runs,
            "layout_fallbacks": self.layout_fallbacks,
            "layout_entities": self.layout_entities,
            "layout_classes": self.layout_classes,
            "kernel_runs": self.kernel_runs,
            "kernel_vectorized": self.kernel_vectorized,
            "kernel_fallbacks": self.kernel_fallbacks,
            "kernel_entities": self.kernel_entities,
            "kernel_classes": self.kernel_classes,
            "delta_applies": self.delta_applies,
            "delta_footprint": self.delta_footprint,
            "delta_classes_invalidated": self.delta_classes_invalidated,
            "delta_cache_survivors": self.delta_cache_survivors,
            "delta_changed_nodes": self.delta_changed_nodes,
            "service_requests": self.service_requests,
            "service_table_hits": self.service_table_hits,
            "service_table_misses": self.service_table_misses,
            "service_graph_hits": self.service_graph_hits,
            "service_graph_misses": self.service_graph_misses,
            "service_evictions": self.service_evictions,
            "service_bytes": self.service_bytes,
            "subruns": self.subruns,
            "shards": self.shards,
            "degradations": self.degradations,
            "degraded_reasons": list(self.degraded_reasons),
            "wall_seconds": self.wall_seconds,
            # JSON objects have string keys; keep them sorted for diffs.
            "halt_histogram": {
                str(k): self.halt_histogram[k] for k in sorted(self.halt_histogram)
            },
            "per_round": [r.to_dict() for r in self.per_round],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunMetrics":
        """Inverse of :meth:`to_dict` (artifact consumers' entry point).

        Forward- and backward-compatible by construction: counters the
        artifact lacks fall back to the dataclass defaults (pre-cache
        artifacts load with zero ``cache_*`` counters), and keys this
        version does not know — an artifact written by a *newer* version
        — are ignored rather than rejected.  Derived values such as
        ``cache_hit_rate`` are recomputed, never read back.
        """
        known = {f.name for f in fields(cls)}
        kwargs: Dict[str, Any] = {
            k: v for k, v in data.items() if k in known
        }
        kwargs["halt_histogram"] = {
            int(k): v for k, v in data.get("halt_histogram", {}).items()
        }
        round_known = {f.name for f in fields(RoundMetrics)}
        kwargs["per_round"] = [
            RoundMetrics(**{k: v for k, v in r.items() if k in round_known})
            for r in data.get("per_round", [])
        ]
        return cls(**kwargs)


class MetricsTracer(Tracer):
    """Fold the event stream into :class:`RunMetrics`.

    Parameters
    ----------
    message_size:
        Pluggable payload-size estimator (bits); defaults to
        :func:`~repro.instrumentation.sizes.estimate_size`.
    per_round:
        Keep the per-round breakdown (O(rounds) memory).  Disable for
        very long runs where only totals matter.
    clock:
        Injectable monotonic clock, for deterministic tests.

    One tracer instance observes one run at a time; :meth:`on_run_start`
    resets it, so reusing an instance across sequential runs keeps only
    the last run's numbers.
    """

    def __init__(
        self,
        message_size: Optional[SizeEstimator] = None,
        per_round: bool = True,
        clock=time.perf_counter,
    ):
        self.message_size: SizeEstimator = message_size or estimate_size
        self.keep_per_round = per_round
        self.clock = clock
        self.metrics = RunMetrics()
        self._round: Optional[RoundMetrics] = None
        self._round_started_at = 0.0
        self._run_started_at = 0.0

    # -- engine hooks ---------------------------------------------------
    def on_run_start(self, engine: str, algorithm: str, n: int, **info: Any) -> None:
        self.metrics = RunMetrics(engine=engine, algorithm=algorithm, n=n)
        self._round = None
        self._run_started_at = self.clock()

    def on_round_start(self, round_number: int, active: int) -> None:
        self._round = RoundMetrics(round=round_number, active=active)
        self._round_started_at = self.clock()

    def on_message(
        self, sender: int, receiver: int, port: int, payload: Any, delivered: bool
    ) -> None:
        bits = self.message_size(payload)
        self.metrics.messages_sent += 1
        self.metrics.bits_sent += bits
        if delivered:
            self.metrics.messages_delivered += 1
        if self._round is not None:
            self._round.messages_sent += 1
            self._round.bits_sent += bits
            if delivered:
                self._round.messages_delivered += 1

    def on_halt(self, node: int, round_number: int, output: Any) -> None:
        hist = self.metrics.halt_histogram
        hist[round_number] = hist.get(round_number, 0) + 1
        if self._round is not None and self._round.round == round_number:
            self._round.halts += 1

    def on_round_end(self, round_number: int) -> None:
        if self._round is None:
            return
        self._round.wall_seconds = self.clock() - self._round_started_at
        if self.keep_per_round:
            self.metrics.per_round.append(self._round)
        self._round = None

    def on_view(self, center: Any, radius: int, nodes: int, edges: int) -> None:
        self.metrics.views_gathered += 1
        self.metrics.view_nodes += nodes
        self.metrics.view_edges += edges

    def on_layout(self, engine: str, layout: str, info: Dict[str, Any]) -> None:
        if layout == "dict":
            self.metrics.layout_dict_runs += 1
        elif layout == "kernel":
            self.metrics.layout_kernel_runs += 1
        else:
            self.metrics.layout_csr_runs += 1
        if info.get("path") == "python":
            self.metrics.layout_fallbacks += 1
        self.metrics.layout_entities += info.get("entities", 0)
        self.metrics.layout_classes += info.get("classes", 0)

    def on_kernel(self, engine: str, algorithm: str, info: Dict[str, Any]) -> None:
        self.metrics.kernel_runs += 1
        if info.get("path") == "vectorized":
            self.metrics.kernel_vectorized += 1
        else:
            self.metrics.kernel_fallbacks += 1
        self.metrics.kernel_entities += info.get("entities", 0)
        self.metrics.kernel_classes += info.get("classes", 0)

    def on_cache(self, engine: str, stats: Dict[str, Any]) -> None:
        self.metrics.cache_lookups += stats.get("lookups", 0)
        self.metrics.cache_hits += stats.get("hits", 0)
        self.metrics.cache_misses += stats.get("misses", 0)
        self.metrics.cache_bytes += stats.get("bytes", 0)
        self.metrics.cache_distinct_classes += stats.get("distinct_classes", 0)

    def on_service(self, engine: str, info: Dict[str, Any]) -> None:
        m = self.metrics
        m.service_requests += info.get("requests", 0)
        m.service_table_hits += info.get("table_hits", 0)
        m.service_table_misses += info.get("table_misses", 0)
        m.service_graph_hits += info.get("graph_hits", 0)
        m.service_graph_misses += info.get("graph_misses", 0)
        m.service_evictions += info.get("evictions", 0)
        # A snapshot of the live footprint, not an additive counter.
        m.service_bytes = info.get("bytes", m.service_bytes)

    def on_delta(self, engine: str, info: Dict[str, Any]) -> None:
        self.metrics.delta_applies += 1
        self.metrics.delta_footprint += info.get("footprint", 0)
        self.metrics.delta_classes_invalidated += info.get("classes_invalidated", 0)
        self.metrics.delta_cache_survivors += info.get("cache_survivors", 0)
        self.metrics.delta_changed_nodes += info.get("changed_nodes", 0)

    def on_shard(self, index: int, items: int, seed: int) -> None:
        self.metrics.shards += 1

    def on_degraded(self, engine: str, reason: str) -> None:
        self.metrics.degradations += 1
        self.metrics.degraded_reasons.append(reason)

    #: Counters :meth:`on_subrun` folds additively from worker metrics.
    _SUBRUN_COUNTERS = (
        "messages_sent", "messages_delivered", "bits_sent",
        "views_gathered", "view_nodes", "view_edges",
        "trials", "trial_successes",
        "cache_lookups", "cache_hits", "cache_misses", "cache_bytes",
        "cache_distinct_classes",
        "layout_dict_runs", "layout_csr_runs", "layout_kernel_runs",
        "layout_fallbacks", "layout_entities", "layout_classes",
        "kernel_runs", "kernel_vectorized", "kernel_fallbacks",
        "kernel_entities", "kernel_classes",
        "delta_applies", "delta_footprint", "delta_classes_invalidated",
        "delta_cache_survivors", "delta_changed_nodes",
        "service_requests", "service_table_hits", "service_table_misses",
        "service_graph_hits", "service_graph_misses", "service_evictions",
        "degradations",
    )

    def on_subrun(self, metrics: Dict[str, Any]) -> None:
        m = self.metrics
        m.subruns += 1
        for name in self._SUBRUN_COUNTERS:
            setattr(m, name, getattr(m, name) + metrics.get(name, 0))
        m.degraded_reasons.extend(metrics.get("degraded_reasons", ()))

    def on_trial(self, index: int, succeeded: bool, failing_nodes: int) -> None:
        self.metrics.trials += 1
        if succeeded:
            self.metrics.trial_successes += 1

    def on_run_end(self, rounds: int, **info: Any) -> None:
        self.metrics.rounds = rounds
        self.metrics.wall_seconds = self.clock() - self._run_started_at

    # -- conveniences ---------------------------------------------------
    def report(self) -> Dict[str, Any]:
        """The JSON-ready metrics dict of the last observed run."""
        return self.metrics.to_dict()
