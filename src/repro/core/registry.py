"""The component registry: one name -> factory table per component kind.

Before this module existed, every layer that needed to turn a *name*
into a *thing* grew its own private string dispatch: the experiment
runner re-implemented graph construction (``_build_graph``) and
algorithm construction (``_make_algorithm``), the view-rule library had
``make_view_rule``, and the report specs lived in a hand-written dict.
Adding one algorithm meant touching all of them, and nothing could
*enumerate* what exists — there was no honest ``--list``.

A :class:`Registry` replaces those silos with decorator-based
registration at the definition site::

    @register_graph_family("cycle", params=("n",))
    def cycle(n: int) -> Graph: ...

    @register_algorithm("luby-mis", kind="local", needs_ids=True,
                        verifier=("mis", {}))
    class LubyMIS(LocalAlgorithm): ...

Four registries cover the system:

=====================  ==================================================
registry               contents
=====================  ==================================================
:data:`GRAPH_FAMILIES` graph generators (``params`` metadata names the
                       keys each factory consumes)
:data:`ALGORITHMS`     message-passing algorithms (``kind="local"``) and
                       view rules (``kind="view"``)
:data:`PROBLEMS`       LCL problems / verifiers from ``repro.lcl.catalog``
:data:`REPORTS`        the classic experiment report specs
=====================  ==================================================

Registration happens as a side effect of importing the defining module,
so :func:`ensure_builtins` imports the canonical set before any lookup
that must see the full picture (``python -m repro.experiments --list``,
the cell runner).  Lookups raise :class:`RegistryError` — a ``KeyError``
that names the known entries, so a typo'd CLI flag fails usefully.
"""

from __future__ import annotations

import importlib
import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Mapping, Tuple

__all__ = [
    "Registry",
    "RegistryEntry",
    "RegistryError",
    "GRAPH_FAMILIES",
    "ALGORITHMS",
    "PROBLEMS",
    "REPORTS",
    "register_graph_family",
    "register_algorithm",
    "register_problem",
    "register_report",
    "ensure_builtins",
    "build_graph",
]


class RegistryError(KeyError):
    """An unknown (or duplicate) registry name, with the known names."""

    def __str__(self) -> str:  # KeyError repr-quotes its message
        return self.args[0] if self.args else ""


@dataclass(frozen=True)
class RegistryEntry:
    """One registered component: a factory plus declarative metadata."""

    name: str
    factory: Callable[..., Any]
    metadata: Mapping[str, Any] = field(default_factory=dict)

    @property
    def description(self) -> str:
        """Explicit ``description`` metadata, else the docstring's first line."""
        explicit = self.metadata.get("description")
        if explicit:
            return str(explicit)
        doc = getattr(self.factory, "__doc__", None) or ""
        return doc.strip().splitlines()[0] if doc.strip() else ""

    def create(self, **params: Any) -> Any:
        """Invoke the factory with keyword parameters.

        An unknown/missing keyword surfaces as :class:`RegistryError`
        naming the factory's valid parameters — not as the factory's
        bare ``TypeError`` — so a typo'd CLI flag or conformance-domain
        entry fails with the fix in the message.  ``TypeError`` raised
        *inside* a correctly-called factory body passes through.
        """
        try:
            signature = inspect.signature(self.factory)
        except (TypeError, ValueError):  # builtins without introspection
            return self.factory(**params)
        try:
            signature.bind(**params)
        except TypeError as exc:
            valid = ", ".join(signature.parameters) or "<none>"
            raise RegistryError(
                f"cannot create {self.name!r}: {exc} "
                f"(valid parameters: {valid})"
            ) from None
        return self.factory(**params)


class Registry:
    """A named, enumerable name -> :class:`RegistryEntry` table.

    Registration is idempotent-hostile on purpose: registering the same
    name twice raises unless ``replace=True``, because two components
    silently shadowing each other is how string-dispatch bugs start.
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: Dict[str, RegistryEntry] = {}

    # -- registration ---------------------------------------------------
    def add(
        self,
        name: str,
        factory: Callable[..., Any],
        replace: bool = False,
        **metadata: Any,
    ) -> RegistryEntry:
        """Register ``factory`` under ``name`` and return the entry."""
        if not name:
            raise RegistryError(f"{self.kind} name must be non-empty")
        if not replace and name in self._entries:
            raise RegistryError(
                f"{self.kind} {name!r} is already registered; "
                f"pass replace=True to override"
            )
        entry = RegistryEntry(name=name, factory=factory, metadata=dict(metadata))
        self._entries[name] = entry
        return entry

    def register(
        self, name: str, replace: bool = False, **metadata: Any
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator form of :meth:`add`; returns the factory unchanged."""

        def decorator(factory: Callable[..., Any]) -> Callable[..., Any]:
            self.add(name, factory, replace=replace, **metadata)
            return factory

        return decorator

    # -- lookup ---------------------------------------------------------
    def get(self, name: str) -> RegistryEntry:
        """The entry for ``name``; :class:`RegistryError` if unknown."""
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(self.names()) or "<none registered>"
            raise RegistryError(
                f"unknown {self.kind} {name!r} (known: {known})"
            ) from None

    def create(self, name: str, **params: Any) -> Any:
        """Instantiate ``name``'s factory with ``params``."""
        return self.get(name).create(**params)

    def names(self) -> Tuple[str, ...]:
        """All registered names, sorted."""
        return tuple(sorted(self._entries))

    def entries(self) -> Tuple[RegistryEntry, ...]:
        """All entries, sorted by name."""
        return tuple(self._entries[name] for name in self.names())

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {len(self)} entries)"


#: Graph generators.  ``params`` metadata names the keys the factory
#: consumes from a cell's parameter dict (see :func:`build_graph`).
#: Families with a closed form additionally declare ``implicit=True``
#: and an ``implicit_builder=`` hook (an
#: :class:`~repro.graphs.implicit.ImplicitGraph` subclass or factory
#: taking the same ``params``) so ``build_graph(..., implicit=True)``
#: can hand back a symbolic handle instead of materializing — see
#: ``docs/IMPLICIT.md``.
GRAPH_FAMILIES = Registry("graph family")

#: Algorithms: ``kind="local"`` (message passing), ``kind="view"``
#: (functional node-view rules), or ``kind="edge"`` (edge-view rules).
#: Local entries carry ``needs_ids`` and view/edge entries carry
#: ``needs`` ("ids" / "randomness" / "none").  Entries that solve an
#: LCL declare ``solves=(problem_name, kwargs)`` resolved through
#: :data:`PROBLEMS` (``verifier`` is the accepted legacy spelling);
#: conformance-fuzzable entries add ``domains`` / ``fuzz_params`` /
#: ``invariances`` — see ``docs/CONFORMANCE.md``.
ALGORITHMS = Registry("algorithm")

#: LCL problems (verifiers) from :mod:`repro.lcl.catalog`.
PROBLEMS = Registry("LCL problem")

#: Classic experiment report specs (Table 1, the log* sweep, ...).
REPORTS = Registry("report spec")

register_graph_family = GRAPH_FAMILIES.register
register_algorithm = ALGORITHMS.register
register_problem = PROBLEMS.register
register_report = REPORTS.register


#: Modules whose import populates the built-in registries.
_BUILTIN_MODULES = (
    "repro.graphs.generators",
    "repro.lcl.catalog",
    "repro.algorithms.message_passing",
    "repro.algorithms.view_rules",
    "repro.algorithms.edge_rules",
    "repro.algorithms.kernels",
    "repro.speedup.algorithms",
    "repro.experiments.runner",
)


def ensure_builtins() -> None:
    """Import every module that registers built-in components.

    Idempotent and cheap after the first call (module cache hits).  Call
    before enumerating a registry or resolving user-supplied names; code
    that merely *registers* must not call it (imports stay one-way).
    """
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def build_graph(params: Mapping[str, Any]) -> Any:
    """Build the graph a parameter dict describes.

    ``params["graph"]`` names the family; the entry's ``params``
    metadata says which other keys the factory consumes, so the dict may
    freely carry unrelated cell parameters (algorithm, seed index, ...).

    ``params["implicit"]`` (truthy) requests the family's symbolic
    :class:`~repro.graphs.implicit.ImplicitGraph` handle via its
    registered ``implicit_builder`` hook instead of materializing.
    Families without a closed form (e.g. ``random-regular``) raise a
    :class:`RegistryError` naming the materialized fallback.
    """
    ensure_builtins()
    entry = GRAPH_FAMILIES.get(params["graph"])
    wanted = entry.metadata.get("params", ())
    missing = [key for key in wanted if key not in params]
    if missing:
        raise RegistryError(
            f"graph family {entry.name!r} needs parameter(s) {missing}"
        )
    kwargs = {key: params[key] for key in wanted}
    if params.get("implicit"):
        builder = entry.metadata.get("implicit_builder")
        if not entry.metadata.get("implicit") or builder is None:
            raise RegistryError(
                f"graph family {entry.name!r} has no closed form "
                f"(no implicit_builder registered); drop implicit=True "
                f"to use the materialized factory "
                f"{entry.factory.__name__!r} instead"
            )
        return builder(**kwargs)
    return entry.create(**kwargs)
