"""The Engine seam: one request/report pair, interchangeable backends.

Every execution model in the repository — message passing
(:func:`~repro.local_model.network.run_local`), node views
(:func:`~repro.local_model.network.run_view_algorithm`), edge views
(:func:`~repro.local_model.edge_model.run_edge_view_algorithm`), and
the oriented finite runner
(:func:`~repro.speedup.finite_runner.run_node_algorithm_on_oriented_graph`)
— is one *kind* of :class:`SimRequest`, and every outcome is one
:class:`SimReport`.  An :class:`Engine` maps requests to reports; the
backends differ only in *how*:

================================================  =========================
:class:`~repro.core.direct.DirectEngine`          evaluate every entity
:class:`~repro.core.cached.CachedEngine`          evaluate once per
                                                  canonical view class
                                                  (memo table)
:class:`~repro.core.sharded.ShardedEngine`        dedupe view classes, fan
                                                  the class evaluations
                                                  over a process pool
:class:`~repro.core.incremental.IncrementalEngine` stateful: prime once,
                                                  then ``apply(delta)``
                                                  re-evaluates only the
                                                  delta's radius-t
                                                  footprint
================================================  =========================

The exactness contract is absolute: for the same request, all backends
produce reports with equal :meth:`SimReport.identity` — bit for bit,
proven over the full differential grid
(``tests/test_differential.py``, ``tests/test_engine_backends.py``,
and the delta-differential harness for the incremental backend).
Backend choice is a pure performance knob.

:func:`simulate` is the facade the rest of the system calls; the legacy
entry points are thin adapters over it (their signatures and semantics
are unchanged).  One :class:`~repro.instrumentation.Tracer` threads
through every backend the same way.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..instrumentation.tracer import Tracer

__all__ = [
    "KINDS",
    "SimRequest",
    "SimReport",
    "Engine",
    "derive_seed",
    "resolve_engine",
    "simulate",
    "simulate_many",
]

#: The four execution models the seam covers.
KINDS = ("local", "view", "edge", "finite")


def derive_seed(base_seed: int, label: str) -> int:
    """Deterministic 64-bit seed for one unit of work.

    The one seed-derivation scheme in the system:
    ``sha256(f"{base_seed}:{label}")``, shared by the experiment
    runner's cells (its ``derive_cell_seed`` delegates here) and the
    sharded engine's per-shard seeds.  Stable across processes, job
    counts, and plan composition.
    """
    digest = hashlib.sha256(f"{base_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class SimRequest:
    """One simulation, fully described.

    ``kind`` selects the execution model; the remaining fields are the
    union of what the four models accept (unused fields are ignored by
    the other kinds, mirroring the legacy signatures):

    * ``"local"`` — ``algorithm`` is a
      :class:`~repro.local_model.algorithm.LocalAlgorithm`; honors
      ``rng`` / ``seed`` / ``deterministic`` / ``max_rounds``.
    * ``"view"`` — ``algorithm`` is a
      :class:`~repro.local_model.algorithm.ViewAlgorithm`.
    * ``"edge"`` — ``algorithm`` is an
      :class:`~repro.local_model.edge_model.EdgeViewAlgorithm`.
    * ``"finite"`` — ``algorithm`` is a
      :class:`~repro.speedup.algorithms.NodeAlgorithm`; requires
      ``values`` (per-node random words), honors ``tables``
      (precomputed ball tables) and ``orientation``.

    ``seed`` is the backend-independent alternative to ``rng``: when set
    (and ``rng`` is not), every backend constructs
    ``random.Random(derive_seed(seed, label))``, so results cannot
    depend on which backend ran.  ``label`` also names the request in
    shard-seed derivation and progress events.

    ``layout`` selects the execution layout.  For ``view`` / ``edge``
    kinds: ``"dict"`` is the reference per-entity path over the
    adjacency lists, ``"csr"`` routes class detection through the
    batched ball expander over the compiled
    :class:`~repro.graphs.csr.CSRGraph` arrays
    (:mod:`repro.local_model.batch_views`), and ``"kernel"`` adds the
    vectorized class-table apply on top of the same partitions
    (:mod:`repro.local_model.kernels`, contract in ``docs/KERNELS.md``)
    with an exact per-representative fallback for algorithms without a
    registered kernel.  ``"implicit"`` serves
    :class:`~repro.graphs.implicit.ImplicitGraph` family handles by
    synthesizing CSR ball windows on demand (``docs/IMPLICIT.md``) — it
    is only valid on implicit handles, just as ``"csr"``/``"kernel"``
    require materialized graphs small enough to compile.  For the
    ``"local"`` kind, ``"kernel"`` runs the
    algorithm's registered round kernel (falling back to the reference
    loop when it declines); other explicit layouts are ignored.
    ``"auto"`` (the default) lets each backend pick — implicit handles
    route to the synthesized ``"implicit"`` path on every backend, the
    memoizing
    backends use ``"csr"`` for view/edge kinds whenever the graph is
    frozen and escalate ``local`` runs to the round kernel when one is
    registered; the direct backend stays on the reference path.  Layout
    choice is a pure performance knob: all layouts produce bit-identical
    reports (``tests/test_csr_parity.py``, ``tests/test_kernels.py``,
    and the conformance ``layout-identity`` check prove it).  For the
    ``finite`` kind, ``"kernel"`` evaluates the run through the
    distinct-assignment kernel of :mod:`repro.speedup.trial_kernel`
    (``"auto"`` escalates on the memoizing backends when a kernel is
    registered, exactly as for ``local``); other explicit layouts are
    ignored.
    """

    kind: str
    graph: Any
    algorithm: Any
    ids: Optional[Sequence[int]] = None
    inputs: Optional[Sequence[Any]] = None
    randomness: Optional[Sequence[Any]] = None
    orientation: Optional[Any] = None
    # -- "local" kind ---------------------------------------------------
    rng: Optional[random.Random] = None
    seed: Optional[int] = None
    deterministic: bool = False
    max_rounds: Optional[int] = None
    # -- "finite" kind --------------------------------------------------
    values: Optional[Sequence[int]] = None
    tables: Optional[List[List[int]]] = None
    # -- "view" / "edge" kinds ------------------------------------------
    layout: str = "auto"
    # -- bookkeeping ----------------------------------------------------
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown request kind {self.kind!r} (have {KINDS})")

    def resolved_rng(self) -> random.Random:
        """The run's master RNG, identical across backends.

        Priority: an explicit ``rng``; else ``seed`` through
        :func:`derive_seed`; else the legacy default ``Random(0)``.
        """
        if self.rng is not None:
            return self.rng
        if self.seed is not None:
            return random.Random(derive_seed(self.seed, self.label))
        return random.Random(0)


@dataclass
class SimReport:
    """One simulation's outcome, backend-independent where it counts.

    ``outputs`` is a per-node list for ``local`` / ``view`` / ``finite``
    requests and an ``{edge: label}`` dict for ``edge`` requests.
    ``halt_rounds`` and ``failing_nodes`` are populated by the kinds
    that define them (``None`` elsewhere).  :meth:`identity` is the
    comparable core — what the differential suite asserts equal across
    backends; ``backend`` and ``info`` are diagnostics and may
    legitimately differ.

    ``changed_nodes`` is populated only by the incremental backend's
    ``apply`` path: the sorted nodes whose view class changed under the
    delta that produced this report.  Like ``backend`` / ``info`` it is
    diagnostic — deliberately outside :meth:`identity`, since a fresh
    from-scratch run of the same mutated graph has no delta to compare
    against (it reports ``None``).
    """

    kind: str
    outputs: Any
    rounds: int
    halt_rounds: Optional[List[Optional[int]]] = None
    failing_nodes: Optional[List[int]] = None
    backend: str = ""
    info: Dict[str, Any] = field(default_factory=dict)
    changed_nodes: Optional[List[int]] = None

    def identity(self) -> Tuple[Any, ...]:
        """The bit-comparable result: everything except diagnostics."""
        return (
            self.kind,
            self.outputs,
            self.halt_rounds,
            self.rounds,
            self.failing_nodes,
        )

    def all_halted(self) -> bool:
        """Whether every node halted (vacuously true for view kinds)."""
        if self.halt_rounds is None:
            return True
        return all(r is not None for r in self.halt_rounds)

    # -- legacy adapters ------------------------------------------------
    def to_execution_result(self) -> Any:
        """As a legacy :class:`~repro.local_model.network.ExecutionResult`."""
        from ..local_model.network import ExecutionResult

        if self.kind not in ("local", "view"):
            raise ValueError(f"{self.kind!r} reports have no ExecutionResult form")
        return ExecutionResult(
            outputs=self.outputs,
            halt_rounds=self.halt_rounds,
            rounds=self.rounds,
        )

    def to_edge_result(self) -> Any:
        """As a legacy :class:`~repro.local_model.edge_model.EdgeExecutionResult`."""
        from ..local_model.edge_model import EdgeExecutionResult

        if self.kind != "edge":
            raise ValueError(f"{self.kind!r} reports have no EdgeExecutionResult form")
        return EdgeExecutionResult(outputs=self.outputs, rounds=self.rounds)

    def to_finite_result(self) -> Any:
        """As a legacy :class:`~repro.speedup.finite_runner.FiniteRunResult`."""
        from ..speedup.finite_runner import FiniteRunResult

        if self.kind != "finite":
            raise ValueError(f"{self.kind!r} reports have no FiniteRunResult form")
        return FiniteRunResult(
            outputs=self.outputs, failing_nodes=self.failing_nodes
        )


class Engine:
    """The backend interface: map :class:`SimRequest` -> :class:`SimReport`.

    Subclasses implement :meth:`run`; :meth:`run_many` has a serial
    default that backends with real fan-out (the sharded engine)
    override.  Engines are stateless unless documented otherwise
    (the cached engine owns a memo table).
    """

    name = "engine"

    def run(self, request: SimRequest, tracer: Optional[Tracer] = None) -> SimReport:
        """Execute one request."""
        raise NotImplementedError

    def run_many(
        self,
        requests: Sequence[SimRequest],
        tracer: Optional[Tracer] = None,
    ) -> List[SimReport]:
        """Execute independent requests; order of results matches input."""
        return [self.run(request, tracer=tracer) for request in requests]


#: Engine names accepted by :func:`resolve_engine` / :func:`simulate`.
ENGINE_NAMES = ("direct", "cached", "sharded", "incremental", "service")


#: Default instances for the *stateless-by-name* backends.  ``direct``
#: holds no state at all; ``sharded`` holds only its worker pool, which
#: is exactly what memoizing amortizes (spawning processes per run
#: would eat the dedup win).  ``cached`` is deliberately NOT memoized:
#: its ``ViewCache`` must never be shared across algorithms, so every
#: by-name resolution gets a fresh one.
_DEFAULT_ENGINES: Dict[str, "Engine"] = {}


def resolve_engine(engine: Union[None, str, Engine]) -> Engine:
    """Normalize an engine argument to an :class:`Engine` instance.

    ``None`` means the direct backend; strings name a backend
    (``"direct"`` / ``"cached"`` / ``"sharded"`` / ``"incremental"`` /
    ``"service"``) constructed with defaults; instances pass through.
    Imported lazily so the facade costs nothing for callers that never
    shard.  By-name ``direct`` and ``sharded`` resolve to shared
    default instances (the sharded default keeps its process pool warm
    across calls); ``cached``, ``incremental``, and ``service``
    construct a fresh engine per call because their memo/state is only
    valid for one algorithm, one evolving run, or one long-lived
    deployment — hold an
    :class:`~repro.core.incremental.IncrementalEngine` or
    :class:`~repro.core.service.ServiceEngine` instance yourself to
    use the ``apply`` API or keep the cross-request cache warm.
    """
    if engine is None:
        engine = "direct"
    if isinstance(engine, Engine):
        return engine
    if engine == "cached":
        from .cached import CachedEngine

        return CachedEngine()
    if engine == "incremental":
        from .incremental import IncrementalEngine

        return IncrementalEngine()
    if engine == "service":
        from .service import ServiceEngine

        return ServiceEngine()
    if engine in _DEFAULT_ENGINES:
        return _DEFAULT_ENGINES[engine]
    if engine == "direct":
        from .direct import DirectEngine

        return _DEFAULT_ENGINES.setdefault("direct", DirectEngine())
    if engine == "sharded":
        from .sharded import ShardedEngine

        return _DEFAULT_ENGINES.setdefault("sharded", ShardedEngine())
    raise ValueError(f"unknown engine {engine!r} (have {ENGINE_NAMES})")


def simulate(
    request: SimRequest,
    engine: Union[None, str, Engine] = None,
    tracer: Optional[Tracer] = None,
) -> SimReport:
    """Run one request on the chosen backend (default: direct).

    The one entry point every call site shares.  ``tracer`` threads
    through unchanged — instrumented runs produce the exact same report
    as uninstrumented ones, on every backend.
    """
    return resolve_engine(engine).run(request, tracer=tracer)


def simulate_many(
    requests: Sequence[SimRequest],
    engine: Union[None, str, Engine] = None,
    tracer: Optional[Tracer] = None,
) -> List[SimReport]:
    """Run independent requests on the chosen backend, preserving order.

    The sharded backend fans the batch over its process pool (one shard
    per request group); direct and cached run serially.
    """
    return resolve_engine(engine).run_many(requests, tracer=tracer)
