"""The sharded backend: dedupe view classes, fan evaluations over a pool.

The sharded engine combines the cached engine's insight (on symmetric
graph families, almost all balls are pairwise isomorphic) with process
fan-out:

1. the parent process keys every node (edge) by its canonical view
   signature — the same perfect key the cached engine uses;
2. the *distinct* view classes are split into shards, each with a
   sha256-derived seed
   (:func:`~repro.core.engine.derive_seed`, the experiment runner's
   ``derive_cell_seed`` scheme);
3. a :mod:`multiprocessing` pool materializes one representative ball
   per class and evaluates the algorithm on it;
4. the parent broadcasts each class's output to every member.

Work drops from ``n`` evaluations to ``distinct classes`` evaluations,
and those evaluations parallelize — so the engine beats the direct
backend even on a single core (it does strictly less work), and scales
with cores when they exist.  ``benchmarks/BENCH_engine_backends.json``
tracks the measured ratios.

Degradation is explicit, never silent in the report: algorithms or
labelings that cannot cross a process boundary (lambdas, closures), and
runs already inside a daemonic worker (the experiment runner's
``--jobs`` pool cannot have children), are evaluated in-process with
the same dedup-and-broadcast plan, and the report's ``info["pooled"]``
says which path ran.  When the degraded path runs for a *reason* —
unpicklable payload, forbidden fork, a worker that died or raised, a
pool that stopped answering within ``timeout`` — the reason string is
surfaced as ``info["degraded"]`` and fired through
:meth:`~repro.instrumentation.tracer.Tracer.on_degraded`, so metrics
and artifacts record every fallback (the conformance fault-injection
suite, ``repro.conformance.faults``, asserts these paths).  ``local``
requests (round-synchronous message passing) and ``finite`` requests
(already memoized by the algorithm's own assignment cache) fall back to
direct semantics.  Results are bit-identical to the other backends in
every case — the differential suite proves it.

:meth:`ShardedEngine.run_many` is the second axis the paper's workload
offers: *independent* requests (cells, graphs) fan out over the pool
whole, one report each, order preserved.
"""

from __future__ import annotations

import atexit
import multiprocessing
import pickle
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..graphs.graph import Edge, edge_key
from ..instrumentation.tracer import Tracer, effective_tracer
from ..local_model.batch_views import expander_for, resolve_layout
from ..local_model.cache import CacheStats
from ..local_model.views import (
    edge_view_signature,
    gather_edge_view,
    gather_view,
    view_signature,
)
from .direct import DirectEngine
from .engine import SimReport, SimRequest, derive_seed, resolve_engine

__all__ = ["ShardedEngine"]


def _default_shards() -> int:
    """Pool width: every core, but at least two shards (fan-out exists
    even on one core, where the dedup — not parallelism — is the win)."""
    return max(2, multiprocessing.cpu_count())


def _split(items: Sequence[Any], shards: int) -> List[Sequence[Any]]:
    """At most ``shards`` contiguous, non-empty, balanced chunks."""
    shards = max(1, min(shards, len(items)))
    size, extra = divmod(len(items), shards)
    chunks, start = [], 0
    for i in range(shards):
        end = start + size + (1 if i < extra else 0)
        chunks.append(items[start:end])
        start = end
    return chunks


def _picklable(*objects: Any) -> bool:
    """Whether every object can cross a process boundary."""
    try:
        pickle.dumps(objects)
    except Exception:
        return False
    return True


def _can_fork() -> bool:
    """Whether this process may spawn pool workers.

    Daemonic processes (e.g. the experiment runner's ``--jobs`` workers)
    cannot have children; the engine then runs its dedup-and-broadcast
    plan in-process instead of crashing.
    """
    return not multiprocessing.current_process().daemon


# -- module-level workers (Pool requires importable callables) ----------

def _eval_view_chunk(payload: Tuple[Any, ...]) -> List[Any]:
    graph, algorithm, ids, inputs, randomness, orientation, reps = payload
    radius = algorithm.radius
    return [
        algorithm.output(
            gather_view(
                graph, v, radius,
                ids=ids, inputs=inputs, randomness=randomness,
                orientation=orientation,
            )
        )
        for v in reps
    ]


def _eval_edge_chunk(payload: Tuple[Any, ...]) -> List[Any]:
    graph, algorithm, ids, inputs, randomness, orientation, reps = payload
    radius = algorithm.view_radius()
    return [
        algorithm.output_fn(
            gather_edge_view(
                graph, edge, radius,
                ids=ids, inputs=inputs, randomness=randomness,
                orientation=orientation,
            )
        )
        for edge in reps
    ]


def _run_request_chunk(payload: Tuple[str, Sequence[SimRequest]]) -> List[SimReport]:
    inner, requests = payload
    engine = resolve_engine(inner)
    return [engine.run(request) for request in requests]


def _run_request_chunk_metrics(
    payload: Tuple[str, Sequence[SimRequest]],
) -> List[Tuple[SimReport, Dict[str, Any]]]:
    """Like :func:`_run_request_chunk`, but each request runs under a
    fresh worker-side :class:`~repro.instrumentation.metrics.MetricsTracer`
    whose folded counters ride back with the report — the parent relays
    them through :meth:`~repro.instrumentation.tracer.Tracer.on_subrun`
    so cache/layout/kernel activity inside workers is never lost."""
    from ..instrumentation.metrics import MetricsTracer

    inner, requests = payload
    engine = resolve_engine(inner)
    results = []
    for request in requests:
        metrics = MetricsTracer()
        report = engine.run(request, tracer=metrics)
        results.append((report, metrics.metrics.to_dict()))
    return results


class ShardedEngine(DirectEngine):
    """Process-pool backend over view-equivalence classes and requests.

    Parameters
    ----------
    shards:
        Number of shards (and pool processes); default
        ``max(2, cpu_count())``.
    base_seed:
        Base of the per-shard seed derivation
        ``derive_seed(base_seed, f"{label}:{kind}:shard-{i}")``; a
        request's own ``seed`` takes precedence as the base.
    inner:
        Backend run *inside* each worker for :meth:`run_many`
        (``"direct"`` or ``"cached"``).
    timeout:
        Seconds to wait for the pool to answer one dispatched batch.
        ``None`` (the default) waits forever — correct when workers are
        trusted to either answer or raise.  A finite timeout buys crash
        resilience: if a worker dies mid-shard (so its results never
        arrive), the engine tears the pool down and re-evaluates
        in-process instead of hanging, reporting
        ``info["degraded"]``.
    """

    name = "sharded"
    prefer_csr = True  # class detection is this backend's parent-side cost

    def __init__(
        self,
        shards: Optional[int] = None,
        base_seed: int = 0,
        inner: str = "direct",
        timeout: Optional[float] = None,
    ):
        if shards is not None and shards < 1:
            raise ValueError("shards must be >= 1")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        self.shards = shards or _default_shards()
        self.base_seed = base_seed
        self.inner = inner
        self.timeout = timeout
        self._pool: Optional[Any] = None

    # -- pool lifecycle --------------------------------------------------
    def _get_pool(self):
        """The persistent worker pool, spawned on first pooled run.

        Keeping the pool warm across runs matters: on the graphs the
        benchmarks measure, a fresh pool per run costs more than the
        dedup saves.  Workers are daemonic, so an unexited interpreter
        never hangs on them; :meth:`close` releases them eagerly.
        """
        if self._pool is None:
            self._pool = multiprocessing.Pool(processes=self.shards)
            # Tear down before interpreter shutdown: Pool.__del__ during
            # teardown races module finalization and logs spurious noise.
            atexit.register(self.close)
        return self._pool

    def close(self) -> None:
        """Terminate the worker pool (a later run respawns it)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    # -- shared plumbing ------------------------------------------------
    def _shard_seeds(self, request: SimRequest, count: int) -> List[int]:
        base = request.seed if request.seed is not None else self.base_seed
        return [
            derive_seed(base, f"{request.label}:{request.kind}:shard-{i}")
            for i in range(count)
        ]

    def _pool_map(
        self,
        worker: Callable[[Any], Any],
        payloads: Sequence[Any],
    ) -> List[Any]:
        """``pool.map`` honoring :attr:`timeout`.

        Raises whatever the workers raise; raises
        :class:`multiprocessing.TimeoutError` when the pool does not
        answer in time (the signature of a worker that died mid-shard —
        its results will never arrive).
        """
        if self.timeout is None:
            return self._get_pool().map(worker, payloads)
        return self._get_pool().map_async(worker, payloads).get(self.timeout)

    def _degradation_reason(self, shared: Any) -> Optional[str]:
        """Why the pooled path cannot run, or ``None`` if it can."""
        if not _can_fork():
            return "no-fork"
        if not _picklable(shared):
            return "unpicklable"
        return None

    def _evaluate_shards(
        self,
        request: SimRequest,
        reps: Sequence[Any],
        worker: Callable[[Tuple[Any, ...]], List[Any]],
        tracer: Optional[Tracer],
    ) -> Tuple[List[Any], bool, Optional[str]]:
        """Evaluate one representative per class, pooled when possible.

        Returns ``(outputs_in_rep_order, pooled, degraded_reason)``.
        ``degraded_reason`` is ``None`` on the happy paths (pooled, or
        in-process merely because there is one chunk) and a short reason
        string whenever the engine *wanted* the pool but could not use
        it — see the module docstring's degradation contract.
        """
        chunks = _split(list(reps), self.shards)
        seeds = self._shard_seeds(request, len(chunks))
        if tracer is not None:
            for i, (chunk, seed) in enumerate(zip(chunks, seeds)):
                tracer.on_shard(i, len(chunk), seed)
        shared = (
            request.graph,
            request.algorithm,
            request.ids,
            request.inputs,
            request.randomness,
            request.orientation,
        )
        payloads = [shared + (chunk,) for chunk in chunks]
        pooled, degraded = False, None
        if len(chunks) > 1:
            degraded = self._degradation_reason(shared)
        if len(chunks) > 1 and degraded is None:
            try:
                chunk_outputs = self._pool_map(worker, payloads)
                pooled = True
            except Exception as exc:
                # A worker died, raised, or the pool timed out: the pool
                # state is unknown, so tear it down (a later run
                # respawns it) and re-evaluate in-process — strictly
                # less efficient, bit-identical by construction.
                self.close()
                degraded = f"pool-error: {type(exc).__name__}: {exc}"
        if not pooled:
            chunk_outputs = [worker(payload) for payload in payloads]
        if degraded is not None and tracer is not None:
            tracer.on_degraded(self.name, degraded)
        return (
            [out for chunk in chunk_outputs for out in chunk],
            pooled,
            degraded,
        )

    @staticmethod
    def _dedup_stats(lookups: int, distinct: int) -> Dict[str, Any]:
        return CacheStats(
            lookups=lookups,
            hits=lookups - distinct,
            misses=distinct,
            distinct_classes=distinct,
        ).to_dict()

    # -- "view": shard the distinct node-ball classes -------------------
    def _run_view(
        self, request: SimRequest, tracer: Optional[Tracer]
    ) -> SimReport:
        graph, algorithm = request.graph, request.algorithm
        tracer = effective_tracer(tracer)
        radius = algorithm.radius
        layout = resolve_layout(request.layout, graph, self.prefer_csr)
        if layout == "kernel":
            # One vectorized class table: nothing left worth sharding.
            return self._run_view_kernel(request, tracer)
        if tracer is not None:
            tracer.on_run_start("view", algorithm.name, graph.n)
        if layout == "dict":
            labels: List[int] = []
            classes: Dict[Any, int] = {}
            reps: List[int] = []
            for v in graph.nodes():
                key = view_signature(
                    graph, v, radius,
                    ids=request.ids, inputs=request.inputs,
                    randomness=request.randomness,
                    orientation=request.orientation,
                )
                c = classes.get(key)
                if c is None:
                    c = classes[key] = len(reps)
                    reps.append(v)
                labels.append(c)
            layout_info = {"requested": request.layout, "entities": graph.n,
                           "classes": len(reps)}
        else:
            part = expander_for(graph, layout).node_classes(
                radius, ids=request.ids, inputs=request.inputs,
                randomness=request.randomness,
                orientation=request.orientation,
            )
            # First-occurrence representatives match the dict scan's, so
            # shard payloads — and therefore outputs — are bit-identical.
            labels, reps = part.labels, part.reps
            layout_info = {"requested": request.layout, "entities": graph.n,
                           "path": part.path, "classes": part.class_count}
        if tracer is not None:
            tracer.on_layout(self.name, layout, layout_info)
        class_outputs, pooled, degraded = self._evaluate_shards(
            request, reps, _eval_view_chunk, tracer
        )
        outputs = [class_outputs[c] for c in labels]
        if tracer is not None:
            tracer.on_cache("view", self._dedup_stats(graph.n, len(reps)))
            tracer.on_run_end(radius)
        info: Dict[str, Any] = {"distinct_classes": len(reps), "pooled": pooled}
        if degraded is not None:
            info["degraded"] = degraded
        return SimReport(
            kind="view",
            outputs=outputs,
            halt_rounds=[radius] * graph.n,
            rounds=radius,
            backend=self.name,
            info=info,
        )

    # -- "edge": shard the distinct edge-ball classes -------------------
    def _run_edge(
        self, request: SimRequest, tracer: Optional[Tracer]
    ) -> SimReport:
        graph, algorithm = request.graph, request.algorithm
        tracer = effective_tracer(tracer)
        radius = algorithm.view_radius()
        layout = resolve_layout(request.layout, graph, self.prefer_csr)
        if layout == "kernel":
            return self._run_edge_kernel(request, tracer)
        if tracer is not None:
            tracer.on_run_start("edge", algorithm.name, graph.m)
        edges = list(graph.edges())
        if layout == "dict":
            labels: List[int] = []
            classes: Dict[Any, int] = {}
            reps: List[Tuple[int, int]] = []
            for u, v in edges:
                key = edge_view_signature(
                    graph, (u, v), radius,
                    ids=request.ids, inputs=request.inputs,
                    randomness=request.randomness,
                    orientation=request.orientation,
                )
                c = classes.get(key)
                if c is None:
                    c = classes[key] = len(reps)
                    reps.append((u, v))
                labels.append(c)
            layout_info = {"requested": request.layout, "entities": graph.m,
                           "classes": len(reps)}
        else:
            part = expander_for(graph, layout).edge_classes(
                edges, radius,
                ids=request.ids, inputs=request.inputs,
                randomness=request.randomness,
                orientation=request.orientation,
            )
            labels = part.labels
            reps = [edges[i] for i in part.reps]
            layout_info = {"requested": request.layout, "entities": graph.m,
                           "path": part.path, "classes": part.class_count}
        if tracer is not None:
            tracer.on_layout(self.name, layout, layout_info)
        class_outputs, pooled, degraded = self._evaluate_shards(
            request, reps, _eval_edge_chunk, tracer
        )
        outputs: Dict[Edge, Any] = {
            edge_key(u, v): class_outputs[c]
            for (u, v), c in zip(edges, labels)
        }
        if tracer is not None:
            tracer.on_cache("edge", self._dedup_stats(len(edges), len(reps)))
            tracer.on_run_end(algorithm.rounds)
        info: Dict[str, Any] = {"distinct_classes": len(reps), "pooled": pooled}
        if degraded is not None:
            info["degraded"] = degraded
        return SimReport(
            kind="edge",
            outputs=outputs,
            rounds=algorithm.rounds,
            backend=self.name,
            info=info,
        )

    # -- batches: shard whole independent requests ----------------------
    def _run_chunk_serial(
        self, chunk: Sequence[SimRequest], traced: bool
    ) -> List[Any]:
        """One chunk through a fresh ``inner`` engine, in-process.

        Mirrors the worker functions exactly — one engine per chunk
        (so a chunk's requests share a memo table just as they would
        inside a worker process) and, when ``traced``, one fresh
        :class:`~repro.instrumentation.metrics.MetricsTracer` per
        request whose folded dict rides back with the report.  Returns
        ``(report, metrics_dict)`` pairs when traced, bare reports
        otherwise — the same shapes the pooled path produces.
        """
        engine = resolve_engine(self.inner)
        if not traced:
            return [engine.run(request) for request in chunk]
        from ..instrumentation.metrics import MetricsTracer

        results = []
        for request in chunk:
            metrics = MetricsTracer()
            report = engine.run(request, tracer=metrics)
            results.append((report, metrics.metrics.to_dict()))
        return results

    def run_many(
        self,
        requests: Sequence[SimRequest],
        tracer: Optional[Tracer] = None,
    ) -> List[SimReport]:
        """Fan independent requests over the pool, order preserved.

        Each shard (a contiguous chunk of the batch) runs its requests
        through the ``inner`` backend in a worker process.  Degradation
        is decided *per chunk*: a chunk that cannot be pickled (lambdas
        in algorithms, exotic labelings) runs in-process while the
        picklable chunks still pool, and only the degraded chunk's
        reports carry the reason under ``info["degraded"]`` — mirroring
        the single-run contract without punishing the healthy part of a
        mixed batch.  A pool failure mid-batch (worker crash, timeout)
        reassigns every pooled chunk to the serial path with a
        ``pool-error`` reason.

        Metrics folding happens in one assembly pass *after* all
        evaluation: exactly one
        :meth:`~repro.instrumentation.tracer.Tracer.on_subrun` per
        request and one
        :meth:`~repro.instrumentation.tracer.Tracer.on_degraded` per
        degraded chunk, on every path.  (The previous implementation
        relayed pooled metrics inside its ``try`` block, so an
        exception raised after a partial relay fell through to a serial
        mirror that re-folded the whole batch — double-counting every
        ``cache_*`` counter.  The single-pass assembly makes that
        impossible; ``tests/test_run_many_folding.py`` pins the folded
        totals against per-shard sums.)
        """
        tracer = effective_tracer(tracer)
        requests = list(requests)
        if not requests:
            return []
        chunks = _split(requests, self.shards)
        if tracer is not None:
            for i, chunk in enumerate(chunks):
                seed = derive_seed(self.base_seed, f"run-many:shard-{i}")
                tracer.on_shard(i, len(chunk), seed)
        # Per-chunk degradation decision.  A single-chunk batch runs
        # in-process as a happy path (no pool to degrade from), exactly
        # like _evaluate_shards.
        multi = len(chunks) > 1
        forbidden = "no-fork" if (multi and not _can_fork()) else None
        reasons: List[Optional[str]] = []
        for chunk in chunks:
            if not multi:
                reasons.append(None)
            elif forbidden is not None:
                reasons.append(forbidden)
            elif not _picklable(list(chunk)):
                reasons.append("unpicklable")
            else:
                reasons.append(None)
        traced = tracer is not None
        pooled_idx = [i for i in range(len(chunks)) if multi and reasons[i] is None]
        results: Dict[int, List[Any]] = {}
        if pooled_idx:
            worker = _run_request_chunk_metrics if traced else _run_request_chunk
            payloads = [(self.inner, chunks[i]) for i in pooled_idx]
            try:
                for i, chunk_result in zip(
                    pooled_idx, self._pool_map(worker, payloads)
                ):
                    results[i] = chunk_result
            except Exception as exc:
                # A worker died, raised, or the pool timed out: tear the
                # pool down (a later run respawns it) and reassign every
                # pooled chunk to the serial path with the reason.
                self.close()
                reason = f"pool-error: {type(exc).__name__}: {exc}"
                results.clear()
                for i in pooled_idx:
                    reasons[i] = reason
        for i, chunk in enumerate(chunks):
            if i not in results:
                results[i] = self._run_chunk_serial(chunk, traced)
        # Single assembly pass, after all evaluation: relay metrics,
        # mark degraded chunks, preserve input order.
        reports: List[SimReport] = []
        for i, chunk in enumerate(chunks):
            reason = reasons[i] if multi else None
            if reason is not None and tracer is not None:
                tracer.on_degraded(self.name, reason)
            for item in results[i]:
                if traced:
                    report, metrics = item
                    tracer.on_subrun(metrics)
                else:
                    report = item
                if reason is not None:
                    report.info["degraded"] = reason
                reports.append(report)
        return reports
