"""The service backend: a cross-request cache for a long-lived engine.

Every other backend is cold by construction: the memo table of a
:class:`~repro.core.cached.CachedEngine` dies with the engine, and
:func:`~repro.core.engine.resolve_engine` hands out a *fresh* cached
engine per call precisely because a :class:`~repro.local_model.cache.
ViewCache` must never be shared across algorithms.  A long-lived
daemon (``python -m repro.serve``) inverts the economics: the same
graph families and algorithms arrive over and over, so the class
tables, compiled CSR layouts, and ball partitions should *outlive*
individual requests.

:class:`ServiceEngine` is that warm backend.  It keeps three bounded
cross-request layers:

* **Class tables** — one :class:`~repro.local_model.cache.ViewCache`
  per *algorithm key* (a stable structural fingerprint of the
  algorithm instance, see :func:`algorithm_cache_key`), so repeat
  requests for the same rule reuse each canonical view class computed
  by any earlier request.  Tables are LRU-evicted whole while the
  estimated footprint exceeds ``max_bytes`` (byte accounting rides the
  existing :class:`~repro.local_model.cache.CacheStats` estimates and
  surfaces through the ``cache_*`` / ``service_*`` RunMetrics).
* **Partitions** — per warm graph, the batched CSR ball partition for
  each ``(kind, radius, labeling)`` it has served, installed as a
  memoizing expander on the graph's compiled layout so every engine
  that touches the graph reuses it.
* **Graphs** — registry-built family graphs (:meth:`warm_graph`),
  frozen and CSR-compiled once, LRU-bounded by ``max_graphs``.

The exactness contract is unchanged: a warm response is bit-identical
on :meth:`~repro.core.engine.SimReport.identity` to a cold direct run
— outputs, error messages, and RNG streams.  The algorithm key never
*guesses*: an algorithm whose identity cannot be fingerprinted
(a lambda ``output_fn``, an unrecognized attribute object) is served
from a fresh private table instead of a shared one, trading warmth for
certainty.  The conformance ``service-identity`` axis and
``tests/test_service_parity.py`` prove the contract; the ``on_service``
tracer hook and ``service_*`` counters make the cache visible.

``local`` and ``finite`` requests have no view classes to share;
:meth:`ServiceEngine.run_many` batches them through an internal
:class:`~repro.core.sharded.ShardedEngine` process pool (with its
visible degradation contract) while ``view`` / ``edge`` requests run
in-process against the warm tables.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..instrumentation.tracer import Tracer, effective_tracer
from ..local_model.cache import ViewCache
from .cached import CachedEngine
from .engine import Engine, SimReport, SimRequest
from .registry import build_graph

__all__ = ["ServiceEngine", "algorithm_cache_key"]

#: Attribute value types accepted verbatim into an algorithm key.
_KEYABLE_SCALARS = (type(None), bool, int, float, str, bytes)


def _callable_key(value: Any) -> Optional[Tuple[str, str, str]]:
    """A stable import-path key for ``value``, or ``None`` if unkeyable.

    Module-level functions and classes key as ``(module, qualname)``;
    anything anonymous or local (``<lambda>``, ``<locals>`` in the
    qualname, missing module) has no stable cross-request identity.
    """
    module = getattr(value, "__module__", None)
    qualname = getattr(value, "__qualname__", None)
    if not module or not qualname or "<" in qualname:
        return None
    return ("callable", module, qualname)


def _value_key(value: Any) -> Optional[Any]:
    if isinstance(value, _KEYABLE_SCALARS):
        return value
    if isinstance(value, (tuple, list)):
        parts = tuple(_value_key(item) for item in value)
        return None if any(part is None for part in parts) else ("seq",) + parts
    if callable(value):
        return _callable_key(value)
    return None


def algorithm_cache_key(algorithm: Any) -> Optional[Tuple[Any, ...]]:
    """A stable cross-request fingerprint of an algorithm instance.

    The key is ``(module, qualname)`` of the algorithm's type plus its
    sorted instance attributes, where each attribute is a primitive
    scalar, a sequence of keyables, or an importable module-level
    callable keyed by its own ``(module, qualname)``.  Two instances
    with equal keys are behaviourally interchangeable, so their view
    classes may share one table.

    Returns ``None`` when any attribute has no stable identity (a
    lambda ``output_fn``, an arbitrary object): the service then serves
    the request from a fresh private table — always correct, never
    warm.  :class:`ServiceEngine` reports such requests as
    ``unkeyable`` through the ``on_service`` hook.
    """
    cls = type(algorithm)
    key: List[Any] = [cls.__module__, cls.__qualname__]
    attrs = getattr(algorithm, "__dict__", None)
    if attrs is None:
        return None
    for name in sorted(attrs):
        part = _value_key(attrs[name])
        if part is None:
            return None
        key.append((name, part))
    return tuple(key)


def _labeling_key(values: Optional[Sequence[Any]]) -> Optional[Any]:
    """A hashable form of one labeling sequence (``None`` passes through)."""
    return None if values is None else tuple(values)


class _MemoExpander:
    """A partition-memoizing proxy over a ball expander.

    Installed by :class:`ServiceEngine` as ``graph.csr()._expander`` so
    *every* engine that batches over the warm graph — the service's own
    cached runs included — reuses the ``(kind, radius, labeling)``
    partitions already computed for earlier requests.  Safe because
    warm graphs are frozen (immutable) and partitions are deterministic
    functions of the graph content plus the labeling; a labeling that
    cannot be hashed simply bypasses the memo.  Bounded LRU.
    """

    def __init__(self, inner: Any, max_entries: int = 64):
        self._inner = inner
        self._memo: "OrderedDict[Any, Any]" = OrderedDict()
        self._max_entries = max_entries

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    def _lookup(self, key_parts: Tuple[Any, ...], orientation: Any, compute):
        if orientation is not None:
            # Orientations key by object identity only (no stable value
            # hash); the key tuple holds a strong reference so identity
            # stays unambiguous for the entry's lifetime.
            key_parts = key_parts + (id(orientation), orientation)
        try:
            hash(key_parts)
        except TypeError:
            return compute()
        memo = self._memo
        if key_parts in memo:
            memo.move_to_end(key_parts)
            return memo[key_parts]
        part = compute()
        memo[key_parts] = part
        while len(memo) > self._max_entries:
            memo.popitem(last=False)
        return part

    def node_classes(
        self,
        radius: int,
        ids: Optional[Sequence[int]] = None,
        inputs: Optional[Sequence[Any]] = None,
        randomness: Optional[Sequence[Any]] = None,
        orientation: Optional[Any] = None,
        sources: Optional[Sequence[int]] = None,
    ) -> Any:
        """Memoized :meth:`BatchBallExpander.node_classes`.

        Subset passes (``sources`` given — the incremental engine's
        dirty-only recomputation) bypass the memo: they are already
        proportional to the subset's ball volume, and full-run entries
        must never be served where subset indexing is expected.
        """
        if sources is not None:
            return self._inner.node_classes(
                radius, ids=ids, inputs=inputs, randomness=randomness,
                orientation=orientation, sources=sources,
            )
        key = (
            "node", radius, _labeling_key(ids), _labeling_key(inputs),
            _labeling_key(randomness),
        )
        return self._lookup(
            key, orientation,
            lambda: self._inner.node_classes(
                radius, ids=ids, inputs=inputs, randomness=randomness,
                orientation=orientation,
            ),
        )

    def edge_classes(
        self,
        edges: Sequence[Tuple[int, int]],
        radius: int,
        ids: Optional[Sequence[int]] = None,
        inputs: Optional[Sequence[Any]] = None,
        randomness: Optional[Sequence[Any]] = None,
        orientation: Optional[Any] = None,
    ) -> Any:
        """Memoized :meth:`BatchBallExpander.edge_classes`."""
        key = (
            "edge", tuple(edges), radius, _labeling_key(ids),
            _labeling_key(inputs), _labeling_key(randomness),
        )
        return self._lookup(
            key, orientation,
            lambda: self._inner.edge_classes(
                edges, radius, ids=ids, inputs=inputs,
                randomness=randomness, orientation=orientation,
            ),
        )


class ServiceEngine(Engine):
    """The long-lived backend: cross-request tables, warm layouts.

    Parameters
    ----------
    max_bytes:
        Estimated-size budget for all live class tables together
        (:class:`~repro.local_model.cache.CacheStats` accounting).
        After each request, least-recently-used tables are evicted
        whole until the footprint fits.  ``None`` disables eviction.
    max_graphs:
        How many registry-built warm graphs :meth:`warm_graph` retains.
    max_partitions:
        Per-graph bound on memoized ball partitions.
    shards / timeout:
        Forwarded to the internal
        :class:`~repro.core.sharded.ShardedEngine` that serves
        ``local`` / ``finite`` batches; ``timeout`` (seconds per
        batch) surfaces as the visible ``pool-error`` degradation
        rather than a hang.

    Unlike the stateless backends this engine is *meant* to be held:
    ``resolve_engine("service")`` returns a fresh instance per call
    (warmth would otherwise leak across unrelated callers), and the
    daemon in :mod:`repro.serve` owns exactly one.
    """

    name = "service"

    def __init__(
        self,
        max_bytes: Optional[int] = 64 * 1024 * 1024,
        max_graphs: int = 32,
        max_partitions: int = 64,
        shards: Optional[int] = None,
        timeout: Optional[float] = None,
    ):
        self.max_bytes = max_bytes
        self.max_graphs = max_graphs
        self.max_partitions = max_partitions
        self._shards = shards
        self._timeout = timeout
        self._tables: "OrderedDict[Tuple[Any, ...], ViewCache]" = OrderedDict()
        self._graphs: "OrderedDict[Tuple[Any, ...], Any]" = OrderedDict()
        self._sharded: Optional[Engine] = None
        #: Cumulative counters mirrored by the ``/metrics`` endpoint.
        self.counters: Dict[str, int] = {
            "requests": 0,
            "table_hits": 0,
            "table_misses": 0,
            "graph_hits": 0,
            "graph_misses": 0,
            "evictions": 0,
            "unkeyable": 0,
        }

    # -- warm layers ----------------------------------------------------
    def warm_graph(
        self, family: str, params: Dict[str, Any], implicit: bool = False
    ) -> Any:
        """The warm registry graph for ``family(**params)``.

        Built through :func:`~repro.core.registry.build_graph` on first
        use — then frozen, CSR-compiled, and fitted with the partition
        memo — and LRU-retained so repeat requests share one object
        (and therefore one compiled layout and one partition store).
        """
        key = (family, tuple(sorted(params.items())), bool(implicit))
        graphs = self._graphs
        if key in graphs:
            graphs.move_to_end(key)
            self.counters["graph_hits"] += 1
            return graphs[key]
        spec = dict(params)
        spec["graph"] = family
        if implicit:
            spec["implicit"] = True
        graph = build_graph(spec)
        self._prepare_graph(graph)
        graphs[key] = graph
        self.counters["graph_misses"] += 1
        while len(graphs) > self.max_graphs:
            graphs.popitem(last=False)
        return graph

    def _prepare_graph(self, graph: Any) -> bool:
        """Freeze, compile, and memo-fit ``graph``; True if already warm."""
        if getattr(graph, "is_implicit", False):
            return True  # implicit handles are already O(classes)-warm
        if getattr(graph, "n", 0) == 0:
            return True  # no CSR layout exists for the empty graph
        if not getattr(graph, "is_frozen", False):
            graph.freeze()
            warm = False
        else:
            warm = True
        csr = graph.csr()
        if isinstance(csr._expander, _MemoExpander):
            return warm
        if csr._expander is None:
            from ..local_model.batch_views import BatchBallExpander

            csr._expander = BatchBallExpander(graph)
        csr._expander = _MemoExpander(csr._expander, self.max_partitions)
        return False

    def _table_for(self, algorithm: Any) -> Tuple[ViewCache, bool, bool]:
        """(table, was_warm, unkeyable) for one request's algorithm."""
        key = algorithm_cache_key(algorithm)
        if key is None:
            return ViewCache(), False, True
        tables = self._tables
        if key in tables:
            tables.move_to_end(key)
            return tables[key], True, False
        table = ViewCache()
        tables[key] = table
        return table, False, False

    def total_bytes(self) -> int:
        """Estimated footprint of all live class tables, in bytes."""
        return sum(table.stats.bytes for table in self._tables.values())

    def _evict(self) -> int:
        """LRU-evict whole tables until the byte budget fits."""
        if self.max_bytes is None:
            return 0
        evicted = 0
        while self._tables and self.total_bytes() > self.max_bytes:
            self._tables.popitem(last=False)
            evicted += 1
        self.counters["evictions"] += evicted
        return evicted

    # -- engine interface -----------------------------------------------
    def run(
        self, request: SimRequest, tracer: Optional[Tracer] = None
    ) -> SimReport:
        """Serve one request from the warm layers, bit-identically.

        ``view`` / ``edge`` requests run through a
        :class:`~repro.core.cached.CachedEngine` whose memo table is
        the algorithm's cross-request table; ``local`` / ``finite``
        requests have no view classes and pass through with direct
        semantics.  Fires one ``on_service`` event per request.
        """
        tracer = effective_tracer(tracer)
        counters = self.counters
        counters["requests"] += 1
        graph_warm = self._prepare_graph(request.graph)
        counters["graph_hits" if graph_warm else "graph_misses"] += 1
        table_warm = False
        unkeyable = False
        if request.kind in ("view", "edge"):
            table, table_warm, unkeyable = self._table_for(request.algorithm)
            if unkeyable:
                counters["unkeyable"] += 1
            counters["table_hits" if table_warm else "table_misses"] += 1
            report = CachedEngine(cache=table).run(request, tracer=tracer)
        else:
            # local / finite kinds have no view classes, hence no table.
            report = CachedEngine().run(request, tracer=tracer)
        evicted = self._evict()
        report.backend = self.name
        report.info["service"] = {
            "table_hit": table_warm,
            "graph_hit": graph_warm,
            "unkeyable": unkeyable,
        }
        if tracer is not None:
            tracer.on_service(self.name, {
                "event": "request",
                "kind": request.kind,
                "requests": 1,
                "table_hits": int(table_warm),
                "table_misses": int(request.kind in ("view", "edge") and not table_warm),
                "graph_hits": int(graph_warm),
                "graph_misses": int(not graph_warm),
                "evictions": evicted,
                "bytes": self.total_bytes(),
                "tables": len(self._tables),
                "unkeyable": unkeyable,
            })
        return report

    def run_many(
        self,
        requests: Sequence[SimRequest],
        tracer: Optional[Tracer] = None,
    ) -> List[SimReport]:
        """Serve a batch, order preserved.

        ``view`` / ``edge`` requests run in-process against the warm
        tables (the whole point of the service); ``local`` / ``finite``
        requests — which have no cross-request classes to share — are
        batched together through the internal
        :class:`~repro.core.sharded.ShardedEngine` pool, inheriting
        its per-chunk degradation contract.
        """
        requests = list(requests)
        pooled_idx = [
            i for i, r in enumerate(requests) if r.kind in ("local", "finite")
        ]
        reports: List[Optional[SimReport]] = [None] * len(requests)
        if len(pooled_idx) > 1:
            sharded = self._get_sharded()
            pooled = sharded.run_many(
                [requests[i] for i in pooled_idx], tracer=tracer
            )
            for i, report in zip(pooled_idx, pooled):
                reports[i] = report
            tracer_eff = effective_tracer(tracer)
            for i in pooled_idx:
                self.counters["requests"] += 1
                if tracer_eff is not None:
                    tracer_eff.on_service(self.name, {
                        "event": "request",
                        "kind": requests[i].kind,
                        "requests": 1,
                        "table_hits": 0,
                        "table_misses": 0,
                        "graph_hits": 0,
                        "graph_misses": 0,
                        "evictions": 0,
                        "bytes": self.total_bytes(),
                        "tables": len(self._tables),
                        "unkeyable": False,
                    })
            pooled_set = set(pooled_idx)
        else:
            pooled_set = set()
        for i, request in enumerate(requests):
            if i not in pooled_set:
                reports[i] = self.run(request, tracer=tracer)
        return reports  # type: ignore[return-value]

    def _get_sharded(self) -> Engine:
        if self._sharded is None:
            from .sharded import ShardedEngine

            kwargs: Dict[str, Any] = {"inner": "direct"}
            if self._shards is not None:
                kwargs["shards"] = self._shards
            if self._timeout is not None:
                kwargs["timeout"] = self._timeout
            self._sharded = ShardedEngine(**kwargs)
        return self._sharded

    def service_info(self) -> Dict[str, Any]:
        """A JSON-ready snapshot for the daemon's ``/metrics`` endpoint."""
        info = dict(self.counters)
        info["bytes"] = self.total_bytes()
        info["tables"] = len(self._tables)
        info["graphs"] = len(self._graphs)
        return info

    def close(self) -> None:
        """Release the internal process pool (idempotent)."""
        if self._sharded is not None:
            self._sharded.close()
            self._sharded = None
