"""The direct backend: evaluate every computing entity, no shortcuts.

This is the reference implementation of all four request kinds — the
semantics every other backend must reproduce bit for bit.  The loops
here are the former bodies of the legacy entry points
(``run_local``, ``run_view_algorithm``, ``run_edge_view_algorithm``,
``run_node_algorithm_on_oriented_graph``), moved behind the
:class:`~repro.core.engine.Engine` seam; the legacy functions are now
thin adapters over :func:`~repro.core.engine.simulate` and keep their
exact signatures, faithfulness guarantees, and tracer event streams.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional

from ..graphs.graph import Edge, edge_key
from ..instrumentation.tracer import Tracer, effective_tracer
from ..local_model import kernels as _kernels
from ..local_model.batch_views import (
    expander_for,
    gather_edge_view_csr,
    gather_view_csr,
    resolve_layout,
)
from ..local_model.context import NodeContext
from ..local_model.views import gather_edge_view, gather_view
from .engine import Engine, SimReport, SimRequest

__all__ = ["DirectEngine"]


class DirectEngine(Engine):
    """Current semantics: one evaluation per node / edge / entity.

    ``view`` / ``edge`` requests honor the request's ``layout`` knob:
    ``"auto"`` resolves to the reference ``"dict"`` path here (the
    direct backend *is* the reference), while an explicit ``"csr"`` (or
    any registered expander layout) gathers each ball over the compiled
    CSR arrays — bit-identical views, proven by the parity suite.
    """

    name = "direct"

    #: Whether ``layout="auto"`` resolves to the batched CSR layout on
    #: frozen graphs.  The direct backend keeps the reference path; the
    #: memoizing backends override this (class detection is their cost).
    prefer_csr = False

    def run(self, request: SimRequest, tracer: Optional[Tracer] = None) -> SimReport:
        """Execute ``request`` and return its :class:`SimReport`."""
        tracer = effective_tracer(tracer)
        if request.kind == "local":
            return self._run_local(request, tracer)
        if request.kind == "view":
            return self._run_view(request, tracer)
        if request.kind == "edge":
            return self._run_edge(request, tracer)
        return self._run_finite(request, tracer)

    # -- "local": the synchronous message-passing round -----------------
    def _wants_local_kernel(self, request: SimRequest) -> bool:
        """Whether this ``local`` request should try the round kernel.

        Explicit ``layout="kernel"`` always tries (and falls back
        exactly when unsupported); ``"auto"`` escalates only on the
        ``prefer_csr`` backends, only on frozen non-empty graphs, and
        only when the algorithm registers a kernel — so the direct
        backend stays the reference loop by default.
        """
        if request.layout == "kernel":
            return True
        return (
            request.layout == "auto"
            and self.prefer_csr
            and getattr(request.graph, "is_frozen", False)
            and getattr(request.graph, "can_materialize", True)
            and request.graph.n > 0
            and _kernels.local_kernel_for(request.algorithm) is not None
        )

    def _run_local_kernel(
        self, request: SimRequest, tracer: Optional[Tracer]
    ) -> SimReport:
        """The vectorized round-kernel path (raises KernelUnsupported
        back to :meth:`_run_local` when the kernel declines)."""
        algorithm, n = request.algorithm, request.graph.n
        outputs, halt_rounds, rounds = _kernels.run_local_kernel(
            algorithm, request
        )
        if tracer is not None:
            tracer.on_run_start("local", algorithm.name, n)
            tracer.on_kernel(
                "local", algorithm.name,
                {"path": "vectorized", "reason": None,
                 "entities": n, "rounds": rounds},
            )
            tracer.on_run_end(rounds)
        return SimReport(
            kind="local",
            outputs=outputs,
            halt_rounds=halt_rounds,
            rounds=rounds,
            backend=self.name,
            info={"kernel": "vectorized"},
        )

    def _run_local(
        self, request: SimRequest, tracer: Optional[Tracer]
    ) -> SimReport:
        kernel_reason: Optional[str] = None
        if self._wants_local_kernel(request):
            try:
                return self._run_local_kernel(request, tracer)
            except _kernels.KernelUnsupported as exc:
                kernel_reason = str(exc)
        graph, algorithm = request.graph, request.algorithm
        ids, inputs = request.ids, request.inputs
        n = graph.n
        if ids is not None and len(ids) != n:
            raise ValueError("ids must have one entry per node")
        if inputs is not None and len(inputs) != n:
            raise ValueError("inputs must have one entry per node")
        max_rounds = request.max_rounds
        if max_rounds is None:
            max_rounds = 4 * n + 16
        master = request.resolved_rng()
        delta = graph.max_degree()
        orientation = request.orientation

        contexts: List[NodeContext] = []
        for v in graph.nodes():
            port_dirs = None
            if orientation is not None:
                port_dirs = {}
                for port, u in enumerate(graph.neighbors(v)):
                    if orientation.is_labeled(v, u):
                        port_dirs[port] = orientation.direction_at(v, u)
            contexts.append(
                NodeContext(
                    degree=graph.degree(v),
                    n=n,
                    delta=delta,
                    identifier=None if ids is None else ids[v],
                    input_label=None if inputs is None else inputs[v],
                    port_directions=port_dirs,
                    rng=random.Random(master.getrandbits(64)),
                    forbid_randomness=request.deterministic,
                )
            )

        if tracer is not None:
            tracer.on_run_start("local", algorithm.name, n)
            if kernel_reason is not None:
                tracer.on_kernel(
                    "local", algorithm.name,
                    {"path": "fallback", "reason": kernel_reason,
                     "entities": n},
                )

        halt_rounds: List[Optional[int]] = [None] * n
        for v in graph.nodes():
            algorithm.init(contexts[v])
            if contexts[v].halted:
                halt_rounds[v] = 0
                if tracer is not None:
                    tracer.on_halt(v, 0, contexts[v].output)

        rounds = 0
        active = [v for v in graph.nodes() if not contexts[v].halted]
        while active:
            rounds += 1
            if rounds > max_rounds:
                raise RuntimeError(
                    f"{algorithm.name}: {len(active)} nodes still running after "
                    f"{max_rounds} rounds — runaway algorithm?"
                )
            for v in active:
                contexts[v].round_number = rounds
            if tracer is not None:
                tracer.on_round_start(rounds, len(active))
            outboxes: Dict[int, Dict[int, Any]] = {}
            for v in active:
                msgs = algorithm.send(contexts[v])
                if msgs:
                    outboxes[v] = msgs
            inboxes: Dict[int, Dict[int, Any]] = {v: {} for v in active}
            for v, msgs in outboxes.items():
                for port, payload in msgs.items():
                    u = graph.endpoint(v, port)
                    delivered = not contexts[u].halted
                    if delivered:
                        inboxes[u][graph.port_to(u, v)] = payload
                    if tracer is not None:
                        tracer.on_message(v, u, port, payload, delivered)
            next_active = []
            for v in active:
                algorithm.receive(contexts[v], inboxes[v])
                if contexts[v].halted:
                    halt_rounds[v] = rounds
                    if tracer is not None:
                        tracer.on_halt(v, rounds, contexts[v].output)
                else:
                    next_active.append(v)
            active = next_active
            if tracer is not None:
                tracer.on_round_end(rounds)

        total = max((r for r in halt_rounds if r is not None), default=0)
        if tracer is not None:
            tracer.on_run_end(total)
        info: Dict[str, Any] = {}
        if kernel_reason is not None:
            info = {"kernel": "fallback", "kernel_reason": kernel_reason}
        return SimReport(
            kind="local",
            outputs=[contexts[v].output for v in graph.nodes()],
            halt_rounds=halt_rounds,
            rounds=total,
            backend=self.name,
            info=info,
        )

    # -- "view"/"edge" on layout="kernel": class table + broadcast ------
    def _run_view_kernel(
        self, request: SimRequest, tracer: Optional[Tracer]
    ) -> SimReport:
        """One partition, one vectorized class table, one broadcast.

        Shared by all backends (the kernel layout has nothing to cache
        or shard: the class table *is* the memo).  When the algorithm
        has no registered kernel — or its kernel declines — each class
        representative is evaluated the reference way instead, so the
        layout is available for every view algorithm.
        """
        graph, algorithm = request.graph, request.algorithm
        radius = algorithm.radius
        part = expander_for(graph, "kernel").node_classes(
            radius,
            ids=request.ids,
            inputs=request.inputs,
            randomness=request.randomness,
            orientation=request.orientation,
        )
        if tracer is not None:
            tracer.on_run_start("view", algorithm.name, graph.n)
            tracer.on_layout(
                self.name, "kernel",
                {"requested": request.layout, "entities": graph.n,
                 "path": part.path, "classes": part.class_count},
            )
        try:
            table = _kernels.run_view_kernel(algorithm, part)
            kinfo = {"path": "vectorized", "reason": None}
        except _kernels.KernelUnsupported as exc:
            table = []
            for rep in part.reps:
                view = gather_view(
                    graph, rep, radius,
                    ids=request.ids,
                    inputs=request.inputs,
                    randomness=request.randomness,
                    orientation=request.orientation,
                )
                if tracer is not None:
                    tracer.on_view(
                        rep, view.radius, view.node_count, len(view.edges)
                    )
                table.append(algorithm.output(view))
            kinfo = {"path": "fallback", "reason": str(exc)}
        kinfo["entities"] = graph.n
        kinfo["classes"] = part.class_count
        if tracer is not None:
            tracer.on_kernel("view", algorithm.name, kinfo)
            tracer.on_run_end(radius)
        return SimReport(
            kind="view",
            outputs=_kernels.broadcast_table(table, part.labels),
            halt_rounds=[radius] * graph.n,
            rounds=radius,
            backend=self.name,
            info={"distinct_classes": part.class_count,
                  "kernel": kinfo["path"]},
        )

    def _run_edge_kernel(
        self, request: SimRequest, tracer: Optional[Tracer]
    ) -> SimReport:
        """Edge-kind twin of :meth:`_run_view_kernel`."""
        graph, algorithm = request.graph, request.algorithm
        radius = algorithm.view_radius()
        edges = list(graph.edges())
        part = expander_for(graph, "kernel").edge_classes(
            edges, radius,
            ids=request.ids,
            inputs=request.inputs,
            randomness=request.randomness,
            orientation=request.orientation,
        )
        if tracer is not None:
            tracer.on_run_start("edge", algorithm.name, graph.m)
            tracer.on_layout(
                self.name, "kernel",
                {"requested": request.layout, "entities": graph.m,
                 "path": part.path, "classes": part.class_count},
            )
        try:
            table = _kernels.run_view_kernel(algorithm, part)
            kinfo = {"path": "vectorized", "reason": None}
        except _kernels.KernelUnsupported as exc:
            table = []
            for rep in part.reps:
                view = gather_edge_view(
                    graph, edges[rep], radius,
                    ids=request.ids,
                    inputs=request.inputs,
                    randomness=request.randomness,
                    orientation=request.orientation,
                )
                if tracer is not None:
                    tracer.on_view(
                        edges[rep], view.radius, view.node_count,
                        len(view.edges),
                    )
                table.append(algorithm.output_fn(view))
            kinfo = {"path": "fallback", "reason": str(exc)}
        kinfo["entities"] = graph.m
        kinfo["classes"] = part.class_count
        values = _kernels.broadcast_table(table, part.labels)
        outputs: Dict[Edge, Any] = {
            edge_key(u, v): value for (u, v), value in zip(edges, values)
        }
        if tracer is not None:
            tracer.on_kernel("edge", algorithm.name, kinfo)
            tracer.on_run_end(algorithm.rounds)
        return SimReport(
            kind="edge",
            outputs=outputs,
            rounds=algorithm.rounds,
            backend=self.name,
            info={"distinct_classes": part.class_count,
                  "kernel": kinfo["path"]},
        )

    # -- "view": every node's radius-T ball, evaluated ------------------
    def _run_view(
        self, request: SimRequest, tracer: Optional[Tracer]
    ) -> SimReport:
        graph, algorithm = request.graph, request.algorithm
        layout = resolve_layout(request.layout, graph, self.prefer_csr)
        if layout == "kernel":
            return self._run_view_kernel(request, tracer)
        # Implicit handles duck-type the dict Graph API (closed-form
        # rows); the CSR gather would force a guarded full synthesis.
        gather = gather_view if layout in ("dict", "implicit") else gather_view_csr
        if tracer is not None:
            tracer.on_run_start("view", algorithm.name, graph.n)
            tracer.on_layout(
                self.name, layout,
                {"requested": request.layout, "entities": graph.n},
            )
        outputs = []
        for v in graph.nodes():
            view = gather(
                graph,
                v,
                algorithm.radius,
                ids=request.ids,
                inputs=request.inputs,
                randomness=request.randomness,
                orientation=request.orientation,
            )
            if tracer is not None:
                tracer.on_view(v, view.radius, view.node_count, len(view.edges))
            outputs.append(algorithm.output(view))
        t = algorithm.radius
        if tracer is not None:
            tracer.on_run_end(t)
        return SimReport(
            kind="view",
            outputs=outputs,
            halt_rounds=[t] * graph.n,
            rounds=t,
            backend=self.name,
        )

    # -- "edge": Section 5's edge-centric model -------------------------
    def _run_edge(
        self, request: SimRequest, tracer: Optional[Tracer]
    ) -> SimReport:
        graph, algorithm = request.graph, request.algorithm
        layout = resolve_layout(request.layout, graph, self.prefer_csr)
        if layout == "kernel":
            return self._run_edge_kernel(request, tracer)
        gather_edge = (
            gather_edge_view
            if layout in ("dict", "implicit")
            else gather_edge_view_csr
        )
        if tracer is not None:
            tracer.on_run_start("edge", algorithm.name, graph.m)
            tracer.on_layout(
                self.name, layout,
                {"requested": request.layout, "entities": graph.m},
            )
        outputs: Dict[Edge, Any] = {}
        radius = algorithm.view_radius()
        for u, v in graph.edges():
            view = gather_edge(
                graph,
                (u, v),
                radius,
                ids=request.ids,
                inputs=request.inputs,
                randomness=request.randomness,
                orientation=request.orientation,
            )
            if tracer is not None:
                tracer.on_view((u, v), view.radius, view.node_count, len(view.edges))
            outputs[edge_key(u, v)] = algorithm.output_fn(view)
        if tracer is not None:
            tracer.on_run_end(algorithm.rounds)
        return SimReport(
            kind="edge",
            outputs=outputs,
            rounds=algorithm.rounds,
            backend=self.name,
        )

    # -- "finite": oriented-tree algorithms on finite graphs ------------
    def _wants_finite_kernel(self, request: SimRequest) -> bool:
        """Whether this ``finite`` request should try the batched kernel.

        Same policy as :meth:`_wants_local_kernel`: explicit
        ``layout="kernel"`` always tries, ``"auto"`` escalates only on
        the ``prefer_csr`` backends when a kernel is registered — the
        direct backend stays the reference per-node loop by default.
        (No frozen-graph requirement: the finite reduction builds its
        arc arrays from the neighbor lists.)
        """
        if request.layout == "kernel":
            return True
        return (
            request.layout == "auto"
            and self.prefer_csr
            and request.graph.n > 0
            and _kernels.finite_kernel_for(request.algorithm) is not None
        )

    def _run_finite_kernel(
        self, request: SimRequest, tables, tracer: Optional[Tracer]
    ) -> SimReport:
        """The distinct-assignment kernel path (raises KernelUnsupported
        back to :meth:`_run_finite` when the kernel declines)."""
        graph, alg = request.graph, request.algorithm
        fn = _kernels.finite_kernel_for(alg)
        if fn is None:
            raise _kernels.KernelUnsupported("no-kernel")
        before = alg.cache.stats.copy() if tracer is not None else None
        outputs, failing = fn(alg, graph, request.values, tables)
        outputs, failing = list(outputs), list(failing)
        if len(outputs) != graph.n:
            raise RuntimeError(
                f"finite kernel for {type(alg).__name__} returned "
                f"{len(outputs)} outputs for {graph.n} nodes"
            )
        if tracer is not None:
            tracer.on_run_start("finite", alg.name, graph.n)
            ball_size = len(alg.ball.words)
            for v in graph.nodes():
                tracer.on_view(v, alg.t, ball_size, max(0, ball_size - 1))
            tracer.on_kernel(
                "finite", alg.name,
                {"path": "vectorized", "reason": None, "entities": graph.n},
            )
            tracer.on_cache("finite", alg.cache.stats.delta(before).to_dict())
            tracer.on_run_end(alg.t)
        return SimReport(
            kind="finite",
            outputs=outputs,
            rounds=alg.t,
            failing_nodes=failing,
            backend=self.name,
            info={"kernel": "vectorized"},
        )

    def _run_finite(
        self, request: SimRequest, tracer: Optional[Tracer]
    ) -> SimReport:
        # Lazy import: repro.speedup imports the core seam at module
        # scope, so the reverse edge must resolve at call time.
        from ..local_model.cache import ball_assignment_key
        from ..speedup.finite_runner import resolve_ball_tables

        graph, alg = request.graph, request.algorithm
        values, tables = request.values, request.tables
        if values is None:
            raise ValueError("finite requests need per-node random values")
        if len(values) != graph.n:
            raise ValueError("need one random value per node")
        if any(not 0 <= x < alg.values for x in values):
            raise ValueError(f"values must lie in [0, {alg.values})")
        if tables is None:
            tables = resolve_ball_tables(alg, graph, request.orientation)

        kernel_reason: Optional[str] = None
        if self._wants_finite_kernel(request):
            try:
                return self._run_finite_kernel(request, tables, tracer)
            except _kernels.KernelUnsupported as exc:
                kernel_reason = str(exc)

        if tracer is not None:
            tracer.on_run_start("finite", alg.name, graph.n)
            if kernel_reason is not None:
                tracer.on_kernel(
                    "finite", alg.name,
                    {"path": "fallback", "reason": kernel_reason,
                     "entities": graph.n},
                )
            ball_size = len(alg.ball.words)
            for v in graph.nodes():
                tracer.on_view(v, alg.t, ball_size, max(0, ball_size - 1))
        before = alg.cache.stats.copy() if tracer is not None else None
        outputs: List[Any] = [
            alg.evaluate(ball_assignment_key(values, tables[v]))
            for v in graph.nodes()
        ]
        failing = [
            v
            for v in graph.nodes()
            if graph.degree(v) > 0
            and all(outputs[u] == outputs[v] for u in graph.neighbors(v))
        ]
        if tracer is not None:
            # The algorithm's assignment cache outlives the run; report
            # only the lookups this run contributed.
            tracer.on_cache("finite", alg.cache.stats.delta(before).to_dict())
            tracer.on_run_end(alg.t)
        info: Dict[str, Any] = {}
        if kernel_reason is not None:
            info = {"kernel": "fallback", "kernel_reason": kernel_reason}
        return SimReport(
            kind="finite",
            outputs=outputs,
            rounds=alg.t,
            failing_nodes=failing,
            backend=self.name,
            info=info,
        )
