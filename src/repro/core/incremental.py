"""The incremental backend: re-run only a delta's radius-t footprint.

:class:`IncrementalEngine` is the stateful companion to the other
backends: :meth:`IncrementalEngine.run` primes it on one
:class:`~repro.core.engine.SimRequest` (partitioning every entity into
canonical view classes and memoizing one output per class, exactly as
the cached backend does), and :meth:`IncrementalEngine.apply` then
accepts :class:`~repro.graphs.delta.GraphDelta` batches and produces
the report for the *mutated* graph by recomputing only the delta's
dirty footprint:

1.  :meth:`GraphDelta.footprint <repro.graphs.delta.GraphDelta.
    footprint>` bounds the nodes whose radius-t view can change — the
    paper's locality argument made operational (cost proportional to
    the footprint, not n).
2.  The batched expander partitions just those nodes
    (``sources=`` subset pass); subset keys live in the same key space
    as full-run keys, so every class already seen keeps its memoized
    output across mutations and only genuinely new classes are
    evaluated.
3.  The previous run's outputs are spliced: untouched entities keep
    their values, dirty entities take their (possibly memoized) class
    output, and the report's ``changed_nodes`` field lists the nodes
    whose class actually changed.

The correctness contract is absolute bit-identity with a fresh
:class:`~repro.core.direct.DirectEngine` run on the mutated graph —
proven by the delta-differential harness (``tests/differential.py``),
the conformance ``delta-identity`` check, and the hypothesis suite
(``tests/test_incremental_properties.py``).  Requests the subset pass
cannot serve (``local`` / ``finite`` kinds, oriented runs, empty
graphs) fall back to *recompute mode*: every ``apply`` re-runs the
direct backend on the mutated graph, so the contract holds everywhere
even where the footprint optimization does not apply.

See ``docs/INCREMENTAL.md`` for the delta model and the footprint
argument.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..graphs.delta import GraphDelta, GraphDeltaError
from ..graphs.graph import Edge, edge_key
from ..instrumentation.tracer import Tracer, effective_tracer
from ..local_model.batch_views import expander_for
from ..local_model.views import gather_edge_view, gather_view
from .direct import DirectEngine
from .engine import Engine, SimReport, SimRequest

__all__ = ["IncrementalEngine"]


class _State:
    """The engine's mutable snapshot of the last materialized run."""

    __slots__ = (
        "mode",
        "request",
        "graph",
        "radius",
        "ids",
        "inputs",
        "randomness",
        "memo",
        "node_keys",
        "edge_keys",
        "outputs",
    )

    def __init__(self, mode: str, request: SimRequest, graph: Any):
        self.mode = mode  # "view" | "edge" | "recompute"
        self.request = request
        self.graph = graph
        self.radius = 0
        self.ids = list(request.ids) if request.ids is not None else None
        self.inputs = list(request.inputs) if request.inputs is not None else None
        self.randomness = (
            list(request.randomness) if request.randomness is not None else None
        )
        self.memo: Dict[Any, Any] = {}
        self.node_keys: List[Any] = []
        self.edge_keys: Dict[Edge, Any] = {}
        self.outputs: Any = None


class IncrementalEngine(Engine):
    """Stateful backend answering deltas in footprint time.

    Lifecycle: :meth:`run` primes the engine on a request (any kind —
    it behaves as a normal backend and its report is bit-identical to
    the direct backend's), then :meth:`apply` advances the primed state
    through :class:`~repro.graphs.delta.GraphDelta` batches, returning
    after each one the exact report a fresh direct run on the mutated
    graph would produce, plus ``changed_nodes``.

    One engine tracks one evolving run: priming again replaces the
    state.  Like the cached backend, the class memo is keyed by
    canonical signatures only — keep one engine per algorithm.
    """

    name = "incremental"

    def __init__(self) -> None:
        self._direct = DirectEngine()
        self._state: Optional[_State] = None

    # ------------------------------------------------------------------
    # Priming
    # ------------------------------------------------------------------
    def run(
        self, request: SimRequest, tracer: Optional[Tracer] = None
    ) -> SimReport:
        """Execute ``request`` and prime the incremental state on it."""
        tracer = effective_tracer(tracer)
        incremental_ok = (
            request.kind in ("view", "edge")
            and getattr(request.graph, "is_frozen", False)
            and request.orientation is None
            and request.graph.n > 0
        )
        if not incremental_ok:
            state = _State("recompute", request, request.graph)
            report = self._rewrap(self._direct.run(request, tracer))
            state.outputs = report.outputs
            self._state = state
            return report
        if request.kind == "view":
            report, state = self._prime_view(request, tracer)
        else:
            report, state = self._prime_edge(request, tracer)
        self._state = state
        return report

    def _rewrap(self, report: SimReport) -> SimReport:
        """A direct-backend report re-badged as this engine's (identity-preserving)."""
        return replace(report, backend=self.name, info=dict(report.info))

    def _prime_view(
        self, request: SimRequest, tracer: Optional[Tracer]
    ) -> Tuple[SimReport, _State]:
        graph, algorithm = request.graph, request.algorithm
        state = _State("view", request, graph)
        state.radius = radius = algorithm.radius
        if tracer is not None:
            tracer.on_run_start("view", algorithm.name, graph.n)
        part = expander_for(graph, "csr").node_classes(
            radius, ids=state.ids, inputs=state.inputs, randomness=state.randomness
        )
        if tracer is not None:
            tracer.on_layout(
                self.name, "csr",
                {
                    "requested": request.layout,
                    "entities": graph.n,
                    "path": part.path,
                    "classes": part.class_count,
                },
            )
        memo = state.memo
        for c, key in enumerate(part.keys):
            view = gather_view(
                graph, part.reps[c], radius,
                ids=state.ids, inputs=state.inputs, randomness=state.randomness,
            )
            if tracer is not None:
                tracer.on_view(
                    part.reps[c], view.radius, view.node_count, len(view.edges)
                )
            memo[key] = algorithm.output(view)
        keys = part.keys
        state.node_keys = [keys[c] for c in part.labels]
        state.outputs = [memo[k] for k in state.node_keys]
        if tracer is not None:
            tracer.on_run_end(radius)
        report = SimReport(
            kind="view",
            outputs=state.outputs,
            halt_rounds=[radius] * graph.n,
            rounds=radius,
            backend=self.name,
            info={"distinct_classes": len(memo)},
        )
        return report, state

    def _prime_edge(
        self, request: SimRequest, tracer: Optional[Tracer]
    ) -> Tuple[SimReport, _State]:
        graph, algorithm = request.graph, request.algorithm
        state = _State("edge", request, graph)
        state.radius = radius = algorithm.view_radius()
        if tracer is not None:
            tracer.on_run_start("edge", algorithm.name, graph.m)
        edges = list(graph.edges())
        part = expander_for(graph, "csr").edge_classes(
            edges, radius,
            ids=state.ids, inputs=state.inputs, randomness=state.randomness,
        )
        if tracer is not None:
            tracer.on_layout(
                self.name, "csr",
                {
                    "requested": request.layout,
                    "entities": graph.m,
                    "path": part.path,
                    "classes": part.class_count,
                },
            )
        memo = state.memo
        for c, key in enumerate(part.keys):
            view = gather_edge_view(
                graph, edges[part.reps[c]], radius,
                ids=state.ids, inputs=state.inputs, randomness=state.randomness,
            )
            if tracer is not None:
                tracer.on_view(
                    edges[part.reps[c]], view.radius, view.node_count,
                    len(view.edges),
                )
            memo[key] = algorithm.output_fn(view)
        keys = part.keys
        state.edge_keys = {e: keys[part.labels[i]] for i, e in enumerate(edges)}
        state.outputs = {e: memo[k] for e, k in state.edge_keys.items()}
        if tracer is not None:
            tracer.on_run_end(algorithm.rounds)
        report = SimReport(
            kind="edge",
            outputs=state.outputs,
            rounds=algorithm.rounds,
            backend=self.name,
            info={"distinct_classes": len(memo)},
        )
        return report, state

    # ------------------------------------------------------------------
    # Introspection (read-only; the tests and docs examples use these)
    # ------------------------------------------------------------------
    @property
    def current_graph(self) -> Optional[Any]:
        """The graph of the engine's current state (``None`` if unprimed)."""
        return self._state.graph if self._state is not None else None

    def current_node_keys(self) -> Optional[Tuple[Any, ...]]:
        """Per-node canonical class keys of the current state.

        Only meaningful in view mode (``None`` otherwise).  Equal keys
        <=> equal view classes; the property suite compares this
        partition against from-scratch reference signatures.
        """
        if self._state is None or self._state.mode != "view":
            return None
        return tuple(self._state.node_keys)

    # ------------------------------------------------------------------
    # Deltas
    # ------------------------------------------------------------------
    def apply(
        self,
        delta: Union[GraphDelta, Sequence[GraphDelta]],
        tracer: Optional[Tracer] = None,
    ) -> SimReport:
        """Advance the primed run through one delta (or a sequence).

        Each delta must be built against the engine's *current* graph
        (the object identity check in :meth:`GraphDelta.apply_to
        <repro.graphs.delta.GraphDelta.apply_to>` raises
        :class:`~repro.graphs.delta.GraphDeltaError` on stale handles).
        Returns the report for the final mutated graph — bit-identical
        to a fresh direct run — with ``changed_nodes`` listing the
        nodes whose view class changed under the last delta (a
        conservative superset when the packed-stream element width
        shifts between runs; never an underestimate).
        """
        if self._state is None:
            raise GraphDeltaError(
                "apply() requires a primed engine; call run() first"
            )
        deltas = [delta] if isinstance(delta, GraphDelta) else list(delta)
        if not deltas:
            raise GraphDeltaError("apply() needs at least one delta")
        tracer = effective_tracer(tracer)
        report: Optional[SimReport] = None
        for d in deltas:
            if not isinstance(d, GraphDelta):
                raise GraphDeltaError(
                    f"apply() takes GraphDelta instances, got {type(d).__name__}"
                )
            report = self._apply_one(d, tracer)
        assert report is not None
        return report

    def _dirty_nodes(self, delta: GraphDelta, radius: int) -> List[int]:
        """The delta's dirty node set (override point for broken fixtures)."""
        return delta.footprint(radius)

    def _apply_one(
        self, delta: GraphDelta, tracer: Optional[Tracer]
    ) -> SimReport:
        state = self._state
        assert state is not None
        graph = delta.apply_to(state.graph)
        ids, inputs, randomness = delta.apply_to_labels(
            state.ids, state.inputs, state.randomness
        )
        if state.mode == "recompute":
            report = self._apply_recompute(
                state, delta, graph, ids, inputs, randomness, tracer
            )
        elif state.mode == "view":
            report = self._apply_view(
                state, delta, graph, ids, inputs, randomness, tracer
            )
        else:
            report = self._apply_edge(
                state, delta, graph, ids, inputs, randomness, tracer
            )
        state.graph = graph
        state.ids, state.inputs, state.randomness = ids, inputs, randomness
        state.outputs = report.outputs
        return report

    def _apply_view(
        self,
        state: _State,
        delta: GraphDelta,
        graph: Any,
        ids: Optional[List[int]],
        inputs: Optional[List[Any]],
        randomness: Optional[List[Any]],
        tracer: Optional[Tracer],
    ) -> SimReport:
        radius = state.radius
        algorithm = state.request.algorithm
        dirty = self._dirty_nodes(delta, radius)
        part = expander_for(graph, "csr").node_classes(
            radius, ids=ids, inputs=inputs, randomness=randomness, sources=dirty
        )
        memo = state.memo
        survivors = invalidated = 0
        for c, key in enumerate(part.keys):
            if key in memo:
                survivors += 1
                continue
            invalidated += 1
            rep = dirty[part.reps[c]]
            view = gather_view(
                graph, rep, radius,
                ids=ids, inputs=inputs, randomness=randomness,
            )
            if tracer is not None:
                tracer.on_view(rep, view.radius, view.node_count, len(view.edges))
            memo[key] = algorithm.output(view)
        outputs = list(state.outputs)
        node_keys = list(state.node_keys)
        keys = part.keys
        changed: List[int] = []
        for i, v in enumerate(dirty):
            key = keys[part.labels[i]]
            if key != node_keys[v]:
                changed.append(v)
                node_keys[v] = key
                outputs[v] = memo[key]
        state.node_keys = node_keys
        if tracer is not None:
            tracer.on_delta(
                self.name,
                {
                    "ops": len(delta.ops),
                    "footprint": len(dirty),
                    "classes_invalidated": invalidated,
                    "cache_survivors": survivors,
                    "changed_nodes": len(changed),
                    "csr_mode": delta.csr_mode,
                },
            )
        return SimReport(
            kind="view",
            outputs=outputs,
            halt_rounds=[radius] * graph.n,
            rounds=radius,
            backend=self.name,
            changed_nodes=changed,
            info={
                "distinct_classes": len(memo),
                "footprint": len(dirty),
                "csr_mode": delta.csr_mode,
            },
        )

    def _apply_edge(
        self,
        state: _State,
        delta: GraphDelta,
        graph: Any,
        ids: Optional[List[int]],
        inputs: Optional[List[Any]],
        randomness: Optional[List[Any]],
        tracer: Optional[Tracer],
    ) -> SimReport:
        radius = state.radius
        algorithm = state.request.algorithm
        fp = set(self._dirty_nodes(delta, radius))
        rows = graph.adjacency_rows()
        dirty_edges = sorted(
            {edge_key(v, u) for v in fp for u in rows[v]}
        )
        part = expander_for(graph, "csr").edge_classes(
            dirty_edges, radius,
            ids=ids, inputs=inputs, randomness=randomness,
        )
        memo = state.memo
        survivors = invalidated = 0
        for c, key in enumerate(part.keys):
            if key in memo:
                survivors += 1
                continue
            invalidated += 1
            rep = dirty_edges[part.reps[c]]
            view = gather_edge_view(
                graph, rep, radius,
                ids=ids, inputs=inputs, randomness=randomness,
            )
            if tracer is not None:
                tracer.on_view(rep, view.radius, view.node_count, len(view.edges))
            memo[key] = algorithm.output_fn(view)
        outputs = dict(state.outputs)
        edge_keys = dict(state.edge_keys)
        for op in delta.ops:
            if op[0] == "remove":
                key = edge_key(op[1], op[2])
                if not graph.has_edge(*key):
                    outputs.pop(key, None)
                    edge_keys.pop(key, None)
        keys = part.keys
        changed_edges: List[Edge] = []
        for i, e in enumerate(dirty_edges):
            key = keys[part.labels[i]]
            if edge_keys.get(e) != key:
                changed_edges.append(e)
            edge_keys[e] = key
            outputs[e] = memo[key]
        state.edge_keys = edge_keys
        changed = sorted({v for e in changed_edges for v in e})
        if tracer is not None:
            tracer.on_delta(
                self.name,
                {
                    "ops": len(delta.ops),
                    "footprint": len(fp),
                    "classes_invalidated": invalidated,
                    "cache_survivors": survivors,
                    "changed_nodes": len(changed),
                    "csr_mode": delta.csr_mode,
                },
            )
        return SimReport(
            kind="edge",
            outputs=outputs,
            rounds=algorithm.rounds,
            backend=self.name,
            changed_nodes=changed,
            info={
                "distinct_classes": len(memo),
                "footprint": len(fp),
                "csr_mode": delta.csr_mode,
            },
        )

    def _apply_recompute(
        self,
        state: _State,
        delta: GraphDelta,
        graph: Any,
        ids: Optional[List[int]],
        inputs: Optional[List[Any]],
        randomness: Optional[List[Any]],
        tracer: Optional[Tracer],
    ) -> SimReport:
        request = state.request
        if request.kind == "local" and request.rng is not None:
            raise GraphDeltaError(
                "apply() on a local-kind run requires seed-based randomness "
                "(an explicit rng object is stateful and cannot be replayed "
                "on the mutated graph); build the request with seed= instead"
            )
        new_request = replace(
            request, graph=graph, ids=ids, inputs=inputs, randomness=randomness
        )
        state.request = new_request
        report = self._rewrap(self._direct.run(new_request, tracer))
        changed = self._diff_outputs(state.outputs, report.outputs)
        if tracer is not None:
            tracer.on_delta(
                self.name,
                {
                    "ops": len(delta.ops),
                    "footprint": graph.n,
                    "classes_invalidated": 0,
                    "cache_survivors": 0,
                    "changed_nodes": len(changed),
                    "csr_mode": delta.csr_mode,
                },
            )
        report.changed_nodes = changed
        report.info["csr_mode"] = delta.csr_mode
        return report

    @staticmethod
    def _diff_outputs(old: Any, new: Any) -> List[int]:
        """Changed nodes between two output collections (recompute mode)."""
        if isinstance(new, dict):
            old = old if isinstance(old, dict) else {}
            touched_edges = (
                set(old) - set(new)
                | {e for e in new if e not in old or old[e] != new[e]}
            )
            return sorted({v for e in touched_edges for v in e})
        old_list = old if isinstance(old, list) else []
        return [
            v for v in range(len(new))
            if v >= len(old_list) or old_list[v] != new[v]
        ]
