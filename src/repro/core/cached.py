"""The cached backend: one evaluation per canonical view class.

Wraps PR 2's canonical-view memoization
(:mod:`repro.local_model.cache`) behind the engine seam: ``view`` and
``edge`` requests key every ball by its canonical signature
(:func:`~repro.local_model.views.view_signature` /
:func:`~repro.local_model.views.edge_view_signature`), evaluate the
algorithm once per distinct class, and broadcast the output — exactly
the semantics of ``run_view_algorithm_cached`` /
``run_edge_view_algorithm_cached``, which are now adapters over this
class.

``local`` requests pass through to the direct loop (a synchronous
message-passing round has no view classes to collapse), and ``finite``
requests are already memoized by the algorithm's own assignment cache
(:class:`~repro.speedup.algorithms.NodeAlgorithm`), so both fall back
to :class:`~repro.core.direct.DirectEngine` semantics unchanged.

The exactness contract (cached == direct, bit for bit) rides on the
signature being a perfect canonical key; see
``docs/PERFORMANCE.md`` and ``tests/test_view_cache_properties.py``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..graphs.graph import Edge, edge_key
from ..instrumentation.tracer import Tracer, effective_tracer
from ..local_model.batch_views import expander_for, resolve_layout
from ..local_model.cache import KeyedCache, ViewCache
from ..local_model.views import (
    edge_view_signature,
    gather_edge_view,
    gather_view,
    view_signature,
)
from .direct import DirectEngine
from .engine import SimReport, SimRequest

__all__ = ["CachedEngine"]

_MISS = KeyedCache.MISS


class CachedEngine(DirectEngine):
    """Memoizing backend over a :class:`~repro.local_model.cache.ViewCache`.

    Parameters
    ----------
    cache:
        The memo table to use (and keep) across runs; ``None`` creates
        a private one at construction.  The algorithm identity is not
        part of the cache key — use one engine (or one cache) per
        algorithm, exactly as with :class:`ViewCache` itself.

    Notes
    -----
    On ``layout="auto"`` requests over frozen graphs, keys come from
    the batched CSR expander (one vectorized pass instead of n
    per-entity signature walks); the lookup pattern — one cache lookup
    per entity, one miss per distinct class — is unchanged, so hit
    rates and class counts match the reference ``"dict"`` layout
    exactly.  The two layouts use disjoint (both perfect) key spaces,
    so a cache shared across layouts stays correct but re-evaluates
    each class once per key space — keep one layout per cache when the
    cross-run reuse matters.
    """

    name = "cached"
    prefer_csr = True

    def __init__(self, cache: Optional[ViewCache] = None):
        self.cache = cache if cache is not None else ViewCache()

    def _run_view(
        self, request: SimRequest, tracer: Optional[Tracer]
    ) -> SimReport:
        graph, algorithm, cache = request.graph, request.algorithm, self.cache
        tracer = effective_tracer(tracer)
        radius = algorithm.radius
        layout = resolve_layout(request.layout, graph, self.prefer_csr)
        if layout == "kernel":
            # The class table is its own memo — nothing to cache.
            return self._run_view_kernel(request, tracer)
        if tracer is not None:
            tracer.on_run_start("view", algorithm.name, graph.n)
        before = cache.stats.copy() if tracer is not None else None
        outputs: List[Any] = []
        append = outputs.append
        get, store, output = cache.get, cache.store, algorithm.output
        ids, inputs = request.ids, request.inputs
        randomness, orientation = request.randomness, request.orientation
        if layout == "dict":
            if tracer is not None:
                tracer.on_layout(
                    self.name, layout,
                    {"requested": request.layout, "entities": graph.n},
                )
            node_keys = (
                (v, view_signature(
                    graph, v, radius,
                    ids=ids, inputs=inputs, randomness=randomness,
                    orientation=orientation,
                ))
                for v in graph.nodes()
            )
        else:
            part = expander_for(graph, layout).node_classes(
                radius, ids=ids, inputs=inputs, randomness=randomness,
                orientation=orientation,
            )
            if tracer is not None:
                tracer.on_layout(
                    self.name, layout,
                    {
                        "requested": request.layout,
                        "entities": graph.n,
                        "path": part.path,
                        "classes": part.class_count,
                    },
                )
            class_keys = part.keys
            node_keys = (
                (v, class_keys[c]) for v, c in enumerate(part.labels)
            )
        for v, key in node_keys:
            out = get(key)
            if out is _MISS:
                view = gather_view(
                    graph, v, radius,
                    ids=ids, inputs=inputs, randomness=randomness,
                    orientation=orientation,
                )
                if tracer is not None:
                    tracer.on_view(v, view.radius, view.node_count, len(view.edges))
                out = store(key, output(view))
            append(out)
        if tracer is not None:
            tracer.on_cache("view", cache.stats.delta(before).to_dict())
            tracer.on_run_end(radius)
        return SimReport(
            kind="view",
            outputs=outputs,
            halt_rounds=[radius] * graph.n,
            rounds=radius,
            backend=self.name,
            info={"distinct_classes": len(cache)},
        )

    def _run_edge(
        self, request: SimRequest, tracer: Optional[Tracer]
    ) -> SimReport:
        graph, algorithm, cache = request.graph, request.algorithm, self.cache
        tracer = effective_tracer(tracer)
        radius = algorithm.view_radius()
        layout = resolve_layout(request.layout, graph, self.prefer_csr)
        if layout == "kernel":
            return self._run_edge_kernel(request, tracer)
        if tracer is not None:
            tracer.on_run_start("edge", algorithm.name, graph.m)
        before = cache.stats.copy() if tracer is not None else None
        outputs: Dict[Edge, Any] = {}
        get, store, output_fn = cache.get, cache.store, algorithm.output_fn
        ids, inputs = request.ids, request.inputs
        randomness, orientation = request.randomness, request.orientation
        edges = list(graph.edges())
        if layout == "dict":
            if tracer is not None:
                tracer.on_layout(
                    self.name, layout,
                    {"requested": request.layout, "entities": graph.m},
                )
            edge_keys = (
                (edge, edge_view_signature(
                    graph, edge, radius,
                    ids=ids, inputs=inputs, randomness=randomness,
                    orientation=orientation,
                ))
                for edge in edges
            )
        else:
            part = expander_for(graph, layout).edge_classes(
                edges, radius,
                ids=ids, inputs=inputs, randomness=randomness,
                orientation=orientation,
            )
            if tracer is not None:
                tracer.on_layout(
                    self.name, layout,
                    {
                        "requested": request.layout,
                        "entities": graph.m,
                        "path": part.path,
                        "classes": part.class_count,
                    },
                )
            class_keys = part.keys
            edge_keys = (
                (edges[i], class_keys[c])
                for i, c in enumerate(part.labels)
            )
        for (u, v), key in edge_keys:
            out = get(key)
            if out is _MISS:
                view = gather_edge_view(
                    graph, (u, v), radius,
                    ids=ids, inputs=inputs, randomness=randomness,
                    orientation=orientation,
                )
                if tracer is not None:
                    tracer.on_view(
                        (u, v), view.radius, view.node_count, len(view.edges)
                    )
                out = store(key, output_fn(view))
            outputs[edge_key(u, v)] = out
        if tracer is not None:
            tracer.on_cache("edge", cache.stats.delta(before).to_dict())
            tracer.on_run_end(algorithm.rounds)
        return SimReport(
            kind="edge",
            outputs=outputs,
            rounds=algorithm.rounds,
            backend=self.name,
            info={"distinct_classes": len(cache)},
        )
