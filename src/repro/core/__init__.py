"""The unified simulation core: one Engine seam, one component Registry.

Two seams that the rest of the repository plugs into:

* :func:`simulate` / :func:`simulate_many` run a :class:`SimRequest` on
  an interchangeable backend — :class:`DirectEngine` (reference
  semantics), :class:`CachedEngine` (canonical-view memoization),
  :class:`ShardedEngine` (view-class dedup + process fan-out), or
  :class:`IncrementalEngine` (prime once, then ``apply(GraphDelta)``
  re-evaluates only the mutation's radius-t footprint) — and return a
  :class:`SimReport`.  All backends are bit-identical on
  :meth:`SimReport.identity`; choice is a pure performance knob.
* :class:`Registry` tables (:data:`GRAPH_FAMILIES`, :data:`ALGORITHMS`,
  :data:`PROBLEMS`, :data:`REPORTS`) map names to factories with
  declarative metadata, replacing per-layer string dispatch.

See ``docs/ARCHITECTURE.md`` for the layer diagram and
``docs/ENGINE.md`` for the backend matrix.
"""

from .engine import (
    ENGINE_NAMES,
    KINDS,
    Engine,
    SimReport,
    SimRequest,
    derive_seed,
    resolve_engine,
    simulate,
    simulate_many,
)
from .direct import DirectEngine
from .cached import CachedEngine
from .sharded import ShardedEngine
from .incremental import IncrementalEngine
from .service import ServiceEngine
from .registry import (
    ALGORITHMS,
    GRAPH_FAMILIES,
    PROBLEMS,
    REPORTS,
    Registry,
    RegistryEntry,
    RegistryError,
    build_graph,
    ensure_builtins,
    register_algorithm,
    register_graph_family,
    register_problem,
    register_report,
)

__all__ = [
    # engine seam
    "KINDS",
    "ENGINE_NAMES",
    "SimRequest",
    "SimReport",
    "Engine",
    "DirectEngine",
    "CachedEngine",
    "ShardedEngine",
    "IncrementalEngine",
    "ServiceEngine",
    "derive_seed",
    "resolve_engine",
    "simulate",
    "simulate_many",
    # registry seam
    "Registry",
    "RegistryEntry",
    "RegistryError",
    "GRAPH_FAMILIES",
    "ALGORITHMS",
    "PROBLEMS",
    "REPORTS",
    "register_graph_family",
    "register_algorithm",
    "register_problem",
    "register_report",
    "ensure_builtins",
    "build_graph",
]
