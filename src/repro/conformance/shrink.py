"""Delta-debugging shrinker: reduce a failing case to a minimal one.

Classic ddmin over the graph's nodes, then greedy single-edge removal,
driven by a predicate that re-runs *only the originally failing
checks*.  Two properties make shrinking converge instead of chasing
its own tail:

* the case is made **explicit** first (adjacency, ids, randomness all
  pinned — :func:`~repro.conformance.fuzzer.explicit_case`), and every
  reduction *projects* the existing labels onto the survivors rather
  than re-deriving them, so a shrink step changes exactly the graph;
* projection preserves port order (each adjacency row keeps its
  original order restricted to surviving neighbors), the same
  guarantee :meth:`~repro.graphs.graph.Graph.induced_subgraph`
  documents.

An evaluation budget bounds the whole search; the best case found so
far is always returned, minimal or not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from .contracts import Contract
from .fuzzer import BACKENDS, CaseSpec, CheckFailure, explicit_case, run_case

__all__ = ["ShrinkResult", "shrink_case", "minimal_repro"]


@dataclass
class ShrinkResult:
    """The reduced case, the failures it still exhibits, and the cost."""

    case: CaseSpec
    failures: List[CheckFailure]
    nodes: int
    edges: int
    evaluations: int

    def summary(self) -> str:
        return (
            f"{self.case.algorithm}: shrunk to {self.nodes} nodes / "
            f"{self.edges} edges in {self.evaluations} evaluations"
        )


def _project_nodes(case: CaseSpec, keep: Iterable[int]) -> CaseSpec:
    """The sub-case induced by ``keep``, labels projected, ports kept."""
    survivors = sorted(set(keep))
    mapping = {old: new for new, old in enumerate(survivors)}
    adjacency = [
        [mapping[u] for u in case.adjacency[old] if u in mapping]
        for old in survivors
    ]
    return CaseSpec(
        algorithm=case.algorithm,
        seed=case.seed,
        graph_family=case.graph_family,
        graph_params=dict(case.graph_params),
        algorithm_params=dict(case.algorithm_params),
        adjacency=adjacency,
        ids=[case.ids[old] for old in survivors] if case.ids else None,
        randomness=(
            [case.randomness[old] for old in survivors]
            if case.randomness
            else None
        ),
    )


def _drop_edge(case: CaseSpec, u: int, v: int) -> CaseSpec:
    """The case with edge ``{u, v}`` removed (ports otherwise kept)."""
    adjacency = [list(row) for row in case.adjacency]
    adjacency[u] = [w for w in adjacency[u] if w != v]
    adjacency[v] = [w for w in adjacency[v] if w != u]
    return CaseSpec(
        algorithm=case.algorithm,
        seed=case.seed,
        graph_family=case.graph_family,
        graph_params=dict(case.graph_params),
        algorithm_params=dict(case.algorithm_params),
        adjacency=adjacency,
        ids=list(case.ids) if case.ids else None,
        randomness=list(case.randomness) if case.randomness else None,
    )


def _edges_of(case: CaseSpec) -> List[Tuple[int, int]]:
    return [
        (v, u)
        for v, row in enumerate(case.adjacency)
        for u in row
        if v < u
    ]


def shrink_case(
    contract: Contract,
    case: CaseSpec,
    target_checks: Set[str],
    max_evaluations: int = 400,
) -> ShrinkResult:
    """Reduce ``case`` while at least one ``target_checks`` still fails.

    ``target_checks`` should be the failing case's
    :meth:`~repro.conformance.fuzzer.CaseResult.failed_checks`.  Checks
    that only need one backend shrink against ``direct`` alone;
    ``backend-identity`` (and ``determinism``) keep their full backend
    set so the predicate tests what originally broke.
    """
    needs_all_backends = bool(target_checks & {"backend-identity"})
    backends: Sequence[str] = BACKENDS if needs_all_backends else ("direct",)
    spent = [0]
    last_failures: List[List[CheckFailure]] = [[]]

    def still_fails(candidate: CaseSpec) -> bool:
        if spent[0] >= max_evaluations:
            return False
        spent[0] += 1
        result = run_case(
            contract, candidate, backends=backends, checks=set(target_checks)
        )
        hits = [f for f in result.failures if f.check in target_checks]
        if hits:
            last_failures[0] = result.failures
        return bool(hits)

    current = explicit_case(contract, case)
    if not still_fails(current):
        # Not reproducible under the restricted predicate; return as-is.
        return ShrinkResult(
            case=current,
            failures=last_failures[0],
            nodes=len(current.adjacency),
            edges=len(_edges_of(current)),
            evaluations=spent[0],
        )
    best_failures = list(last_failures[0])

    # -- ddmin over nodes ------------------------------------------------
    granularity = 2
    while len(current.adjacency) >= 2 and spent[0] < max_evaluations:
        n = len(current.adjacency)
        granularity = min(granularity, n)
        chunk = max(1, n // granularity)
        reduced = False
        start = 0
        while start < n and spent[0] < max_evaluations:
            keep = [
                v for v in range(n) if not (start <= v < start + chunk)
            ]
            if not keep:
                start += chunk
                continue
            candidate = _project_nodes(current, keep)
            if still_fails(candidate):
                current = candidate
                best_failures = list(last_failures[0])
                n = len(current.adjacency)
                granularity = max(granularity - 1, 2)
                reduced = True
                start = 0
            else:
                start += chunk
        if not reduced:
            if granularity >= n:
                break
            granularity = min(n, granularity * 2)

    # -- greedy single-edge removal -------------------------------------
    progress = True
    while progress and spent[0] < max_evaluations:
        progress = False
        for u, v in _edges_of(current):
            candidate = _drop_edge(current, u, v)
            if still_fails(candidate):
                current = candidate
                best_failures = list(last_failures[0])
                progress = True
                break

    return ShrinkResult(
        case=current,
        failures=best_failures,
        nodes=len(current.adjacency),
        edges=len(_edges_of(current)),
        evaluations=spent[0],
    )


def minimal_repro(
    contract: Contract,
    case: CaseSpec,
    max_evaluations: int = 400,
) -> Optional[ShrinkResult]:
    """Convenience: run, and if the case fails, shrink what failed."""
    result = run_case(contract, case)
    if result.ok:
        return None
    return shrink_case(
        contract,
        case,
        result.failed_checks(),
        max_evaluations=max_evaluations,
    )
