"""The contract layer: what each registered algorithm claims to do.

Every entry in :data:`repro.core.registry.ALGORITHMS` that declares
``domains`` metadata is a *contract*: a claim of the paper's shape
"algorithm A solves LCL P on graph family F" (Rozhoň's framing —
a solution *is* a locally verifiable labeling), plus the metamorphic
invariances the implementation promises.  The conformance fuzzer
samples randomized cases from those declarations and checks every
claim on every backend; this module only reads and normalizes the
metadata.

Declaration vocabulary (registry metadata keys):

``solves=(problem_name, kwargs)``
    The LCL in :data:`repro.core.registry.PROBLEMS` whose verifier
    judges the output (``verifier`` is the accepted legacy spelling).
    Kwarg values of the form ``"auto:max-degree+1"`` are resolved
    against the concrete sampled graph.
``domains=({...}, ...)``
    Valid graph sampling domains.  Each dict names a registered graph
    family under ``"graph"``; every other key is a family parameter
    given either as a fixed value or as an inclusive integer range
    ``(lo, hi)`` / ``(lo, hi, step)``.
``fuzz_params={...}``
    Algorithm-constructor parameters to sample, same range syntax.
``invariances=(...)``
    Checks from :data:`KNOWN_INVARIANCES` this entry promises.
``layouts=(...)``
    Graph layouts the fuzzer's ``layout-identity`` check runs the
    ``view`` / ``edge`` / ``finite`` kinds under (names from
    :func:`repro.local_model.batch_views.known_layouts`).  Defaults to
    every production layout — ``("dict", "csr", "kernel")`` — for the
    view kinds and to ``("kernel",)`` for ``finite`` (the batched
    distinct-assignment kernel versus the reference per-node loop);
    fixtures may name a registered broken layout instead.
``deltas=k``
    How many seed-derived random :class:`~repro.graphs.delta.
    GraphDelta` mutations the fuzzer's ``delta-identity`` check chains
    per case (default 2; 0 opts the contract out).  Each step compares
    the incremental engine's ``apply`` against fresh runs on every
    backend on the mutated graph — outputs, signatures-derived
    identity, and error messages must match exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..core.registry import ALGORITHMS, PROBLEMS, ensure_builtins
from ..local_model.batch_views import LAYOUTS, known_layouts

__all__ = [
    "KNOWN_INVARIANCES",
    "Contract",
    "collect_contracts",
    "contract_for",
    "sample_range",
    "resolve_auto",
]

#: Metamorphic checks an entry may promise.  ``determinism`` and
#: ``backend-identity`` are checked for every contract regardless;
#: ``port-permutation`` and ``label-order`` only when declared.
KNOWN_INVARIANCES = (
    "determinism",
    "backend-identity",
    "port-permutation",
    "label-order",
)


@dataclass(frozen=True)
class Contract:
    """One fuzzable claim, normalized from registry metadata."""

    algorithm: str
    kind: str  # "local" | "view" | "edge" | "finite"
    needs_ids: bool
    needs_randomness: bool
    solves: Optional[Tuple[str, Mapping[str, Any]]]
    domains: Tuple[Mapping[str, Any], ...]
    fuzz_params: Mapping[str, Any] = field(default_factory=dict)
    invariances: Tuple[str, ...] = ("determinism", "backend-identity")
    #: Layouts the ``layout-identity`` check runs ``view``/``edge``
    #: kinds under; empty for kinds without a layout axis.
    layouts: Tuple[str, ...] = ()
    #: Random GraphDelta mutations the ``delta-identity`` check chains
    #: per case (0 opts out).
    deltas: int = 2

    def verifier(self, graph: Any) -> Optional[Any]:
        """The LCL verifier instance judging outputs on ``graph``.

        ``None`` when the contract declares no ``solves`` (the fuzzer
        then checks only halting, identity, and invariances — which is
        all an edge rule *can* promise; no constant-round edge rule
        solves the paper's edge LCLs).
        """
        if self.solves is None:
            return None
        name, kwargs = self.solves
        resolved = {k: resolve_auto(v, graph) for k, v in kwargs.items()}
        return PROBLEMS.create(name, **resolved)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot (embedded in repro artifacts)."""
        return {
            "algorithm": self.algorithm,
            "kind": self.kind,
            "needs_ids": self.needs_ids,
            "needs_randomness": self.needs_randomness,
            "solves": [self.solves[0], dict(self.solves[1])]
            if self.solves
            else None,
            "invariances": list(self.invariances),
            "layouts": list(self.layouts),
            "deltas": self.deltas,
        }


def resolve_auto(value: Any, graph: Any) -> Any:
    """Resolve an ``"auto:..."`` verifier kwarg against a concrete graph."""
    if not (isinstance(value, str) and value.startswith("auto:")):
        return value
    rule = value[len("auto:"):]
    if rule == "max-degree+1":
        return graph.max_degree() + 1
    raise ValueError(f"unknown auto verifier parameter {value!r}")


def sample_range(spec: Any, rng: random.Random) -> Any:
    """One value from a domain/fuzz-param spec.

    Tuples/lists are inclusive integer ranges ``(lo, hi)`` or
    ``(lo, hi, step)``; anything else is a fixed value.
    """
    if isinstance(spec, (tuple, list)):
        if len(spec) == 2:
            lo, hi = spec
            return rng.randrange(lo, hi + 1)
        if len(spec) == 3:
            lo, hi, step = spec
            return rng.choice(range(lo, hi + 1, step))
        raise ValueError(f"range spec must be (lo, hi[, step]), got {spec!r}")
    return spec


def _contract_from_entry(entry: Any) -> Optional[Contract]:
    metadata = entry.metadata
    domains = tuple(metadata.get("domains", ()))
    if not domains:
        return None  # not fuzzable (e.g. cole-vishkin-mp needs inputs)
    kind = metadata.get("kind")
    needs = metadata.get("needs", "")
    solves = metadata.get("solves", metadata.get("verifier"))
    invariances = tuple(metadata.get("invariances",
                                     ("determinism", "backend-identity")))
    unknown = [i for i in invariances if i not in KNOWN_INVARIANCES]
    if unknown:
        raise ValueError(
            f"algorithm {entry.name!r} declares unknown invariances "
            f"{unknown} (known: {KNOWN_INVARIANCES})"
        )
    if kind in ("view", "edge"):
        default_layouts: Tuple[str, ...] = LAYOUTS
    elif kind == "finite":
        default_layouts = ("kernel",)
    else:
        default_layouts = ()
    layouts = tuple(metadata.get("layouts", default_layouts))
    bad = [name for name in layouts if name not in known_layouts()]
    if bad:
        raise ValueError(
            f"algorithm {entry.name!r} declares unregistered layouts "
            f"{bad} (known: {known_layouts()})"
        )
    deltas = int(metadata.get("deltas", 2))
    if deltas < 0:
        raise ValueError(
            f"algorithm {entry.name!r} declares deltas={deltas}; must be >= 0"
        )
    return Contract(
        algorithm=entry.name,
        kind=kind,
        needs_ids=bool(metadata.get("needs_ids")) or needs == "ids",
        needs_randomness=(needs == "randomness"),
        solves=(solves[0], dict(solves[1])) if solves else None,
        domains=domains,
        fuzz_params=dict(metadata.get("fuzz_params", {})),
        invariances=invariances,
        layouts=layouts,
        deltas=deltas,
    )


def collect_contracts(include_fixtures: bool = False) -> List[Contract]:
    """Every fuzzable contract currently registered, sorted by name.

    Registered test fixtures (entries flagged ``fixture=True``, see
    :func:`repro.conformance.fixtures.register_broken_fixture`) are
    skipped unless ``include_fixtures`` — a self-test's intentionally
    broken claim must never contaminate a production fuzz run.
    """
    ensure_builtins()
    contracts = []
    for entry in ALGORITHMS.entries():
        if entry.metadata.get("fixture") and not include_fixtures:
            continue
        contract = _contract_from_entry(entry)
        if contract is not None:
            contracts.append(contract)
    return contracts


def contract_for(algorithm: str) -> Contract:
    """The contract of one registered algorithm, by name."""
    ensure_builtins()
    contract = _contract_from_entry(ALGORITHMS.get(algorithm))
    if contract is None:
        raise ValueError(
            f"algorithm {algorithm!r} declares no conformance domains"
        )
    return contract
