"""Replayable repro artifacts for failing conformance cases.

A repro artifact is one JSON file capturing a (usually shrunk) failing
case: the contract snapshot, the explicit case spec, and the checks
that failed.  :func:`replay_artifact` reconstructs the case and re-runs
it through the fuzzer — the file is a complete bug report that
re-executes.

Artifacts follow the experiments runner's conventions: filenames go
through :func:`repro.experiments.runner.artifact_path` (same
sanitization, same directory layout), and the payload carries a
``schema`` tag so future format changes stay detectable.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Tuple

from ..experiments.runner import artifact_path
from .contracts import Contract, contract_for
from .fuzzer import CaseResult, CaseSpec, CheckFailure, run_case

__all__ = [
    "REPRO_SCHEMA",
    "write_repro_artifact",
    "load_repro_artifact",
    "replay_artifact",
]

#: Schema tag of conformance repro artifacts.
REPRO_SCHEMA = "repro.conformance-repro/1"


def write_repro_artifact(
    directory: str,
    contract: Contract,
    case: CaseSpec,
    failures: List[CheckFailure],
) -> str:
    """Write one repro artifact; returns the file path.

    The filename is derived from the algorithm and seed through the
    runner's sanitizer, so hostile algorithm names cannot escape
    ``directory``.
    """
    os.makedirs(directory, exist_ok=True)
    payload = {
        "schema": REPRO_SCHEMA,
        "contract": contract.to_dict(),
        "case": case.to_dict(),
        "failures": [
            {"check": f.check, "message": f.message} for f in failures
        ],
    }
    path = artifact_path(
        directory, f"conformance-repro-{contract.algorithm}-{case.seed}"
    )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_repro_artifact(path: str) -> Tuple[Dict[str, Any], CaseSpec]:
    """Parse one artifact into its raw payload and the case spec."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    schema = payload.get("schema")
    if schema != REPRO_SCHEMA:
        raise ValueError(
            f"{path}: unknown schema {schema!r} (expected {REPRO_SCHEMA!r})"
        )
    return payload, CaseSpec.from_dict(payload["case"])


def replay_artifact(path: str) -> CaseResult:
    """Re-run the case an artifact records, with all checks enabled.

    The algorithm must be registered when replaying — for fixture
    artifacts that means calling
    :func:`repro.conformance.fixtures.register_broken_fixture` first
    (``python -m repro.conformance --self-test`` does).
    """
    payload, case = load_repro_artifact(path)
    return run_case(contract_for(case.algorithm), case)
