"""The fuzz driver: sample cases from contracts, check every claim.

A *case* is one fully-described execution: an algorithm, a graph (by
family + parameters, or — after shrinking — by explicit adjacency), a
seed, and explicit labelings.  :func:`run_case` runs it through
:func:`~repro.core.engine.simulate` on every backend and checks:

``halts``
    Every node committed an output (view kinds halt by construction).
``verifier``
    The declared LCL verifier accepts the output labeling — the paper's
    "solution = locally verifiable labeling" made executable.
``backend-identity``
    All backends produce equal :meth:`~repro.core.SimReport.identity`.
``layout-identity``
    Every graph layout the contract declares (``layouts=``, default
    ``("dict", "csr", "kernel")`` for view/edge kinds and
    ``("kernel",)`` for the finite kind) reproduces the base report
    bit for bit — on the direct backend, which gathers each ball over
    the layout's arrays, *and* on the cached backend, which keys its
    memo table off the layout's class partition.  This is how the
    fuzzer exercises the batched CSR expander and the finite
    distinct-assignment kernel, and how the self-test proves a
    deliberately-broken layout
    (:data:`repro.conformance.fixtures.BROKEN_CSR_LAYOUT`) and a
    trial-flipping finite kernel
    (:data:`repro.conformance.fixtures.BROKEN_TRIAL`) are caught.
``determinism``
    Re-running the same request bit-reproduces the report.
``port-permutation`` (when the contract declares it)
    Outputs are unchanged when every node's ports are shuffled — the
    LOCAL model's port numbering is adversarial, so an algorithm that
    does not read ports must not depend on them.
``label-order`` (when the contract declares it)
    Outputs are unchanged under a strictly monotone remapping of
    identifiers and randomness — the Naor–Stockmeyer order-invariance
    property for algorithms that only *compare* labels.
``implicit-identity`` (when the case's graph family registers an
    ``implicit_builder``)
    The family's symbolic :class:`~repro.graphs.implicit.ImplicitGraph`
    twin must reproduce the materialized run bit for bit: identical
    SimReports through the layout backends, *and* identical ball-class
    partitions (keys, labels, representatives) between the implicit
    window expander and the materialized CSR expander — the partition
    comparison catches closed-form drift (e.g. a wrong port numbering)
    that a port-insensitive algorithm's outputs would mask.  The
    self-test proves the deliberately wrong-port family
    (:data:`repro.conformance.fixtures.BROKEN_IMPLICIT_FAMILY`) is
    caught.
``service-identity`` (view/edge kinds)
    A fresh :class:`~repro.core.service.ServiceEngine` must reproduce
    the base report bit for bit — cold (first request) *and* warm
    (repeat request served from the cross-request class table) — even
    after a *probe* request for a different algorithm has populated
    the engine's caches first, and the served report must survive the
    :mod:`repro.serve.protocol` wire codec round-trip unchanged.  The
    probe is the teeth: view signatures deliberately omit the
    algorithm identity (one table per algorithm), so any table
    management bug that leaks one algorithm's entries to another — the
    self-test's stale-eviction fixture resurrects an evicted table
    under a new key — serves the probe's outputs to the case and is
    caught here.
``delta-identity`` (when the contract's ``deltas`` count is nonzero)
    A chain of seed-derived random :class:`~repro.graphs.delta.
    GraphDelta` mutations is applied through an
    :class:`~repro.core.incremental.IncrementalEngine`; after every
    step the incremental report must be bit-identical to fresh runs on
    every backend against the mutated graph and labels — and when
    either side raises, both must raise the *same* error (type and
    message).  Step ``k``'s delta is drawn from
    ``Random(derive_seed(case.seed, f"delta-{k}"))``, so mutation
    streams replay from the case spec alone (golden-pinned in
    ``tests/test_seed_stability.py``).

Any exception inside a case is reported as a ``crash`` failure, never
propagated: a fuzzer that dies on the first broken case cannot shrink
it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..core.engine import SimRequest, derive_seed, simulate
from ..core.registry import ALGORITHMS, GRAPH_FAMILIES, ensure_builtins
from ..graphs.graph import Graph
from ..graphs.identifiers import random_permutation_ids
from .contracts import Contract, sample_range

__all__ = [
    "BACKENDS",
    "CHECK_NAMES",
    "LAYOUT_BACKENDS",
    "CaseSpec",
    "CheckFailure",
    "CaseResult",
    "sample_cases",
    "materialize_case",
    "explicit_case",
    "run_case",
]

#: Backends every case runs on (the engine seam's full set).
BACKENDS = ("direct", "cached", "sharded")

#: Every check :func:`run_case` can run; the CLI's ``--checks`` flag
#: validates against this set (``crash`` is a failure kind, not a
#: selectable check).
CHECK_NAMES = (
    "halts", "verifier", "backend-identity", "layout-identity",
    "determinism", "port-permutation", "label-order", "delta-identity",
    "implicit-identity", "service-identity",
)

#: Backends the ``layout-identity`` check runs each declared layout on:
#: the direct backend gathers views over the layout's arrays, the
#: cached backend keys its memo table off the layout's class partition
#: — together they cover both ways a layout can diverge.  (The sharded
#: backend shares the cached backend's partition path and is already
#: exercised with ``layout="auto"`` by ``backend-identity``.)
LAYOUT_BACKENDS = ("direct", "cached")


@dataclass
class CaseSpec:
    """One sampled (or shrunk) conformance case, JSON-serializable.

    Either ``graph_family``/``graph_params`` name a registered family,
    or ``adjacency`` gives the port-numbered graph explicitly (the
    shrinker's output).  ``ids``/``randomness``, when set, override the
    seed-derived labelings — shrinking *projects* the original labels
    instead of re-deriving them, so each shrink step changes exactly
    one thing.
    """

    algorithm: str
    seed: int
    graph_family: str = ""
    graph_params: Dict[str, Any] = field(default_factory=dict)
    algorithm_params: Dict[str, Any] = field(default_factory=dict)
    adjacency: Optional[List[List[int]]] = None
    ids: Optional[List[int]] = None
    randomness: Optional[List[int]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "seed": self.seed,
            "graph_family": self.graph_family,
            "graph_params": dict(self.graph_params),
            "algorithm_params": dict(self.algorithm_params),
            "adjacency": self.adjacency,
            "ids": self.ids,
            "randomness": self.randomness,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CaseSpec":
        return cls(
            algorithm=data["algorithm"],
            seed=data["seed"],
            graph_family=data.get("graph_family", ""),
            graph_params=dict(data.get("graph_params", {})),
            algorithm_params=dict(data.get("algorithm_params", {})),
            adjacency=data.get("adjacency"),
            ids=data.get("ids"),
            randomness=data.get("randomness"),
        )


@dataclass(frozen=True)
class CheckFailure:
    """One failed conformance check."""

    check: str
    message: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.message}"


@dataclass
class CaseResult:
    """Outcome of one case: empty ``failures`` means conformant."""

    contract: Contract
    case: CaseSpec
    failures: List[CheckFailure]

    @property
    def ok(self) -> bool:
        return not self.failures

    def failed_checks(self) -> Set[str]:
        return {f.check for f in self.failures}


def sample_cases(
    contracts: Sequence[Contract],
    count: int,
    base_seed: int,
) -> List[Tuple[Contract, CaseSpec]]:
    """``count`` cases, round-robin over contracts, fully seed-derived.

    Case ``i`` draws its graph domain, family parameters, and algorithm
    parameters from ``Random(derive_seed(base_seed, f"case-{i}"))`` —
    the repository's one seed scheme — so a (base_seed, i) pair is a
    complete reproduction recipe.
    """
    cases = []
    for i in range(count):
        contract = contracts[i % len(contracts)]
        rng = random.Random(derive_seed(base_seed, f"case-{i}"))
        domain = contract.domains[rng.randrange(len(contract.domains))]
        graph_params = {
            key: sample_range(spec, rng)
            for key, spec in domain.items()
            if key != "graph"
        }
        algorithm_params = {
            key: sample_range(spec, rng)
            for key, spec in contract.fuzz_params.items()
        }
        cases.append((contract, CaseSpec(
            algorithm=contract.algorithm,
            seed=derive_seed(base_seed, f"case-{i}:labels"),
            graph_family=domain["graph"],
            graph_params=graph_params,
            algorithm_params=algorithm_params,
        )))
    return cases


def materialize_case(
    contract: Contract, case: CaseSpec
) -> Tuple[Graph, Optional[List[int]], Optional[List[int]]]:
    """Build the concrete ``(graph, ids, randomness)`` a case describes.

    Labelings not pinned on the spec are derived from ``case.seed`` —
    deterministically, so two materializations agree exactly.
    """
    ensure_builtins()
    if case.adjacency is not None:
        graph = Graph.from_adjacency(case.adjacency).freeze()
    else:
        graph = GRAPH_FAMILIES.create(case.graph_family, **case.graph_params)
    rng = random.Random(derive_seed(case.seed, "conformance-labels"))
    ids = case.ids
    if ids is None and contract.needs_ids:
        ids = random_permutation_ids(graph, rng)
    randomness = case.randomness
    if randomness is None and contract.needs_randomness:
        randomness = [rng.getrandbits(32) for _ in graph.nodes()]
    return graph, ids, randomness


def explicit_case(contract: Contract, case: CaseSpec) -> CaseSpec:
    """The same case with graph and labelings pinned explicitly.

    This is the shrinker's starting point (and the repro artifact's
    payload): adjacency rows capture the exact port numbering, and
    ids/randomness are frozen so later projections never re-derive
    them.
    """
    graph, ids, randomness = materialize_case(contract, case)
    return CaseSpec(
        algorithm=case.algorithm,
        seed=case.seed,
        graph_family=case.graph_family,
        graph_params=dict(case.graph_params),
        algorithm_params=dict(case.algorithm_params),
        adjacency=[list(graph.neighbors(v)) for v in graph.nodes()],
        ids=list(ids) if ids is not None else None,
        randomness=list(randomness) if randomness is not None else None,
    )


def _build_request(
    contract: Contract,
    case: CaseSpec,
    graph: Graph,
    ids: Optional[List[int]],
    randomness: Optional[List[int]],
) -> SimRequest:
    algorithm = ALGORITHMS.create(case.algorithm, **case.algorithm_params)
    if contract.kind == "finite":
        # Finite requests run oriented-tree algorithms, so the case must
        # come from an orientable family: the orientation is rebuilt
        # from the graph parameters, and the per-node random values are
        # seed-derived (one draw per node, in evaluation order) so every
        # materialization of the same case agrees exactly.
        if case.adjacency is not None or case.graph_family != "torus":
            raise ValueError(
                "finite conformance cases must come from the 'torus' "
                "family (the orientation is derived from rows/cols)"
            )
        from ..graphs.orientation import orient_torus

        orientation = orient_torus(
            graph, case.graph_params["rows"], case.graph_params["cols"]
        )
        rng = random.Random(derive_seed(case.seed, "conformance-values"))
        values = [rng.randrange(algorithm.values) for _ in graph.nodes()]
        return SimRequest(
            kind="finite",
            graph=graph,
            algorithm=algorithm,
            orientation=orientation,
            values=values,
            seed=case.seed,
            label=f"conformance:{case.algorithm}",
        )
    return SimRequest(
        kind=contract.kind,
        graph=graph,
        algorithm=algorithm,
        ids=ids,
        randomness=randomness,
        seed=case.seed,
        label=f"conformance:{case.algorithm}",
    )


def _identity_mismatch(kind: str, a: Any, b: Any) -> Optional[str]:
    if a.identity() == b.identity():
        return None
    return f"{kind}: outputs/rounds diverge ({a.backend} vs {b.backend})"


def _monotone(value: int) -> int:
    """A strictly increasing integer map (order kept, values changed)."""
    return 3 * value + 17


def _run_port_permuted(
    contract: Contract,
    case: CaseSpec,
    graph: Graph,
    ids: Optional[List[int]],
    randomness: Optional[List[int]],
) -> Any:
    rng = random.Random(derive_seed(case.seed, "port-permutation"))
    rows = [list(graph.neighbors(v)) for v in graph.nodes()]
    for row in rows:
        rng.shuffle(row)
    permuted = Graph.from_adjacency(rows).freeze()
    request = _build_request(contract, case, permuted, ids, randomness)
    return simulate(request, engine="direct")


def _run_label_mapped(
    contract: Contract,
    case: CaseSpec,
    graph: Graph,
    ids: Optional[List[int]],
    randomness: Optional[List[int]],
) -> Optional[Any]:
    mapped_ids = [_monotone(x) for x in ids] if ids is not None else None
    mapped_rand = (
        [_monotone(x) for x in randomness] if randomness is not None else None
    )
    if mapped_ids is None and mapped_rand is None:
        return None  # nothing to remap: the invariance is vacuous
    request = _build_request(contract, case, graph, mapped_ids, mapped_rand)
    return simulate(request, engine="direct")


def _run_implicit_twin(
    contract: Contract,
    case: CaseSpec,
    graph: Graph,
    ids: Optional[List[int]],
    randomness: Optional[List[int]],
    base: Any,
) -> List[CheckFailure]:
    """The ``implicit-identity`` check body (see the module docstring).

    Builds the family's symbolic twin from the registered
    ``implicit_builder`` and demands (a) bit-identical SimReports
    through every layout backend and (b) bit-identical ball-class
    partitions against the materialized CSR expander.  (b) is the
    teeth: an implicit family with a subtly wrong closed form (ports
    swapped, rows reordered) can still satisfy (a) whenever the
    algorithm ignores ports, but its packed streams cannot match.
    """
    from ..local_model.batch_views import expander_for

    entry = GRAPH_FAMILIES.get(case.graph_family)
    builder = entry.metadata["implicit_builder"]
    twin = builder(**case.graph_params)
    failures: List[CheckFailure] = []
    request = _build_request(contract, case, twin, ids, randomness)
    for backend in LAYOUT_BACKENDS:
        report = simulate(request, engine=backend)
        if report.identity() != base.identity():
            failures.append(CheckFailure(
                "implicit-identity",
                f"implicit twin on {backend} diverges from the "
                f"materialized report",
            ))
    radius = (
        request.algorithm.radius
        if contract.kind == "view"
        else request.algorithm.view_radius()
    )
    implicit_expander = expander_for(twin, "implicit")
    csr_expander = expander_for(graph, "csr")
    if contract.kind == "view":
        got = implicit_expander.node_classes(
            radius, ids=ids, randomness=randomness
        )
        want = csr_expander.node_classes(
            radius, ids=ids, randomness=randomness
        )
    else:
        edges = list(graph.edges())
        got = implicit_expander.edge_classes(
            edges, radius, ids=ids, randomness=randomness
        )
        want = csr_expander.edge_classes(
            edges, radius, ids=ids, randomness=randomness
        )
    if (
        got.keys != want.keys
        or list(got.labels) != list(want.labels)
        or list(got.reps) != list(want.reps)
    ):
        failures.append(CheckFailure(
            "implicit-identity",
            "implicit ball-class partition diverges from the "
            "materialized CSR partition (closed-form drift)",
        ))
    return failures


def _probe_algorithm(contract: Contract, request: SimRequest) -> Optional[Any]:
    """A different algorithm at the *same* signature radius as the case.

    The probe's view signatures collide exactly with the case's (same
    graph, labels, radius), which is what gives the ``service-identity``
    check teeth against cross-algorithm table pollution.  Returns
    ``None`` when no compatible probe exists for the case's labelings.
    """
    if contract.kind == "view":
        radius = request.algorithm.radius
        name = (
            "ball-signature"
            if contract.algorithm != "ball-signature"
            else "degree-profile"
        )
        return ALGORITHMS.create(name, radius=radius)
    if contract.kind == "edge":
        rounds = request.algorithm.rounds
        if contract.algorithm != "edge-parity":
            return ALGORITHMS.create("edge-parity", rounds=rounds)
        if request.randomness is not None:
            return ALGORITHMS.create("edge-profile", rounds=rounds)
        return None
    return None


def _run_service_check(
    contract: Contract,
    case: CaseSpec,
    graph: Graph,
    ids: Optional[List[int]],
    randomness: Optional[List[int]],
    base: Any,
    service_factory: Optional[Any],
) -> List[CheckFailure]:
    """The ``service-identity`` check body (see the module docstring).

    ``service_factory`` swaps in a different engine class — the
    self-test passes the deliberately-broken stale-eviction fixture
    (:func:`~repro.conformance.fixtures.stale_eviction_service_engine`)
    to prove the probe-then-serve sequence catches a resurrected table.
    """
    import json

    from ..core.service import ServiceEngine
    from ..serve.protocol import decode_report, encode_report

    failures: List[CheckFailure] = []
    engine = (service_factory or ServiceEngine)()
    try:
        request = _build_request(contract, case, graph, ids, randomness)
        probe = _probe_algorithm(contract, request)
        if probe is not None:
            engine.run(replace(request, algorithm=probe))
        cold = engine.run(request)
        if cold.identity() != base.identity():
            failures.append(CheckFailure(
                "service-identity",
                "cold service run diverges from the base report",
            ))
            return failures
        warm = engine.run(
            _build_request(contract, case, graph, ids, randomness)
        )
        if warm.identity() != base.identity():
            failures.append(CheckFailure(
                "service-identity",
                "warm service run diverges from the base report",
            ))
            return failures
        wired = decode_report(json.loads(json.dumps(encode_report(warm))))
        if wired.identity() != warm.identity():
            failures.append(CheckFailure(
                "service-identity",
                "report identity does not survive the wire codec "
                "round-trip",
            ))
    finally:
        engine.close()
    return failures


def _run_delta_chain(
    contract: Contract,
    case: CaseSpec,
    graph: Graph,
    ids: Optional[List[int]],
    randomness: Optional[List[int]],
    backends: Sequence[str],
    incremental_factory: Optional[Any],
) -> List[CheckFailure]:
    """The ``delta-identity`` check: k seed-derived mutations, all compared.

    ``incremental_factory`` swaps in a different engine class — the
    self-test passes the deliberately-broken
    :class:`~repro.conformance.fixtures.StaleCacheIncrementalEngine`
    here to prove this check catches a skipped invalidation.
    """
    from ..core.incremental import IncrementalEngine
    from ..graphs.delta import random_delta

    failures: List[CheckFailure] = []
    engine = (incremental_factory or IncrementalEngine)()
    request = _build_request(contract, case, graph, ids, randomness)
    primed = engine.run(request)
    fresh = simulate(request, engine="direct")
    if primed.identity() != fresh.identity():
        failures.append(CheckFailure(
            "delta-identity", "primed incremental run diverges before any delta"
        ))
        return failures
    cur_graph, cur_ids, cur_rand = graph, ids, randomness
    for step in range(contract.deltas):
        rng = random.Random(derive_seed(case.seed, f"delta-{step}"))
        delta = random_delta(cur_graph, rng, ids=cur_ids, randomness=cur_rand)
        if delta is None:
            break
        inc_error: Optional[str] = None
        inc_report = None
        try:
            inc_report = engine.apply(delta)
        except Exception as exc:
            inc_error = f"{type(exc).__name__}: {exc}"
        cur_graph = delta.apply_to(cur_graph)
        cur_ids, _, cur_rand = delta.apply_to_labels(cur_ids, None, cur_rand)
        mutated = _build_request(contract, case, cur_graph, cur_ids, cur_rand)
        ref_error: Optional[str] = None
        ref_report = None
        try:
            ref_report = simulate(mutated, engine="direct")
        except Exception as exc:
            ref_error = f"{type(exc).__name__}: {exc}"
        if inc_error is not None or ref_error is not None:
            if inc_error != ref_error:
                failures.append(CheckFailure(
                    "delta-identity",
                    f"step {step}: error mismatch (incremental: {inc_error!r}, "
                    f"direct: {ref_error!r})",
                ))
            break  # both raised identically: the chain cannot continue
        assert inc_report is not None and ref_report is not None
        if inc_report.identity() != ref_report.identity():
            failures.append(CheckFailure(
                "delta-identity",
                f"step {step}: incremental apply diverges from a fresh "
                f"direct run on the mutated graph",
            ))
            break
        for backend in backends:
            if backend == "direct":
                continue
            report = simulate(mutated, engine=backend)
            if report.identity() != ref_report.identity():
                failures.append(CheckFailure(
                    "delta-identity",
                    f"step {step}: backend {backend!r} diverges on the "
                    f"mutated graph",
                ))
    return failures


def run_case(
    contract: Contract,
    case: CaseSpec,
    backends: Sequence[str] = BACKENDS,
    checks: Optional[Set[str]] = None,
    incremental_factory: Optional[Any] = None,
    service_factory: Optional[Any] = None,
) -> CaseResult:
    """Run one case; return every check failure (empty = conformant).

    ``checks`` restricts which checks run (the shrinker re-tests only
    the originally-failing ones); ``None`` runs them all.
    ``incremental_factory`` / ``service_factory`` override the engine
    class the ``delta-identity`` / ``service-identity`` checks use
    (self-tests inject broken fixtures).
    """
    failures: List[CheckFailure] = []

    def enabled(name: str) -> bool:
        return checks is None or name in checks

    try:
        graph, ids, randomness = materialize_case(contract, case)
        request = _build_request(contract, case, graph, ids, randomness)
        reports = {b: simulate(request, engine=b) for b in backends}
        base = reports[backends[0]]

        if enabled("halts") and not base.all_halted():
            stuck = [
                v for v, r in enumerate(base.halt_rounds or []) if r is None
            ]
            failures.append(CheckFailure(
                "halts", f"nodes never halted: {stuck[:8]}"
            ))
        if enabled("verifier") and contract.solves is not None:
            verifier = contract.verifier(graph)
            violations = verifier.verify(graph, base.outputs)
            if violations:
                summary = "; ".join(str(v) for v in violations[:4])
                failures.append(CheckFailure(
                    "verifier", f"{verifier.name}: {summary}"
                ))
        if enabled("backend-identity"):
            for backend in backends[1:]:
                message = _identity_mismatch(
                    "backend-identity", base, reports[backend]
                )
                if message:
                    failures.append(CheckFailure("backend-identity", message))
        if enabled("layout-identity") and contract.layouts:
            for layout in contract.layouts:
                routed = replace(request, layout=layout)
                for backend in LAYOUT_BACKENDS:
                    report = simulate(routed, engine=backend)
                    if report.identity() != base.identity():
                        failures.append(CheckFailure(
                            "layout-identity",
                            f"layout {layout!r} on {backend} diverges "
                            f"from the base report",
                        ))
        if enabled("determinism"):
            again = simulate(request, engine=backends[0])
            if again.identity() != base.identity():
                failures.append(CheckFailure(
                    "determinism", "same request, same backend, new outputs"
                ))
        if (
            enabled("port-permutation")
            and "port-permutation" in contract.invariances
        ):
            permuted = _run_port_permuted(
                contract, case, graph, ids, randomness
            )
            if permuted.outputs != base.outputs:
                failures.append(CheckFailure(
                    "port-permutation",
                    "outputs changed under a port renumbering",
                ))
        if enabled("label-order") and "label-order" in contract.invariances:
            mapped = _run_label_mapped(contract, case, graph, ids, randomness)
            if mapped is not None and mapped.outputs != base.outputs:
                failures.append(CheckFailure(
                    "label-order",
                    "outputs changed under a monotone label remapping",
                ))
        if (
            enabled("implicit-identity")
            and case.adjacency is None
            and contract.kind in ("view", "edge")
            and case.graph_family in GRAPH_FAMILIES
            and GRAPH_FAMILIES.get(case.graph_family).metadata.get(
                "implicit_builder"
            )
            is not None
        ):
            failures.extend(_run_implicit_twin(
                contract, case, graph, ids, randomness, base,
            ))
        if enabled("service-identity") and contract.kind in ("view", "edge"):
            failures.extend(_run_service_check(
                contract, case, graph, ids, randomness, base,
                service_factory,
            ))
        if enabled("delta-identity") and contract.deltas > 0:
            failures.extend(_run_delta_chain(
                contract, case, graph, ids, randomness, backends,
                incremental_factory,
            ))
    except Exception as exc:  # a crash is a finding, not a fuzzer abort
        failures.append(CheckFailure(
            "crash", f"{type(exc).__name__}: {exc}"
        ))
    return CaseResult(contract=contract, case=case, failures=failures)
