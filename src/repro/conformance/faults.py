"""Fault injection for :class:`~repro.core.sharded.ShardedEngine`.

Each fault drives the engine into one documented degradation path and
asserts the contract from ``repro/core/sharded.py``'s docstring: the
run **completes with bit-identical results**, the reason is surfaced
as ``SimReport.info["degraded"]``, and
:meth:`~repro.instrumentation.tracer.Tracer.on_degraded` fires (so
:class:`~repro.instrumentation.metrics.MetricsTracer` counts it).

Faults
------
``worker-crash-view``
    A view rule that kills its pool worker mid-shard (``os._exit``,
    guarded to fire only in daemonic processes).  The pool never
    answers; the engine's ``timeout`` converts the hang into a
    ``pool-error`` degradation and an in-process re-evaluation.
``unpicklable-payload``
    An algorithm carrying a lambda cannot cross the process boundary;
    the engine must detect this *before* dispatch and degrade with
    reason ``unpicklable``.
``corrupted-shard-seeds``
    Shard seeds feed tracing only — an engine whose seed derivation is
    sabotaged must still produce bit-identical outputs (the
    conformance analogue of the differential suite's backend-identity
    check).
``worker-crash-run-many``
    Same crash, batch path: every report in the batch must carry the
    degradation and match the direct backend.
``pool-restart-after-crash``
    After a crash-induced teardown, the *same* engine must respawn its
    pool and run pooled again.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Any, List, Optional

from ..core.engine import SimRequest, simulate
from ..core.sharded import ShardedEngine
from ..graphs.generators import path
from ..instrumentation.metrics import MetricsTracer
from ..local_model.algorithm import ViewAlgorithm

__all__ = [
    "FaultOutcome",
    "CrashInWorkerRule",
    "UnpicklableRule",
    "CorruptedSeedEngine",
    "run_fault_suite",
]


class CrashInWorkerRule(ViewAlgorithm):
    """Outputs the center's degree — but kills any daemonic pool worker.

    The daemon guard is what makes the fault *injectable*: pool workers
    are daemonic, the parent (and the in-process fallback) is not, so
    the crash happens exactly where a real mid-shard worker death
    would, and the recovery path computes real outputs.
    """

    def __init__(self, radius: int = 1):
        self.radius = radius
        self.name = "crash-in-worker"

    def output(self, view: Any) -> int:
        if multiprocessing.current_process().daemon:
            os._exit(1)
        return view.degrees[view.center]


class UnpicklableRule(ViewAlgorithm):
    """Outputs the center's degree; carries a lambda so it cannot pickle."""

    def __init__(self, radius: int = 1):
        self.radius = radius
        self.name = "unpicklable-rule"
        self._poison = lambda: None  # defeats pickling on purpose

    def output(self, view: Any) -> int:
        return view.degrees[view.center]


class CorruptedSeedEngine(ShardedEngine):
    """A sharded engine whose per-shard seed derivation is sabotaged."""

    def _shard_seeds(self, request: SimRequest, count: int) -> List[int]:
        return [0xBAD5EED] * count


@dataclass
class FaultOutcome:
    """One injected fault and whether the degradation contract held."""

    fault: str
    ok: bool
    degraded: Optional[str]
    detail: str


def _view_request(algorithm: ViewAlgorithm, n: int = 8) -> SimRequest:
    graph = path(n)
    # Distinct ids => n distinct view classes => the engine shards.
    return SimRequest(
        kind="view",
        graph=graph,
        algorithm=algorithm,
        ids=list(range(1, n + 1)),
        label=f"fault:{algorithm.name}",
    )


def _reference_outputs(request: SimRequest) -> Any:
    return simulate(request, engine="direct").identity()


def _check_worker_crash(timeout: float) -> FaultOutcome:
    engine = ShardedEngine(shards=2, timeout=timeout)
    try:
        request = _view_request(CrashInWorkerRule())
        tracer = MetricsTracer()
        report = engine.run(request, tracer=tracer)
        degraded = report.info.get("degraded")
        problems = []
        if report.identity() != _reference_outputs(request):
            problems.append("outputs differ from the direct backend")
        if report.info.get("pooled") is not False:
            problems.append("report claims the pooled path ran")
        if not (degraded or "").startswith("pool-error"):
            problems.append(f"degraded reason is {degraded!r}")
        if tracer.metrics.degradations < 1:
            problems.append("tracer saw no on_degraded event")
        return FaultOutcome(
            fault="worker-crash-view",
            ok=not problems,
            degraded=degraded,
            detail="; ".join(problems) or "degraded and recovered in-process",
        )
    finally:
        engine.close()


def _check_unpicklable(timeout: float) -> FaultOutcome:
    engine = ShardedEngine(shards=2, timeout=timeout)
    try:
        request = _view_request(UnpicklableRule())
        tracer = MetricsTracer()
        report = engine.run(request, tracer=tracer)
        degraded = report.info.get("degraded")
        problems = []
        if report.identity() != _reference_outputs(request):
            problems.append("outputs differ from the direct backend")
        if degraded != "unpicklable":
            problems.append(f"degraded reason is {degraded!r}")
        if "unpicklable" not in tracer.metrics.degraded_reasons:
            problems.append("metrics did not record the reason")
        return FaultOutcome(
            fault="unpicklable-payload",
            ok=not problems,
            degraded=degraded,
            detail="; ".join(problems) or "detected before dispatch",
        )
    finally:
        engine.close()


def _check_corrupted_seeds(timeout: float) -> FaultOutcome:
    from ..algorithms.view_rules import DegreeProfileRule

    engine = CorruptedSeedEngine(shards=2, timeout=timeout)
    try:
        request = _view_request(DegreeProfileRule(radius=1))
        report = engine.run(request)
        problems = []
        if report.identity() != _reference_outputs(request):
            problems.append("corrupted shard seeds changed the outputs")
        if "degraded" in report.info:
            problems.append("clean run reported a degradation")
        return FaultOutcome(
            fault="corrupted-shard-seeds",
            ok=not problems,
            degraded=report.info.get("degraded"),
            detail="; ".join(problems)
            or "shard seeds are diagnostics only; outputs bit-identical",
        )
    finally:
        engine.close()


def _check_run_many_crash(timeout: float) -> FaultOutcome:
    engine = ShardedEngine(shards=2, timeout=timeout)
    try:
        requests = [_view_request(CrashInWorkerRule(), n=6 + i)
                    for i in range(4)]
        tracer = MetricsTracer()
        reports = engine.run_many(requests, tracer=tracer)
        problems = []
        for request, report in zip(requests, reports):
            if report.identity() != _reference_outputs(request):
                problems.append(f"{request.label}: outputs differ")
            if not str(report.info.get("degraded", "")).startswith(
                "pool-error"
            ):
                problems.append(f"{request.label}: degradation not surfaced")
        if tracer.metrics.degradations < 1:
            problems.append("tracer saw no on_degraded event")
        degraded = reports[0].info.get("degraded") if reports else None
        return FaultOutcome(
            fault="worker-crash-run-many",
            ok=not problems,
            degraded=degraded,
            detail="; ".join(problems[:3])
            or "whole batch degraded to the serial path",
        )
    finally:
        engine.close()


def _check_pool_restart(timeout: float) -> FaultOutcome:
    from ..algorithms.view_rules import DegreeProfileRule

    engine = ShardedEngine(shards=2, timeout=timeout)
    try:
        crash = engine.run(_view_request(CrashInWorkerRule()))
        clean_request = _view_request(DegreeProfileRule(radius=1))
        clean = engine.run(clean_request)
        problems = []
        if "degraded" not in crash.info:
            problems.append("crash run did not degrade")
        if clean.info.get("pooled") is not True:
            problems.append("engine did not respawn its pool")
        if clean.identity() != _reference_outputs(clean_request):
            problems.append("post-restart outputs differ")
        return FaultOutcome(
            fault="pool-restart-after-crash",
            ok=not problems,
            degraded=crash.info.get("degraded"),
            detail="; ".join(problems)
            or "pool respawned; pooled run bit-identical",
        )
    finally:
        engine.close()


def run_fault_suite(timeout: float = 2.0) -> List[FaultOutcome]:
    """Inject every fault; one outcome each, crashes folded into ``ok``.

    ``timeout`` is the sharded engine's pool timeout for the crash
    faults — the window after which a dead worker's silence becomes a
    degradation.  Keep it small: each crash fault pays it once.
    """
    checks = (
        _check_worker_crash,
        _check_unpicklable,
        _check_corrupted_seeds,
        _check_run_many_crash,
        _check_pool_restart,
    )
    outcomes = []
    for check in checks:
        try:
            outcomes.append(check(timeout))
        except Exception as exc:  # a crash IS the finding
            outcomes.append(FaultOutcome(
                fault=check.__name__.replace("_check_", "").replace("_", "-"),
                ok=False,
                degraded=None,
                detail=f"harness crash: {type(exc).__name__}: {exc}",
            ))
    return outcomes
