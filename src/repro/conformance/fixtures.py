"""Intentionally-broken registrations that the fuzzer must catch.

The conformance subsystem's own acceptance test: an algorithm whose
``solves`` claim is *false*, registered on demand (never by
``ensure_builtins``), so the pipeline fuzz -> catch -> shrink ->
artifact -> replay can be exercised end to end.

:data:`BROKEN_MIS` claims :class:`repro.algorithms.view_rules.
LocalMaximumRule` solves MIS.  The rule's 1-nodes *are* independent
(two adjacent local maxima would each have to beat the other), but
nothing makes the set maximal — on a path with ascending identifiers
only the last node is marked, so interior nodes violate domination.
The minimal counterexample is a 3-node path, well under the 8-node
shrink target.

:data:`BROKEN_CSR` is the layout analogue: a *correct* algorithm
declared with :data:`BROKEN_CSR_LAYOUT`, a registered expander layout
whose class keys are truncated packed streams — so distinct balls
collide, the cached backend broadcasts one class's output to another,
and the fuzzer's ``layout-identity`` check must flag the divergence.
This is the acceptance test for the batched-CSR fuzzing axis: a layout
that silently merges view classes cannot survive the pipeline.

:data:`BROKEN_KERNEL` is the vectorized-kernel analogue (see
``docs/KERNELS.md``): a subclass of the honest rule whose *registered
view kernel* inverts every class output, declared with
``layouts=("dict", "kernel")`` — so the ``layout-identity`` check must
flag the divergence between the reference path and the kernel layout.
Kernel registration resolves along the MRO (the subclass's planted
kernel shadows the parent's honest one), which is exactly the override
point a real kernel author would use.

:data:`BROKEN_IMPLICIT` is the implicit-family analogue: a *correct*
algorithm fuzzed over :data:`BROKEN_IMPLICIT_FAMILY`, a registered
graph family whose materialized factory is the honest cycle but whose
``implicit_builder`` swaps the two ports of every node except 0 —
still a valid port numbering of the same cycle, so every structural
query looks plausible, but the packed ball streams cannot match the
materialized ones.  The fuzzer's ``implicit-identity`` check must flag
the partition divergence even though the port-insensitive algorithm's
outputs agree — proving a wrong closed form cannot hide behind a
forgiving algorithm.

:data:`BROKEN_TRIAL` is the finite-kind analogue: a
:class:`~repro.speedup.algorithms.NodeAlgorithm` subclass whose honest
``evaluate`` is the radius-1 local-maximum starter but whose
*registered finite kernel* silently flips one trial's success — it
runs the honest distinct-assignment kernel, then drops the last
failing node (or invents one when the trial succeeded).  Declared with
the finite layout axis ``("kernel",)``, so the fuzzer's
``layout-identity`` check must flag the divergence between the batched
kernel and the reference per-node loop — proving a kernel that
miscounts even one trial cannot survive the pipeline.

:func:`stale_cache_incremental_engine` is the incremental-engine
analogue: an :class:`~repro.core.incremental.IncrementalEngine`
subclass whose dirty-ball tracker "forgets" one touched node per
applied delta, leaving that node's memoized class stale.  The fuzzer's
``delta-identity`` check (and the delta-differential harness in
``tests/differential.py``) must flag the divergence against a fresh
direct run on the mutated graph — proving an engine that skips
invalidating even a single ball cannot survive the pipeline.

:func:`stale_eviction_service_engine` is the service-engine analogue:
a :class:`~repro.core.service.ServiceEngine` subclass with a zero byte
budget whose eviction keeps a ghost reference to the dying class table
and whose table lookup *resurrects* the ghost for the next unseen
algorithm key.  Because :class:`~repro.local_model.cache.ViewCache`
keys are view signatures with no algorithm identity in them, the
resurrected table serves one algorithm's cached outputs to another
whenever their signatures collide — exactly the collision the fuzzer's
``service-identity`` check manufactures with its same-radius probe
algorithm, so the check must flag the cold service run.
"""

from __future__ import annotations

import numpy as np

from ..core.registry import ALGORITHMS
from ..local_model.batch_views import (
    BatchBallExpander,
    known_layouts,
    register_layout,
)

__all__ = [
    "BROKEN_MIS",
    "BROKEN_CSR",
    "BROKEN_CSR_LAYOUT",
    "BROKEN_KERNEL",
    "BROKEN_IMPLICIT",
    "BROKEN_IMPLICIT_FAMILY",
    "BROKEN_TRIAL",
    "register_broken_fixture",
    "register_broken_layout_fixture",
    "register_broken_kernel_fixture",
    "register_broken_implicit_fixture",
    "register_broken_trial_fixture",
    "stale_cache_incremental_engine",
    "stale_eviction_service_engine",
]

#: Registry name of the broken fixture algorithm.
BROKEN_MIS = "broken-mis-claim"

#: Registry name of the broken-layout fixture algorithm.
BROKEN_CSR = "broken-csr-views"

#: Layout-registry name of the class-merging expander.
BROKEN_CSR_LAYOUT = "broken-csr"

#: Registry name of the broken-view-kernel fixture algorithm.
BROKEN_KERNEL = "broken-kernel-views"

#: Registry name of the broken-implicit-family fixture algorithm.
BROKEN_IMPLICIT = "broken-implicit-views"

#: Graph-family registry name of the wrong-port implicit cycle.
BROKEN_IMPLICIT_FAMILY = "broken-implicit-cycle"

#: Registry name of the trial-flipping finite-kernel fixture algorithm.
BROKEN_TRIAL = "broken-trial-kernel"


def _make_broken_mis(radius: int = 1):
    from ..algorithms.view_rules import LocalMaximumRule

    return LocalMaximumRule(radius=radius)


def register_broken_fixture() -> None:
    """Register :data:`BROKEN_MIS` (idempotent; flagged ``fixture``).

    :func:`repro.conformance.contracts.collect_contracts` skips
    ``fixture``-flagged entries unless asked for them, so registering
    the fixture never contaminates a production fuzz run.
    """
    if BROKEN_MIS in ALGORITHMS:
        return
    ALGORITHMS.add(
        BROKEN_MIS,
        _make_broken_mis,
        kind="view",
        needs="ids",
        solves=("mis", {}),
        domains=(
            {"graph": "path", "n": (6, 16)},
            {"graph": "cycle", "n": (6, 16)},
        ),
        invariances=("determinism", "backend-identity",
                     "port-permutation", "label-order"),
        fixture=True,
        description="FIXTURE: falsely claims local-max solves MIS",
    )


class _ClassMergingExpander(BatchBallExpander):
    """A CSR expander whose keys drop the tail of the packed stream.

    Truncation destroys the self-delimiting property that makes stream
    bytes a perfect key: balls differing only past the midpoint (ids,
    deep port rows) land in one class.  Everything else — BFS, packing,
    representatives — is the honest implementation, so the *only*
    observable symptom is class merging, exactly what the
    ``layout-identity`` check exists to catch.
    """

    def _class_key(self, tag, radius, flags, stream):
        return (tag, radius, flags, stream[: max(1, len(stream) // 2)])


def register_broken_layout_fixture() -> None:
    """Register :data:`BROKEN_CSR` + its merging layout (idempotent).

    The algorithm itself is correct (:class:`LocalMaximumRule` with no
    ``solves`` claim); only its declared ``layouts`` routes the cached
    backend through :class:`_ClassMergingExpander`.  Flagged
    ``fixture`` like :data:`BROKEN_MIS`, so production fuzz runs never
    see it.
    """
    if BROKEN_CSR_LAYOUT not in known_layouts():
        register_layout(BROKEN_CSR_LAYOUT, _ClassMergingExpander)
    if BROKEN_CSR in ALGORITHMS:
        return
    ALGORITHMS.add(
        BROKEN_CSR,
        _make_broken_mis,
        kind="view",
        needs="ids",
        domains=(
            {"graph": "path", "n": (6, 16)},
            {"graph": "cycle", "n": (6, 16)},
        ),
        layouts=("dict", "csr", BROKEN_CSR_LAYOUT),
        fixture=True,
        description="FIXTURE: layout whose class keys merge distinct balls",
    )


_INVERTED_RULE_CLASS = None


def _inverted_kernel_rule_class():
    """The planted-kernel rule class, built (and registered) once.

    Lazy like :func:`_make_broken_mis` so importing this module never
    pulls the algorithms package in; the class body is where the MRO
    shadowing happens — the subclass's registered kernel wins the
    lookup over :class:`LocalMaximumRule`'s honest one.
    """
    global _INVERTED_RULE_CLASS
    if _INVERTED_RULE_CLASS is None:
        from ..algorithms.view_rules import LocalMaximumRule
        from ..local_model.kernels import register_view_kernel

        class _InvertedKernelRule(LocalMaximumRule):
            """Honest ``output``; deliberately wrong registered kernel."""

        @register_view_kernel(_InvertedKernelRule)
        def _inverted_kernel(algorithm, rows):
            honest = rows.segment_max("ids") == rows.center("ids")
            return (~honest).astype(np.int64).tolist()

        _INVERTED_RULE_CLASS = _InvertedKernelRule
    return _INVERTED_RULE_CLASS


def _make_broken_kernel(radius: int = 1):
    return _inverted_kernel_rule_class()(radius=radius)


_STALE_CACHE_CLASS = None


def stale_cache_incremental_engine():
    """A fresh incremental engine that skips invalidating one ball.

    The subclass overrides exactly the seam
    :meth:`~repro.core.incremental.IncrementalEngine._dirty_nodes`
    documents for this purpose: after the honest radius-t footprint is
    computed, the highest-numbered *touched* node is dropped from the
    dirty set.  A touched node's class always changes under an edge op
    (its degree is part of even the radius-0 view) and under a label op
    (the label sits in its own packed stream), so the drop reliably
    leaves a stale memoized output behind — the minimal realistic
    invalidation bug.

    Built lazily like the other fixtures so importing this module never
    pulls the core engine in; pass this function itself as the
    ``incremental_factory`` of :func:`repro.conformance.fuzzer.
    run_case` to route the ``delta-identity`` check through the broken
    engine.
    """
    global _STALE_CACHE_CLASS
    if _STALE_CACHE_CLASS is None:
        from ..core.incremental import IncrementalEngine

        class _StaleCacheIncrementalEngine(IncrementalEngine):
            """FIXTURE: honest footprint minus one touched node."""

            def _dirty_nodes(self, delta, radius):
                dirty = super()._dirty_nodes(delta, radius)
                touched = delta.touched_nodes()
                if not touched:
                    return dirty
                drop = max(touched)
                return [v for v in dirty if v != drop]

        _STALE_CACHE_CLASS = _StaleCacheIncrementalEngine
    return _STALE_CACHE_CLASS()


_STALE_EVICTION_CLASS = None


def stale_eviction_service_engine():
    """A fresh service engine that resurrects evicted class tables.

    The subclass plants the minimal realistic eviction bug: a zero
    byte budget makes every request's table evict immediately, but
    :meth:`~repro.core.service.ServiceEngine._evict` keeps a ghost
    reference to the least-recently-used table it is about to drop,
    and :meth:`~repro.core.service.ServiceEngine._table_for` hands the
    ghost back — stale signature-keyed entries and all — the next time
    a *new* algorithm key asks for a fresh table.  Warm lookups for
    keys already live are untouched, so only the probe-then-serve
    sequence of the ``service-identity`` check exposes the pollution.

    Built lazily like the other fixtures; pass this function itself as
    the ``service_factory`` of :func:`repro.conformance.fuzzer.
    run_case` to route the check through the broken engine.
    """
    global _STALE_EVICTION_CLASS
    if _STALE_EVICTION_CLASS is None:
        from ..core.service import ServiceEngine

        class _StaleEvictionServiceEngine(ServiceEngine):
            """FIXTURE: eviction ghost resurrected for new table keys."""

            def __init__(self):
                super().__init__(max_bytes=0)
                self._ghost = None

            def _evict(self):
                if self._tables:
                    # Keep the dying LRU table alive past its eviction.
                    self._ghost = next(iter(self._tables.values()))
                return super()._evict()

            def _table_for(self, algorithm):
                table, warm, unkeyable = super()._table_for(algorithm)
                if warm or unkeyable or self._ghost is None:
                    return table, warm, unkeyable
                ghost, self._ghost = self._ghost, None
                for key, value in self._tables.items():
                    if value is table:
                        self._tables[key] = ghost
                        break
                return ghost, warm, unkeyable

        _STALE_EVICTION_CLASS = _StaleEvictionServiceEngine
    return _STALE_EVICTION_CLASS()


_BROKEN_IMPLICIT_CLASS = None


def _broken_implicit_cycle_class():
    """The wrong-port implicit cycle class, built once (lazy import)."""
    global _BROKEN_IMPLICIT_CLASS
    if _BROKEN_IMPLICIT_CLASS is None:
        from ..graphs.implicit import ImplicitCycle

        class _BrokenPortImplicitCycle(ImplicitCycle):
            """FIXTURE: ports swapped for every node except 0.

            The honest closed form gives node ``v >= 1`` the row
            ``(v-1, v+1 mod n)``; this one returns ``(v+1 mod n, v-1)``
            — the same cycle under a *different* (valid) port
            numbering, so only the packed ball streams betray it.
            """

            def _row(self, v):
                honest = super()._row(v)
                if v == 0:
                    return honest
                return (honest[1], honest[0])

        _BROKEN_IMPLICIT_CLASS = _BrokenPortImplicitCycle
    return _BROKEN_IMPLICIT_CLASS


def register_broken_implicit_fixture() -> None:
    """Register :data:`BROKEN_IMPLICIT` + its family (idempotent).

    The family's materialized factory is the honest
    :func:`repro.graphs.generators.cycle`; only its registered
    ``implicit_builder`` plants the wrong port numbering.  The
    algorithm is the correct port-insensitive local-max rule, so the
    reports agree and *only* the ``implicit-identity`` partition
    comparison can catch the drift.  Flagged ``fixture`` like the
    others, so production fuzz runs never see it.
    """
    from ..core.registry import GRAPH_FAMILIES

    if BROKEN_IMPLICIT_FAMILY not in GRAPH_FAMILIES:
        from ..graphs.generators import cycle

        GRAPH_FAMILIES.add(
            BROKEN_IMPLICIT_FAMILY,
            cycle,
            params=("n",),
            implicit=True,
            implicit_builder=_broken_implicit_cycle_class(),
            fixture=True,
            description="FIXTURE: implicit cycle with swapped ports",
        )
    if BROKEN_IMPLICIT in ALGORITHMS:
        return
    ALGORITHMS.add(
        BROKEN_IMPLICIT,
        _make_broken_mis,
        kind="view",
        needs="ids",
        domains=(
            {"graph": BROKEN_IMPLICIT_FAMILY, "n": (6, 16)},
        ),
        fixture=True,
        description="FIXTURE: graph family whose implicit twin swaps ports",
    )


_BROKEN_TRIAL_CLASS = None


def _broken_trial_algorithm_class():
    """The trial-flipping algorithm class, built (and registered) once.

    Lazy like :func:`_inverted_kernel_rule_class`; the finite-kernel
    registration on the subclass MRO-shadows the honest default kernel
    registered on :class:`~repro.speedup.algorithms.NodeAlgorithm` —
    the same override point a real finite-kernel author would use.
    """
    global _BROKEN_TRIAL_CLASS
    if _BROKEN_TRIAL_CLASS is None:
        from ..algorithms.kernels import node_algorithm_finite_kernel
        from ..local_model.kernels import register_finite_kernel
        from ..speedup.algorithms import NodeAlgorithm

        class _TrialFlippingAlgorithm(NodeAlgorithm):
            """Honest ``evaluate``; deliberately wrong finite kernel."""

        @register_finite_kernel(_TrialFlippingAlgorithm)
        def _flipping_kernel(algorithm, graph, values, tables):
            outputs, failing = node_algorithm_finite_kernel(
                algorithm, graph, values, tables
            )
            # Flip the trial's success: a failing run sheds its last
            # witness (possibly becoming "successful"), a successful
            # one gains a phantom.
            return outputs, (failing[:-1] if failing else [0])

        _BROKEN_TRIAL_CLASS = _TrialFlippingAlgorithm
    return _BROKEN_TRIAL_CLASS


def _make_broken_trial(k: int = 2, bits: int = 1):
    from ..speedup.algorithms import local_maximum_coloring

    honest = local_maximum_coloring(k, bits)
    return _broken_trial_algorithm_class()(
        k, 1, bits, 2, honest.fn, name=BROKEN_TRIAL
    )


def register_broken_trial_fixture() -> None:
    """Register :data:`BROKEN_TRIAL` (idempotent; flagged ``fixture``).

    The contract mirrors the production finite contracts (oriented
    tori, ``k`` pinned to 2); only the registered finite kernel is
    broken, so the ``layout-identity`` check's kernel-versus-reference
    comparison is what must catch it.
    """
    if BROKEN_TRIAL in ALGORITHMS:
        return
    _broken_trial_algorithm_class()
    ALGORITHMS.add(
        BROKEN_TRIAL,
        _make_broken_trial,
        kind="finite",
        domains=({"graph": "torus", "rows": (3, 5), "cols": (3, 5)},),
        fuzz_params={"k": 2, "bits": (1, 2)},
        layouts=("kernel",),
        deltas=0,
        fixture=True,
        description="FIXTURE: registered finite kernel flips one trial",
    )


def register_broken_kernel_fixture() -> None:
    """Register :data:`BROKEN_KERNEL` (idempotent; flagged ``fixture``).

    The reference ``output`` is the honest local-max rule, so the
    ``"dict"`` layout computes correct results; the ``"kernel"`` layout
    runs the planted inverted kernel instead, and the fuzzer's
    ``layout-identity`` check must flag the divergence — proving a
    wrong registered kernel cannot survive the pipeline.
    """
    if BROKEN_KERNEL in ALGORITHMS:
        return
    _inverted_kernel_rule_class()
    ALGORITHMS.add(
        BROKEN_KERNEL,
        _make_broken_kernel,
        kind="view",
        needs="ids",
        domains=(
            {"graph": "path", "n": (6, 16)},
            {"graph": "cycle", "n": (6, 16)},
        ),
        layouts=("dict", "kernel"),
        fixture=True,
        description="FIXTURE: registered view kernel inverts the rule",
    )
