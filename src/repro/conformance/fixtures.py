"""Intentionally-broken registrations that the fuzzer must catch.

The conformance subsystem's own acceptance test: an algorithm whose
``solves`` claim is *false*, registered on demand (never by
``ensure_builtins``), so the pipeline fuzz -> catch -> shrink ->
artifact -> replay can be exercised end to end.

:data:`BROKEN_MIS` claims :class:`repro.algorithms.view_rules.
LocalMaximumRule` solves MIS.  The rule's 1-nodes *are* independent
(two adjacent local maxima would each have to beat the other), but
nothing makes the set maximal — on a path with ascending identifiers
only the last node is marked, so interior nodes violate domination.
The minimal counterexample is a 3-node path, well under the 8-node
shrink target.
"""

from __future__ import annotations

from ..core.registry import ALGORITHMS

__all__ = ["BROKEN_MIS", "register_broken_fixture"]

#: Registry name of the broken fixture algorithm.
BROKEN_MIS = "broken-mis-claim"


def _make_broken_mis(radius: int = 1):
    from ..algorithms.view_rules import LocalMaximumRule

    return LocalMaximumRule(radius=radius)


def register_broken_fixture() -> None:
    """Register :data:`BROKEN_MIS` (idempotent; flagged ``fixture``).

    :func:`repro.conformance.contracts.collect_contracts` skips
    ``fixture``-flagged entries unless asked for them, so registering
    the fixture never contaminates a production fuzz run.
    """
    if BROKEN_MIS in ALGORITHMS:
        return
    ALGORITHMS.add(
        BROKEN_MIS,
        _make_broken_mis,
        kind="view",
        needs="ids",
        solves=("mis", {}),
        domains=(
            {"graph": "path", "n": (6, 16)},
            {"graph": "cycle", "n": (6, 16)},
        ),
        invariances=("determinism", "backend-identity",
                     "port-permutation", "label-order"),
        fixture=True,
        description="FIXTURE: falsely claims local-max solves MIS",
    )
