"""``python -m repro.conformance``: the conformance CLI.

Examples
--------
Fuzz every registered contract, 200 cases, fixed seed::

    python -m repro.conformance --cases 200 --seed 0

Shrink failures and write replayable artifacts::

    python -m repro.conformance --cases 200 --shrink --report artifacts

Fault-inject the sharded engine and self-test the pipeline end to end
(broken fixture caught -> shrunk -> artifact -> replayed)::

    python -m repro.conformance --faults --self-test

Smoke just the delta axis (incremental-engine mutation chains)::

    python -m repro.conformance --cases 100 --checks delta-identity

Exit status is 0 iff every requested pass succeeded.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .artifact import replay_artifact, write_repro_artifact
from .contracts import collect_contracts, contract_for
from .fixtures import (
    BROKEN_CSR,
    BROKEN_IMPLICIT,
    BROKEN_KERNEL,
    BROKEN_MIS,
    BROKEN_TRIAL,
    register_broken_fixture,
    register_broken_implicit_fixture,
    register_broken_kernel_fixture,
    register_broken_layout_fixture,
    register_broken_trial_fixture,
    stale_cache_incremental_engine,
    stale_eviction_service_engine,
)
from .fuzzer import CHECK_NAMES, run_case, sample_cases
from .shrink import shrink_case

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.conformance",
        description="Fuzz registered algorithm contracts on every backend.",
    )
    parser.add_argument("--cases", type=int, default=200,
                        help="number of fuzz cases (default 200)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed; cases derive from it (default 0)")
    parser.add_argument("--shrink", action="store_true",
                        help="delta-debug failing cases to minimal repros")
    parser.add_argument("--faults", action="store_true",
                        help="run the sharded-engine fault-injection suite")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the pipeline catches a broken fixture")
    parser.add_argument("--report", metavar="DIR", default=None,
                        help="directory for repro artifacts + summary.json")
    parser.add_argument("--list", action="store_true",
                        help="list fuzzable contracts and exit")
    parser.add_argument("--max-shrink-evals", type=int, default=400,
                        help="evaluation budget per shrink (default 400)")
    parser.add_argument("--checks", metavar="NAMES", default=None,
                        help="comma-separated checks to run (default: all); "
                             f"known: {', '.join(CHECK_NAMES)}")
    parser.add_argument("--kind", metavar="KIND", default=None,
                        choices=("local", "view", "edge", "finite"),
                        help="fuzz only contracts of one request kind "
                             "(default: all kinds)")
    return parser


def _parse_checks(spec: Optional[str]) -> Optional[set]:
    """``--checks a,b`` -> a validated set, ``None`` -> run everything."""
    if spec is None:
        return None
    names = {name.strip() for name in spec.split(",") if name.strip()}
    unknown = names - set(CHECK_NAMES)
    if unknown:
        raise SystemExit(
            f"unknown check name(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(CHECK_NAMES)})"
        )
    return names


def _list_contracts() -> int:
    for contract in collect_contracts():
        solves = (
            f"solves {contract.solves[0]}" if contract.solves else "no LCL"
        )
        print(
            f"{contract.algorithm:32s} kind={contract.kind:5s} {solves:28s} "
            f"domains={len(contract.domains)} "
            f"invariances={','.join(contract.invariances)} "
            f"layouts={','.join(contract.layouts) or '-'}"
        )
    return 0


def _run_fuzz(args: argparse.Namespace) -> int:
    contracts = collect_contracts()
    if args.kind:
        contracts = [c for c in contracts if c.kind == args.kind]
    if not contracts:
        print("no fuzzable contracts registered"
              + (f" for kind {args.kind!r}" if args.kind else ""))
        return 1
    checks = _parse_checks(args.checks)
    cases = sample_cases(contracts, args.cases, args.seed)
    failures = []
    for i, (contract, case) in enumerate(cases):
        result = run_case(contract, case, checks=checks)
        if result.ok:
            continue
        failures.append((i, result))
        for failure in result.failures:
            print(f"FAIL case {i} ({contract.algorithm}): {failure}")
        if args.shrink:
            shrunk = shrink_case(
                contract, case, result.failed_checks(),
                max_evaluations=args.max_shrink_evals,
            )
            print(f"  {shrunk.summary()}")
            if args.report:
                path = write_repro_artifact(
                    args.report, contract, shrunk.case, shrunk.failures
                )
                print(f"  repro artifact: {path}")
    scope = f" (checks: {', '.join(sorted(checks))})" if checks else ""
    print(
        f"conformance: {len(cases) - len(failures)}/{len(cases)} cases "
        f"passed across {len(contracts)} contracts{scope}"
    )
    return 1 if failures else 0


def _run_faults() -> int:
    from .faults import run_fault_suite

    outcomes = run_fault_suite()
    bad = 0
    for outcome in outcomes:
        status = "ok  " if outcome.ok else "FAIL"
        print(f"fault {status} {outcome.fault}: {outcome.detail}")
        bad += 0 if outcome.ok else 1
    print(f"faults: {len(outcomes) - bad}/{len(outcomes)} degradation "
          f"paths held")
    return 1 if bad else 0


def _run_self_test(args: argparse.Namespace) -> int:
    """Prove the pipeline catches, shrinks, and replays a planted bug."""
    register_broken_fixture()
    contract = contract_for(BROKEN_MIS)
    caught = None
    for _, case in sample_cases([contract], 20, args.seed):
        result = run_case(contract, case)
        if "verifier" in result.failed_checks():
            caught = (case, result)
            break
    if caught is None:
        print("self-test FAIL: broken fixture was never caught")
        return 1
    case, result = caught
    shrunk = shrink_case(
        contract, case, {"verifier"},
        max_evaluations=args.max_shrink_evals,
    )
    if shrunk.nodes > 8:
        print(f"self-test FAIL: shrunk to {shrunk.nodes} nodes (> 8)")
        return 1
    directory = args.report or "conformance-artifacts"
    path = write_repro_artifact(
        directory, contract, shrunk.case, shrunk.failures
    )
    replayed = replay_artifact(path)
    if "verifier" not in replayed.failed_checks():
        print(f"self-test FAIL: artifact {path} does not reproduce")
        return 1
    print(
        f"self-test ok: fixture caught, shrunk to {shrunk.nodes} nodes, "
        f"replayed from {path}"
    )
    return _run_layout_self_test(args)


def _run_layout_self_test(args: argparse.Namespace) -> int:
    """Prove the layout axis catches a class-merging CSR expander."""
    register_broken_layout_fixture()
    contract = contract_for(BROKEN_CSR)
    for _, case in sample_cases([contract], 20, args.seed):
        result = run_case(contract, case)
        if "layout-identity" in result.failed_checks():
            print(
                "self-test ok: broken CSR layout caught by layout-identity "
                f"on {case.graph_family} n={case.graph_params.get('n')}"
            )
            return _run_kernel_self_test(args)
    print("self-test FAIL: broken CSR layout was never caught")
    return 1


def _run_kernel_self_test(args: argparse.Namespace) -> int:
    """Prove the layout axis catches a wrong registered view kernel."""
    register_broken_kernel_fixture()
    contract = contract_for(BROKEN_KERNEL)
    for _, case in sample_cases([contract], 20, args.seed):
        result = run_case(contract, case)
        if "layout-identity" in result.failed_checks():
            print(
                "self-test ok: broken view kernel caught by layout-identity "
                f"on {case.graph_family} n={case.graph_params.get('n')}"
            )
            return _run_delta_self_test(args)
    print("self-test FAIL: broken view kernel was never caught")
    return 1


def _run_delta_self_test(args: argparse.Namespace) -> int:
    """Prove the delta axis catches an engine that skips invalidation."""
    contracts = [
        c for c in collect_contracts()
        if c.kind in ("view", "edge") and c.deltas > 0
    ]
    for contract, case in sample_cases(contracts, 40, args.seed):
        result = run_case(
            contract, case,
            checks={"delta-identity"},
            incremental_factory=stale_cache_incremental_engine,
        )
        if "delta-identity" in result.failed_checks():
            print(
                "self-test ok: stale-cache incremental engine caught by "
                f"delta-identity on {contract.algorithm} "
                f"({case.graph_family} n={case.graph_params.get('n')})"
            )
            return _run_implicit_self_test(args)
    print("self-test FAIL: stale-cache incremental engine was never caught")
    return 1


def _run_implicit_self_test(args: argparse.Namespace) -> int:
    """Prove the implicit axis catches a wrong-port closed form."""
    register_broken_implicit_fixture()
    contract = contract_for(BROKEN_IMPLICIT)
    for _, case in sample_cases([contract], 20, args.seed):
        result = run_case(contract, case)
        if "implicit-identity" in result.failed_checks():
            print(
                "self-test ok: wrong-port implicit family caught by "
                f"implicit-identity on {case.graph_family} "
                f"n={case.graph_params.get('n')}"
            )
            return _run_service_self_test(args)
    print("self-test FAIL: wrong-port implicit family was never caught")
    return 1


def _run_service_self_test(args: argparse.Namespace) -> int:
    """Prove the service axis catches a resurrected evicted table."""
    contracts = [
        c for c in collect_contracts() if c.kind in ("view", "edge")
    ]
    for contract, case in sample_cases(contracts, 40, args.seed):
        result = run_case(
            contract, case,
            checks={"service-identity"},
            service_factory=stale_eviction_service_engine,
        )
        if "service-identity" in result.failed_checks():
            print(
                "self-test ok: stale-eviction service engine caught by "
                f"service-identity on {contract.algorithm} "
                f"({case.graph_family} n={case.graph_params.get('n')})"
            )
            return _run_trial_self_test(args)
    print("self-test FAIL: stale-eviction service engine was never caught")
    return 1


def _run_trial_self_test(args: argparse.Namespace) -> int:
    """Prove the finite layout axis catches a trial-flipping kernel."""
    register_broken_trial_fixture()
    contract = contract_for(BROKEN_TRIAL)
    for _, case in sample_cases([contract], 20, args.seed):
        result = run_case(contract, case)
        if "layout-identity" in result.failed_checks():
            print(
                "self-test ok: trial-flipping finite kernel caught by "
                f"layout-identity on {case.graph_family} "
                f"rows={case.graph_params.get('rows')} "
                f"cols={case.graph_params.get('cols')}"
            )
            return 0
    print("self-test FAIL: trial-flipping finite kernel was never caught")
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.list:
        return _list_contracts()
    codes = [_run_fuzz(args)] if args.cases > 0 else []
    if args.faults:
        codes.append(_run_faults())
    if args.self_test:
        codes.append(_run_self_test(args))
    if args.report:
        os.makedirs(args.report, exist_ok=True)
        summary = {
            "cases": args.cases,
            "seed": args.seed,
            "exit_code": max(codes) if codes else 0,
        }
        with open(os.path.join(args.report, "conformance-summary.json"),
                  "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return max(codes) if codes else 0


if __name__ == "__main__":
    sys.exit(main())
