"""Conformance subsystem: registry-driven fuzzing of algorithm contracts.

Every algorithm registry entry that declares ``solves=`` and
``domains=`` metadata is a testable claim — "algorithm A solves LCL P
on family F" — and this package checks all of them mechanically:

* :mod:`~repro.conformance.contracts` reads the declarations;
* :mod:`~repro.conformance.fuzzer` samples randomized cases and checks
  halting, the LCL verifier, cross-backend bit-identity, determinism,
  and declared metamorphic invariances;
* :mod:`~repro.conformance.shrink` delta-debugs failures to minimal
  counterexamples;
* :mod:`~repro.conformance.artifact` writes/replays JSON repro files;
* :mod:`~repro.conformance.faults` injects worker crashes, poisoned
  payloads, and corrupted seeds into the sharded engine and asserts
  the documented degradation paths;
* ``python -m repro.conformance`` drives it all (see
  ``docs/CONFORMANCE.md``).
"""

from .artifact import (
    REPRO_SCHEMA,
    load_repro_artifact,
    replay_artifact,
    write_repro_artifact,
)
from .contracts import (
    KNOWN_INVARIANCES,
    Contract,
    collect_contracts,
    contract_for,
)
from .faults import FaultOutcome, run_fault_suite
from .fixtures import (
    BROKEN_CSR,
    BROKEN_CSR_LAYOUT,
    BROKEN_MIS,
    register_broken_fixture,
    register_broken_layout_fixture,
)
from .fuzzer import (
    BACKENDS,
    LAYOUT_BACKENDS,
    CaseResult,
    CaseSpec,
    CheckFailure,
    explicit_case,
    materialize_case,
    run_case,
    sample_cases,
)
from .shrink import ShrinkResult, minimal_repro, shrink_case

__all__ = [
    "BACKENDS",
    "BROKEN_CSR",
    "BROKEN_CSR_LAYOUT",
    "BROKEN_MIS",
    "LAYOUT_BACKENDS",
    "KNOWN_INVARIANCES",
    "REPRO_SCHEMA",
    "CaseResult",
    "CaseSpec",
    "CheckFailure",
    "Contract",
    "FaultOutcome",
    "ShrinkResult",
    "collect_contracts",
    "contract_for",
    "explicit_case",
    "load_repro_artifact",
    "materialize_case",
    "minimal_repro",
    "register_broken_fixture",
    "register_broken_layout_fixture",
    "replay_artifact",
    "run_case",
    "run_fault_suite",
    "sample_cases",
    "shrink_case",
    "write_repro_artifact",
]
