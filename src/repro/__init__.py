"""repro: a LOCAL-model laboratory for minimal symmetry breaking.

A full reproduction of *"Hardness of Minimal Symmetry Breaking in
Distributed Computing"* (Balliu, Hirvonen, Olivetti, Suomela — PODC
2019): the LOCAL model (node and edge variants), an LCL problem
framework with local verifiers, the paper's constructive algorithms
(Lemma 2's minimality reduction, Lemma 3/17's pointer-problem solvers,
the odd-degree O(1) weak 2-coloring, Cole-Vishkin, Linial coloring), an
executable speedup-simulation engine (Lemmas 7/8/14/15) with exact
failure probabilities, the quantitative lower-bound chain (Claims
10-12, 16; Lemma 9; Theorems 4-6, 13) as executable mathematics, and an
experiment harness regenerating every table and figure.

Quick start::

    from repro.graphs import balanced_regular_tree, sequential_ids
    from repro.algorithms import weak_two_coloring_from_ids
    from repro.lcl import WeakColoring

    tree = balanced_regular_tree(4, depth=5)
    out = weak_two_coloring_from_ids(tree, sequential_ids(tree))
    assert WeakColoring(2).is_feasible(tree, out.labels)
    print(f"weak 2-colored {tree.n} nodes in {out.rounds} rounds")

Subpackages
-----------
``repro.graphs``
    Port-numbered graphs, generators, orientations, identifier schemes.
``repro.local_model``
    The synchronous LOCAL simulator, views, and the edge-centric model.
``repro.instrumentation``
    Tracers and metrics: observe any engine run without perturbing it.
``repro.lcl``
    LCL problems: catalog, the pointer problem P*, homogeneous LCLs.
``repro.algorithms``
    The paper's constructive algorithms and classical baselines.
``repro.speedup``
    The speedup simulation engine — the paper's core contribution.
``repro.analysis``
    Tower arithmetic, recurrences, independence counting, bounds.
``repro.experiments``
    Runners regenerating Table 1, Figures 1-2, and the headline claims.
"""

__version__ = "1.0.0"

from . import (
    algorithms,
    analysis,
    experiments,
    graphs,
    instrumentation,
    lcl,
    local_model,
    lowerbounds,
    speedup,
)

__all__ = [
    "algorithms",
    "analysis",
    "experiments",
    "graphs",
    "instrumentation",
    "lcl",
    "local_model",
    "lowerbounds",
    "speedup",
    "__version__",
]
