"""A blocking client for the simulation daemon (stdlib ``http.client``).

:class:`ServiceClient` speaks the :mod:`repro.serve.protocol` wire
format over a persistent keep-alive connection and decodes responses
back into :class:`~repro.core.engine.SimReport` objects whose
:meth:`~repro.core.engine.SimReport.identity` matches the served
report bit for bit.  Server-side errors (structured JSON, never a
traceback) surface as :class:`ServiceError` carrying the HTTP status
and the server's error type/message.

Usage::

    with ServiceClient("127.0.0.1", 8787) as client:
        report = client.simulate({
            "kind": "view",
            "graph": {"family": "cycle", "params": {"n": 64}},
            "algorithm": {"name": "local-max", "params": {"radius": 1}},
            "ids": list(range(64)),
        })
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, List, Optional

from ..core.engine import SimReport
from .protocol import decode_report

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A structured error response from the daemon.

    ``status`` is the HTTP status code; ``error_type`` / ``message``
    mirror the server's JSON payload (``ProtocolError`` for 4xx spec
    rejections, the engine exception's type for 500s); ``degraded``
    carries the PR 4 degradation reason on timeout responses.
    """

    def __init__(
        self,
        status: int,
        error_type: str,
        message: str,
        degraded: Optional[str] = None,
    ):
        super().__init__(f"HTTP {status}: {error_type}: {message}")
        self.status = status
        self.error_type = error_type
        self.message = message
        self.degraded = degraded


class ServiceClient:
    """One keep-alive connection to a running daemon."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    def __enter__(self) -> "ServiceClient":
        """Open eagerly so connection errors surface at entry."""
        self._connection()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Close the underlying connection."""
        self.close()

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        """Drop the connection (the next call reconnects)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _call(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        body = None if payload is None else json.dumps(payload)
        headers = {"Content-Type": "application/json"}
        conn = self._connection()
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = json.loads(response.read().decode("utf-8"))
        except (ConnectionError, http.client.HTTPException, OSError):
            # A dropped keep-alive connection gets one clean retry.
            self.close()
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = json.loads(response.read().decode("utf-8"))
        if response.status >= 400:
            error = data.get("error", {})
            raise ServiceError(
                response.status,
                error.get("type", "Unknown"),
                error.get("message", ""),
                degraded=error.get("degraded"),
            )
        return data

    # -- API ------------------------------------------------------------
    def simulate(self, spec: Dict[str, Any]) -> SimReport:
        """Serve one spec; returns the decoded report."""
        return decode_report(self._call("POST", "/simulate", spec)["report"])

    def simulate_many(self, specs: List[Dict[str, Any]]) -> List[SimReport]:
        """Serve a batch in one round trip, order preserved."""
        data = self._call("POST", "/simulate", {"requests": list(specs)})
        return [decode_report(item) for item in data["reports"]]

    def healthz(self) -> Dict[str, Any]:
        """The daemon's liveness payload."""
        return self._call("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        """The engine's cross-request cache counters + server totals."""
        return self._call("GET", "/metrics")

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to stop after draining in-flight work."""
        return self._call("POST", "/shutdown")
