"""The simulation daemon: asyncio + hand-rolled HTTP/1.1, stdlib only.

:class:`ServiceServer` owns one long-lived
:class:`~repro.core.service.ServiceEngine` and serves it over four
routes:

==================  ===================================================
``POST /simulate``  one spec (``{...}``) or a batch
                    (``{"requests": [...]}``); responds ``{"report":
                    ...}`` / ``{"reports": [...]}``
``GET /healthz``    liveness: ``{"ok": true}`` once the engine answers
``GET /metrics``    the engine's cross-request cache counters plus
                    server totals
``POST /shutdown``  graceful stop (drains in-flight work, then exits)
==================  ===================================================

Concurrency model: every connection is one asyncio task; ``/simulate``
specs become ``(request, future)`` pairs on a queue that a single
dispatcher task drains in micro-batches into
:meth:`~repro.core.service.ServiceEngine.run_many` on a one-thread
executor.  Concurrent clients therefore *batch* (the tentpole's
traffic shape) while engine access stays serialized — the cache needs
no locks, and responses stay bit-identical to sequential direct runs.

Degradation contract: a malformed request is a structured 4xx
(:func:`~repro.serve.protocol.error_body` — type + message, never a
traceback); an engine failure is a structured 500; a request that
exceeds ``timeout`` seconds answers 503 with the PR 4 degradation
vocabulary (``pool-error: TimeoutError: ...``) instead of hanging the
connection.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from ..core.engine import SimRequest
from ..core.service import ServiceEngine
from .protocol import ProtocolError, build_request, encode_report, error_body

__all__ = ["ServiceServer"]

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 64 * 1024 * 1024


class _HTTPError(Exception):
    """An HTTP-layer rejection carrying its status code."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class ServiceServer:
    """The long-lived daemon around one :class:`ServiceEngine`.

    Parameters
    ----------
    host / port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start` — ``__main__`` prints it).
    engine:
        The warm engine to serve; ``None`` constructs a default
        :class:`~repro.core.service.ServiceEngine`.
    max_batch:
        Most specs one dispatcher micro-batch drains into a single
        ``run_many`` call.
    timeout:
        Per-request seconds before the connection gets a structured
        503 degradation response instead of waiting further.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        engine: Optional[ServiceEngine] = None,
        max_batch: int = 16,
        timeout: Optional[float] = None,
    ):
        self.host = host
        self.port = port
        self.engine = engine if engine is not None else ServiceEngine()
        self.max_batch = max(1, int(max_batch))
        self.timeout = timeout
        self.served = 0
        self.batches = 0
        self._queue: Optional[asyncio.Queue] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._algorithms: Dict[Any, Any] = {}

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket and start the dispatcher (idempotent)."""
        if self._server is not None:
            return
        self._queue = asyncio.Queue()
        self._shutdown = asyncio.Event()
        # One worker thread: engine access is serialized by design, so
        # the cross-request cache never needs a lock.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-engine"
        )
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Serve until ``POST /shutdown`` (or :meth:`request_shutdown`)."""
        await self.start()
        assert self._shutdown is not None
        await self._shutdown.wait()
        await self.stop()

    def request_shutdown(self) -> None:
        """Flag the server to stop after in-flight work drains."""
        if self._shutdown is not None:
            self._shutdown.set()

    async def stop(self) -> None:
        """Close the socket, drain the dispatcher, release the pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            except Exception:
                pass
            self._dispatcher = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self.engine.close()

    # -- dispatcher -----------------------------------------------------
    async def _dispatch_loop(self) -> None:
        assert self._queue is not None
        queue = self._queue
        loop = asyncio.get_event_loop()
        while True:
            first = await queue.get()
            batch: List[Tuple[SimRequest, asyncio.Future]] = [first]
            while len(batch) < self.max_batch:
                try:
                    batch.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            requests = [request for request, _ in batch]
            self.batches += 1
            try:
                reports = await loop.run_in_executor(
                    self._executor, self.engine.run_many, requests
                )
            except Exception as exc:  # engine failure -> every waiter
                for _, future in batch:
                    if not future.done():
                        future.set_exception(exc)
                continue
            for (_, future), report in zip(batch, reports):
                if not future.done():
                    future.set_result(report)

    async def _run_one(self, request: SimRequest) -> Any:
        assert self._queue is not None
        loop = asyncio.get_event_loop()
        future: asyncio.Future = loop.create_future()
        await self._queue.put((request, future))
        if self.timeout is None:
            return await future
        return await asyncio.wait_for(future, self.timeout)

    # -- HTTP layer -----------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    parsed = await self._read_request(reader)
                except asyncio.IncompleteReadError:
                    break
                if parsed is None:
                    break
                method, path, headers, body = parsed
                status, payload = await self._route(method, path, body)
                keep_alive = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                await self._write_response(
                    writer, status, payload, keep_alive
                )
                if not keep_alive:
                    break
        except (ConnectionError, _HTTPError) as exc:
            if isinstance(exc, _HTTPError):
                try:
                    await self._write_response(
                        writer, exc.status, error_body(exc), False
                    )
                except ConnectionError:
                    pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _readline(self, reader: asyncio.StreamReader) -> bytes:
        # StreamReader.readline raises ValueError past its own buffer
        # limit (64 KiB by default); surface that as a structured 431
        # instead of killing the connection task.
        try:
            return await reader.readline()
        except ValueError:
            raise _HTTPError(431, "request line or header too long") from None

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        request_line = await self._readline(reader)
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _HTTPError(400, f"malformed request line {parts!r}")
        method, path, _version = parts
        headers: Dict[str, str] = {}
        total = len(request_line)
        while True:
            line = await self._readline(reader)
            total += len(line)
            if total > _MAX_HEADER_BYTES:
                raise _HTTPError(431, "request headers too large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            raise _HTTPError(413, f"request body of {length} bytes too large")
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        keep_alive: bool,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        reason = {
            200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            431: "Request Header Fields Too Large",
            500: "Internal Server Error", 503: "Service Unavailable",
        }.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # -- routes ---------------------------------------------------------
    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        try:
            if path == "/simulate":
                if method != "POST":
                    return 405, error_body(
                        ProtocolError("/simulate requires POST")
                    )
                return await self._route_simulate(body)
            if path == "/healthz":
                return 200, {"ok": True, "engine": self.engine.name}
            if path == "/metrics":
                info = self.engine.service_info()
                info["served"] = self.served
                info["batches"] = self.batches
                return 200, info
            if path == "/shutdown":
                if method != "POST":
                    return 405, error_body(
                        ProtocolError("/shutdown requires POST")
                    )
                self.request_shutdown()
                return 200, {"ok": True, "shutting_down": True}
            return 404, error_body(ProtocolError(f"unknown path {path!r}"))
        except ProtocolError as exc:
            return 400, error_body(exc)
        except asyncio.TimeoutError as exc:
            reason = (
                f"pool-error: TimeoutError: request exceeded "
                f"{self.timeout}s service timeout"
            )
            return 503, error_body(exc, degraded=reason)
        except Exception as exc:  # structured 500, never a traceback
            return 500, error_body(exc)

    async def _route_simulate(
        self, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"request body is not JSON: {exc}") from None
        if isinstance(payload, dict) and "requests" in payload:
            specs = payload["requests"]
            if not isinstance(specs, list):
                raise ProtocolError("'requests' must be a list of specs")
            requests = [
                build_request(spec, self.engine, self._algorithms)
                for spec in specs
            ]
            reports = await asyncio.gather(
                *(self._run_one(request) for request in requests)
            )
            self.served += len(reports)
            return 200, {"reports": [encode_report(r) for r in reports]}
        request = build_request(payload, self.engine, self._algorithms)
        report = await self._run_one(request)
        self.served += 1
        return 200, {"report": encode_report(report)}
