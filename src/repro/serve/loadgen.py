"""Load generator: concurrent mixed traffic with identity verification.

Drives a running daemon with a reproducible mix of request kinds and
graph families (:func:`mixed_specs`), measures per-request latency
percentiles and aggregate throughput under N concurrent clients
(:func:`run_load`), and — the part that makes it a test and not just a
stopwatch — asserts every response bit-identical to a local direct
``simulate()`` of the same spec.

CLI::

    PYTHONPATH=src python -m repro.serve.loadgen --requests 50 \
        --clients 4 --spawn

``--spawn`` boots a fresh daemon subprocess on a free port, runs the
load, posts ``/shutdown``, and checks the daemon exits cleanly —
making the CI service smoke job a one-liner.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from ..core.engine import simulate
from .client import ServiceClient
from .protocol import build_request

__all__ = ["mixed_specs", "run_load", "spawn_daemon", "main"]


def mixed_specs(count: int, seed: int = 0, n: int = 48) -> List[Dict[str, Any]]:
    """A reproducible mix of specs across kinds, families, and rules.

    Cycles through view / edge / local templates over cycle, path, and
    torus families at size ~``n``.  Labelings derive deterministically
    from ``seed`` and the request index, so two calls with equal
    arguments produce byte-equal spec lists — which is what lets the
    smoke job verify responses against local ground truth.
    """
    import random

    specs: List[Dict[str, Any]] = []
    rows = max(3, int(n ** 0.5))
    templates: List[Tuple[str, Dict[str, Any], Dict[str, Any]]] = [
        ("view", {"family": "cycle", "params": {"n": n}},
         {"name": "local-max", "params": {"radius": 1}}),
        ("view", {"family": "path", "params": {"n": n}},
         {"name": "ball-signature", "params": {"radius": 2}}),
        ("view", {"family": "torus", "params": {"rows": rows, "cols": rows}},
         {"name": "random-priority", "params": {"radius": 1}}),
        ("edge", {"family": "cycle", "params": {"n": n}},
         {"name": "edge-parity", "params": {"rounds": 1}}),
        ("edge", {"family": "path", "params": {"n": n}},
         {"name": "edge-profile", "params": {"rounds": 1}}),
        ("local", {"family": "cycle", "params": {"n": n}},
         {"name": "luby-mis", "params": {}}),
        ("local", {"family": "path", "params": {"n": n}},
         {"name": "flood-leader-parity", "params": {}}),
    ]
    for i in range(count):
        kind, graph, algorithm = templates[i % len(templates)]
        size = graph["params"].get(
            "n", graph["params"].get("rows", 0) * graph["params"].get("cols", 1)
        )
        rng = random.Random(seed * 100003 + i)
        spec: Dict[str, Any] = {
            "kind": kind,
            "graph": graph,
            "algorithm": algorithm,
            "label": f"loadgen-{i}",
            "seed": seed + i,
        }
        name = algorithm["name"]
        if name in ("local-max", "luby-mis", "flood-leader-parity"):
            ids = list(range(1, size + 1))
            rng.shuffle(ids)
            spec["ids"] = ids
        if name in ("random-priority", "edge-profile"):
            spec["randomness"] = [rng.randrange(1 << 16) for _ in range(size)]
        specs.append(spec)
    return specs


def _percentile(latencies: List[float], q: float) -> float:
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def run_load(
    host: str,
    port: int,
    specs: List[Dict[str, Any]],
    clients: int = 4,
    verify: bool = True,
) -> Dict[str, Any]:
    """Fire ``specs`` at the daemon from ``clients`` concurrent threads.

    Each thread owns one keep-alive :class:`ServiceClient` and pulls
    specs from a shared queue, so the daemon sees genuinely concurrent
    traffic (which its dispatcher micro-batches).  With ``verify``,
    every response identity is compared against a local direct
    ``simulate()`` of the same spec; mismatches are counted and the
    offending labels reported.  Returns a JSON-ready summary with
    p50/p99 latency (seconds), throughput (requests/second), and error
    and mismatch counts.
    """
    lock = threading.Lock()
    pending = list(enumerate(specs))
    latencies: List[float] = []
    responses: List[Optional[Any]] = [None] * len(specs)
    errors: List[str] = []

    def worker() -> None:
        with ServiceClient(host, port) as client:
            while True:
                with lock:
                    if not pending:
                        return
                    index, spec = pending.pop()
                started = time.perf_counter()
                try:
                    report = client.simulate(spec)
                except Exception as exc:
                    with lock:
                        errors.append(f"{spec.get('label')}: {exc}")
                    continue
                elapsed = time.perf_counter() - started
                with lock:
                    latencies.append(elapsed)
                    responses[index] = report

    threads = [
        threading.Thread(target=worker, name=f"loadgen-{i}")
        for i in range(max(1, clients))
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    mismatches: List[str] = []
    if verify:
        for spec, report in zip(specs, responses):
            if report is None:
                continue
            expected = simulate(build_request(spec), engine="direct")
            if report.identity() != expected.identity():
                mismatches.append(str(spec.get("label")))
    completed = sum(1 for r in responses if r is not None)
    return {
        "requests": len(specs),
        "completed": completed,
        "clients": clients,
        "wall_seconds": wall,
        "throughput_rps": completed / wall if wall > 0 else 0.0,
        "p50_seconds": _percentile(latencies, 0.50),
        "p99_seconds": _percentile(latencies, 0.99),
        "errors": errors,
        "identity_mismatches": mismatches,
        "verified": bool(verify),
    }


def spawn_daemon(
    extra_args: Optional[List[str]] = None, startup_timeout: float = 30.0
) -> Tuple[subprocess.Popen, str, int]:
    """Boot ``python -m repro.serve`` on a free port; return (proc, host, port).

    Reads the daemon's ``listening on host:port`` line from stdout (the
    contract printed by ``repro.serve.__main__``).  Raises
    ``RuntimeError`` with the captured output if the daemon dies or
    stays silent past ``startup_timeout``.
    """
    args = [sys.executable, "-m", "repro.serve", "--port", "0"]
    args += list(extra_args or ())
    proc = subprocess.Popen(
        args,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + startup_timeout
    assert proc.stdout is not None
    while True:
        if time.monotonic() > deadline:
            proc.kill()
            raise RuntimeError("daemon did not announce its port in time")
        line = proc.stdout.readline()
        if not line:
            proc.wait()
            raise RuntimeError(
                f"daemon exited {proc.returncode} before listening"
            )
        if "listening on" in line:
            address = line.rsplit(" ", 1)[-1].strip()
            host, _, port = address.rpartition(":")
            return proc, host, int(port)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="drive the simulation daemon with verified mixed load",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787)
    parser.add_argument("--requests", type=int, default=50)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--n", type=int, default=48,
                        help="approximate graph size per request")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--no-verify", action="store_true",
                        help="skip local ground-truth identity checks")
    parser.add_argument("--spawn", action="store_true",
                        help="boot a fresh daemon, load it, shut it down")
    args = parser.parse_args(argv)

    specs = mixed_specs(args.requests, seed=args.seed, n=args.n)
    proc: Optional[subprocess.Popen] = None
    host, port = args.host, args.port
    try:
        if args.spawn:
            proc, host, port = spawn_daemon()
        summary = run_load(
            host, port, specs, clients=args.clients,
            verify=not args.no_verify,
        )
        if proc is not None:
            with ServiceClient(host, port) as client:
                client.shutdown()
            proc.wait(timeout=30)
            summary["daemon_exit"] = proc.returncode
            proc = None
    finally:
        if proc is not None:
            proc.kill()
            proc.wait()
    print(json.dumps(summary, indent=2))
    failed = (
        summary["errors"]
        or summary["identity_mismatches"]
        or summary["completed"] != summary["requests"]
        or summary.get("daemon_exit") not in (None, 0)
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
