"""Engine-as-a-service: the long-lived simulation daemon.

``python -m repro.serve`` boots an asyncio HTTP/JSON daemon (stdlib
only) that accepts :class:`~repro.core.engine.SimRequest` specs over
``POST /simulate``, validates them against the core registries,
micro-batches concurrent requests through the engine seam, and serves
them from a :class:`~repro.core.service.ServiceEngine`'s cross-request
caches — warm class tables, warm CSR layouts, warm ball partitions.

Layers:

* :mod:`repro.serve.protocol` — the wire format: a tagged JSON codec
  that round-trips report identities bit-exactly, spec validation
  against :data:`~repro.core.registry.GRAPH_FAMILIES` /
  :data:`~repro.core.registry.ALGORITHMS`, and structured
  :class:`~repro.serve.protocol.ProtocolError` payloads (never a
  traceback on the wire).
* :mod:`repro.serve.server` — the daemon: ``asyncio.start_server`` +
  hand-rolled HTTP/1.1, a micro-batching dispatcher, per-request
  timeouts that surface as the visible degradation contract, and
  ``/healthz`` / ``/metrics`` / ``/shutdown`` endpoints.
* :mod:`repro.serve.client` — a blocking ``http.client`` client that
  decodes responses back into :class:`~repro.core.engine.SimReport`.
* :mod:`repro.serve.loadgen` — a concurrent load generator measuring
  p50/p99 latency and throughput while asserting every response
  bit-identical to a local direct ``simulate()``.

Protocol reference: ``docs/SERVICE.md``.
"""

from .protocol import (
    ProtocolError,
    build_request,
    decode_report,
    decode_value,
    encode_report,
    encode_value,
)
from .server import ServiceServer

__all__ = [
    "ProtocolError",
    "ServiceServer",
    "build_request",
    "decode_report",
    "decode_value",
    "encode_report",
    "encode_value",
]
