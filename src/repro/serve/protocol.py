"""The service wire format: specs in, reports out, bit-exactly.

Two halves:

* A **tagged JSON codec** (:func:`encode_value` / :func:`decode_value`)
  that round-trips the value shapes engine reports actually contain.
  JSON has no tuples and only string dict keys, but report identities
  are built from tuples (edge keys, profile outputs) and edge-output
  dicts keyed by ``(u, v)`` — so tuples encode as ``{"__t": [...]}``
  and every dict encodes as an explicit pair list ``{"__m": [[k, v],
  ...]}``.  Decoding restores the original object graph exactly, which
  is what lets the conformance ``service-identity`` axis compare
  served identities bit-for-bit against direct ``simulate()``.
* A **spec layer** (:func:`validate_spec` / :func:`build_request`)
  that turns a client's JSON request description into a
  :class:`~repro.core.engine.SimRequest`, validating the graph family
  and algorithm names against the core registries first.  Validation
  failures raise :class:`ProtocolError`, which the server renders as a
  structured 4xx JSON body — never a traceback on the wire.

A spec is a JSON object::

    {"kind": "view",
     "graph": {"family": "cycle", "params": {"n": 128}},
     "algorithm": {"name": "local-max", "params": {"radius": 2}},
     "ids": [0, 1, ...],          # optional labelings
     "seed": 7, "label": "probe"} # optional determinism knobs

``graph.implicit: true`` requests the family's symbolic handle.  The
``rng`` / ``tables`` / ``orientation`` request fields have no wire
form (they are in-process objects); ``seed`` covers deterministic
randomness across the boundary.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..core.engine import KINDS, SimReport, SimRequest
from ..core.registry import (
    ALGORITHMS,
    GRAPH_FAMILIES,
    RegistryError,
    build_graph,
    ensure_builtins,
)

__all__ = [
    "ProtocolError",
    "encode_value",
    "decode_value",
    "encode_report",
    "decode_report",
    "validate_spec",
    "build_request",
    "error_body",
]


class ProtocolError(ValueError):
    """A malformed or unserviceable request (rendered as HTTP 4xx)."""


# -- tagged JSON codec --------------------------------------------------
def encode_value(value: Any) -> Any:
    """Encode ``value`` into JSON-safe form, reversibly.

    Scalars pass through; lists encode element-wise; tuples become
    ``{"__t": [...]}``; dicts become ``{"__m": [[key, value], ...]}``
    (pair lists, because JSON object keys are strings while edge
    outputs key by tuple).  Anything else — an arbitrary object — has
    no wire form and raises :class:`ProtocolError`.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {"__t": [encode_value(item) for item in value]}
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        return {
            "__m": [
                [encode_value(k), encode_value(v)] for k, v in value.items()
            ]
        }
    raise ProtocolError(
        f"value of type {type(value).__name__!r} has no wire encoding"
    )


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value` exactly."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    if isinstance(value, dict):
        if "__t" in value and len(value) == 1:
            return tuple(decode_value(item) for item in value["__t"])
        if "__m" in value and len(value) == 1:
            return {
                decode_value(k): decode_value(v) for k, v in value["__m"]
            }
        raise ProtocolError(f"undecodable JSON object: {sorted(value)!r}")
    raise ProtocolError(
        f"undecodable JSON value of type {type(value).__name__!r}"
    )


def encode_report(report: SimReport) -> Dict[str, Any]:
    """The JSON-safe form of one :class:`~repro.core.engine.SimReport`."""
    return {
        "kind": report.kind,
        "outputs": encode_value(report.outputs),
        "rounds": report.rounds,
        "halt_rounds": encode_value(report.halt_rounds),
        "failing_nodes": encode_value(report.failing_nodes),
        "backend": report.backend,
        "info": encode_value(report.info),
        "changed_nodes": encode_value(report.changed_nodes),
    }


def decode_report(data: Dict[str, Any]) -> SimReport:
    """Rebuild a :class:`~repro.core.engine.SimReport` from the wire.

    The decoded report's :meth:`~repro.core.engine.SimReport.identity`
    equals the served report's, bit for bit — the codec round-trip
    tests and the conformance ``service-identity`` axis pin this.
    """
    return SimReport(
        kind=data["kind"],
        outputs=decode_value(data["outputs"]),
        rounds=data["rounds"],
        halt_rounds=decode_value(data.get("halt_rounds")),
        failing_nodes=decode_value(data.get("failing_nodes")),
        backend=data.get("backend", ""),
        info=decode_value(data.get("info")) or {},
        changed_nodes=decode_value(data.get("changed_nodes")),
    )


# -- spec validation ----------------------------------------------------
_OPTIONAL_FIELDS = (
    "ids", "inputs", "randomness", "values", "seed", "deterministic",
    "max_rounds", "layout", "label",
)
_KNOWN_FIELDS = frozenset(("kind", "graph", "algorithm") + _OPTIONAL_FIELDS)


def _require_mapping(spec: Any, what: str) -> Dict[str, Any]:
    if not isinstance(spec, dict):
        raise ProtocolError(
            f"{what} must be a JSON object, got {type(spec).__name__}"
        )
    return spec


def validate_spec(spec: Any) -> Dict[str, Any]:
    """Check a raw JSON spec's shape and names; return it normalized.

    Raises :class:`ProtocolError` naming the offending field for every
    malformation: unknown fields, missing ``kind`` / ``graph`` /
    ``algorithm``, an unregistered family or algorithm name, or an
    algorithm whose registered ``kind`` does not match the request's.
    """
    spec = _require_mapping(spec, "request spec")
    unknown = sorted(set(spec) - _KNOWN_FIELDS)
    if unknown:
        raise ProtocolError(
            f"unknown spec field(s) {unknown} "
            f"(known: {sorted(_KNOWN_FIELDS)})"
        )
    kind = spec.get("kind")
    if kind not in KINDS:
        raise ProtocolError(f"unknown request kind {kind!r} (have {KINDS})")
    graph = _require_mapping(spec.get("graph"), "spec 'graph'")
    family = graph.get("family")
    if not isinstance(family, str):
        raise ProtocolError("spec 'graph' needs a string 'family'")
    ensure_builtins()
    if family not in GRAPH_FAMILIES:
        raise ProtocolError(
            f"unknown graph family {family!r} "
            f"(known: {', '.join(GRAPH_FAMILIES.names())})"
        )
    _require_mapping(graph.get("params", {}), "spec 'graph.params'")
    algorithm = _require_mapping(spec.get("algorithm"), "spec 'algorithm'")
    name = algorithm.get("name")
    if not isinstance(name, str):
        raise ProtocolError("spec 'algorithm' needs a string 'name'")
    if name not in ALGORITHMS:
        raise ProtocolError(
            f"unknown algorithm {name!r} "
            f"(known: {', '.join(ALGORITHMS.names())})"
        )
    registered_kind = ALGORITHMS.get(name).metadata.get("kind")
    if registered_kind is not None and registered_kind != kind:
        raise ProtocolError(
            f"algorithm {name!r} is registered for kind "
            f"{registered_kind!r}, not {kind!r}"
        )
    _require_mapping(algorithm.get("params", {}), "spec 'algorithm.params'")
    for field in ("ids", "inputs", "randomness", "values"):
        if field in spec and spec[field] is not None and not isinstance(
            spec[field], list
        ):
            raise ProtocolError(f"spec {field!r} must be a list or null")
    for field in ("seed", "max_rounds"):
        if field in spec and spec[field] is not None and not isinstance(
            spec[field], int
        ):
            raise ProtocolError(f"spec {field!r} must be an integer or null")
    for field in ("layout", "label"):
        if field in spec and not isinstance(spec[field], str):
            raise ProtocolError(f"spec {field!r} must be a string")
    return spec


def build_request(
    spec: Any,
    engine: Optional[Any] = None,
    algorithms: Optional[Dict[Any, Any]] = None,
) -> SimRequest:
    """Turn a validated spec into a :class:`~repro.core.engine.SimRequest`.

    ``engine`` (a :class:`~repro.core.service.ServiceEngine`) serves
    the graph from its warm LRU via
    :meth:`~repro.core.service.ServiceEngine.warm_graph`; without one,
    the graph is built cold through
    :func:`~repro.core.registry.build_graph` — the path the load
    generator uses for its local ground-truth runs.  ``algorithms``
    (a mutable mapping) memoizes constructed algorithm instances per
    ``(name, params)`` so repeat specs reuse one object.  Construction
    errors (bad factory parameters) surface as :class:`ProtocolError`.
    """
    spec = validate_spec(spec)
    graph_spec = spec["graph"]
    family = graph_spec["family"]
    params = dict(graph_spec.get("params", {}))
    implicit = bool(graph_spec.get("implicit"))
    try:
        if engine is not None:
            graph = engine.warm_graph(family, params, implicit=implicit)
        else:
            cold = dict(params)
            cold["graph"] = family
            if implicit:
                cold["implicit"] = True
            graph = build_graph(cold)
    except (RegistryError, ValueError) as exc:
        raise ProtocolError(f"cannot build graph: {exc}") from None
    algo_spec = spec["algorithm"]
    algo_params = dict(algo_spec.get("params", {}))
    algo_key = (
        algo_spec["name"], tuple(sorted(algo_params.items())),
    )
    algorithm = None
    if algorithms is not None:
        algorithm = algorithms.get(algo_key)
    if algorithm is None:
        try:
            algorithm = ALGORITHMS.create(algo_spec["name"], **algo_params)
        except (RegistryError, ValueError) as exc:
            raise ProtocolError(f"cannot build algorithm: {exc}") from None
        if algorithms is not None:
            algorithms[algo_key] = algorithm
    decoded: Dict[str, Any] = {}
    for field in ("ids", "inputs", "randomness", "values"):
        value = spec.get(field)
        decoded[field] = None if value is None else [
            decode_value(item) for item in value
        ]
    return SimRequest(
        kind=spec["kind"],
        graph=graph,
        algorithm=algorithm,
        ids=decoded["ids"],
        inputs=decoded["inputs"],
        randomness=decoded["randomness"],
        values=decoded["values"],
        seed=spec.get("seed"),
        deterministic=bool(spec.get("deterministic", False)),
        max_rounds=spec.get("max_rounds"),
        layout=spec.get("layout", "auto"),
        label=str(spec.get("label", "")),
    )


def error_body(exc: BaseException, degraded: Optional[str] = None) -> Dict[str, Any]:
    """The structured JSON error payload (type + message, no traceback)."""
    body: Dict[str, Any] = {
        "error": {"type": type(exc).__name__, "message": str(exc)}
    }
    if degraded is not None:
        body["error"]["degraded"] = degraded
    return body
