"""``python -m repro.serve`` — boot the simulation daemon.

Prints one machine-readable line once the socket is bound::

    repro.serve listening on 127.0.0.1:8787

(the load generator's ``--spawn`` mode parses it), then serves until
``POST /shutdown`` or SIGINT, draining in-flight work and releasing
the worker pool before exiting 0.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional

from ..core.service import ServiceEngine
from .server import ServiceServer

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments, run the daemon to completion, return exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="long-lived simulation daemon with a cross-request "
        "view-class cache (protocol: docs/SERVICE.md)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787,
                        help="0 picks a free port (printed on stdout)")
    parser.add_argument("--max-bytes", type=int, default=64 * 1024 * 1024,
                        help="class-table byte budget before LRU eviction")
    parser.add_argument("--max-graphs", type=int, default=32,
                        help="warm registry graphs retained")
    parser.add_argument("--max-batch", type=int, default=16,
                        help="max specs per dispatcher micro-batch")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-request seconds before a structured "
                        "503 degradation response")
    parser.add_argument("--shards", type=int, default=None,
                        help="worker processes for local/finite batches")
    args = parser.parse_args(argv)

    engine = ServiceEngine(
        max_bytes=args.max_bytes,
        max_graphs=args.max_graphs,
        shards=args.shards,
        timeout=args.timeout,
    )
    server = ServiceServer(
        host=args.host,
        port=args.port,
        engine=engine,
        max_batch=args.max_batch,
        timeout=args.timeout,
    )

    async def run() -> None:
        await server.start()
        print(
            f"repro.serve listening on {server.host}:{server.port}",
            flush=True,
        )
        await server.serve_until_shutdown()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
