"""Weak 2-coloring on cycles, in the window formalism — exact thresholds.

The neighborhood-graph method of :mod:`repro.lowerbounds.linial` adapts
to *weak* coloring: a t-round weak c-coloring algorithm for directed
cycles with identifier space ``{1..m}`` is a table ``f: windows ->
colors`` such that for every realizable run of ``2t + 3`` distinct
identifiers, the center window's color differs from at least one of its
two neighbor windows' colors (a ternary constraint, where proper
coloring had a binary one — hypergraph instead of graph coloring).

Exact consequences, machine-checked here:

* **Zero rounds**: a weak 2-coloring table on singleton windows exists
  iff no three distinct identifiers share a color — i.e. iff
  ``m <= 4`` (split 2 + 2).  Contrast χ(N_0(m)) = m for proper
  coloring: weak coloring is *strictly easier*, exactly the theme the
  paper builds on.
* **One round**: tables exist comfortably at every m the search
  reaches — again easier than proper 3-coloring, which dies at m = 7.

Searches are exact backtracking with unit-style propagation over the
ternary constraints.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .linial import Window, window_of, _windows

__all__ = [
    "weak_constraints",
    "weak_table_exists",
    "WeakCycleAlgorithm",
    "zero_round_weak2_threshold",
]


def weak_constraints(m: int, t: int) -> Tuple[List[Window], List[Tuple[int, int, int]]]:
    """Windows and ternary weak-coloring constraints for ``(m, t)``.

    Each constraint ``(prev, center, next)`` (window indices) forbids
    ``f(prev) == f(center) == f(next)``; one constraint per run of
    ``2t + 3`` distinct identifiers.
    """
    windows = _windows(m, t)
    index: Dict[Window, int] = {w: i for i, w in enumerate(windows)}
    length = 2 * t + 3
    if length > m:
        raise ValueError(
            f"constraints need runs of {length} distinct identifiers; m >= {length}"
        )
    constraints = []
    for run in itertools.permutations(range(1, m + 1), length):
        prev_w = run[0 : 2 * t + 1]
        center_w = run[1 : 2 * t + 2]
        next_w = run[2 : 2 * t + 3]
        constraints.append((index[prev_w], index[center_w], index[next_w]))
    return windows, constraints


def weak_table_exists(
    m: int, t: int, colors: int = 2
) -> Optional[List[int]]:
    """An exact weak-c-coloring window table, or ``None`` — by search.

    Backtracking over window colors; a constraint whose first two
    members are already equal forces the third to differ (propagated by
    checking completed constraints only — instances here are small).
    """
    windows, constraints = weak_constraints(m, t)
    n = len(windows)
    # Constraints touching each window, for incremental checking.
    touching: List[List[Tuple[int, int, int]]] = [[] for _ in range(n)]
    for c in constraints:
        for w in set(c):
            touching[w].append(c)

    # Window-enumeration order works well here (windows sharing prefixes
    # sit together, so constraints complete early); instances beyond
    # m = 6 at t = 1 grow expensive — keep exhibits within that range.
    assignment: List[Optional[int]] = [None] * n

    def violated(constraint: Tuple[int, int, int]) -> bool:
        a, b, c = constraint
        return (
            assignment[a] is not None
            and assignment[a] == assignment[b] == assignment[c]
        )

    def backtrack(idx: int) -> bool:
        if idx == n:
            return True
        for color in range(colors):
            assignment[idx] = color
            if not any(
                violated(c)
                for c in touching[idx]
                if all(assignment[w] is not None for w in c)
            ):
                if backtrack(idx + 1):
                    return True
        assignment[idx] = None
        return False

    if backtrack(0):
        return [int(x) for x in assignment]
    return None


@dataclass
class WeakCycleAlgorithm:
    """A t-round weak-coloring cycle algorithm from a window table."""

    t: int
    m: int
    table: Dict[Window, int]

    def run(self, ids: Sequence[int]) -> List[int]:
        """Weakly color a directed cycle given its identifier sequence."""
        n = len(ids)
        if len(set(ids)) != n:
            raise ValueError("identifiers must be distinct")
        return [self.table[window_of(ids, v, self.t)] for v in range(n)]

    @classmethod
    def from_search(cls, m: int, t: int, colors: int = 2) -> "WeakCycleAlgorithm":
        """Search for a table and package it; raises if none exists."""
        table = weak_table_exists(m, t, colors)
        if table is None:
            raise ValueError(f"no {colors}-color weak table exists for m={m}, t={t}")
        windows, _ = weak_constraints(m, t)
        return cls(t=t, m=m, table={w: table[i] for i, w in enumerate(windows)})


def zero_round_weak2_threshold(max_m: int = 8) -> int:
    """The largest m with a 0-round weak 2-coloring table (exactly 4).

    For m <= 4 the identifiers split 2 + 2 and no three distinct ones
    share a color; from m = 5 the pigeonhole forces a monochromatic
    triple, which some cycle realizes consecutively.
    """
    best = 0
    for m in range(3, max_m + 1):
        if weak_table_exists(m, 0) is not None:
            best = m
    return best
