"""Linial's neighborhood-graph argument, executable.

The paper's introduction describes two speedup-simulation flavors; the
first — Linial [17] and Naor [18] — argues on *neighborhood graphs*:

    A t-round algorithm coloring the directed n-cycle with identifiers
    from ``{1..m}`` sees a window of ``2t + 1`` identifiers.  Its output
    rule is exactly a node coloring of the neighborhood graph
    ``N_t(m)``: vertices are the distinct-identifier windows, with an
    edge between overlapping windows (two views that can occur at
    adjacent cycle nodes).  The rule is a correct c-coloring algorithm
    **iff** it is a *proper* c-coloring of ``N_t(m)``.

So ``chi(N_t(m)) <= c`` is *equivalent* to "c-coloring the cycle in t
rounds with identifier space m", and Linial's lower bound is the
statement ``chi(N_t(m)) >= log^(2t) m``.  This module builds ``N_t(m)``
concretely, decides c-colorability exactly (small instances), converts
any proper coloring of ``N_t(m)`` into a runnable cycle algorithm, and
exposes the iterated-log lower-bound evaluator — the lower-bound world
the paper generalizes away from cycles.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.towers import iterated_log
from ..graphs.graph import Graph
from ..lcl.catalog import ProperColoring

__all__ = [
    "neighborhood_graph",
    "window_of",
    "CycleAlgorithm",
    "algorithm_from_coloring",
    "chromatic_number",
    "is_c_colorable",
    "linial_chromatic_lower_bound",
    "min_rounds_for_3_coloring",
]

#: A radius-t window on the directed cycle: 2t+1 distinct identifiers.
Window = Tuple[int, ...]


def _windows(m: int, t: int) -> List[Window]:
    """All distinct-identifier windows of length 2t + 1 from {1..m}."""
    length = 2 * t + 1
    if length > m:
        raise ValueError(
            f"windows of {length} distinct identifiers need m >= {length}, got {m}"
        )
    return list(itertools.permutations(range(1, m + 1), length))


def neighborhood_graph(m: int, t: int) -> Tuple[Graph, List[Window]]:
    """The neighborhood graph ``N_t(m)`` plus the index -> window map.

    Vertices: windows ``(x_1, ..., x_{2t+1})`` of distinct identifiers.
    Edges: ``(x_1..x_{2t+1}) ~ (x_2..x_{2t+1}, y)`` whenever the
    concatenation keeps identifiers distinct — two such windows can be
    the views of adjacent nodes on a long directed cycle, so a correct
    algorithm must color them differently.
    """
    windows = _windows(m, t)
    index: Dict[Window, int] = {w: i for i, w in enumerate(windows)}
    graph = Graph(len(windows))
    length = 2 * t + 1
    for w in windows:
        shifted_base = w[1:]
        used = set(w)
        for y in range(1, m + 1):
            if y in used and y != w[0]:
                continue
            if y == w[0] and length > 1:
                continue  # would repeat within the successor window
            successor = shifted_base + (y,)
            if len(set(successor)) != length:
                continue
            j = index.get(successor)
            if j is not None and j != index[w] and not graph.has_edge(index[w], j):
                graph.add_edge(index[w], j)
    return graph.freeze(), windows


def window_of(ids: Sequence[int], position: int, t: int) -> Window:
    """The radius-t window of ``position`` on the directed cycle ``ids``."""
    n = len(ids)
    return tuple(ids[(position + offset) % n] for offset in range(-t, t + 1))


@dataclass
class CycleAlgorithm:
    """A t-round cycle-coloring algorithm as a window -> color table."""

    t: int
    m: int
    table: Dict[Window, int]

    def run(self, ids: Sequence[int]) -> List[int]:
        """Color a directed cycle given its identifier sequence."""
        n = len(ids)
        if len(set(ids)) != n:
            raise ValueError("identifiers must be distinct")
        if any(not 1 <= x <= self.m for x in ids):
            raise ValueError(f"identifiers must lie in 1..{self.m}")
        return [self.table[window_of(ids, v, self.t)] for v in range(n)]


def algorithm_from_coloring(
    coloring: Sequence[int], windows: Sequence[Window], m: int, t: int
) -> CycleAlgorithm:
    """Package a proper coloring of ``N_t(m)`` as a runnable algorithm."""
    return CycleAlgorithm(
        t=t, m=m, table={w: coloring[i] for i, w in enumerate(windows)}
    )


def is_c_colorable(graph: Graph, c: int) -> Optional[List[int]]:
    """A proper c-coloring of ``graph``, or ``None`` — exact.

    DSATUR-ordered backtracking: always branch on an uncolored vertex
    with the largest *saturation* (distinct neighbor colors), breaking
    ties by degree, and fail as soon as some vertex saturates all ``c``
    colors.  Exact and fast enough for the neighborhood graphs of the
    demonstrations (hundreds of vertices, small c).
    """
    n = graph.n
    if n == 0:
        return []
    colors: List[Optional[int]] = [None] * n
    # saturation[v] = set of neighbor colors.
    saturation: List[set] = [set() for _ in range(n)]
    uncolored = set(graph.nodes())

    def pick() -> int:
        return max(uncolored, key=lambda v: (len(saturation[v]), graph.degree(v)))

    def backtrack() -> bool:
        if not uncolored:
            return True
        v = pick()
        if len(saturation[v]) >= c:
            return False
        uncolored.discard(v)
        for color in range(c):
            if color in saturation[v]:
                continue
            colors[v] = color
            changed = []
            feasible = True
            for u in graph.neighbors(v):
                if colors[u] is None and color not in saturation[u]:
                    saturation[u].add(color)
                    changed.append(u)
                    if len(saturation[u]) >= c:
                        feasible = False
            if feasible and backtrack():
                return True
            for u in changed:
                saturation[u].discard(color)
            colors[v] = None
        uncolored.add(v)
        return False

    if backtrack():
        return [colors[v] for v in graph.nodes()]
    return None


def chromatic_number(graph: Graph, max_c: int = 16) -> int:
    """The exact chromatic number (small graphs; tries c = 1..max_c)."""
    if graph.n == 0:
        return 0
    for c in range(1, max_c + 1):
        if is_c_colorable(graph, c) is not None:
            return c
    raise ValueError(f"chromatic number exceeds {max_c}")


def linial_chromatic_lower_bound(m: int, t: int) -> float:
    """Linial's bound ``chi(N_t(m)) >= log^(2t) m`` (evaluated).

    The iterated logarithm is taken base 2 and clamped at 1; the
    lower-bound content is that 3-colorability forces
    ``log^(2t) m <= 3``, i.e. ``t >= (log* m - O(1)) / 2``.
    """
    return iterated_log(float(m), 2 * t).to_float()


def min_rounds_for_3_coloring(m: int, t_max: int = 2) -> Optional[int]:
    """The least ``t <= t_max`` with ``chi(N_t(m)) <= 3`` — exact.

    Returns ``None`` when even ``t_max`` rounds cannot 3-color cycles
    with identifier space ``m`` (by the neighborhood-graph equivalence,
    this is a *proof*, not an estimate).
    """
    for t in range(0, t_max + 1):
        if 2 * t + 1 > m:
            break
        graph, _ = neighborhood_graph(m, t)
        if is_c_colorable(graph, 3) is not None:
            return t
    return None
