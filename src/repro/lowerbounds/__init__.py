"""Classical lower-bound machinery: Linial's neighborhood graphs and
the weak-coloring window formalism."""

from .weak_cycle import (
    weak_constraints,
    weak_table_exists,
    WeakCycleAlgorithm,
    zero_round_weak2_threshold,
)
from .linial import (
    neighborhood_graph,
    window_of,
    CycleAlgorithm,
    algorithm_from_coloring,
    chromatic_number,
    is_c_colorable,
    linial_chromatic_lower_bound,
    min_rounds_for_3_coloring,
)

__all__ = [
    "neighborhood_graph",
    "window_of",
    "CycleAlgorithm",
    "algorithm_from_coloring",
    "chromatic_number",
    "is_c_colorable",
    "linial_chromatic_lower_bound",
    "min_rounds_for_3_coloring",
    "weak_constraints",
    "weak_table_exists",
    "WeakCycleAlgorithm",
    "zero_round_weak2_threshold",
]
