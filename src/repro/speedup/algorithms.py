"""Finite representations of anonymous randomized tree algorithms.

Section 5 treats a t-round algorithm on the oriented 2k-regular tree as
a function from the random-bit assignment of the radius-t ball to an
output.  Here that function is a first-class object:

* :class:`NodeAlgorithm` — maps assignments over ``OrientedBall(k, t)``
  (one value in ``[0, 2**bits)`` per ball node) to a hashable color;
* :class:`EdgeAlgorithm` — maps ``(dimension, assignment over
  EdgeBall(k, r, (dim, +1)))`` to a hashable color (edge outputs may
  legitimately depend on the edge's dimension).

Palette bookkeeping is *nominal*: the speedup transformations blow the
palette up doubly exponentially (2^{2c}, then 2^{2kc}), and the paper's
recurrences track those nominal sizes even though only a fraction of
the colors ever materializes.  ``palette`` records the nominal size as a
:class:`~repro.analysis.towers.TowerNumber` — after two round trips the
size is 2^(2^64), far beyond machine integers.

The module also ships the starter algorithms used by the experiments.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple, Union

from ..analysis.towers import TowerNumber
from ..core.registry import ALGORITHMS
from ..local_model.cache import KeyedCache
from .ball import EdgeBall, OrientedBall

__all__ = [
    "NodeAlgorithm",
    "EdgeAlgorithm",
    "zero_round_uniform",
    "local_maximum_coloring",
    "smaller_count_coloring",
    "two_round_local_maximum",
    "parity_coloring",
]

#: A random-value assignment to a ball: one value per ball node index.
Assignment = Tuple[int, ...]


class NodeAlgorithm:
    """A t-round anonymous randomized node algorithm on the oriented tree.

    Parameters
    ----------
    k:
        Number of dimensions (degree Delta = 2k).
    t:
        Round count / view radius.
    bits:
        Random bits per node; each ball node carries a value in
        ``[0, 2**bits)``.
    palette:
        Nominal palette size ``c`` (the paper's recurrences track this).
    fn:
        The algorithm: assignment over ``OrientedBall(k, t)`` -> color.
    name:
        Report label.
    """

    def __init__(
        self,
        k: int,
        t: int,
        bits: int,
        palette: Union[int, float, TowerNumber],
        fn: Callable[[Assignment], Any],
        name: str = "node-algorithm",
    ):
        if bits < 1:
            raise ValueError("need at least one random bit per node")
        if not isinstance(palette, TowerNumber):
            if palette < 1:
                raise ValueError("palette must be positive")
            palette = TowerNumber.from_float(float(palette))
        self.k = k
        self.t = t
        self.bits = bits
        self.palette = palette
        self.fn = fn
        self.name = name
        self.ball = OrientedBall(k, t)
        # Same shape of cache as the view engines' ViewCache: the key is
        # everything the node sees (here, the ball's random values).
        self.cache = KeyedCache()

    @property
    def delta(self) -> int:
        """The tree degree 2k."""
        return 2 * self.k

    @property
    def values(self) -> int:
        """Number of random values per node, ``2**bits``."""
        return 1 << self.bits

    def evaluate(self, assignment: Assignment) -> Any:
        """The output color for a full ball assignment (memoized)."""
        color = self.cache.get(assignment)
        if color is KeyedCache.MISS:
            if len(assignment) != self.ball.size:
                raise ValueError(
                    f"assignment has {len(assignment)} values, ball has {self.ball.size}"
                )
            color = self.cache.store(assignment, self.fn(assignment))
        return color

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeAlgorithm({self.name}, k={self.k}, t={self.t}, c={self.palette})"


class EdgeAlgorithm:
    """A weak-edge-coloring algorithm with endpoint-ball radius ``r``.

    In the paper's indexing this is a ``(r + 1)``-round edge algorithm:
    its view is ``B_r(u) ∪ B_r(v)``.  The callable receives the edge's
    dimension and the assignment over ``EdgeBall(k, r, (dim, +1))``.
    """

    def __init__(
        self,
        k: int,
        r: int,
        bits: int,
        palette: Union[int, float, TowerNumber],
        fn: Callable[[int, Assignment], Any],
        name: str = "edge-algorithm",
    ):
        if bits < 1:
            raise ValueError("need at least one random bit per node")
        if not isinstance(palette, TowerNumber):
            if palette < 1:
                raise ValueError("palette must be positive")
            palette = TowerNumber.from_float(float(palette))
        self.k = k
        self.r = r
        self.bits = bits
        self.palette = palette
        self.fn = fn
        self.name = name
        self.balls = {dim: EdgeBall(k, r, (dim, 1)) for dim in range(k)}
        self.cache = KeyedCache()

    @property
    def delta(self) -> int:
        """The tree degree 2k."""
        return 2 * self.k

    @property
    def values(self) -> int:
        """Number of random values per node, ``2**bits``."""
        return 1 << self.bits

    def evaluate(self, dim: int, assignment: Assignment) -> Any:
        """The output color of a dimension-``dim`` edge (memoized)."""
        key = (dim, assignment)
        color = self.cache.get(key)
        if color is KeyedCache.MISS:
            ball = self.balls[dim]
            if len(assignment) != ball.size:
                raise ValueError(
                    f"assignment has {len(assignment)} values, edge ball has {ball.size}"
                )
            color = self.cache.store(key, self.fn(dim, assignment))
        return color

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EdgeAlgorithm({self.name}, k={self.k}, r={self.r}, c={self.palette})"


# ----------------------------------------------------------------------
# Starter algorithms
# ----------------------------------------------------------------------
def zero_round_uniform(k: int, colors: int, bits: Optional[int] = None) -> NodeAlgorithm:
    """The optimal 0-round algorithm: a uniformly random color.

    With ``bits = ceil(log2 colors)`` and ``colors`` a power of two the
    output is exactly uniform — the distribution Claim 12 identifies as
    the best any 0-round algorithm can do (failure ``>= 1 / c**Delta``).
    """
    if bits is None:
        bits = max(1, (colors - 1).bit_length())
    if (1 << bits) % colors != 0:
        raise ValueError(
            f"2**{bits} values cannot be split evenly into {colors} colors; "
            "pick a power-of-two palette for exactness"
        )

    def fn(assignment: Assignment) -> int:
        return assignment[0] % colors

    return NodeAlgorithm(k, 0, bits, colors, fn, name=f"uniform-{colors}")


def local_maximum_coloring(k: int, bits: int = 1) -> NodeAlgorithm:
    """1-round weak 2-coloring attempt: black iff a strict local maximum.

    A node outputs 1 iff its own value strictly exceeds all 2k neighbor
    values.  Not a correct weak coloring — it fails wherever randomness
    cooperates badly — but its failure probability is strictly better
    than uniform guessing, making it the canonical pipeline seed.
    """
    ball = OrientedBall(k, 1)
    neighbor_idx = [ball.index[(d,)] for d in ball.directions]

    def fn(assignment: Assignment) -> int:
        mine = assignment[0]
        return 1 if all(mine > assignment[i] for i in neighbor_idx) else 0

    return NodeAlgorithm(k, 1, bits, 2, fn, name="local-maximum")


def smaller_count_coloring(k: int, bits: int = 1) -> NodeAlgorithm:
    """1-round weak (2k+1)-coloring attempt: count strictly smaller neighbors.

    The anonymous analogue of the Naor-Stockmeyer in-degree labeling;
    palette ``2k + 1``.
    """
    ball = OrientedBall(k, 1)
    neighbor_idx = [ball.index[(d,)] for d in ball.directions]

    def fn(assignment: Assignment) -> int:
        mine = assignment[0]
        return sum(1 for i in neighbor_idx if assignment[i] < mine)

    return NodeAlgorithm(k, 1, bits, 2 * k + 1, fn, name="smaller-count")


def two_round_local_maximum(k: int, bits: int = 1) -> NodeAlgorithm:
    """2-round weak 2-coloring attempt: black iff a radius-2 maximum.

    A node outputs 1 iff its value strictly exceeds every value in its
    radius-2 ball.  The canonical seed for the *double* round trip: the
    pipeline walks it 2 -> 1 -> 0, exercising the induction of Claim 11
    with more than one step.
    """
    ball = OrientedBall(k, 2)

    def fn(assignment: Assignment) -> int:
        mine = assignment[0]
        return 1 if all(mine > x for x in assignment[1:]) else 0

    return NodeAlgorithm(k, 2, bits, 2, fn, name="two-round-local-maximum")


def parity_coloring(k: int, bits: int = 1) -> NodeAlgorithm:
    """1-round 2-coloring attempt: parity of the ball's value sum.

    A deliberately *bad* algorithm (its failure probability is bounded
    away from 0 regardless of bits) used by tests and the ablation
    benches as a negative control.
    """

    def fn(assignment: Assignment) -> int:
        return sum(assignment) % 2

    return NodeAlgorithm(k, 1, bits, 2, fn, name="parity")


# ----------------------------------------------------------------------
# Conformance contracts for the "finite" request kind
# ----------------------------------------------------------------------
# The radius-1 starters are fuzzable on oriented tori (the family the
# finite runner accepts: locally tree-like at radius 1, orientation
# rebuilt from rows/cols).  ``k`` is pinned to 2 — a 2-dimensional
# torus has exactly two oriented dimensions.  No ``solves`` claim: a
# weak-coloring *attempt* legitimately fails on bad randomness, so the
# contracts promise identity, not correctness; the default ``finite``
# layout axis ``("kernel",)`` turns every fuzz case into a
# batched-kernel-versus-reference cross-proof.
ALGORITHMS.add(
    "finite-local-maximum",
    local_maximum_coloring,
    kind="finite",
    domains=({"graph": "torus", "rows": (3, 6), "cols": (3, 6)},),
    fuzz_params={"k": 2, "bits": (1, 2)},
    invariances=("determinism", "backend-identity"),
    deltas=0,
    description="1-round local-maximum attempt on oriented tori",
)
ALGORITHMS.add(
    "finite-smaller-count",
    smaller_count_coloring,
    kind="finite",
    domains=({"graph": "torus", "rows": (3, 6), "cols": (3, 6)},),
    fuzz_params={"k": 2, "bits": (1, 2)},
    invariances=("determinism", "backend-identity"),
    deltas=0,
    description="1-round smaller-count attempt on oriented tori",
)
