"""The full speedup pipeline: iterate Lemmas 7 and 8 down to zero rounds.

Starting from any t-round weak-coloring node algorithm, alternate the
two speedup transformations; each node->edge->node round trip costs one
round of radius and squares-and-exponentiates the nominal palette,
while the local failure probability degrades within the lemma bounds.
Claim 11's recurrence is this pipeline run symbolically; here it runs
*concretely*, with exact rational failure probabilities wherever
enumeration is feasible.

The records returned expose, per stage: kind, radius, nominal palette,
threshold used, measured failure, and the failure bound predicted by
the lemma from the previous stage — so tests and benches can assert
``measured <= bound`` mechanically (Figures 1 and 2 made quantitative).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Optional

from ..analysis.towers import TowerNumber
from ..core.engine import derive_seed
from ..instrumentation.tracer import Tracer, effective_tracer

from .algorithms import NodeAlgorithm
from .failure import FailureEstimate, edge_local_failure, node_local_failure
from .transform import (
    first_lemma_bound,
    first_speedup,
    paper_threshold_first,
    paper_threshold_second,
    second_lemma_bound,
    second_speedup,
)

__all__ = ["PipelineStage", "SpeedupPipelineResult", "run_speedup_pipeline"]


@dataclass
class PipelineStage:
    """One rung of the speedup ladder."""

    kind: str  # "node" or "edge"
    radius: int  # node radius t, or edge endpoint-ball radius r
    nominal_palette: TowerNumber
    measured_failure: FailureEstimate
    lemma_bound: Optional[float]  # bound implied by the previous stage, if any
    threshold: Optional[Fraction]  # threshold used to *construct* this stage
    name: str

    def bound_satisfied(self) -> Optional[bool]:
        """Whether measured failure respects the lemma bound (None if no bound)."""
        if self.lemma_bound is None:
            return None
        return self.measured_failure.as_float() <= self.lemma_bound + 1e-12


@dataclass
class SpeedupPipelineResult:
    """The whole ladder, top (slow, few colors) to bottom (0 rounds)."""

    stages: List[PipelineStage] = field(default_factory=list)

    def final_failure(self) -> float:
        """Failure probability of the 0-round endpoint."""
        return self.stages[-1].measured_failure.as_float()

    def all_bounds_hold(self) -> bool:
        """Whether every stage respects its lemma bound."""
        return all(s.bound_satisfied() is not False for s in self.stages)


def run_speedup_pipeline(
    start: NodeAlgorithm,
    method: str = "auto",
    samples: int = 100_000,
    threshold_override: Optional[Fraction] = None,
    tracer: Optional[Tracer] = None,
    base_seed: int = 0,
    layout: str = "auto",
) -> SpeedupPipelineResult:
    """Iterate first/second speedup until the node radius hits zero.

    Parameters
    ----------
    start:
        A node algorithm with radius >= 1.
    method:
        Failure evaluation method (``auto`` / ``exact`` / ``monte_carlo``).
    samples:
        Monte Carlo budget when sampling is needed.
    threshold_override:
        Fix the frequency threshold ``f`` for every transformation
        instead of the paper's per-stage optimizing choice — the knob
        the ablation bench sweeps.
    tracer:
        Optional :class:`~repro.instrumentation.Tracer`; sees one
        :meth:`~repro.instrumentation.Tracer.on_stage` per ladder rung
        (kind, radius, measured failure, lemma bound).
    base_seed:
        Base seed for Monte Carlo stages; each stage's rng is derived
        via :func:`repro.core.derive_seed` labeled by the stage index
        and algorithm name, so stage estimates are independent and the
        whole ladder is reproducible from one integer.  Ignored when
        every stage evaluates exactly.
    layout:
        ``"kernel"`` batches every Monte Carlo stage through
        :mod:`repro.speedup.trial_kernel` — identical estimates and rng
        streams, declined per stage when not vectorizable; ``"auto"``
        keeps the reference sample loops.
    """
    tracer = effective_tracer(tracer)
    if tracer is not None:
        tracer.on_run_start("pipeline", start.name, start.t)

    def stage_rng(index: int, name: str) -> random.Random:
        return random.Random(derive_seed(base_seed, f"pipeline:{index}:{name}"))

    def note(stage: PipelineStage) -> None:
        if tracer is not None:
            tracer.on_stage(
                stage.kind,
                stage.radius,
                {
                    "name": stage.name,
                    "measured_failure": stage.measured_failure.as_float(),
                    "lemma_bound": stage.lemma_bound,
                    "threshold": None if stage.threshold is None else float(stage.threshold),
                },
            )

    result = SpeedupPipelineResult()
    node = start
    p = node_local_failure(node, method=method, samples=samples,
                           rng=stage_rng(0, node.name), layout=layout)
    result.stages.append(
        PipelineStage(
            kind="node",
            radius=node.t,
            nominal_palette=node.palette,
            measured_failure=p,
            lemma_bound=None,
            threshold=None,
            name=node.name,
        )
    )
    note(result.stages[-1])

    while node.t >= 1:
        delta = node.delta
        c = node.palette
        p_val = p.as_float()
        f1 = threshold_override or paper_threshold_first(p_val, c, delta)
        edge = first_speedup(node, f1)
        p_edge = edge_local_failure(edge, method=method, samples=samples,
                                    rng=stage_rng(len(result.stages), edge.name),
                                    layout=layout)
        result.stages.append(
            PipelineStage(
                kind="edge",
                radius=edge.r,
                nominal_palette=edge.palette,
                measured_failure=p_edge,
                lemma_bound=first_lemma_bound(p_val, c, delta),
                threshold=f1,
                name=edge.name,
            )
        )
        note(result.stages[-1])

        c_edge = edge.palette
        p_edge_val = p_edge.as_float()
        f2 = threshold_override or paper_threshold_second(p_edge_val, c_edge, delta)
        node = second_speedup(edge, f2)
        p = node_local_failure(node, method=method, samples=samples,
                               rng=stage_rng(len(result.stages), node.name),
                               layout=layout)
        result.stages.append(
            PipelineStage(
                kind="node",
                radius=node.t,
                nominal_palette=node.palette,
                measured_failure=p,
                lemma_bound=second_lemma_bound(p_edge_val, c_edge, delta),
                threshold=f2,
                name=node.name,
            )
        )
        note(result.stages[-1])

    if tracer is not None:
        tracer.on_run_end(len(result.stages))
    return result
