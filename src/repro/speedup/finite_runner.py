"""Running oriented-tree algorithms on finite oriented graphs.

The speedup engine studies algorithms as functions of *oriented tree
balls*.  To connect those objects to global failure probabilities on
finite networks (Claim 10's amplification, Lemma 9's endgame), this
module evaluates a :class:`~repro.speedup.algorithms.NodeAlgorithm` on
every node of a finite consistently-oriented graph: each node walks its
ball's direction words through the orientation and reads off the random
values it finds.

Soundness requires the graph to *locally look like* the oriented tree
up to the algorithm's radius: distinct ball words must reach distinct
nodes.  Tori satisfy this exactly for radius-1 algorithms (their moves
commute, so radius >= 2 words like RU/UR collide); the runner checks
injectivity per node and refuses unsound combinations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..graphs.graph import Graph
from ..graphs.orientation import Orientation
from ..instrumentation.tracer import Tracer, effective_tracer
from .algorithms import NodeAlgorithm
from .ball import Word

__all__ = [
    "FiniteRunResult",
    "resolve_ball_tables",
    "run_node_algorithm_on_oriented_graph",
    "estimate_global_success",
]


@dataclass
class FiniteRunResult:
    """One evaluation of a tree algorithm on a finite oriented graph."""

    outputs: List[object]
    failing_nodes: List[int]

    @property
    def succeeded(self) -> bool:
        """Whether the output is a (global) weak coloring."""
        return not self.failing_nodes


def _resolve(orientation: Orientation, start: int, word: Word) -> Optional[int]:
    """Follow a direction word from ``start``; None if a move is missing."""
    node = start
    for dim, sign in word:
        nxt = orientation.neighbor(node, dim, sign)
        if nxt is None:
            return None
        node = nxt
    return node


def resolve_ball_tables(
    alg: NodeAlgorithm, graph: Graph, orientation: Orientation
) -> List[List[int]]:
    """Per-node tables: the graph node each ball word reaches.

    Precompute once and pass to :func:`run_node_algorithm_on_oriented_graph`
    when running many trials on the same graph.  A node's cache key is
    its table projected through the trial's random values —
    :func:`~repro.local_model.cache.ball_assignment_key`, the same
    keying function the canonical-view cache builds on.

    Raises
    ------
    ValueError
        If some node's ball words do not reach pairwise-distinct nodes
        (the graph is not locally tree-like at the algorithm's radius),
        or a move leaves the oriented region.
    """
    tables: List[List[int]] = []
    for v in graph.nodes():
        resolved = []
        for word in alg.ball.words:
            node = _resolve(orientation, v, word)
            if node is None:
                raise ValueError(
                    f"node {v}: direction word {word} leaves the oriented region"
                )
            resolved.append(node)
        if len(set(resolved)) != len(resolved):
            raise ValueError(
                f"node {v}: ball words collide — the graph is not locally "
                f"tree-like at radius {alg.t}"
            )
        tables.append(resolved)
    return tables


def run_node_algorithm_on_oriented_graph(
    alg: NodeAlgorithm,
    graph: Graph,
    orientation: Orientation,
    values: Sequence[int],
    tables: Optional[List[List[int]]] = None,
    tracer: Optional[Tracer] = None,
) -> FiniteRunResult:
    """Evaluate ``alg`` at every node, given per-node random values.

    Parameters
    ----------
    values:
        One random value in ``[0, alg.values)`` per node — the graph's
        random-bit assignment.
    tables:
        Precomputed :func:`resolve_ball_tables` output (resolved and
        validated once per (algorithm, graph) instead of per call).
    tracer:
        Optional :class:`~repro.instrumentation.Tracer`; sees one
        ``on_view`` per node (the resolved ball) plus run start/end.

    Raises
    ------
    ValueError
        Propagated from :func:`resolve_ball_tables` when the graph is
        not locally tree-like at the algorithm's radius.

    The evaluation loop lives behind the engine seam (the ``"finite"``
    request kind of :class:`~repro.core.direct.DirectEngine`); this
    entry point is a signature-stable adapter over
    :func:`repro.core.simulate`.
    """
    from ..core.direct import DirectEngine
    from ..core.engine import SimRequest

    report = DirectEngine().run(
        SimRequest(
            kind="finite",
            graph=graph,
            algorithm=alg,
            orientation=orientation,
            values=values,
            tables=tables,
        ),
        tracer=tracer,
    )
    return report.to_finite_result()


def _estimate_batched(
    alg: NodeAlgorithm,
    graph: Graph,
    trials: int,
    rng: random.Random,
    tables: List[List[int]],
    tracer: Optional[Tracer],
) -> Optional[float]:
    """The ``layout="kernel"`` trial batch; ``None`` declines to the loop.

    Draws all ``trials * n`` random values as one stream-faithful block
    (:func:`~repro.speedup.trial_kernel.draw_randrange_block` — same
    values, same final ``rng`` state as the scalar loop), evaluates
    every trial through the distinct-assignment kernel, and replays the
    scalar loop's ``on_trial`` sequence from the per-trial failing
    counts.  Declines *before* touching ``rng``, so a declined batch
    leaves the scalar fallback bit-identical to a run that never tried.
    """
    from . import trial_kernel as tk

    n = graph.n
    if n > 0 and tk.encode_reason(alg.values, len(alg.ball.words)) is not None:
        return None
    if tracer is not None:
        tracer.on_run_start("finite", alg.name, n, trials=trials)
    if n == 0:
        counts = np.zeros(trials, dtype=np.int64)
    else:
        matrix = tk.draw_randrange_block(
            rng, alg.values, trials * n
        ).reshape(trials, n)
        codes, _, _ = tk.assignment_codes(alg, matrix, tables)
        counts = tk.fail_counts(codes, *tk.arc_arrays(graph))
    successes = int((counts == 0).sum())
    if tracer is not None:
        for i, failing in enumerate(counts.tolist()):
            tracer.on_trial(i, failing == 0, failing)
        tracer.on_run_end(alg.t)
    return successes / trials


def estimate_global_success(
    alg: NodeAlgorithm,
    graph: Graph,
    orientation: Orientation,
    trials: int,
    rng: Optional[random.Random] = None,
    tracer: Optional[Tracer] = None,
    layout: str = "auto",
) -> float:
    """Monte Carlo estimate of Pr[the whole graph is weakly colored].

    An optional ``tracer`` observes one
    :meth:`~repro.instrumentation.Tracer.on_trial` per trial.

    ``layout="kernel"`` runs all trials through the batched
    distinct-assignment kernel (:mod:`repro.speedup.trial_kernel`):
    the same success count, the same per-trial outcomes, the same
    ``on_trial`` sequence, and the same final ``rng`` state as the
    scalar loop — proven by ``tests/test_speedup_kernels.py`` — at a
    fraction of the cost.  Unsupported algorithms decline back to the
    scalar loop before any randomness is drawn.  (The batch does not
    replay the *nested* per-trial run events a globally installed
    tracer would see from the scalar loop's inner engine runs.)
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    rng = rng or random.Random(0)
    tables = resolve_ball_tables(alg, graph, orientation)
    tracer = effective_tracer(tracer)
    if layout == "kernel":
        estimate = _estimate_batched(alg, graph, trials, rng, tables, tracer)
        if estimate is not None:
            return estimate
    if tracer is not None:
        tracer.on_run_start("finite", alg.name, graph.n, trials=trials)
    successes = 0
    for i in range(trials):
        values = [rng.randrange(alg.values) for _ in graph.nodes()]
        run = run_node_algorithm_on_oriented_graph(
            alg, graph, orientation, values, tables=tables
        )
        if run.succeeded:
            successes += 1
        if tracer is not None:
            tracer.on_trial(i, run.succeeded, len(run.failing_nodes))
    if tracer is not None:
        tracer.on_run_end(alg.t)
    return successes / trials
