"""Oriented balls of the infinite 2k-regular tree.

The speedup simulation of Sections 5-7 lives on the *infinite*
consistently-oriented 2k-regular tree: every node has exactly one
neighbor in each of the 2k directions ``(dim, sign)``, ``dim < k``,
``sign in {+1, -1}``.  A node of the radius-t ball around a center is
addressed by its *non-backtracking direction word* — the unique reduced
sequence of directions leading to it.  This module provides:

* :class:`OrientedBall` — the indexed node set of ``B_t``, with
  neighbor lookup and the *shift maps* that re-index a neighbor's ball
  inside the center's larger ball (the workhorse of the simulation:
  "edge e knows part of the radius-t neighborhood of u and v");
* :class:`EdgeBall` — the union ``B_r(a) ∪ B_r(b)`` for an oriented
  edge, canonically indexed from the low endpoint.

Words are tuples of ``(dim, sign)`` pairs; the empty word is the center.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Direction",
    "Word",
    "inverse",
    "all_directions",
    "reduce_word",
    "OrientedBall",
    "EdgeBall",
]

#: A direction of the oriented tree.
Direction = Tuple[int, int]

#: A reduced direction word addressing a node relative to a center.
Word = Tuple[Direction, ...]


def inverse(direction: Direction) -> Direction:
    """The opposite direction (same dimension, flipped sign)."""
    dim, sign = direction
    return (dim, -sign)


def all_directions(k: int) -> List[Direction]:
    """The 2k directions in canonical order: (0,+1), (0,-1), (1,+1), ..."""
    return [(dim, sign) for dim in range(k) for sign in (1, -1)]


def reduce_word(word: Sequence[Direction]) -> Word:
    """Cancel adjacent inverse pairs (tree geodesic reduction)."""
    out: List[Direction] = []
    for step in word:
        if out and out[-1] == inverse(step):
            out.pop()
        else:
            out.append(step)
    return tuple(out)


class OrientedBall:
    """The radius-t ball of the infinite oriented 2k-regular tree.

    Nodes are indexed ``0 .. size-1`` in breadth-first word order (the
    center is index 0).  The indexing is shared by every
    :class:`~repro.speedup.algorithms.NodeAlgorithm` of the same
    ``(k, t)``, so bit assignments are plain tuples.
    """

    _cache: Dict[Tuple[int, int], "OrientedBall"] = {}

    def __new__(cls, k: int, t: int) -> "OrientedBall":
        key = (k, t)
        if key not in cls._cache:
            ball = super().__new__(cls)
            ball._build(k, t)
            cls._cache[key] = ball
        return cls._cache[key]

    def _build(self, k: int, t: int) -> None:
        if k < 1:
            raise ValueError("need at least one dimension")
        if t < 0:
            raise ValueError("radius must be non-negative")
        self.k = k
        self.t = t
        self.directions = all_directions(k)
        words: List[Word] = [()]
        frontier: List[Word] = [()]
        for _ in range(t):
            nxt: List[Word] = []
            for w in frontier:
                for d in self.directions:
                    if w and d == inverse(w[-1]):
                        continue
                    nxt.append(w + (d,))
            words.extend(nxt)
            frontier = nxt
        self.words: Tuple[Word, ...] = tuple(words)
        self.index: Dict[Word, int] = {w: i for i, w in enumerate(words)}

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of nodes in the ball."""
        return len(self.words)

    def neighbor(self, word: Word, direction: Direction) -> Optional[Word]:
        """The adjacent word in ``direction``, or ``None`` if outside."""
        moved = reduce_word(word + (direction,))
        return moved if moved in self.index else None

    def contains(self, word: Word) -> bool:
        """Whether the (reduced) word lies in this ball."""
        return word in self.index

    def shift_map(self, prefix: Word, inner: "OrientedBall") -> List[int]:
        """Re-index ``inner``'s ball, centered at ``prefix``, inside this ball.

        Entry ``i`` is the index *in this ball* of the node addressed by
        ``inner.words[i]`` relative to the node ``prefix``.  Raises if
        some shifted node falls outside this ball (caller picked
        incompatible radii).
        """
        out = []
        for w in inner.words:
            absolute = reduce_word(prefix + w)
            if absolute not in self.index:
                raise ValueError(
                    f"shifted word {absolute} outside radius-{self.t} ball"
                )
            out.append(self.index[absolute])
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OrientedBall(k={self.k}, t={self.t}, size={self.size})"


class EdgeBall:
    """The union ``B_r(a) ∪ B_r(b)`` for the edge from ``a`` in direction δ.

    The edge is canonically anchored at its *low* endpoint ``a`` (the
    endpoint seeing the edge in a positive direction); ``b = a·δ``.
    Nodes are indexed in a fixed order: all words of ``B_r(a)`` first
    (in :class:`OrientedBall` order), then the words of ``B_r(b)`` not
    already present (``δ``-prefixed words of length ``r + 1``).
    """

    _cache: Dict[Tuple[int, int, Direction], "EdgeBall"] = {}

    def __new__(cls, k: int, r: int, direction: Direction) -> "EdgeBall":
        key = (k, r, direction)
        if key not in cls._cache:
            ball = super().__new__(cls)
            ball._build(k, r, direction)
            cls._cache[key] = ball
        return cls._cache[key]

    def _build(self, k: int, r: int, direction: Direction) -> None:
        dim, sign = direction
        if sign != 1:
            raise ValueError("edge balls are anchored at the low endpoint (sign +1)")
        if not 0 <= dim < k:
            raise ValueError(f"dimension {dim} out of range")
        self.k = k
        self.r = r
        self.direction: Direction = direction
        low_ball = OrientedBall(k, r)
        words: List[Word] = list(low_ball.words)
        seen = set(words)
        # b-relative ball, shifted by delta; new nodes are exactly the
        # delta-prefixed words at distance r + 1 from a.
        for w in OrientedBall(k, r).words:
            absolute = reduce_word((direction,) + w)
            if absolute not in seen:
                seen.add(absolute)
                words.append(absolute)
        self.words: Tuple[Word, ...] = tuple(words)
        self.index: Dict[Word, int] = {w: i for i, w in enumerate(words)}

    @property
    def size(self) -> int:
        """Number of nodes in the union ball."""
        return len(self.words)

    def endpoint_words(self) -> Tuple[Word, Word]:
        """The two endpoints: low ``()`` and high ``(δ,)``."""
        return (), (self.direction,)

    def shift_map_from(self, outer: OrientedBall, anchor: Word) -> List[int]:
        """Indices in ``outer`` of this edge ball anchored at ``anchor``.

        ``anchor`` is the low endpoint's word inside ``outer``.
        """
        out = []
        for w in self.words:
            absolute = reduce_word(anchor + w)
            if absolute not in outer.index:
                raise ValueError(f"edge-ball word {absolute} outside outer ball")
            out.append(outer.index[absolute])
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EdgeBall(k={self.k}, r={self.r}, dir={self.direction}, size={self.size})"
