"""Local failure probabilities — exact and Monte Carlo.

The paper measures algorithms by their *local failure probability*:

* node algorithms (weak coloring): ``A`` fails at ``v`` when **all**
  neighbors output ``A(v)``'s color (Section 5, "fails locally with
  probability at most p");
* edge algorithms (weak edge coloring): ``A'`` fails at ``v`` when
  every dimension's two incident edges are monochromatic.

On the infinite oriented tree these probabilities are the same at every
node, so one computation suffices.  The exact evaluator exploits the
paper's own conditioning trick (Figures 1-2): given the bits of
``B_t(v)``, the outputs of the neighbors (resp. incident edges) are
*independent*, because their residual views live in disjoint subtrees.
The probability is therefore

    p = E_sigma [ prod_over_branches Pr[branch agrees | sigma] ]

computed with exact rational arithmetic.  When the conditioning space
is too large, a seeded Monte Carlo estimator takes over; its default
seed comes from :func:`repro.core.derive_seed` labeled by the
algorithm's name, the same sha256 scheme the experiment runner and the
sharded engine use, so every estimate in the repo is reproducible from
one base seed.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.engine import derive_seed
from ..local_model.cache import ball_assignment_key
from .algorithms import EdgeAlgorithm, NodeAlgorithm
from .ball import OrientedBall

__all__ = ["FailureEstimate", "node_local_failure", "edge_local_failure"]


def _default_rng(label: str) -> random.Random:
    """Monte Carlo rng seeded by the core's sha256 label scheme."""
    return random.Random(derive_seed(0, label))


@dataclass
class FailureEstimate:
    """A local failure probability, exact or sampled.

    Attributes
    ----------
    probability:
        The failure probability (a :class:`~fractions.Fraction` when
        exact, a float when sampled).
    exact:
        Whether enumeration was exhaustive.
    samples:
        Monte Carlo sample count (``None`` when exact).
    """

    probability: Any
    exact: bool
    samples: Optional[int] = None

    def as_float(self) -> float:
        """The probability as a plain float."""
        return float(self.probability)


def _enumerate_assignments(values: int, size: int):
    """All assignments of ``size`` nodes with ``values`` choices each."""
    return itertools.product(range(values), repeat=size)


def _conditional_color_distribution(
    evaluate,
    base: Dict[int, int],
    unknown: List[int],
    total_size: int,
    values: int,
) -> Dict[Any, Fraction]:
    """Distribution of ``evaluate(assignment)`` over the unknown nodes.

    ``base`` maps already-fixed positions to values; ``unknown`` lists
    the free positions.  Positions index the evaluator's own ball.
    """
    counts: Dict[Any, int] = {}
    scratch = [0] * total_size
    for pos, val in base.items():
        scratch[pos] = val
    for completion in _enumerate_assignments(values, len(unknown)):
        for pos, val in zip(unknown, completion):
            scratch[pos] = val
        color = evaluate(tuple(scratch))
        counts[color] = counts.get(color, 0) + 1
    total = values ** len(unknown)
    return {color: Fraction(n, total) for color, n in counts.items()}


# ----------------------------------------------------------------------
# Node algorithms
# ----------------------------------------------------------------------
def node_local_failure(
    alg: NodeAlgorithm,
    method: str = "auto",
    exact_cost_limit: int = 1 << 22,
    samples: int = 100_000,
    rng: Optional[random.Random] = None,
    layout: str = "auto",
) -> FailureEstimate:
    """Probability that all 2k neighbors of a node share its color.

    ``method`` is ``"exact"``, ``"monte_carlo"``, or ``"auto"`` (exact
    when the conditioning enumeration stays below ``exact_cost_limit``
    evaluator calls).  ``layout="kernel"`` batches the Monte Carlo
    branch through :mod:`repro.speedup.trial_kernel` — the same hit
    count and the same final ``rng`` state as the sample loop (proven
    by ``tests/test_speedup_kernels.py``), declining back to the loop
    before any draw when the key encoding cannot be vectorized.
    """
    inner = alg.ball  # B_t(v)
    outer = OrientedBall(alg.k, alg.t + 1)
    values = alg.values
    directions = outer.directions

    center_map = outer.shift_map((), inner)
    neighbor_maps = {d: outer.shift_map((d,), inner) for d in directions}
    unknown_per_dir = {
        d: [i for i in neighbor_maps[d] if i not in set(center_map)] for d in directions
    }
    cost = (values ** inner.size) * sum(
        values ** len(u) for u in unknown_per_dir.values()
    )
    use_exact = method == "exact" or (method == "auto" and cost <= exact_cost_limit)
    if method not in ("exact", "monte_carlo", "auto"):
        raise ValueError(f"unknown method {method!r}")

    if use_exact:
        # Positions of B_t(v) inside the outer ball are 0..inner.size-1 by
        # construction (BFS word order agrees on the common prefix), so a
        # sigma over the inner ball doubles as the outer-ball prefix.
        if center_map != list(range(inner.size)):
            raise AssertionError("outer ball does not extend inner ball order (bug)")
        fail = Fraction(0)
        for sigma in _enumerate_assignments(values, inner.size):
            center_color = alg.evaluate(sigma)
            prob_all_agree = Fraction(1)
            for d in directions:
                base = {}
                for nbr_pos, outer_pos in enumerate(neighbor_maps[d]):
                    if outer_pos < inner.size:
                        base[nbr_pos] = sigma[outer_pos]
                unknown = [
                    nbr_pos
                    for nbr_pos, outer_pos in enumerate(neighbor_maps[d])
                    if outer_pos >= inner.size
                ]
                dist = _conditional_color_distribution(
                    alg.evaluate, base, unknown, inner.size, values
                )
                prob_all_agree *= dist.get(center_color, Fraction(0))
                if prob_all_agree == 0:
                    break
            fail += prob_all_agree
        fail /= values**inner.size
        return FailureEstimate(probability=fail, exact=True)

    rng = rng or _default_rng(f"node-failure:{alg.name}")
    if layout == "kernel":
        batched = _node_mc_batched(
            alg, outer, center_map, neighbor_maps, directions, samples, rng
        )
        if batched is not None:
            return batched
    hits = 0
    for _ in range(samples):
        assignment = tuple(rng.randrange(values) for _ in range(outer.size))
        center_color = alg.evaluate(ball_assignment_key(assignment, center_map))
        if all(
            alg.evaluate(ball_assignment_key(assignment, neighbor_maps[d]))
            == center_color
            for d in directions
        ):
            hits += 1
    return FailureEstimate(probability=hits / samples, exact=False, samples=samples)


def _node_mc_batched(
    alg, outer, center_map, neighbor_maps, directions, samples, rng
) -> Optional[FailureEstimate]:
    """Batched node Monte Carlo; ``None`` declines to the sample loop.

    The scalar loop draws each sample's whole outer-ball assignment
    before evaluating it, so drawing all ``samples * outer.size``
    values as one stream-faithful block is draw-for-draw identical;
    the agreement predicate then reduces over per-projection output
    codes.  Declines (before touching ``rng``) when any projection's
    key encoding would overflow int64.
    """
    from . import trial_kernel as tk

    maps = [center_map] + [neighbor_maps[d] for d in directions]
    if any(tk.encode_reason(alg.values, len(m)) is not None for m in maps):
        return None
    matrix = tk.draw_randrange_block(
        rng, alg.values, samples * outer.size
    ).reshape(samples, outer.size)
    coder = tk.OutputCoder()
    center = tk.map_color_codes(
        alg.evaluate, matrix, center_map, alg.values, coder
    )
    agree = np.ones(samples, dtype=bool)
    for d in directions:
        codes = tk.map_color_codes(
            alg.evaluate, matrix, neighbor_maps[d], alg.values, coder
        )
        agree &= codes == center
    hits = int(agree.sum())
    return FailureEstimate(probability=hits / samples, exact=False, samples=samples)


# ----------------------------------------------------------------------
# Edge algorithms
# ----------------------------------------------------------------------
def _edge_layouts(alg: EdgeAlgorithm) -> Dict[Tuple[int, int], Tuple[int, List[int]]]:
    """For each incident direction of the center: (dim, outer-index map).

    The map sends each edge-ball position to its index in
    ``OrientedBall(k, r + 1)`` centered at the node under study.
    """
    outer = OrientedBall(alg.k, alg.r + 1)
    layouts: Dict[Tuple[int, int], Tuple[int, List[int]]] = {}
    for direction in outer.directions:
        dim, sign = direction
        ball = alg.balls[dim]
        anchor = () if sign == 1 else (direction,)
        layouts[direction] = (dim, ball.shift_map_from(outer, anchor))
    return layouts


def edge_local_failure(
    alg: EdgeAlgorithm,
    method: str = "auto",
    exact_cost_limit: int = 1 << 22,
    samples: int = 100_000,
    rng: Optional[random.Random] = None,
    layout: str = "auto",
) -> FailureEstimate:
    """Probability that every dimension is monochromatic at a node.

    The weak-edge-coloring failure event of Section 5 (and its
    k-dimensional generalization from Section 7).  ``layout="kernel"``
    batches the Monte Carlo branch exactly as in
    :func:`node_local_failure`.
    """
    if method not in ("exact", "monte_carlo", "auto"):
        raise ValueError(f"unknown method {method!r}")
    outer = OrientedBall(alg.k, alg.r + 1)
    known = OrientedBall(alg.k, alg.r)  # B_r(v): the conditioning region
    values = alg.values
    layouts = _edge_layouts(alg)

    unknown_sizes = {
        d: sum(1 for i in layouts[d][1] if i >= known.size) for d in layouts
    }
    cost = (values**known.size) * sum(values**u for u in unknown_sizes.values())
    use_exact = method == "exact" or (method == "auto" and cost <= exact_cost_limit)

    if use_exact:
        fail = Fraction(0)
        for sigma in _enumerate_assignments(values, known.size):
            prob_fail = Fraction(1)
            for dim in range(alg.k):
                dists = []
                for sign in (1, -1):
                    dim_, emap = layouts[(dim, sign)]
                    base = {
                        pos: sigma[outer_pos]
                        for pos, outer_pos in enumerate(emap)
                        if outer_pos < known.size
                    }
                    unknown = [
                        pos
                        for pos, outer_pos in enumerate(emap)
                        if outer_pos >= known.size
                    ]
                    dists.append(
                        _conditional_color_distribution(
                            lambda a, _dim=dim_: alg.evaluate(_dim, a),
                            base,
                            unknown,
                            alg.balls[dim].size,
                            values,
                        )
                    )
                plus, minus = dists
                agree = sum(
                    (p * minus.get(color, Fraction(0)) for color, p in plus.items()),
                    Fraction(0),
                )
                prob_fail *= agree
                if prob_fail == 0:
                    break
            fail += prob_fail
        fail /= values**known.size
        return FailureEstimate(probability=fail, exact=True)

    rng = rng or _default_rng(f"edge-failure:{alg.name}")
    if layout == "kernel":
        batched = _edge_mc_batched(alg, outer, layouts, samples, rng)
        if batched is not None:
            return batched
    hits = 0
    for _ in range(samples):
        assignment = tuple(rng.randrange(values) for _ in range(outer.size))
        failed = True
        for dim in range(alg.k):
            colors = []
            for sign in (1, -1):
                dim_, emap = layouts[(dim, sign)]
                colors.append(
                    alg.evaluate(dim_, ball_assignment_key(assignment, emap))
                )
            if colors[0] != colors[1]:
                failed = False
                break
        if failed:
            hits += 1
    return FailureEstimate(probability=hits / samples, exact=False, samples=samples)


def _edge_mc_batched(alg, outer, layouts, samples, rng) -> Optional[FailureEstimate]:
    """Batched edge Monte Carlo; ``None`` declines to the sample loop."""
    from . import trial_kernel as tk

    if any(
        tk.encode_reason(alg.values, len(emap)) is not None
        for _, emap in layouts.values()
    ):
        return None
    matrix = tk.draw_randrange_block(
        rng, alg.values, samples * outer.size
    ).reshape(samples, outer.size)
    failed = np.ones(samples, dtype=bool)
    for dim in range(alg.k):
        coder = tk.OutputCoder()
        codes = []
        for sign in (1, -1):
            dim_, emap = layouts[(dim, sign)]
            codes.append(
                tk.map_color_codes(
                    lambda a, _dim=dim_: alg.evaluate(_dim, a),
                    matrix, emap, alg.values, coder,
                )
            )
        failed &= codes[0] == codes[1]
    hits = int(failed.sum())
    return FailureEstimate(probability=hits / samples, exact=False, samples=samples)
