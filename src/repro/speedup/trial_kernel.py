"""Batched Monte Carlo kernels for the speedup pipeline.

The finite runner and the local-failure estimators draw their
randomness one ``rng.randrange`` call at a time and evaluate one ball
assignment per Python call.  Trials are embarrassingly batchable: the
random draws of a whole experiment can be produced as one array, and
the evaluations collapse onto the *distinct* assignments (of which
there are usually far fewer than ``trials * n``).

This module supplies the two ingredients, both bound by the same
bit-identity obligation as the round kernels in
:mod:`repro.local_model.kernels`:

**Stream-faithful batched draws.**  :func:`draw_randrange_block`
returns exactly ``[rng.randrange(bound) for _ in range(count)]`` and
leaves ``rng`` in exactly the state that loop would — but produces the
block with NumPy when it can.  CPython's ``randrange`` consumes
``bound.bit_length()``-bit slices of the Mersenne-Twister output and
rejects slices ``>= bound``; since ``numpy.random.MT19937.random_raw``
emits the *same* 32-bit word stream, we transplant the generator state,
filter candidate words vectorized, and transplant the state back after
replaying exactly the words the scalar loop would have consumed.  The
recipe is self-verifying: :func:`faithful_fast_path` probes it against
the interpreter's own ``randrange`` once per process and the fast path
is disabled wholesale if the interpreter disagrees (the scalar fallback
is the reference loop itself, so results never change either way).

**Distinct-assignment evaluation.**  Ball assignments are encoded as
base-``values`` integers (declined via :class:`KernelUnsupported` when
the key would overflow int64), deduplicated with ``np.unique``, and
only the distinct assignments reach the algorithm's ``evaluate``.
Output equality — the only thing the failure predicates consume — is
tracked through integer codes (:class:`OutputCoder`), so the per-trial
"all neighbors agree" reductions are pure array ops.

The callers — ``estimate_global_success(layout="kernel")``, the
``finite`` request kind's engine kernel, and the Monte Carlo stages of
:func:`repro.speedup.failure.node_local_failure` /
``edge_local_failure`` — are proven bit-identical to their scalar
loops by ``tests/test_speedup_kernels.py`` and the conformance
``layout-identity`` axis.
"""

from __future__ import annotations

import random
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..local_model.kernels import KernelUnsupported

__all__ = [
    "draw_randrange_block",
    "faithful_fast_path",
    "encode_reason",
    "OutputCoder",
    "arc_arrays",
    "assignment_codes",
    "map_color_codes",
    "fail_counts",
    "failing_nodes",
]


# ----------------------------------------------------------------------
# Stream-faithful batched randrange
# ----------------------------------------------------------------------

def _mt_from_state(key: Sequence[int], pos: int) -> np.random.MT19937:
    """A NumPy MT19937 positioned exactly where a CPython Random is."""
    bg = np.random.MT19937()
    bg.state = {
        "bit_generator": "MT19937",
        "state": {"key": np.asarray(key, dtype=np.uint32), "pos": int(pos)},
    }
    return bg


def _draw_fast(
    rng: random.Random,
    internal: Tuple[int, ...],
    gauss: Any,
    bound: int,
    count: int,
) -> np.ndarray:
    """The vectorized draw; assumes the fast-path preconditions hold."""
    key, pos = internal[:-1], internal[-1]
    k = bound.bit_length()
    shift = 32 - k
    # randrange keeps a k-bit slice exactly when it is < bound, i.e.
    # when the raw word is < bound << shift — testing the raw words
    # avoids materializing a shifted copy of the whole block.
    limit = np.uint64(bound << shift)
    bg = _mt_from_state(key, pos)
    out = np.empty(count, dtype=np.int64)
    filled = 0
    consumed = 0
    while filled < count:
        need = count - filled
        # Acceptance probability is bound / 2**k (as low as ~1/2), so
        # size the block by expectation plus slack: one pass almost
        # always suffices, without a fixed worst-case overdraw.
        expect = (need << k) // bound
        block = max(1024, expect + (expect >> 4) + 64)
        raw = bg.random_raw(block)
        accept = raw < limit
        accepted = raw[accept]
        np.right_shift(accepted, np.uint64(shift), out=accepted)
        if accepted.size >= need:
            consumed += int(np.flatnonzero(accept)[need - 1]) + 1
            out[filled:] = accepted[:need]
            filled = count
        else:
            consumed += block
            out[filled:filled + accepted.size] = accepted
            filled += accepted.size
    # Leave the Python rng exactly where the scalar loop would: replay
    # the consumed words on a fresh transplant and copy the state back.
    replay = _mt_from_state(key, pos)
    if consumed:
        replay.random_raw(consumed)
    state = replay.state["state"]
    rng.setstate(
        (3, tuple(int(x) for x in state["key"]) + (int(state["pos"]),), gauss)
    )
    return out


_FAST_PATH: Optional[bool] = None


def faithful_fast_path() -> bool:
    """Whether this interpreter's ``randrange`` matches the fast path.

    Probed once per process against a few bounds (including the
    rejection-heavy ``bound=5`` and the degenerate ``bound=1``).  A
    mismatching interpreter — some future CPython changing its
    rejection-sampling recipe — silently falls back to the scalar loop
    everywhere, trading speed for unconditional fidelity.
    """
    global _FAST_PATH
    if _FAST_PATH is None:
        _FAST_PATH = True
        for bound in (1, 2, 5, 12, (1 << 20) + 7):
            probe = random.Random(0xC0FFEE ^ bound)
            ref = random.Random(0xC0FFEE ^ bound)
            version, internal, gauss = probe.getstate()
            if version != 3 or len(internal) != 625:
                _FAST_PATH = False
                break
            got = _draw_fast(probe, internal, gauss, bound, 64)
            want = [ref.randrange(bound) for _ in range(64)]
            if got.tolist() != want or probe.getstate() != ref.getstate():
                _FAST_PATH = False
                break
    return _FAST_PATH


def draw_randrange_block(
    rng: random.Random, bound: int, count: int
) -> np.ndarray:
    """``[rng.randrange(bound) for _ in range(count)]`` as one int64 array.

    Bit-identical to the scalar loop — the same values *and* the same
    final ``rng`` state — on every code path.  Vectorized when ``rng``
    is a plain :class:`random.Random` in its standard state format and
    the interpreter passes :func:`faithful_fast_path`; otherwise (a
    subclass, ``SystemRandom``, a bound above 32 bits) the loop itself
    runs, so fidelity never depends on the fast path applying.
    """
    if count <= 0:
        return np.zeros(0, dtype=np.int64)
    if (
        type(rng) is random.Random
        and 1 <= bound <= (1 << 32) - 1
        and faithful_fast_path()
    ):
        version, internal, gauss = rng.getstate()
        if version == 3 and len(internal) == 625:
            return _draw_fast(rng, internal, gauss, bound, count)
    return np.fromiter(
        (rng.randrange(bound) for _ in range(count)),
        dtype=np.int64, count=count,
    )


# ----------------------------------------------------------------------
# Distinct-assignment evaluation
# ----------------------------------------------------------------------

def encode_reason(values: int, length: int) -> Optional[str]:
    """Why base-``values`` keys of ``length`` digits can't be int64."""
    if length > 0 and values ** length > (1 << 63) - 1:
        return (
            f"unsupported: assignment key overflows int64 "
            f"({values}^{length})"
        )
    return None


class OutputCoder:
    """Integer codes for algorithm outputs, consistent under ``==``.

    Two outputs get the same code exactly when they compare equal —
    the predicate the failure checks are built on.  Hashable outputs
    (the overwhelmingly common case) go through a dict; the first
    unhashable output degrades the coder to a linear ``==`` scan.
    """

    def __init__(self) -> None:
        self._codes: dict = {}
        self._scan: Optional[List[Any]] = None

    def code(self, output: Any) -> int:
        if self._scan is None:
            try:
                return self._codes.setdefault(output, len(self._codes))
            except TypeError:
                # dict preserves insertion order, so existing codes are
                # exactly the representatives' positions.
                self._scan = list(self._codes)
        scan = self._scan
        for i, rep in enumerate(scan):
            if rep == output:
                return i
        scan.append(output)
        return len(scan) - 1


def _evaluate_distinct(
    evaluate: Callable[[Tuple[int, ...]], Any],
    distinct: np.ndarray,
    length: int,
    values: int,
) -> List[Any]:
    """Decode distinct base-``values`` keys and evaluate each once."""
    digits = np.empty((distinct.size, length), dtype=np.int64)
    rem = distinct.copy()
    for j in range(length - 1, -1, -1):
        digits[:, j] = rem % values
        rem //= values
    return [evaluate(tuple(row)) for row in digits.tolist()]


def _key_dtype(space: int) -> Any:
    """Narrowest signed dtype holding every key of a ``space``-key code."""
    if space <= (1 << 15) - 1:
        return np.int16
    if space <= (1 << 31) - 1:
        return np.int32
    return np.int64


# Key spaces up to this size are deduplicated with a presence scatter
# plus rank table (linear in the cell count) instead of np.unique's
# sort.  Both produce the distinct keys in ascending order with the
# same inverse mapping, so downstream results are identical.
_SCATTER_SPACE = 1 << 22


def _distinct_keys(keys: np.ndarray, space: int) -> Tuple[np.ndarray, np.ndarray]:
    """``np.unique(keys, return_inverse=True)``, faster when ``space`` is small.

    Returns ``(distinct, inverse)`` with ``distinct`` ascending int64
    and ``inverse`` flat over ``keys.ravel()`` — exactly what
    ``np.unique`` returns, by construction on both paths.
    """
    flat = keys.ravel()
    if 0 < space <= _SCATTER_SPACE:
        present = np.zeros(space, dtype=bool)
        present[flat] = True
        distinct = np.flatnonzero(present)
        rank = np.empty(space, dtype=np.int32)
        rank[distinct] = np.arange(distinct.size, dtype=np.int32)
        return distinct, rank[flat]
    distinct, inverse = np.unique(flat, return_inverse=True)
    return distinct.astype(np.int64, copy=False), inverse


def assignment_codes(
    algorithm: Any,
    matrix: np.ndarray,
    tables: Sequence[Sequence[int]],
    coder: Optional[OutputCoder] = None,
) -> Tuple[np.ndarray, List[Any], np.ndarray]:
    """Evaluate every (trial, node) ball assignment via distinct keys.

    ``matrix`` is the ``(trials, n)`` random-value array; ``tables``
    the resolved ball tables.  Returns ``(codes, outputs, inverse)``:
    the per-cell output equality codes (``(trials, n)`` int64), the
    outputs of the distinct assignments in key order, and the per-cell
    index into that list — ``outputs[inverse[i, v]]`` is exactly the
    object the reference loop's ``evaluate`` returns for that cell.

    Raises :class:`KernelUnsupported` when the key encoding would
    overflow int64 (see :func:`encode_reason`).
    """
    table = np.asarray(tables, dtype=np.int64)
    length = int(table.shape[1])
    values = algorithm.values
    reason = encode_reason(values, length)
    if reason is not None:
        raise KernelUnsupported(reason)
    space = values ** length if length > 0 else 1
    dtype = _key_dtype(space)
    mat = matrix.astype(dtype, copy=False)
    if length == 0:
        keys = np.zeros(matrix.shape, dtype=dtype)
    else:
        # Horner's rule in the narrowest dtype the key space allows:
        # every intermediate is < space, so nothing can overflow.
        keys = mat.take(table[:, 0], axis=1)
        tmp = np.empty_like(keys)
        for j in range(1, length):
            keys *= dtype(values)
            np.take(mat, table[:, j], axis=1, out=tmp)
            keys += tmp
    distinct, inverse = _distinct_keys(keys, space)
    outputs = _evaluate_distinct(algorithm.evaluate, distinct, length, values)
    coder = coder or OutputCoder()
    distinct_codes = np.fromiter(
        (coder.code(o) for o in outputs), dtype=np.int64, count=len(outputs)
    ).astype(_key_dtype(max(len(outputs), 1)))
    inverse = inverse.reshape(matrix.shape)
    return distinct_codes[inverse], outputs, inverse


def map_color_codes(
    evaluate: Callable[[Tuple[int, ...]], Any],
    matrix: np.ndarray,
    emap: Sequence[int],
    values: int,
    coder: OutputCoder,
) -> np.ndarray:
    """Per-sample output codes of one ball projection.

    ``matrix`` is the ``(samples, outer_size)`` assignment array and
    ``emap`` a projection (``ball_assignment_key``'s index map); the
    result codes ``evaluate(assignment[emap])`` per sample through the
    shared ``coder``.  Raises :class:`KernelUnsupported` on key
    overflow.
    """
    reason = encode_reason(values, len(emap))
    if reason is not None:
        raise KernelUnsupported(reason)
    space = values ** len(emap) if emap else 1
    dtype = _key_dtype(space)
    mat = matrix.astype(dtype, copy=False)
    if len(emap) == 0:
        keys = np.zeros(mat.shape[0], dtype=dtype)
    else:
        keys = mat[:, emap[0]].copy()
        for j in range(1, len(emap)):
            keys *= dtype(values)
            keys += mat[:, emap[j]]
    distinct, inverse = _distinct_keys(keys, space)
    outputs = _evaluate_distinct(evaluate, distinct, len(emap), values)
    distinct_codes = np.fromiter(
        (coder.code(o) for o in outputs), dtype=np.int64, count=len(outputs)
    )
    return distinct_codes[inverse]


# ----------------------------------------------------------------------
# Per-trial failure reduction
# ----------------------------------------------------------------------

def arc_arrays(graph: Any) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(degrees, indptr, indices)`` adjacency arrays of ``graph``.

    Built from the neighbor lists directly (no frozen/CSR requirement
    — the finite runner accepts any consistently-oriented graph).
    """
    n = graph.n
    degrees = np.fromiter(
        (graph.degree(v) for v in graph.nodes()), dtype=np.int64, count=n
    )
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    indices = np.fromiter(
        (u for v in graph.nodes() for u in graph.neighbors(v)),
        dtype=np.int64, count=int(indptr[-1]),
    )
    return degrees, indptr, indices


def fail_counts(
    codes: np.ndarray,
    degrees: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
) -> np.ndarray:
    """Failing-node counts per trial from per-cell output codes.

    A node fails when it has a neighbor at all and every neighbor
    carries an equal output — exactly the reference runner's predicate.
    Returns an int64 array of shape ``(trials,)``.
    """
    trials, n = codes.shape
    if n == 0 or indices.size == 0:
        return np.zeros(trials, dtype=np.int64)
    maxdeg = int(degrees.max())
    if maxdeg * n <= 2 * indices.size + n:
        # Near-regular degrees: compare one neighbor slot at a time
        # against a (trials, n) buffer.  Nodes shorter than the slot
        # are padded with themselves, which agrees vacuously — the
        # degree mask below removes isolated nodes either way.
        base = np.arange(n, dtype=np.int64)
        starts = indptr[:-1]
        agree = np.ones((trials, n), dtype=bool)
        gathered = np.empty((trials, n), dtype=codes.dtype)
        slot_eq = np.empty((trials, n), dtype=bool)
        for i in range(maxdeg):
            col = base.copy()
            sel = degrees > i
            col[sel] = indices[starts[sel] + i]
            np.take(codes, col, axis=1, out=gathered)
            np.equal(gathered, codes, out=slot_eq)
            agree &= slot_eq
        return (agree & (degrees > 0)).sum(axis=1)
    src = np.repeat(np.arange(n, dtype=np.int64), degrees)
    agree = codes[:, indices] == codes[:, src]
    # Sentinel column keeps reduceat in bounds when trailing nodes are
    # isolated; their (garbage) segments are masked out below.
    agree = np.concatenate(
        [agree, np.ones((trials, 1), dtype=bool)], axis=1
    )
    all_agree = np.logical_and.reduceat(agree, indptr[:-1], axis=1)
    return (all_agree & (degrees > 0)).sum(axis=1)


def failing_nodes(
    codes_row: np.ndarray,
    degrees: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
) -> List[int]:
    """Ascending failing-node list for one assignment (one codes row)."""
    n = codes_row.shape[0]
    if n == 0 or indices.size == 0:
        return []
    src = np.repeat(np.arange(n, dtype=np.int64), degrees)
    agree = np.concatenate(
        [codes_row[indices] == codes_row[src], np.ones(1, dtype=bool)]
    )
    all_agree = np.logical_and.reduceat(agree, indptr[:-1])
    return np.flatnonzero(all_agree & (degrees > 0)).tolist()
