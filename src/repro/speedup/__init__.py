"""The speedup simulation engine (Sections 5-7), executable."""

from .ball import (
    Direction,
    Word,
    inverse,
    all_directions,
    reduce_word,
    OrientedBall,
    EdgeBall,
)
from .algorithms import (
    NodeAlgorithm,
    EdgeAlgorithm,
    zero_round_uniform,
    local_maximum_coloring,
    smaller_count_coloring,
    two_round_local_maximum,
    parity_coloring,
)
from .failure import FailureEstimate, node_local_failure, edge_local_failure
from .transform import (
    first_speedup,
    second_speedup,
    paper_threshold_first,
    paper_threshold_second,
    first_lemma_bound,
    second_lemma_bound,
)
from .pipeline import PipelineStage, SpeedupPipelineResult, run_speedup_pipeline
from .finite_runner import (
    FiniteRunResult,
    resolve_ball_tables,
    run_node_algorithm_on_oriented_graph,
    estimate_global_success,
)

__all__ = [
    "Direction",
    "Word",
    "inverse",
    "all_directions",
    "reduce_word",
    "OrientedBall",
    "EdgeBall",
    "NodeAlgorithm",
    "EdgeAlgorithm",
    "zero_round_uniform",
    "local_maximum_coloring",
    "smaller_count_coloring",
    "two_round_local_maximum",
    "parity_coloring",
    "FailureEstimate",
    "node_local_failure",
    "edge_local_failure",
    "first_speedup",
    "second_speedup",
    "paper_threshold_first",
    "paper_threshold_second",
    "first_lemma_bound",
    "second_lemma_bound",
    "PipelineStage",
    "SpeedupPipelineResult",
    "run_speedup_pipeline",
    "FiniteRunResult",
    "resolve_ball_tables",
    "run_node_algorithm_on_oriented_graph",
    "estimate_global_success",
]
