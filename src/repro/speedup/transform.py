"""The speedup transformations (Lemmas 7, 8, 14, 15) — executable.

First speedup (Lemma 7 / Lemma 14): from a t-round weak c-coloring node
algorithm ``A`` build the edge algorithm ``A'`` on views
``B_{t-1}(u) ∪ B_{t-1}(v)``: each endpoint's *frequent color set* —
colors ``A`` outputs with probability at least ``f`` over the bits the
edge cannot see — written as the pair (low endpoint's set, high
endpoint's set).  Nominal palette ``2**(2c)``.

Second speedup (Lemma 8 / Lemma 15): from an edge algorithm with views
``B_{t-1}(u) ∪ B_{t-1}(v)`` build the (t-1)-round node algorithm whose
output is the 2k-tuple of frequent *edge* color sets of the node's
incident edges given ``B_{t-1}(v)``.  Nominal palette ``2**(2k*c)``.

Composing the two drops the round count by one while the palette climbs
a tower — exactly the engine of the Omega(log* n) bound.  The threshold
``f`` is exposed; :func:`paper_threshold_first` /
:func:`paper_threshold_second` give the paper's optimizing choices.

All frequency computations enumerate the hidden regions exhaustively,
so the resulting algorithms are *exact* objects: their measured failure
probabilities can be compared against the lemma bounds with no sampling
error (see :mod:`repro.speedup.failure`).
"""

from __future__ import annotations

import itertools
import math
from fractions import Fraction
from typing import Any, Dict, FrozenSet, List, Tuple, Union

from ..analysis.towers import TowerNumber, exp2_scaled
from .algorithms import Assignment, EdgeAlgorithm, NodeAlgorithm
from .ball import EdgeBall, OrientedBall, inverse, reduce_word

__all__ = [
    "first_speedup",
    "second_speedup",
    "paper_threshold_first",
    "paper_threshold_second",
    "first_lemma_bound",
    "second_lemma_bound",
]


def _log2_palette(c: Union[int, float, TowerNumber]) -> float:
    """``log2`` of a (possibly tower-sized) palette, as a float or inf."""
    if isinstance(c, TowerNumber):
        return c.log2().to_float()
    return math.log2(float(c))


def paper_threshold_first(p: Any, c: Union[int, TowerNumber], delta: int) -> Fraction:
    """Lemma 7/14's optimizing threshold ``f = (p / c) ** (1 / (Delta+1))``.

    Derived from maximizing ``(p' - Delta*c*f) * f**Delta`` at
    ``f = p' / ((Delta + 1) * c)`` and substituting the resulting bound
    ``p' = (Delta+1) * p**(1/(Delta+1)) * c**(Delta/(Delta+1))``.
    Returned as a Fraction approximation (exact arithmetic downstream).
    Tower-sized palettes push the threshold to 0 (every achievable
    color counts as frequent) — faithful to the regime where the paper's
    optimizing f is astronomically small.
    """
    if float(p) <= 0.0:
        return Fraction(0)
    log2_f = (math.log2(float(p)) - _log2_palette(c)) / (delta + 1)
    if log2_f < -60:
        return Fraction(0)
    return Fraction(2.0**log2_f).limit_denominator(10**9)


def paper_threshold_second(p: Any, c: Union[int, TowerNumber], delta: int) -> Fraction:
    """Lemma 8/15's optimizing threshold.

    For Delta = 4 this is ``f = (p / c) ** (1/4)``; in general
    ``f = ((Delta-1) / (Delta/2 + 1)) * (p / c) ** (1 / Delta)`` per the
    Section 7 computation (the two coincide at Delta = 4).
    """
    if float(p) <= 0.0:
        return Fraction(0)
    scale = (delta - 1) / (delta / 2 + 1)
    log2_f = (math.log2(float(p)) - _log2_palette(c)) / delta
    if log2_f < -60:
        return Fraction(0)
    return Fraction(min(scale * 2.0**log2_f, 1.0)).limit_denominator(10**9)


def first_lemma_bound(p: float, c: Union[int, TowerNumber], delta: int) -> float:
    """The guarantee of Lemma 14: ``p' <= (Delta+1) p^{1/(Delta+1)} c^{Delta/(Delta+1)}``.

    At Delta = 4 this is Lemma 7's ``5 p^{1/5} c^{4/5}``.  Returns
    ``inf`` for tower-sized palettes (the bound is vacuous there) and
    0.0 at p = 0.
    """
    if p <= 0.0:
        return 0.0
    e = delta + 1
    log2_bound = (
        math.log2(e) + math.log2(p) / e + ((e - 1) / e) * _log2_palette(c)
    )
    return math.inf if log2_bound > 1000 else 2.0**log2_bound


def second_lemma_bound(p: float, c: Union[int, TowerNumber], delta: int) -> float:
    """The guarantee of Lemma 15: ``p' <= Delta p^{1/Delta} c^{1 - 1/Delta}``.

    At Delta = 4 this is Lemma 8's ``4 p^{1/4} c^{3/4}``.  Returns
    ``inf`` for tower-sized palettes and 0.0 at p = 0.
    """
    if p <= 0.0:
        return 0.0
    log2_bound = (
        math.log2(delta)
        + math.log2(p) / delta
        + ((delta - 1) / delta) * _log2_palette(c)
    )
    return math.inf if log2_bound > 1000 else 2.0**log2_bound


def _frequent_colors(
    evaluate,
    total_size: int,
    known: Dict[int, int],
    unknown: List[int],
    values: int,
    threshold: Fraction,
) -> FrozenSet[Any]:
    """Colors whose conditional probability is at least ``threshold``."""
    counts: Dict[Any, int] = {}
    scratch = [0] * total_size
    for pos, val in known.items():
        scratch[pos] = val
    for completion in itertools.product(range(values), repeat=len(unknown)):
        for pos, val in zip(unknown, completion):
            scratch[pos] = val
        color = evaluate(tuple(scratch))
        counts[color] = counts.get(color, 0) + 1
    total = values ** len(unknown)
    return frozenset(
        color for color, n in counts.items() if Fraction(n, total) >= threshold
    )


def first_speedup(alg: NodeAlgorithm, threshold: Fraction) -> EdgeAlgorithm:
    """Lemma 7/14: node algorithm (radius t) -> edge algorithm (radius t-1).

    The edge output is the pair ``(frequent set at the low endpoint,
    frequent set at the high endpoint)``; each set collects the colors
    the node algorithm emits with conditional probability >= threshold
    given the edge's shared view.
    """
    if alg.t < 1:
        raise ValueError("cannot speed up a 0-round algorithm")
    k, t, bits = alg.k, alg.t, alg.bits
    r = t - 1
    node_ball = alg.ball

    # Precompute, per dimension, the layout of each endpoint's radius-t
    # ball inside the edge ball: known positions come from the edge view,
    # unknown positions are enumerated.
    layouts: Dict[int, List[Tuple[Dict[int, int], List[int]]]] = {}
    for dim in range(k):
        eb = EdgeBall(k, r, (dim, 1))
        per_endpoint = []
        for anchor in eb.endpoint_words():
            known_map: Dict[int, int] = {}
            unknown: List[int] = []
            for pos, w in enumerate(node_ball.words):
                absolute = reduce_word(anchor + w)
                if absolute in eb.index:
                    known_map[pos] = eb.index[absolute]
                else:
                    unknown.append(pos)
            per_endpoint.append((known_map, unknown))
        layouts[dim] = per_endpoint

    values = alg.values

    def fn(dim: int, assignment: Assignment) -> Tuple[FrozenSet[Any], FrozenSet[Any]]:
        sets = []
        for known_map, unknown in layouts[dim]:
            known = {pos: assignment[ei] for pos, ei in known_map.items()}
            sets.append(
                _frequent_colors(
                    alg.evaluate, node_ball.size, known, unknown, values, threshold
                )
            )
        return (sets[0], sets[1])

    return EdgeAlgorithm(
        k=k,
        r=r,
        bits=bits,
        palette=exp2_scaled(alg.palette, 2.0),
        fn=fn,
        name=f"L7[{alg.name}]",
    )


def second_speedup(alg: EdgeAlgorithm, threshold: Fraction) -> NodeAlgorithm:
    """Lemma 8/15: edge algorithm (radius r) -> node algorithm (radius r).

    The node output is the 2k-tuple, in canonical direction order, of
    the frequent edge-color sets of its incident edges given its own
    radius-r ball.
    """
    k, r, bits = alg.k, alg.r, alg.bits
    node_ball = OrientedBall(k, r)
    directions = node_ball.directions

    # Per incident direction: the edge ball's layout relative to the node.
    layouts: List[Tuple[int, Dict[int, int], List[int]]] = []
    for direction in directions:
        dim, sign = direction
        eb = alg.balls[dim]
        anchor = () if sign == 1 else (direction,)
        known_map: Dict[int, int] = {}
        unknown: List[int] = []
        for pos, w in enumerate(eb.words):
            absolute = reduce_word(anchor + w)
            if absolute in node_ball.index:
                known_map[pos] = node_ball.index[absolute]
            else:
                unknown.append(pos)
        layouts.append((dim, known_map, unknown))

    values = alg.values

    def fn(assignment: Assignment) -> Tuple[FrozenSet[Any], ...]:
        out = []
        for dim, known_map, unknown in layouts:
            known = {pos: assignment[ni] for pos, ni in known_map.items()}
            out.append(
                _frequent_colors(
                    lambda a, _dim=dim: alg.evaluate(_dim, a),
                    alg.balls[dim].size,
                    known,
                    unknown,
                    values,
                    threshold,
                )
            )
        return tuple(out)

    return NodeAlgorithm(
        k=k,
        t=r,
        bits=bits,
        palette=exp2_scaled(alg.palette, float(2 * k)),
        fn=fn,
        name=f"L8[{alg.name}]",
    )
