"""Locally checkable labelings (LCLs).

An LCL (Section 2.2) is a constant-size input alphabet, a constant-size
output alphabet, and a local constraint checkable within a constant
radius ``r``.  This module gives the base classes for node-labeled and
edge-labeled LCLs and a uniform violation report, so every problem in the
catalog exposes the same ``verify`` interface and every algorithm in the
library can be checked mechanically.

Labels may be ``None`` meaning "no output here" — partial labelings are
first-class because homogeneous LCLs (Section 3.2) mix two labelings, and
Lemma 3 only labels part of the graph.  Each concrete problem documents
how it treats unlabeled nodes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..graphs.graph import Graph, Edge, edge_key
from ..graphs.orientation import Orientation

__all__ = ["Violation", "NodeLCL", "EdgeLCL", "NodeLabeling", "EdgeLabeling"]

#: A node labeling: one label per node, ``None`` = unlabeled.
NodeLabeling = Sequence[Any]

#: An edge labeling: canonical edge key -> label.
EdgeLabeling = Dict[Edge, Any]


@dataclass(frozen=True)
class Violation:
    """One locally-detected constraint violation.

    Attributes
    ----------
    where:
        The node (or canonical edge key) at which the constraint fails.
    reason:
        Human-readable explanation, phrased in the paper's vocabulary.
    """

    where: Any
    reason: str

    def __str__(self) -> str:
        return f"at {self.where}: {self.reason}"


class NodeLCL(abc.ABC):
    """A node-labeled LCL problem.

    Subclasses implement :meth:`check_node`, which inspects the constant
    radius ``self.radius`` around one node.  ``verify`` sweeps all nodes.
    """

    #: Problem name used in reports.
    name: str = "lcl"

    #: Checking radius ``r`` of the LCL.
    radius: int = 1

    @abc.abstractmethod
    def check_node(
        self,
        graph: Graph,
        labeling: NodeLabeling,
        v: int,
        orientation: Optional[Orientation] = None,
    ) -> Optional[Violation]:
        """Return a violation at ``v``, or ``None`` if ``v`` is satisfied."""

    def verify(
        self,
        graph: Graph,
        labeling: NodeLabeling,
        orientation: Optional[Orientation] = None,
        nodes: Optional[Iterable[int]] = None,
    ) -> List[Violation]:
        """All violations; restrict the sweep with ``nodes`` if given."""
        if len(labeling) != graph.n:
            raise ValueError(
                f"labeling has {len(labeling)} entries for a graph with {graph.n} nodes"
            )
        sweep = graph.nodes() if nodes is None else nodes
        violations = []
        for v in sweep:
            bad = self.check_node(graph, labeling, v, orientation)
            if bad is not None:
                violations.append(bad)
        return violations

    def is_feasible(
        self,
        graph: Graph,
        labeling: NodeLabeling,
        orientation: Optional[Orientation] = None,
        nodes: Optional[Iterable[int]] = None,
    ) -> bool:
        """Whether the labeling satisfies every (selected) node."""
        return not self.verify(graph, labeling, orientation, nodes)


class EdgeLCL(abc.ABC):
    """An edge-labeled LCL problem (constraints may sit on nodes or edges)."""

    name: str = "edge-lcl"
    radius: int = 1

    @abc.abstractmethod
    def check_node(
        self,
        graph: Graph,
        labeling: EdgeLabeling,
        v: int,
        orientation: Optional[Orientation] = None,
    ) -> Optional[Violation]:
        """Return a violation charged to node ``v``, or ``None``."""

    def verify(
        self,
        graph: Graph,
        labeling: EdgeLabeling,
        orientation: Optional[Orientation] = None,
        nodes: Optional[Iterable[int]] = None,
    ) -> List[Violation]:
        """All violations; restrict the sweep with ``nodes`` if given."""
        sweep = graph.nodes() if nodes is None else nodes
        violations = []
        for v in sweep:
            bad = self.check_node(graph, labeling, v, orientation)
            if bad is not None:
                violations.append(bad)
        return violations

    def is_feasible(
        self,
        graph: Graph,
        labeling: EdgeLabeling,
        orientation: Optional[Orientation] = None,
        nodes: Optional[Iterable[int]] = None,
    ) -> bool:
        """Whether the labeling satisfies every (selected) node."""
        return not self.verify(graph, labeling, orientation, nodes)

    @staticmethod
    def label_of(labeling: EdgeLabeling, u: int, v: int) -> Any:
        """Label of the edge ``{u, v}`` (``None`` if absent)."""
        return labeling.get(edge_key(u, v))
