"""Homogeneous LCLs: ``P_H = P ∪ P*`` (Section 3.2).

A homogeneous labeling gives every node *either* a label for the inner
problem P *or* a P* label (a pointer toward an irregularity).  The
verifier accepts at ``v`` iff

* ``v`` has a nonempty P* label and is P*-happy, or
* ``v`` has an empty P* label and P's verifier accepts at ``v``.

P's verifier runs against the *partial* P labeling in which P*-labeled
nodes count as unlabeled — so a node cannot discharge its P constraint
through neighbors that opted out into P*.  This is what makes pointer
chains unable to terminate anywhere except at genuine irregularities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

from ..graphs.graph import Graph
from ..graphs.orientation import Orientation
from .pointer import PStar, PStarLabel
from .problem import NodeLCL, NodeLabeling, Violation

__all__ = ["HomogeneousLabel", "HomogeneousLCL", "AlwaysAccept"]


@dataclass(frozen=True)
class HomogeneousLabel:
    """A P_H output: exactly one of the two parts must be set."""

    p_label: Any = None
    pstar_label: Optional[PStarLabel] = None

    def __post_init__(self) -> None:
        if (self.p_label is None) == (self.pstar_label is None):
            raise ValueError(
                "exactly one of p_label / pstar_label must be set, got "
                f"p_label={self.p_label!r}, pstar_label={self.pstar_label!r}"
            )

    @classmethod
    def solve_p(cls, label: Any) -> "HomogeneousLabel":
        """A node answering the inner problem P."""
        return cls(p_label=label)

    @classmethod
    def solve_pstar(cls, label: PStarLabel) -> "HomogeneousLabel":
        """A node falling back to the pointer problem."""
        return cls(pstar_label=label)


class AlwaysAccept(NodeLCL):
    """The trivially-satisfiable inner problem (any label, even a constant).

    Wrapping it into a homogeneous LCL gives a class-(1) problem of
    Theorem 5: a constant label is valid inside Delta-regular trees, so
    ``P_H`` is solvable in O(1) rounds.
    """

    name = "always-accept"
    radius = 0

    def check_node(
        self,
        graph: Graph,
        labeling: NodeLabeling,
        v: int,
        orientation: Optional[Orientation] = None,
    ) -> Optional[Violation]:
        if labeling[v] is None:
            return Violation(v, "node is unlabeled")
        return None


class HomogeneousLCL(NodeLCL):
    """The Delta-homogeneous LCL ``P_H = P ∪ P*`` for an inner node LCL P."""

    def __init__(self, inner: NodeLCL, delta: int):
        if delta < 3:
            raise ValueError("homogeneous LCLs assume Delta >= 3")
        self.inner = inner
        self.delta = delta
        self.pstar = PStar(delta, require_all=False)
        self.radius = max(inner.radius, 1)
        self.name = f"homogeneous[{inner.name}] (Delta={delta})"

    # ------------------------------------------------------------------
    def _split(
        self, labeling: NodeLabeling
    ) -> "tuple[List[Any], List[Optional[PStarLabel]]]":
        """Project a homogeneous labeling into its P and P* components."""
        p_part: List[Any] = []
        star_part: List[Optional[PStarLabel]] = []
        for label in labeling:
            if label is None:
                p_part.append(None)
                star_part.append(None)
            elif isinstance(label, HomogeneousLabel):
                p_part.append(label.p_label)
                star_part.append(label.pstar_label)
            else:
                raise TypeError(f"expected HomogeneousLabel or None, got {label!r}")
        return p_part, star_part

    def check_node(
        self,
        graph: Graph,
        labeling: NodeLabeling,
        v: int,
        orientation: Optional[Orientation] = None,
    ) -> Optional[Violation]:
        label = labeling[v]
        if label is None:
            return Violation(v, "node has neither a P nor a P* label")
        p_part, star_part = self._split(labeling)
        if star_part[v] is not None:
            bad = self.pstar.check_node(graph, star_part, v, orientation)
            if bad is not None:
                return Violation(v, f"P* branch: {bad.reason}")
            return None
        bad = self.inner.check_node(graph, p_part, v, orientation)
        if bad is not None:
            return Violation(v, f"P branch: {bad.reason}")
        return None
