"""The pointer problem P* (Section 3.2) and irregularity machinery.

In P*, every node ``v`` outputs a number ``0 <= d(v) < Delta`` and a
possibly-empty pointer ``p(v)`` to a neighbor, and is *happy* iff

1. ``deg(v) = Delta``  implies  ``p(v)`` is a neighbor of ``v``;
2. ``deg(v) < Delta``  implies  ``p(v) = ⊥`` and ``d(v) = deg(v)``;
3. ``p(v) = u``        implies  ``d(v) = d(u)``            (consistency);
4. ``p(v) = u``        implies  ``p(u) != v``              (no backtrack);
5. ``p(v) = u``        implies  ``p(u) != ⊥ or deg(u) = d(v)``
   (chains terminate at a node of the advertised degree).

*Irregularities* are nodes of degree < Delta and cycles consisting of
degree-Delta nodes.  The distance from ``v`` to a cycle ``C`` is
``max_{u in C} dist(v, u)`` for even cycles and ``max + 1`` for odd ones
(the paper's convention, which makes the orientation trick of Lemma 3
work out).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..graphs.graph import Graph
from ..graphs.orientation import Orientation
from .problem import NodeLCL, NodeLabeling, Violation

__all__ = [
    "PStarLabel",
    "PStar",
    "LowDegreeIrregularity",
    "CycleIrregularity",
    "Irregularity",
    "enumerate_cycles",
    "degree_delta_cycles",
    "irregularity_distance",
    "closest_irregularity",
]


@dataclass(frozen=True)
class PStarLabel:
    """A P* output: the advertised degree ``d`` and the pointer ``p``.

    ``p`` is the pointed-to *node* (the paper encodes pointers as port
    numbers; the encodings are in bijection, and node ids keep the
    verifier readable), or ``None`` for the empty pointer ⊥.
    """

    d: int
    p: Optional[int] = None

    def __str__(self) -> str:
        target = "⊥" if self.p is None else str(self.p)
        return f"(d={self.d}, p={target})"


class PStar(NodeLCL):
    """The LCL verifier for P*.

    Parameters
    ----------
    delta:
        The maximum-degree parameter Delta >= 3 of the construction.
    require_all:
        If true (the Theorem 4 setting) unlabeled nodes are violations;
        if false (the Lemma 3 partial setting) unlabeled nodes are
        vacuously fine and only labeled nodes are checked for happiness.
    """

    def __init__(self, delta: int, require_all: bool = True):
        if delta < 3:
            raise ValueError("P* is defined for Delta >= 3")
        self.delta = delta
        self.require_all = require_all
        self.radius = 1
        self.name = f"pointer problem P* (Delta={delta})"

    def check_node(
        self,
        graph: Graph,
        labeling: NodeLabeling,
        v: int,
        orientation: Optional[Orientation] = None,
    ) -> Optional[Violation]:
        label = labeling[v]
        if label is None:
            if self.require_all:
                return Violation(v, "node has no P* label")
            return None
        if not isinstance(label, PStarLabel):
            return Violation(v, f"label {label!r} is not a PStarLabel")
        if not 0 <= label.d < self.delta:
            return Violation(v, f"d={label.d} outside [0, {self.delta})")
        deg = graph.degree(v)
        if deg == self.delta:
            if label.p is None:
                return Violation(v, "degree-Delta node with empty pointer (cond. 1)")
            if label.p not in graph.neighbors(v):
                return Violation(v, f"pointer {label.p} is not a neighbor (cond. 1)")
        else:
            if label.p is not None:
                return Violation(v, "low-degree node with nonempty pointer (cond. 2)")
            if label.d != deg:
                return Violation(
                    v, f"low-degree node advertises d={label.d} != deg={deg} (cond. 2)"
                )
            return None
        u = label.p
        u_label = labeling[u]
        if u_label is None or not isinstance(u_label, PStarLabel):
            return Violation(v, f"pointer target {u} has no P* label")
        if u_label.d != label.d:
            return Violation(
                v, f"pointer chain label mismatch: d(v)={label.d}, d({u})={u_label.d} (cond. 3)"
            )
        if u_label.p == v:
            return Violation(v, f"pointer chain backtracks: p({u}) = {v} (cond. 4)")
        if u_label.p is None and graph.degree(u) != label.d:
            return Violation(
                v,
                f"chain ends at {u} with deg={graph.degree(u)} != d={label.d} (cond. 5)",
            )
        return None


# ----------------------------------------------------------------------
# Irregularities
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LowDegreeIrregularity:
    """A node of degree < Delta."""

    node: int
    degree: int


@dataclass(frozen=True)
class CycleIrregularity:
    """A cycle all of whose nodes have degree Delta.

    ``nodes`` lists the cycle in traversal order, starting at its
    smallest member and continuing toward that member's smaller-id cycle
    neighbor (a canonical form, so equal cycles compare equal).
    """

    nodes: Tuple[int, ...]

    @property
    def length(self) -> int:
        return len(self.nodes)

    @property
    def odd(self) -> bool:
        return len(self.nodes) % 2 == 1


Irregularity = Union[LowDegreeIrregularity, CycleIrregularity]


def _canonical_cycle(nodes: Sequence[int]) -> Tuple[int, ...]:
    """Rotate/reflect a cycle node sequence into canonical form."""
    k = len(nodes)
    start = min(range(k), key=lambda i: nodes[i])
    forward = tuple(nodes[(start + i) % k] for i in range(k))
    backward = tuple(nodes[(start - i) % k] for i in range(k))
    return min(forward, backward)


def enumerate_cycles(
    graph: Graph,
    max_length: int,
    nodes: Optional[Iterable[int]] = None,
    limit: int = 100_000,
) -> List[Tuple[int, ...]]:
    """All simple cycles of length <= ``max_length``, canonicalized.

    Restricted to cycles whose nodes all lie in ``nodes`` when given.
    DFS roots at each candidate smallest-node; intermediate nodes must
    exceed the root, and the reflection duplicate is dropped by requiring
    the second node to be smaller than the last.

    Raises
    ------
    ValueError
        If more than ``limit`` cycles are found (a guard against graphs
        far outside this library's bounded-degree use cases).
    """
    if max_length < 3:
        return []
    allowed: Optional[Set[int]] = None if nodes is None else set(nodes)
    found: List[Tuple[int, ...]] = []

    candidates = graph.nodes() if allowed is None else sorted(allowed)
    for root in candidates:
        # DFS over paths root - x1 - x2 - ... with x_i > root.
        stack: List[Tuple[int, List[int]]] = [(root, [root])]
        while stack:
            v, pathway = stack.pop()
            for u in graph.neighbors(v):
                if allowed is not None and u not in allowed:
                    continue
                if u == root and len(pathway) >= 3:
                    if pathway[1] < pathway[-1]:  # drop the reflected duplicate
                        found.append(_canonical_cycle(pathway))
                        if len(found) > limit:
                            raise ValueError(
                                f"more than {limit} cycles; raise `limit` explicitly"
                            )
                    continue
                if u <= root or u in pathway:
                    continue
                if len(pathway) < max_length:
                    stack.append((u, pathway + [u]))
    return found


def degree_delta_cycles(
    graph: Graph,
    delta: int,
    max_length: int,
    nodes: Optional[Iterable[int]] = None,
    limit: int = 100_000,
) -> List[CycleIrregularity]:
    """Cycle irregularities: cycles consisting only of degree-``delta`` nodes."""
    full = [v for v in (graph.nodes() if nodes is None else nodes) if graph.degree(v) == delta]
    return [
        CycleIrregularity(c)
        for c in enumerate_cycles(graph, max_length, nodes=full, limit=limit)
    ]


def irregularity_distance(graph: Graph, v: int, irr: Irregularity) -> int:
    """Distance from ``v`` to an irregularity, with the paper's convention.

    For a low-degree node: ordinary hop distance.  For a cycle ``C``:
    ``max_{u in C} dist(v, u)``, plus 1 if ``C`` is odd.
    """
    if isinstance(irr, LowDegreeIrregularity):
        return graph.distance(v, irr.node)
    dist = graph.bfs_distances(v)
    worst = max(dist[u] for u in irr.nodes)
    return worst + 1 if irr.odd else worst


def closest_irregularity(
    graph: Graph,
    v: int,
    delta: int,
    r: int,
    ids: Sequence[int],
    cycles: Optional[List[CycleIrregularity]] = None,
) -> Optional[Irregularity]:
    """The closest irregularity to ``v`` within distance ``r`` (Lemma 3's rule).

    Preference order: the closest *cycle*, tie-broken by smallest maximum
    identifier (then by the canonical node tuple); if there are no cycles
    in range, the closest low-degree node, tie-broken by smallest degree
    then smallest identifier.

    Deviation from the paper: cycle closeness uses the distance to the
    *nearest* cycle node, not the paper's max-based convention.  On the
    paper's tree-like instances the two orders coincide (the path to a
    locally-unique cycle shortens all cycle distances at once), and the
    min-based key is *strictly decreasing along pointer paths on any
    graph*, which is what rules out mutually-pointing neighbors
    (condition 4) outside the tree-like regime — dense instances exhibit
    genuine backtracking under the max-based order.  Cycles longer than
    ``2r + 1`` are skipped either way: a node cannot see all of a longer
    cycle within its radius-r view, so it cannot orient it.

    Parameters
    ----------
    cycles:
        Pre-enumerated degree-Delta cycles (as from
        :func:`degree_delta_cycles`); enumerated on demand if omitted.
    """
    if cycles is None:
        cycles = degree_delta_cycles(graph, delta, max_length=2 * r + 1)
    best_cycle: Optional[Tuple[int, int, Tuple[int, ...], CycleIrregularity]] = None
    if cycles:
        dist_v = graph.bfs_distances(v, cutoff=r)
        for c in cycles:
            in_range = [dist_v[u] for u in c.nodes if u in dist_v]
            if not in_range:
                continue
            d = min(in_range)
            max_id = max(ids[u] for u in c.nodes)
            key = (d, max_id, c.nodes)
            if best_cycle is None or key < best_cycle[:3]:
                best_cycle = (d, max_id, c.nodes, c)
    if best_cycle is not None:
        return best_cycle[3]

    ball = graph.bfs_distances(v, cutoff=r)
    best_node: Optional[Tuple[int, int, int, int]] = None
    for u, d in ball.items():
        if graph.degree(u) >= delta:
            continue
        key = (d, graph.degree(u), ids[u], u)
        if best_node is None or key < best_node:
            best_node = key
    if best_node is not None:
        return LowDegreeIrregularity(node=best_node[3], degree=best_node[1])
    return None
