"""Catalog of concrete LCL problems used throughout the paper.

Node problems
-------------
* :class:`WeakColoring` — distance-k weak c-coloring (Definition 1); the
  central object of the paper.  ``WeakColoring(2)`` is weak 2-coloring.
* :class:`ProperColoring` — proper c-coloring (2-coloring is Table 1's
  global row; (Δ+1)-coloring is Section 2.2's running example).
* :class:`MaximalIndependentSet` — independence + domination.

Edge problems
-------------
* :class:`WeakEdgeColoring` — the paper's intermediate problem from
  Section 5 (and its k-dimensional generalization from Section 7): at
  every full-degree node some dimension's two incident edges get
  different colors.
* :class:`SinklessOrientation` — Table 1's exponential-separation row.
* :class:`MaximalMatching` — a classical Θ(log* n) symmetry-breaking
  problem on bounded-degree graphs.

Unlabeled (``None``) nodes/edges: every class documents its policy; the
default is that a missing label is itself a violation, except where the
paper's construction explicitly works with partial labelings.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.registry import register_problem
from ..graphs.graph import Graph, edge_key
from ..graphs.orientation import Orientation
from .problem import EdgeLCL, EdgeLabeling, NodeLCL, NodeLabeling, Violation

__all__ = [
    "WeakColoring",
    "ProperColoring",
    "MaximalIndependentSet",
    "WeakEdgeColoring",
    "SinklessOrientation",
    "ProperEdgeColoring",
    "MaximalMatching",
]


@register_problem("weak-coloring", model="node", params=("colors",))
class WeakColoring(NodeLCL):
    """Distance-k weak c-coloring (Definition 1).

    A labeling ``phi: V -> palette`` such that every node ``v`` has some
    node ``u`` within distance ``k`` with ``phi(u) != phi(v)``.

    Parameters
    ----------
    colors:
        Palette size ``c``.  Labels must come from ``palette``.
    distance:
        The ``k`` of Definition 1 (default 1: plain weak coloring).
    palette:
        Explicit allowed label set; defaults to ``range(colors)``.  Pass
        ``None`` to accept arbitrary hashable labels (used when palettes
        are huge bit-vector spaces, as in the speedup simulation, where
        only *distinctness* matters and the nominal palette size is
        tracked separately).
    """

    def __init__(
        self,
        colors: int,
        distance: int = 1,
        palette: Optional[Iterable[Any]] = (),
    ):
        if colors < 1:
            raise ValueError("palette size must be at least 1")
        if distance < 1:
            raise ValueError("distance must be at least 1")
        self.colors = colors
        self.distance = distance
        if palette == ():
            self.palette: Optional[Set[Any]] = set(range(colors))
        elif palette is None:
            self.palette = None
        else:
            self.palette = set(palette)
            if len(self.palette) != colors:
                raise ValueError("palette size disagrees with colors")
        self.radius = distance
        self.name = f"distance-{distance} weak {colors}-coloring" if distance > 1 else f"weak {colors}-coloring"

    def check_node(
        self,
        graph: Graph,
        labeling: NodeLabeling,
        v: int,
        orientation: Optional[Orientation] = None,
    ) -> Optional[Violation]:
        mine = labeling[v]
        if mine is None:
            return Violation(v, "node is unlabeled")
        if self.palette is not None and mine not in self.palette:
            return Violation(v, f"label {mine!r} outside the {self.colors}-color palette")
        if graph.degree(v) == 0:
            return None  # isolated nodes are vacuously weakly colored
        ball = graph.bfs_distances(v, cutoff=self.distance)
        for u in ball:
            if u != v and labeling[u] is not None and labeling[u] != mine:
                return None
        return Violation(
            v,
            f"all nodes within distance {self.distance} share label {mine!r}",
        )


@register_problem("proper-coloring", model="node", params=("colors",))
class ProperColoring(NodeLCL):
    """Proper c-coloring: adjacent nodes get distinct labels from [c]."""

    def __init__(self, colors: int, palette: Optional[Iterable[Any]] = ()):
        if colors < 1:
            raise ValueError("palette size must be at least 1")
        self.colors = colors
        if palette == ():
            self.palette: Optional[Set[Any]] = set(range(colors))
        elif palette is None:
            self.palette = None
        else:
            self.palette = set(palette)
        self.radius = 1
        self.name = f"proper {colors}-coloring"

    def check_node(
        self,
        graph: Graph,
        labeling: NodeLabeling,
        v: int,
        orientation: Optional[Orientation] = None,
    ) -> Optional[Violation]:
        mine = labeling[v]
        if mine is None:
            return Violation(v, "node is unlabeled")
        if self.palette is not None and mine not in self.palette:
            return Violation(v, f"label {mine!r} outside the {self.colors}-color palette")
        for u in graph.neighbors(v):
            if labeling[u] == mine:
                return Violation(v, f"neighbor {u} has the same color {mine!r}")
        return None


@register_problem("mis", model="node")
class MaximalIndependentSet(NodeLCL):
    """MIS: labels are truthy (in the set) / falsy; independent + dominating."""

    name = "maximal independent set"
    radius = 1

    def check_node(
        self,
        graph: Graph,
        labeling: NodeLabeling,
        v: int,
        orientation: Optional[Orientation] = None,
    ) -> Optional[Violation]:
        mine = labeling[v]
        if mine is None:
            return Violation(v, "node is unlabeled")
        if mine:
            for u in graph.neighbors(v):
                if labeling[u]:
                    return Violation(v, f"adjacent MIS nodes {v} and {u}")
            return None
        if not any(labeling[u] for u in graph.neighbors(v)):
            return Violation(v, "non-MIS node with no MIS neighbor (not maximal)")
        return None


@register_problem("weak-edge-coloring", model="edge", params=("colors",))
class WeakEdgeColoring(EdgeLCL):
    """Weak edge c-coloring on consistently oriented 2k-regular graphs.

    Section 5 (k = 2): for each node, either its U and D edges differ in
    color or its L and R edges do.  Section 7 (general k): for each node
    there exists a dimension ``d`` whose two incident edges have
    different colors.

    Policy for boundary nodes (some dimension missing an edge): by
    default they are *vacuously satisfied* unless ``strict`` is set —
    the paper's setting is the infinite regular tree, where no boundary
    exists, and the speedup machinery only ever measures interior nodes.
    """

    def __init__(self, colors: int, k: int = 2, strict: bool = False):
        if colors < 1:
            raise ValueError("palette size must be at least 1")
        if k < 1:
            raise ValueError("need at least one dimension")
        self.colors = colors
        self.k = k
        self.strict = strict
        self.radius = 1
        self.name = f"weak edge {colors}-coloring (k={k})"

    def check_node(
        self,
        graph: Graph,
        labeling: EdgeLabeling,
        v: int,
        orientation: Optional[Orientation] = None,
    ) -> Optional[Violation]:
        if orientation is None:
            raise ValueError("weak edge coloring requires a consistent orientation")
        slots = orientation.labeled_neighbors(v)
        saw_full_dimension = False
        for dim in range(self.k):
            plus = slots.get((dim, 1))
            minus = slots.get((dim, -1))
            if plus is None or minus is None:
                continue
            saw_full_dimension = True
            c_plus = labeling.get(edge_key(v, plus))
            c_minus = labeling.get(edge_key(v, minus))
            if c_plus is None or c_minus is None:
                return Violation(v, f"dimension {dim} has an unlabeled edge")
            if c_plus != c_minus:
                return None
        if not saw_full_dimension:
            if self.strict:
                return Violation(v, "boundary node with no complete dimension")
            return None
        return Violation(v, "every complete dimension is monochromatic")


@register_problem("sinkless-orientation", model="edge")
class SinklessOrientation(EdgeLCL):
    """Sinkless orientation: labels are head nodes; no node of degree >= 3
    may have all its edges oriented inward.

    The edge label for ``{u, v}`` must be ``u`` or ``v`` (the head).
    Nodes of degree < 3 are unconstrained (the standard formulation, which
    keeps the problem nontrivial exactly on high-degree parts).
    """

    name = "sinkless orientation"
    radius = 1

    def check_node(
        self,
        graph: Graph,
        labeling: EdgeLabeling,
        v: int,
        orientation: Optional[Orientation] = None,
    ) -> Optional[Violation]:
        for u in graph.neighbors(v):
            head = labeling.get(edge_key(u, v))
            if head is None:
                return Violation(v, f"edge to {u} is unoriented")
            if head not in (u, v):
                return Violation(v, f"edge to {u} has head {head!r} not an endpoint")
        if graph.degree(v) < 3:
            return None
        if all(labeling[edge_key(u, v)] == v for u in graph.neighbors(v)):
            return Violation(v, "node of degree >= 3 is a sink")
        return None


@register_problem("proper-edge-coloring", model="edge", params=("colors",))
class ProperEdgeColoring(EdgeLCL):
    """Proper edge c-coloring: edges sharing an endpoint get distinct labels.

    Vizing guarantees ``Delta + 1`` colors exist; the distributed
    classics work with ``2 Delta - 1`` (greedy on the line graph).
    Edge coloring with >= 3 colors is the introduction's example of a
    Theta(log* n) problem on cycles.
    """

    def __init__(self, colors: int):
        if colors < 1:
            raise ValueError("palette size must be at least 1")
        self.colors = colors
        self.radius = 1
        self.name = f"proper edge {colors}-coloring"

    def check_node(
        self,
        graph: Graph,
        labeling: EdgeLabeling,
        v: int,
        orientation: Optional[Orientation] = None,
    ) -> Optional[Violation]:
        seen: Dict[Any, int] = {}
        for u in graph.neighbors(v):
            label = labeling.get(edge_key(u, v))
            if label is None:
                return Violation(v, f"edge to {u} is unlabeled")
            if not 0 <= label < self.colors:
                return Violation(v, f"edge color {label!r} outside the palette")
            if label in seen:
                return Violation(
                    v, f"edges to {seen[label]} and {u} share color {label}"
                )
            seen[label] = u
        return None


@register_problem("maximal-matching", model="edge")
class MaximalMatching(EdgeLCL):
    """Maximal matching: labels truthy (matched) / falsy; matching + maximal."""

    name = "maximal matching"
    radius = 1

    def check_node(
        self,
        graph: Graph,
        labeling: EdgeLabeling,
        v: int,
        orientation: Optional[Orientation] = None,
    ) -> Optional[Violation]:
        matched_ports = []
        for u in graph.neighbors(v):
            lab = labeling.get(edge_key(u, v))
            if lab is None:
                return Violation(v, f"edge to {u} is unlabeled")
            if lab:
                matched_ports.append(u)
        if len(matched_ports) > 1:
            return Violation(v, f"two matched edges at one node: {matched_ports[:2]}")
        if not matched_ports:
            # Maximality: some neighbor must be matched, else {v, u} could join.
            for u in graph.neighbors(v):
                u_matched = any(
                    labeling.get(edge_key(u, w)) for w in graph.neighbors(u)
                )
                if not u_matched:
                    return Violation(
                        v, f"edge to {u} could be added (both endpoints unmatched)"
                    )
        return None
