"""LCL problems: framework, catalog, the pointer problem P*, homogeneous LCLs."""

from .problem import Violation, NodeLCL, EdgeLCL, NodeLabeling, EdgeLabeling
from .catalog import (
    WeakColoring,
    ProperColoring,
    MaximalIndependentSet,
    WeakEdgeColoring,
    SinklessOrientation,
    ProperEdgeColoring,
    MaximalMatching,
)
from .pointer import (
    PStarLabel,
    PStar,
    LowDegreeIrregularity,
    CycleIrregularity,
    Irregularity,
    enumerate_cycles,
    degree_delta_cycles,
    irregularity_distance,
    closest_irregularity,
)
from .homogeneous import HomogeneousLabel, HomogeneousLCL, AlwaysAccept

__all__ = [
    "Violation",
    "NodeLCL",
    "EdgeLCL",
    "NodeLabeling",
    "EdgeLabeling",
    "WeakColoring",
    "ProperColoring",
    "MaximalIndependentSet",
    "WeakEdgeColoring",
    "SinklessOrientation",
    "ProperEdgeColoring",
    "MaximalMatching",
    "PStarLabel",
    "PStar",
    "LowDegreeIrregularity",
    "CycleIrregularity",
    "Irregularity",
    "enumerate_cycles",
    "degree_delta_cycles",
    "irregularity_distance",
    "closest_irregularity",
    "HomogeneousLabel",
    "HomogeneousLCL",
    "AlwaysAccept",
]
