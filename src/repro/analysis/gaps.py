"""The complexity-gap theorems (Appendix A.1), as an executable oracle.

The paper's classification rests on prior gap results, restated in its
Appendix A.1; this module renders them operational:

* :func:`derandomization_instance_size` / :func:`derandomized_bound` —
  Theorem 19: the deterministic complexity at ``n`` is at most the
  randomized complexity at ``2^(n^2)`` (instance sizes returned as
  :class:`~repro.analysis.towers.TowerNumber`, since ``2^(n^2)``
  escapes floats around n = 32).
* :func:`forbidden_deterministic_gap` / :func:`forbidden_randomized_gap`
  — Theorems 21-23: the (omega(1), o(log log* n)) gap for all LCLs, the
  deterministic (omega(log* n), o(log n)) gap, and the randomized
  (omega(log* n), o(log log n)) gap, as predicates on growth labels.
* :func:`classify_homogeneous` — Theorem 5's completeness: a measured
  growth class maps onto exactly one of the four homogeneous classes,
  and anything else (sqrt, linear, ...) is rejected as a forbidden gap
  — which doubles as a sanity oracle for the experiment harness: a
  measured curve landing in a gap means the *measurement* is wrong.
"""

from __future__ import annotations

from typing import Dict, Union

from .towers import TowerNumber, exp2_scaled

__all__ = [
    "derandomization_instance_size",
    "derandomized_bound",
    "forbidden_deterministic_gap",
    "forbidden_randomized_gap",
    "classify_homogeneous",
    "HOMOGENEOUS_CLASSES",
    "GapViolation",
]


class GapViolation(ValueError):
    """A complexity claim landed inside a proven gap."""


#: Theorem 5's four classes, keyed by the growth label of the
#: *deterministic* complexity curve (log-star measures flat at feasible n).
HOMOGENEOUS_CLASSES: Dict[str, str] = {
    "constant": "(1) O(1) deterministic and randomized",
    "log_star": "(2) Theta(log* n) deterministic and randomized",
    "log": "(3)/(4) Theta(log n) deterministic "
    "(randomized Theta(log log n) or Theta(log n))",
}


def derandomization_instance_size(n: Union[int, float]) -> TowerNumber:
    """Theorem 19's blow-up: the instance size ``2^(n^2)``."""
    if n < 1:
        raise ValueError("instance size must be at least 1")
    return exp2_scaled(TowerNumber.from_float(float(n)), float(n))


def derandomized_bound(randomized_complexity, n: Union[int, float]) -> float:
    """Theorem 19 as a combinator: det(n) <= rand(2^(n^2)).

    ``randomized_complexity`` maps a :class:`TowerNumber` instance size
    to a round count; the returned value upper-bounds the deterministic
    complexity at ``n``.
    """
    return float(randomized_complexity(derandomization_instance_size(n)))


def forbidden_deterministic_gap(label: str) -> bool:
    """Whether a growth label falls in a deterministic LCL gap.

    Theorem 21 empties (omega(1), o(log log* n)); Theorem 22 empties
    (omega(log* n), o(log n)).  Of this library's fit vocabulary
    ({constant, log_star, log, sqrt, linear}), ``sqrt`` lands in the
    (log* n, log n)... no — sqrt(n) exceeds log n; the genuinely
    forbidden labels here are sub-log-star shapes like
    ``log_log_star`` and intermediates like ``sqrt_log_star`` (the
    paper's open-question region, closed for homogeneous LCLs by its
    main theorem); both are recognized by name.
    """
    return label in ("log_log_star", "sqrt_log_star", "between_log_star_and_log")


def forbidden_randomized_gap(label: str) -> bool:
    """Theorem 23: randomized complexities cannot sit strictly between
    log* n and log log n (label ``between_log_star_and_log_log``)."""
    return label in (
        "log_log_star",
        "sqrt_log_star",
        "between_log_star_and_log_log",
    )


def classify_homogeneous(label: str) -> str:
    """Map a measured growth label onto a Theorem 5 class.

    Raises
    ------
    GapViolation
        If the label corresponds to no class — i.e. the measurement
        claims a complexity the classification forbids.
    """
    if label in HOMOGENEOUS_CLASSES:
        return HOMOGENEOUS_CLASSES[label]
    raise GapViolation(
        f"growth class {label!r} lies in a forbidden gap for homogeneous "
        f"LCLs (Theorem 5 allows only {sorted(HOMOGENEOUS_CLASSES)})"
    )
