"""Quantitative machinery: towers, recurrences, independence counting, bounds."""

from .towers import TowerNumber, tower, log_star_float, iterated_log, exp2_scaled
from .independence import (
    IndependentSetResult,
    independent_execution_set,
    claim10_set_size_bound,
    claim10_global_success_bound,
    claim10_ball_radius,
)
from .recurrence import (
    palette_trajectory,
    claim11_failure_floor_log2,
    claim12_round_threshold,
    claim12_c0_ceiling,
    claim12_failure_floor_reciprocal,
    Lemma9Evaluation,
    lemma9_evaluate,
    theorem13_crossover_height,
)
from .gaps import (
    derandomization_instance_size,
    derandomized_bound,
    forbidden_deterministic_gap,
    forbidden_randomized_gap,
    classify_homogeneous,
    HOMOGENEOUS_CLASSES,
    GapViolation,
)
from .bounds import (
    zero_round_failure_of_distribution,
    zero_round_optimal_failure,
    id_collision_probability_bound,
    first_lemma_bound,
    second_lemma_bound,
    theorem6_round_floor,
)

__all__ = [
    "TowerNumber",
    "tower",
    "log_star_float",
    "iterated_log",
    "exp2_scaled",
    "IndependentSetResult",
    "independent_execution_set",
    "claim10_set_size_bound",
    "claim10_global_success_bound",
    "claim10_ball_radius",
    "palette_trajectory",
    "claim11_failure_floor_log2",
    "claim12_round_threshold",
    "claim12_c0_ceiling",
    "claim12_failure_floor_reciprocal",
    "Lemma9Evaluation",
    "lemma9_evaluate",
    "theorem13_crossover_height",
    "derandomization_instance_size",
    "derandomized_bound",
    "forbidden_deterministic_gap",
    "forbidden_randomized_gap",
    "classify_homogeneous",
    "HOMOGENEOUS_CLASSES",
    "GapViolation",
    "zero_round_failure_of_distribution",
    "zero_round_optimal_failure",
    "id_collision_probability_bound",
    "first_lemma_bound",
    "second_lemma_bound",
    "theorem6_round_floor",
]
