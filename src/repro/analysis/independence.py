"""Claim 10's independent-execution construction, executed literally.

To turn a *local* failure probability into a *global* one, Claim 10
plants inside the ball ``B_k(v)`` a large set ``S`` of nodes with
pairwise distance at least ``2t + 1`` — far enough apart that a t-round
algorithm's executions on them are independent.  The construction:

* start from the set ``I`` of nodes at distance exactly 7 from ``v``
  (``4 * 3^6`` of them in the 4-regular tree);
* from each frontier node move ``2t + 1`` hops straight along each of
  the ``Delta - 1`` orientations that do not point back toward ``v``;
* repeat while the new layer stays inside ``B_k(v)``.

This module builds ``S`` on a concrete balanced oriented tree, verifies
the pairwise-distance property, and compares ``|S|`` with the paper's
closed form ``n^(1/(3(2t+1)))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..graphs.generators import balanced_regular_tree
from ..graphs.graph import Graph
from ..graphs.orientation import Orientation, orient_tree

__all__ = [
    "IndependentSetResult",
    "independent_execution_set",
    "claim10_set_size_bound",
    "claim10_global_success_bound",
    "claim10_ball_radius",
]


@dataclass
class IndependentSetResult:
    """Outcome of the Claim 10 construction.

    Attributes
    ----------
    nodes:
        The set ``S`` of pairwise-distant nodes.
    steps:
        Number of expansion steps performed after the seed layer.
    seed_size:
        Size of the seed layer ``I`` (distance-``seed_radius`` sphere).
    verified:
        Whether the pairwise distance >= 2t+1 property was checked.
    """

    nodes: List[int]
    steps: int
    seed_size: int
    verified: bool

    @property
    def size(self) -> int:
        return len(self.nodes)


def claim10_ball_radius(n: int, delta: int) -> float:
    """The paper's ball radius ``k`` for an n-node Delta-regular tree.

    Delta = 4 uses ``k = log_3((n^{1/3} + 1) / 2)``; Section 7 gives the
    general form ``k = log_{Delta-1}((n^{1/3} - 1)(Delta-2)/Delta + 1)``.
    """
    if delta < 3:
        raise ValueError("Claim 10 needs Delta >= 3")
    if delta == 4:
        return math.log((n ** (1 / 3) + 1) / 2, 3)
    return math.log((n ** (1 / 3) - 1) * (delta - 2) / delta + 1, delta - 1)


def claim10_set_size_bound(n: int, t: int) -> float:
    """The closed-form guarantee ``n^{1/(3(2t+1))}`` on ``|S|``."""
    if t < 1:
        raise ValueError("the claim's derivation assumes t >= 1")
    return n ** (1.0 / (3 * (2 * t + 1)))


def claim10_global_success_bound(p: float, n: int, t: int) -> float:
    """Claim 10's global success ceiling ``(1-p)^{n^{1/(3(2t+1))}} + 1/(2 n^{1/3})``."""
    return (1 - p) ** claim10_set_size_bound(n, t) + 1 / (2 * n ** (1 / 3))


def independent_execution_set(
    tree: Graph,
    orientation: Orientation,
    center: int,
    t: int,
    ball_radius: int,
    seed_radius: int = 7,
    verify: bool = True,
) -> IndependentSetResult:
    """Run the Claim 10 expansion on a concrete oriented tree.

    Parameters
    ----------
    tree:
        A (balanced) regular tree.
    orientation:
        A consistent orientation of it (every interior node has all
        ``2k`` directions).
    center:
        The node ``v`` at which the ball is planted.
    t:
        The round budget of the algorithm under attack; expansion steps
        stride ``2t + 1`` hops.
    ball_radius:
        The ``k`` of the claim: all of ``S`` and the strides stay inside
        ``B_k(center)``.
    seed_radius:
        Radius of the seed sphere (the paper uses 7).
    verify:
        Check all pairwise distances (quadratic; disable for big runs).
    """
    if t < 1:
        raise ValueError("t must be at least 1")
    dist_from_center = tree.bfs_distances(center)
    stride = 2 * t + 1

    seed = [u for u, d in dist_from_center.items() if d == seed_radius]
    if not seed:
        raise ValueError(f"tree too shallow: no nodes at distance {seed_radius}")

    def walk(u: int, direction: Tuple[int, int]) -> Optional[int]:
        """Move ``stride`` hops straight in ``direction``; None if blocked."""
        x = u
        for _ in range(stride):
            nxt = orientation.neighbor(x, *direction)
            if nxt is None:
                return None
            x = nxt
        return x

    def back_direction(u: int) -> Tuple[int, int]:
        """Direction of the first hop from ``u`` toward the center."""
        du = dist_from_center[u]
        for (dim, sign), w in orientation.labeled_neighbors(u).items():
            if dist_from_center.get(w, du) == du - 1:
                return (dim, sign)
        raise AssertionError("no neighbor is closer to the center (bug)")

    collected: List[int] = []
    frontier = seed
    steps = 0
    # The paper caps at floor((k - 7) / (2t+1)) - 1 so that every member's
    # t-ball stays inside B_k(v); subtracting t directly is the same
    # guarantee with one fewer wasted layer on small trees.
    max_steps = max(0, (ball_radius - seed_radius - t) // stride)
    while steps < max_steps:
        new_frontier: List[int] = []
        for u in frontier:
            banned = back_direction(u)
            for dim in range(orientation.k):
                for sign in (1, -1):
                    if (dim, sign) == banned:
                        continue
                    reached = walk(u, (dim, sign))
                    if reached is None or dist_from_center[reached] > ball_radius:
                        continue
                    new_frontier.append(reached)
        if not new_frontier:
            break
        collected.extend(new_frontier)
        frontier = new_frontier
        steps += 1

    verified = False
    if verify and collected:
        verified = True
        for i, a in enumerate(collected):
            dist_a = tree.bfs_distances(a, cutoff=stride - 1)
            for b in collected[i + 1 :]:
                if b in dist_a:
                    raise AssertionError(
                        f"nodes {a} and {b} are at distance {dist_a[b]} < {stride} (bug)"
                    )
    return IndependentSetResult(
        nodes=collected, steps=steps, seed_size=len(seed), verified=verified
    )
