"""The lower-bound recurrences of Section 6, executable.

Claim 11 runs the speedup pipeline symbolically: starting from the
target weak 2-coloring at radius ``t`` and walking *down* to radius 0,
the palette explodes as

    c_hat_{i-1} = 2^(2 c_i)          (first speedup, Lemma 7/14)
    c_{i-1}     = 2^(Delta c_hat_{i-1})   (second speedup, Lemma 8/15)

while the failure floor obeys ``p_t >= (p_0 / ((Delta+1) c_0))^{(Delta+1)^{2t+1}}``.
Claim 12 then calibrates: at ``t = log*(n)/2 - b - 3`` the tower
``c_0`` stays below ``log^{(2b+1)} n``, forcing local failure at least
``1 / log^{(2b)} n``; Lemma 9 and Theorem 13 convert that to a global
success probability strictly below 1/2.

Palettes are :class:`~repro.analysis.towers.TowerNumber`s — they clear
float range after two steps — and failure exponents live in log2 space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Union

from .towers import TowerNumber, exp2_scaled, iterated_log, tower

__all__ = [
    "palette_trajectory",
    "claim11_failure_floor_log2",
    "claim12_round_threshold",
    "claim12_c0_ceiling",
    "claim12_failure_floor_reciprocal",
    "Lemma9Evaluation",
    "lemma9_evaluate",
    "theorem13_crossover_height",
]


def palette_trajectory(t: int, delta: int, c_t: int = 2) -> List[TowerNumber]:
    """Nominal palettes ``[c_t, c_{t-1}, ..., c_0]`` of the downward walk.

    ``c_t`` is the final target palette (2 for weak 2-coloring); each
    step applies the two speedup palettes in sequence.
    """
    if delta % 2 != 0 or delta < 4:
        raise ValueError("the speedup setting needs even Delta >= 4")
    out = [TowerNumber.from_float(float(c_t))]
    current = out[0]
    for _ in range(t):
        c_hat = exp2_scaled(current, 2.0)  # 2^(2c)
        current = exp2_scaled(c_hat, float(delta))  # 2^(Delta * c_hat)
        out.append(current)
    return out


def claim11_failure_floor_log2(
    p0_log2: float, c0_log2: float, t: int, delta: int
) -> float:
    """``log2`` of Claim 11/16's floor ``(p0 / ((Delta+1) c0))^{(Delta+1)^{2t+1}}``."""
    base_log2 = p0_log2 - math.log2(delta + 1) - c0_log2
    return ((delta + 1) ** (2 * t + 1)) * base_log2


def claim12_round_threshold(log_star_n: float, b: int) -> float:
    """Claim 12's round budget ``t = log*(n)/2 - b - 3``."""
    if b < 1:
        raise ValueError("Claim 12 assumes b >= 1")
    return log_star_n / 2.0 - b - 3


def claim12_c0_ceiling(n: TowerNumber, b: int) -> TowerNumber:
    """Claim 12's palette ceiling ``c_0 <= log^{(2b+1)} n``."""
    return iterated_log(n, 2 * b + 1)


def claim12_failure_floor_reciprocal(n: TowerNumber, b: int) -> TowerNumber:
    """``M`` such that Claim 12 guarantees local failure ``>= 1 / M``.

    ``M = log^{(2b)} n``.
    """
    return iterated_log(n, 2 * b)


@dataclass
class Lemma9Evaluation:
    """Evaluation of Lemma 9's global success ceiling at one ``(n, b)``.

    The ceiling is ``(1 - 1/M)^N + 1/(2 n^{1/3})`` with
    ``M = log^{(2b)} n`` and ``N = n^{1/(3(2t+1))}``,
    ``t = log*(n)/2 - b - 3``.
    """

    log_star_n: int
    b: int
    t: float
    regime_reached: bool  # t >= 1, so the claim machinery applies
    m_term: TowerNumber  # M
    n_term: TowerNumber  # N
    below_half: Optional[bool]  # None when the regime is not reached

    def first_term_upper(self) -> float:
        """``exp(-N/M)`` where float-representable, else 0.0."""
        if self.n_term.is_finite_float() and self.m_term.is_finite_float():
            ratio = self.n_term.to_float() / self.m_term.to_float()
            return math.exp(-min(ratio, 745.0))
        # N dwarfs M by tower magnitudes in the asymptotic regime.
        return 0.0 if self.n_term > self.m_term else 1.0


def lemma9_evaluate(n: TowerNumber, b: int = 1) -> Lemma9Evaluation:
    """Evaluate Lemma 9 / Theorem 13 at ``n`` (typically ``tower(h)``)."""
    ls = n.log_star()
    t = claim12_round_threshold(ls, b)
    if t < 1:
        return Lemma9Evaluation(
            log_star_n=ls,
            b=b,
            t=t,
            regime_reached=False,
            m_term=iterated_log(n, 2 * b),
            n_term=TowerNumber.from_float(1.0),
            below_half=None,
        )
    m_term = iterated_log(n, 2 * b)
    # N = n^(1/(3(2t+1))): log2 N = log2(n) / (3(2t+1)).
    log2_n = n.log2()
    divisor = 3 * (2 * t + 1)
    if log2_n.height == 0:
        n_term = exp2_scaled(TowerNumber.from_float(max(1.0, log2_n.top / divisor)), 1.0)
    else:
        # Dividing a tower by a small constant leaves its canonical form.
        n_term = TowerNumber(log2_n.height + 1, log2_n.top)
    # First term < 1/4 needs N >= 2 M (gives exp(-2) < 1/4); the second
    # term < 1/4 needs n^{1/3} > 2, i.e. n > 8.
    first_small = n_term > TowerNumber(m_term.height, m_term.top) and (
        not (n_term.is_finite_float() and m_term.is_finite_float())
        or n_term.to_float() >= 2 * m_term.to_float()
    )
    second_small = n > TowerNumber.from_float(8.0)
    return Lemma9Evaluation(
        log_star_n=ls,
        b=b,
        t=t,
        regime_reached=True,
        m_term=m_term,
        n_term=n_term,
        below_half=bool(first_small and second_small),
    )


def theorem13_crossover_height(b: int = 1, max_height: int = 64) -> int:
    """Smallest tower height ``h`` with Lemma 9's ceiling below 1/2 at ``n = 2↑↑h``.

    Theorem 13's "for large enough n" made concrete: the asymptotic
    regime opens once ``log* n`` clears ``2(b + 4)``.
    """
    for h in range(1, max_height + 1):
        evaluation = lemma9_evaluate(tower(h), b)
        if evaluation.regime_reached and evaluation.below_half:
            return h
    raise ValueError(f"no crossover below tower height {max_height}")
