"""Closed-form bound evaluators used across tests and benches.

Collects the scattered inequalities of Sections 4-7 in one place:

* the 0-round floor of Claim 12 (uniform guessing is optimal);
* the per-step guarantees of Lemmas 7/8/14/15 (re-exported from
  :mod:`repro.speedup.transform` for discoverability);
* the birthday bound on random identifiers from Claim 10;
* the end-to-end Theorem 6/13 statement helpers.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..speedup.transform import (  # noqa: F401 - re-exported on purpose
    first_lemma_bound,
    second_lemma_bound,
)

__all__ = [
    "zero_round_failure_of_distribution",
    "zero_round_optimal_failure",
    "id_collision_probability_bound",
    "first_lemma_bound",
    "second_lemma_bound",
    "theorem6_round_floor",
]


def zero_round_failure_of_distribution(q: Sequence[float], delta: int) -> float:
    """Local failure of a 0-round algorithm drawing colors from ``q``.

    The node and its ``delta`` neighbors draw independently, so the
    failure (all neighbors match the node) is ``sum_i q_i^(delta+1)``.
    """
    if abs(sum(q) - 1.0) > 1e-9:
        raise ValueError("q must be a probability distribution")
    return sum(x ** (delta + 1) for x in q)


def zero_round_optimal_failure(c: int, delta: int) -> float:
    """Claim 12's floor: the uniform distribution minimizes failure.

    ``min_q sum q_i^(delta+1) = c * (1/c)^(delta+1) = c^(-delta)`` by
    power-mean convexity — hence ``p_0 >= 1 / c_0^Delta``.
    """
    if c < 1:
        raise ValueError("palette must be positive")
    return float(c) ** (-delta)


def id_collision_probability_bound(ball_nodes: int, n: int) -> float:
    """Claim 10's birthday bound: ``binom(m, 2) / n < 1 / (2 n^{1/3})``
    when ``m = n^{1/3}`` nodes draw uniform IDs from ``{1..n}``."""
    return ball_nodes * (ball_nodes - 1) / (2.0 * n)


def theorem6_round_floor(n: int, b: int = 1) -> float:
    """The round threshold below which Theorem 6 forbids success >= 1/2.

    ``t = log*(n)/2 - b - 3`` — any weak 2-coloring algorithm faster
    than this has global success probability strictly below 1/2.
    """
    from .towers import log_star_float

    return log_star_float(float(n)) / 2.0 - b - 3
