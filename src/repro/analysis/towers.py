"""Tower arithmetic for the paper's quantitative claims.

The recurrences of Section 6 produce numbers like ``c_0 ~ 2^(4*2^(2*...))``
with tower height Theta(log* n) — far beyond floats and even beyond
arbitrary-precision integers for moderate ``t``.  :class:`TowerNumber`
represents such quantities just accurately enough for the paper's
manipulations, which only ever *compare* towers and take *iterated
logarithms* of them:

    x  =  2 ↑↑ height  raised on top of ``top``      (x = 2^(2^(...^top)))

i.e. ``height`` applications of ``2**_`` starting from the float
``top >= 1``.  ``log2`` peels one level; numbers small enough collapse
to plain floats.  Comparisons use the standard normalization (peel both
sides simultaneously).

This is deliberately *not* a general tetration library: only the
operations the bound evaluators need are provided, each exact in the
regime the paper uses them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

__all__ = ["TowerNumber", "tower", "log_star_float", "iterated_log", "exp2_scaled"]

#: Floats above this are promoted into tower form before exponentiation.
_FLOAT_CAP = 1e300


def log_star_float(x: float, base: float = 2.0) -> int:
    """Iterated logarithm of a float: least k with log^(k) x <= 1."""
    count = 0
    while x > 1:
        x = math.log(x, base)
        count += 1
    return count


@dataclass(frozen=True)
class TowerNumber:
    """``2 ↑↑ height`` applied on top of the float ``top``.

    Invariants: ``top >= 1`` and whenever ``height > 0`` the value is
    kept in *canonical* form: ``top`` small enough that ``2**top``
    overflows floats only at the topmost level (i.e. ``top <= 1024``),
    so two canonical towers compare by ``(height, top)`` after aligning
    heights.
    """

    height: int
    top: float

    def __post_init__(self) -> None:
        if self.top < 1:
            raise ValueError("tower top must be >= 1")
        if self.height < 0:
            raise ValueError("tower height must be non-negative")

    # ------------------------------------------------------------------
    @staticmethod
    def from_float(x: float) -> "TowerNumber":
        """Wrap a float (>= 1) as a height-0 tower."""
        if x < 1:
            raise ValueError("TowerNumber represents values >= 1")
        return TowerNumber(0, x)

    def _canonical(self) -> "TowerNumber":
        """Push the top down while it stays a representable float."""
        height, top = self.height, self.top
        while height > 0 and top < 1024:  # 2.0**1024 overflows doubles
            top = 2.0**top
            height -= 1
        return TowerNumber(height, top)

    # ------------------------------------------------------------------
    def log2(self) -> "TowerNumber":
        """Peel one exponential level."""
        if self.height > 0:
            return TowerNumber(self.height - 1, self.top)
        if self.top <= 1:
            raise ValueError("log2 of a value <= 1 leaves the domain")
        return TowerNumber(0, max(1.0, math.log2(self.top)))

    def iterated_log2(self, times: int) -> "TowerNumber":
        """``times`` applications of :meth:`log2` (clamped at 1)."""
        out: TowerNumber = self
        for _ in range(times):
            if out.height == 0 and out.top <= 1:
                return TowerNumber(0, 1.0)
            out = out.log2()
        return out

    def exp2(self) -> "TowerNumber":
        """``2 ** self``."""
        if self.height == 0 and self.top < 1024:
            return TowerNumber(0, 2.0**self.top)
        return TowerNumber(self.height + 1, self.top)

    def log_star(self) -> int:
        """The iterated logarithm as an integer."""
        canon = self._canonical()
        return canon.height + log_star_float(canon.top)

    def to_float(self) -> float:
        """The value as a float, or ``inf`` if it does not fit."""
        canon = self._canonical()
        if canon.height == 0:
            return canon.top
        return math.inf

    def is_finite_float(self) -> bool:
        """Whether :meth:`to_float` returns a finite value."""
        return self._canonical().height == 0

    # ------------------------------------------------------------------
    def _key(self) -> "tuple[int, float]":
        c = self._canonical()
        return (c.height, c.top)

    def __lt__(self, other: Union["TowerNumber", float]) -> bool:
        other_t = other if isinstance(other, TowerNumber) else TowerNumber.from_float(float(other))
        a, b = self._key(), other_t._key()
        if a[0] != b[0]:
            # Aligning: a taller canonical tower is larger except for edge
            # tops; canonical form makes the plain comparison sound because
            # height-h towers with top > 1024 exceed any height-(h-1) tower
            # with float top.
            return a[0] < b[0]
        return a[1] < b[1]

    def __le__(self, other: Union["TowerNumber", float]) -> bool:
        return self < other or self == other

    def __gt__(self, other: Union["TowerNumber", float]) -> bool:
        return not self <= other

    def __ge__(self, other: Union["TowerNumber", float]) -> bool:
        return not self < other

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, float)):
            other = TowerNumber.from_float(float(other))
        if not isinstance(other, TowerNumber):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        c = self._canonical()
        if c.height == 0:
            return f"TowerNumber({c.top:g})"
        return f"TowerNumber(2↑↑{c.height} on {c.top:g})"


def tower(height: int, top: float = 1.0) -> TowerNumber:
    """``2 ↑↑ height`` on ``top`` — e.g. ``tower(3) = 2^(2^2) = 16``."""
    return TowerNumber(height, top)._canonical()


def iterated_log(x: Union[float, TowerNumber], times: int) -> TowerNumber:
    """``log^(times)`` of ``x`` as a TowerNumber (clamped at 1)."""
    t = x if isinstance(x, TowerNumber) else TowerNumber.from_float(float(x))
    return t.iterated_log2(times)


def exp2_scaled(x: Union[float, TowerNumber], scale: float) -> TowerNumber:
    """``2 ** (scale * x)`` with small-constant absorption on towers.

    Exact while ``scale * x`` is a representable float; once ``x`` is a
    genuine tower, a small multiplicative factor does not move the
    canonical form at the precision the paper's manipulations use (they
    drop such factors too).  This is the palette-growth primitive of the
    speedup recurrences (``2^{2c}``, ``2^{Delta * c}``).
    """
    t = x if isinstance(x, TowerNumber) else TowerNumber.from_float(float(x))
    if t.height == 0:
        scaled = t.top * scale
        if scaled < 1024:  # 2.0**1024 already overflows doubles
            return TowerNumber(0, 2.0**scaled)
        return TowerNumber(1, scaled)
    return TowerNumber(t.height + 1, t.top)
