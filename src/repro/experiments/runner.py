"""Parallel experiment runner: fan independent cells out over processes.

The legacy report (``python -m repro.experiments`` with no flags) runs
every experiment serially in one process.  This module decomposes the
same workload into independent *cells* — one (experiment × parameters ×
seed) unit each — and executes them with :mod:`multiprocessing`, one
JSON artifact per cell, so that

* multi-core machines regenerate the paper in wall-clock time bounded
  by the slowest single cell rather than the sum of all of them;
* every cell leaves a structured, diffable artifact (verdict, metrics,
  timings) instead of a line of stdout — the raw material for
  regression tracking across PRs;
* instrumented algorithm cells (driven by
  :class:`~repro.instrumentation.MetricsTracer`) report message counts,
  bandwidth, and halt histograms alongside the verdicts.

Three cell kinds exist:

``local-algorithm``
    Run one message-passing :class:`~repro.local_model.LocalAlgorithm`
    on one generated graph under one derived seed, verify the output
    with the matching LCL verifier, and attach the full
    :class:`~repro.instrumentation.RunMetrics` report.

``view-algorithm``
    Run one view rule (:mod:`repro.algorithms.view_rules`) on one
    generated graph under one labeling.  With ``view_cache`` set the
    cell runs twice — directly and through the canonical-view
    memoization cache (:mod:`repro.local_model.cache`) — and its
    verdict is the bit-identical differential check; the artifact
    carries the cache hit rate.  With an ``engine`` parameter
    (``"cached"`` / ``"sharded"``) the cell instead runs through the
    named :mod:`repro.core` backend and checks it against the direct
    backend the same way.

``report``
    Wrap one of the classic experiment runners (Table 1, the log\\*
    sweep, Claims 10-12, ...) and record its verdict — the parallel
    equivalent of one section of the legacy report.

Component names resolve through :mod:`repro.core.registry`: graph
families via :data:`~repro.core.registry.GRAPH_FAMILIES`, algorithms and
view rules via :data:`~repro.core.registry.ALGORITHMS` (whose
``verifier`` metadata names the matching LCL problem in
:data:`~repro.core.registry.PROBLEMS`), and the classic report specs via
:data:`~repro.core.registry.REPORTS` — registered below, next to
nothing: one decorator at each definition site replaces the string
dispatch that used to live here.

Determinism: each cell's seed is derived as
``sha256(f"{base_seed}:{cell_id}")`` — the system-wide scheme of
:func:`repro.core.engine.derive_seed` — so results are independent of
``--jobs``, scheduling order, and which other cells exist.

Artifact schema: see ``docs/OBSERVABILITY.md`` (``repro.experiment-cell/1``).
"""

from __future__ import annotations

import importlib
import json
import multiprocessing
import os
import random
import re
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..core.engine import derive_seed
from ..core.registry import (
    ALGORITHMS,
    PROBLEMS,
    REPORTS,
    build_graph,
    ensure_builtins,
)
from ..graphs.identifiers import random_permutation_ids
from ..instrumentation import MetricsTracer
from ..local_model.network import run_local

__all__ = [
    "ARTIFACT_SCHEMA",
    "ExperimentCell",
    "CellResult",
    "RunnerSummary",
    "artifact_path",
    "derive_cell_seed",
    "execute_cell",
    "run_cells",
    "default_plan",
]

#: Version tag embedded in every artifact.
ARTIFACT_SCHEMA = "repro.experiment-cell/1"


def derive_cell_seed(base_seed: int, cell_id: str) -> int:
    """Deterministic 64-bit seed for one cell.

    Stable across processes, job counts, and plan composition: it
    depends only on the base seed and the cell's identity.  Delegates to
    :func:`repro.core.engine.derive_seed`, the one seed-derivation
    scheme in the system (the sharded engine derives per-shard seeds the
    same way).
    """
    return derive_seed(base_seed, cell_id)


@dataclass(frozen=True)
class ExperimentCell:
    """One independently executable unit of the experiment plan."""

    cell_id: str
    experiment: str  # group label ("table1", "local-luby-mis", ...)
    kind: str  # "local-algorithm" | "report"
    params: Dict[str, Any] = field(default_factory=dict)
    base_seed: int = 0

    @property
    def seed(self) -> int:
        return derive_cell_seed(self.base_seed, self.cell_id)


@dataclass
class CellResult:
    """Outcome of one cell, artifact-shaped."""

    cell: ExperimentCell
    verdict: Optional[bool]
    metrics: Optional[Dict[str, Any]]
    detail: Dict[str, Any]
    wall_seconds: float
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Verdict true and no error."""
        return self.error is None and bool(self.verdict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": ARTIFACT_SCHEMA,
            "cell_id": self.cell.cell_id,
            "experiment": self.cell.experiment,
            "kind": self.cell.kind,
            "params": self.cell.params,
            "seed": self.cell.seed,
            "verdict": self.verdict,
            "metrics": self.metrics,
            "detail": self.detail,
            "timings": {"wall_seconds": self.wall_seconds},
            "error": self.error,
        }


# ---------------------------------------------------------------------------
# Cell kind: local-algorithm
# ---------------------------------------------------------------------------

def _build_graph(params: Dict[str, Any]):
    """Registry-backed graph construction (see :func:`build_graph`)."""
    return build_graph(params)


def _make_algorithm(name: str):
    """Resolve ``(algorithm, verifier, needs_ids)`` through the registries.

    The algorithm's ``solves`` metadata — ``(problem_name, kwargs)``,
    with ``verifier`` as the accepted legacy spelling — names the LCL
    problem in :data:`PROBLEMS` that judges its output; a registered
    algorithm without one is not runnable as a ``local-algorithm`` cell.
    ``"auto:..."`` kwarg values are conformance-layer conveniences
    (resolved against a concrete graph) and are not runnable here.
    """
    ensure_builtins()
    entry = ALGORITHMS.get(name)
    solves = entry.metadata.get("solves", entry.metadata.get("verifier"))
    if entry.metadata.get("kind") != "local" or solves is None:
        raise ValueError(
            f"algorithm {name!r} is not runnable as a local-algorithm cell "
            f"(kind={entry.metadata.get('kind')!r}, no registered verifier)"
        )
    problem_name, problem_kwargs = solves
    if any(isinstance(v, str) and v.startswith("auto:")
           for v in problem_kwargs.values()):
        raise ValueError(
            f"algorithm {name!r} declares graph-dependent verifier "
            f"parameters ({problem_kwargs}); run it through "
            f"repro.conformance, which resolves them per graph"
        )
    verifier = PROBLEMS.create(problem_name, **problem_kwargs)
    return entry.create(), verifier, bool(entry.metadata.get("needs_ids"))


def _run_local_algorithm_cell(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    graph = _build_graph(params)
    algorithm, verifier, needs_ids = _make_algorithm(params["algorithm"])
    rng = random.Random(seed)
    ids = random_permutation_ids(graph, rng) if needs_ids else None
    tracer = MetricsTracer(per_round=params.get("per_round", True))
    result = run_local(graph, algorithm, ids=ids, rng=rng, tracer=tracer)
    verdict = result.all_halted() and verifier.is_feasible(graph, result.outputs)
    return {
        "verdict": verdict,
        "metrics": tracer.report(),
        "detail": {
            "n": graph.n,
            "m": graph.m,
            "rounds": result.rounds,
            "all_halted": result.all_halted(),
            "verifier": verifier.name,
        },
    }


# ---------------------------------------------------------------------------
# Cell kind: view-algorithm
# ---------------------------------------------------------------------------

def _run_view_algorithm_cell(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One view rule on one graph under one labeling.

    With ``view_cache`` on, the cell runs the rule twice — once directly
    and once through the canonical-view cache — and its verdict is the
    *differential check*: the two results must agree bit for bit.  The
    reported metrics come from the cached run, so the artifact carries
    the cache hit rate.  An ``engine`` parameter (``"cached"`` /
    ``"sharded"``) generalizes this: the cell runs the named
    :mod:`repro.core` backend against the direct backend and its verdict
    is :meth:`~repro.core.engine.SimReport.identity` equality.  Without
    either, the verdict is the basic execution contract (every node
    halts at the rule's radius).
    """
    from ..core import CachedEngine, SimRequest, simulate
    from ..local_model.cache import ViewCache

    ensure_builtins()
    graph = _build_graph(params)
    entry = ALGORITHMS.get(params["rule"])
    if entry.metadata.get("kind") != "view":
        raise ValueError(f"algorithm {params['rule']!r} is not a view rule")
    rule = entry.create(radius=params.get("radius", 2))
    labeling = params.get("labeling", "anonymous")
    rng = random.Random(seed)
    ids = randomness = None
    if labeling == "ids":
        ids = random_permutation_ids(graph, rng)
    elif labeling == "random":
        randomness = [rng.getrandbits(16) for _ in graph.nodes()]
    elif labeling != "anonymous":
        raise ValueError(f"unknown labeling {labeling!r}")

    request = SimRequest(
        kind="view", graph=graph, algorithm=rule, ids=ids, randomness=randomness
    )
    direct = simulate(request)
    detail: Dict[str, Any] = {
        "n": graph.n,
        "m": graph.m,
        "rule": rule.name,
        "labeling": labeling,
        "rounds": direct.rounds,
        "distinct_outputs": len(set(direct.outputs)),
    }

    engine = params.get("engine")
    if engine not in (None, "direct"):
        tracer = MetricsTracer(per_round=False)
        other = simulate(request, engine=engine, tracer=tracer)
        identical = other.identity() == direct.identity()
        detail["engine"] = engine
        detail["differential_identical"] = identical
        detail["engine_info"] = dict(other.info)
        return {"verdict": identical, "metrics": tracer.report(), "detail": detail}

    if not params.get("view_cache", False):
        verdict = all(r == rule.radius for r in direct.halt_rounds)
        return {"verdict": verdict, "metrics": None, "detail": detail}

    cache = ViewCache()
    tracer = MetricsTracer(per_round=False)
    cached = simulate(request, engine=CachedEngine(cache=cache), tracer=tracer)
    identical = cached.identity() == direct.identity()
    detail["differential_identical"] = identical
    detail["cache"] = cache.stats.to_dict()
    return {"verdict": identical, "metrics": tracer.report(), "detail": detail}


# ---------------------------------------------------------------------------
# Cell kind: report
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _ReportSpec:
    fn: Callable[..., Any]
    verdict: Callable[[Any], bool]
    detail: Optional[Callable[[Any], Dict[str, Any]]] = None


def _register_report(
    name: str,
    runner_attr: str,
    verdict: Callable[[Any], bool],
    detail: Optional[Callable[[Any], Dict[str, Any]]] = None,
    description: str = "",
) -> None:
    """Register one classic report spec in :data:`REPORTS`.

    The factory resolves the experiment function lazily (it lives on the
    :mod:`repro.experiments` package), so registration — which happens
    when this module is imported, including from ``ensure_builtins`` —
    never pays for the heavy experiment modules.
    """

    def factory() -> _ReportSpec:
        experiments = importlib.import_module("repro.experiments")
        return _ReportSpec(getattr(experiments, runner_attr), verdict, detail)

    REPORTS.add(name, factory, runner=runner_attr, description=description)


_register_report(
    "table1", "run_table1",
    lambda r: all(row.all_verified for row in r.rows),
    lambda r: {"rounds": {row.example: row.measurements for row in r.rows}},
    description="Table 1: homogeneous LCL complexities",
)
_register_report(
    "logstar-sweep", "run_logstar_sweep",
    lambda r: r.monotone_in_log_star() and all(p.verified for p in r.points),
    lambda r: {"rounds_by_id_bits": dict(r.rounds_series())},
    description="Theta(log* n) identifier-space sweep",
)
_register_report(
    "speedup-figures", "run_speedup_figures",
    lambda r: r.all_bounds_hold(),
    description="Figures 1-2: speedup lemma bounds",
)
_register_report(
    "theorem4", "run_theorem4",
    lambda r: r.all_verified(),
    description="Theorem 4: P* is Theta(log n)",
)
_register_report(
    "classification", "run_classification",
    lambda r: all(row.all_verified for row in r.rows),
    description="Theorem 5: the four-class classification",
)
_register_report(
    "lemma2", "run_lemma2",
    lambda r: r.rounds_are_constant() and all(p.verified for p in r.points),
    lambda r: {"rounds": {p.n: p.rounds for p in r.points}},
    description="Lemma 2: minimality reduction is O(1)",
)
_register_report(
    "claim10", "run_claim10",
    lambda r: r.all_bounds_hold(),
    description="Claim 10: independent executions",
)
_register_report(
    "recurrence", "run_recurrence_experiment",
    lambda r: r.crossover_height == 10,
    description="Claims 11-12 / Theorem 13: the recurrence endgame",
)
_register_report(
    "cycle-trichotomy", "run_cycle_trichotomy",
    lambda r: all(row.all_verified for row in r.rows),
    description="Cycle trichotomy (introduction)",
)
_register_report(
    "linial", "run_linial_experiment",
    lambda r: r.derived_algorithm_valid,
    description="Linial's neighborhood graphs",
)
_register_report(
    "global-failure", "run_global_failure",
    lambda r: r.success_decays(),
    description="Global failure amplification (Claim 10 -> Lemma 9)",
)


def _report_specs() -> Dict[str, _ReportSpec]:
    """All registered report specs, resolved (compatibility helper)."""
    return {name: REPORTS.get(name).create() for name in REPORTS.names()}


def _run_report_cell(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    name = params["report"]
    if name not in REPORTS:
        raise ValueError(f"unknown report {name!r}")
    spec = REPORTS.get(name).create()
    result = spec.fn(**params.get("kwargs", {}))
    detail: Dict[str, Any] = {}
    if spec.detail is not None:
        try:
            detail = spec.detail(result)
        except Exception:  # detail is best-effort decoration, never a verdict
            detail = {}
    return {"verdict": bool(spec.verdict(result)), "metrics": None, "detail": detail}


_CELL_KINDS: Dict[str, Callable[[Dict[str, Any], int], Dict[str, Any]]] = {
    "local-algorithm": _run_local_algorithm_cell,
    "view-algorithm": _run_view_algorithm_cell,
    "report": _run_report_cell,
}


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def execute_cell(cell: ExperimentCell) -> CellResult:
    """Run one cell in the current process; never raises."""
    started = time.perf_counter()
    try:
        runner = _CELL_KINDS[cell.kind]
        payload = runner(cell.params, cell.seed)
        return CellResult(
            cell=cell,
            verdict=payload["verdict"],
            metrics=payload.get("metrics"),
            detail=payload.get("detail", {}),
            wall_seconds=time.perf_counter() - started,
        )
    except Exception:
        return CellResult(
            cell=cell,
            verdict=None,
            metrics=None,
            detail={},
            wall_seconds=time.perf_counter() - started,
            error=traceback.format_exc(limit=8),
        )


@dataclass
class RunnerSummary:
    """Aggregate outcome of one plan execution."""

    results: List[CellResult]
    jobs: int
    wall_seconds: float
    artifacts_dir: Optional[str] = None

    @property
    def failed(self) -> List[CellResult]:
        return [r for r in self.results if not r.ok]

    @property
    def exit_code(self) -> int:
        """The CLI exit-code contract: 0 iff every cell passed."""
        return 1 if self.failed else 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": ARTIFACT_SCHEMA.replace("cell", "summary"),
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "cells": len(self.results),
            "passed": len(self.results) - len(self.failed),
            "failed": [r.cell.cell_id for r in self.failed],
            "results": [
                {
                    "cell_id": r.cell.cell_id,
                    "experiment": r.cell.experiment,
                    "verdict": r.verdict,
                    "wall_seconds": r.wall_seconds,
                    "error": None if r.error is None else r.error.splitlines()[-1],
                }
                for r in self.results
            ],
        }


_SAFE_NAME = re.compile(r"[^A-Za-z0-9._-]+")


def _artifact_path(directory: str, cell_id: str) -> str:
    """The artifact file for ``cell_id``, always inside ``directory``.

    Cell ids come from plans, which may embed user-supplied strings
    (``--seed`` labels, custom plan files), so the filename is
    sanitized, never trusted: path separators and other hostile
    characters collapse to ``_``, leading dots are stripped (no hidden
    files, no ``..`` traversal), and the result must still resolve to a
    direct child of ``directory``.
    """
    safe = _SAFE_NAME.sub("_", cell_id).lstrip(".")
    if not safe:
        raise ValueError(f"cell_id {cell_id!r} has no filename-safe characters")
    path = os.path.join(directory, safe + ".json")
    if os.path.dirname(os.path.abspath(path)) != os.path.abspath(directory):
        raise ValueError(f"cell_id {cell_id!r} escapes the artifact directory")
    return path


#: Public alias: the artifact-naming convention other subsystems reuse
#: (``repro.conformance`` writes its repro artifacts through this).
artifact_path = _artifact_path


def write_artifacts(summary: RunnerSummary, directory: str) -> None:
    """One ``<cell_id>.json`` per cell plus ``summary.json``."""
    os.makedirs(directory, exist_ok=True)
    for result in summary.results:
        with open(_artifact_path(directory, result.cell.cell_id), "w",
                  encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
    with open(os.path.join(directory, "summary.json"), "w", encoding="utf-8") as fh:
        json.dump(summary.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")


def run_cells(
    cells: Sequence[ExperimentCell],
    jobs: int = 1,
    artifacts_dir: Optional[str] = None,
    progress: Optional[Callable[[CellResult], None]] = None,
) -> RunnerSummary:
    """Execute ``cells``, ``jobs`` at a time, and collect artifacts.

    ``jobs=1`` runs in-process (no multiprocessing import cost, easier
    debugging); ``jobs>1`` fans out over a process pool.  Results are
    returned sorted by ``cell_id`` regardless of completion order, so
    the summary is byte-stable across job counts.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    ids = [c.cell_id for c in cells]
    if len(set(ids)) != len(ids):
        raise ValueError("cell_ids must be unique within a plan")
    started = time.perf_counter()
    results: List[CellResult] = []
    if jobs == 1 or len(cells) <= 1:
        for cell in cells:
            result = execute_cell(cell)
            results.append(result)
            if progress is not None:
                progress(result)
    else:
        with multiprocessing.Pool(processes=min(jobs, len(cells))) as pool:
            for result in pool.imap_unordered(execute_cell, cells):
                results.append(result)
                if progress is not None:
                    progress(result)
    results.sort(key=lambda r: r.cell.cell_id)
    summary = RunnerSummary(
        results=results,
        jobs=jobs,
        wall_seconds=time.perf_counter() - started,
        artifacts_dir=artifacts_dir,
    )
    if artifacts_dir is not None:
        write_artifacts(summary, artifacts_dir)
    return summary


# ---------------------------------------------------------------------------
# The default plan
# ---------------------------------------------------------------------------

def default_plan(
    quick: bool = False,
    base_seed: int = 0,
    view_cache: bool = False,
    engine: Optional[str] = None,
) -> List[ExperimentCell]:
    """The standard cell decomposition of ``python -m repro.experiments``.

    Instrumented algorithm cells form a (graph × size × seed ×
    algorithm) grid; view-rule cells cover the view engines (with
    ``view_cache=True`` each doubles as a cached-vs-direct differential
    check, and with ``engine`` set each runs the named
    :mod:`repro.core` backend against the direct one); report cells
    carry the classic per-claim verdicts with the same parameter
    choices as the legacy serial report.
    """
    cells: List[ExperimentCell] = []

    def add(cell_id: str, experiment: str, kind: str, params: Dict[str, Any]) -> None:
        cells.append(
            ExperimentCell(
                cell_id=cell_id,
                experiment=experiment,
                kind=kind,
                params=params,
                base_seed=base_seed,
            )
        )

    # -- instrumented algorithm grid ------------------------------------
    if quick:
        graph_specs = [
            ("cycle64", {"graph": "cycle", "n": 64}),
            ("tree3d4", {"graph": "tree", "delta": 3, "depth": 4}),
        ]
        seeds = (0, 1)
    else:
        graph_specs = [
            ("cycle64", {"graph": "cycle", "n": 64}),
            ("cycle256", {"graph": "cycle", "n": 256}),
            ("tree3d4", {"graph": "tree", "delta": 3, "depth": 4}),
            ("tree4d4", {"graph": "tree", "delta": 4, "depth": 4}),
        ]
        seeds = (0, 1, 2)
    for algorithm in ("luby-mis", "randomized-weak-coloring", "flood-leader-parity"):
        for graph_name, graph_params in graph_specs:
            for seed_index in seeds:
                add(
                    f"local-{algorithm}-{graph_name}-s{seed_index}",
                    f"local-{algorithm}",
                    "local-algorithm",
                    {"algorithm": algorithm, "seed_index": seed_index, **graph_params},
                )

    # -- view-rule grid (differential when view_cache is on) -------------
    view_graphs = [
        ("cycle64", {"graph": "cycle", "n": 64}),
        ("tree3d4", {"graph": "tree", "delta": 3, "depth": 4}),
        ("torus8x8", {"graph": "torus", "rows": 8, "cols": 8}),
    ]
    view_rules = [
        ("local-max", 1, "ids"),
        ("random-priority", 1, "random"),
        ("ball-signature", 2, "anonymous"),
        ("degree-profile", 2, "anonymous"),
    ]
    for rule, radius, labeling in view_rules:
        for graph_name, graph_params in view_graphs:
            for seed_index in (0,) if quick else seeds:
                add(
                    f"view-{rule}-{graph_name}-s{seed_index}",
                    f"view-{rule}",
                    "view-algorithm",
                    {
                        "rule": rule,
                        "radius": radius,
                        "labeling": labeling,
                        "seed_index": seed_index,
                        "view_cache": view_cache,
                        **({"engine": engine} if engine else {}),
                        **graph_params,
                    },
                )

    # -- classic report cells (legacy __main__ parameters) ---------------
    sizes = (50, 200, 800) if quick else (50, 200, 800, 3200)
    reports: List[Dict[str, Any]] = [
        {"report": "table1", "kwargs": {"sizes": sizes}},
        {"report": "logstar-sweep",
         "kwargs": {"id_bits": (8, 64, 1024, 16384), "tree_depth": 3}},
        {"report": "speedup-figures", "kwargs": {"method": "exact"}},
        {"report": "theorem4", "kwargs": {"sizes": sizes}},
        {"report": "classification", "kwargs": {"sizes": sizes}},
        {"report": "lemma2", "kwargs": {"sizes": sizes}},
        {"report": "claim10",
         "kwargs": {"depth": 8 if quick else 10, "ts": (1, 2),
                    "seed_radius": 2, "verify_pairwise": quick}},
        {"report": "recurrence", "kwargs": {"heights": (8, 10, 12, 14)}},
        {"report": "cycle-trichotomy",
         "kwargs": {"sizes": (16, 64, 256) if quick else (16, 64, 256, 1024)}},
        {"report": "linial", "kwargs": {"check_threshold": not quick}},
        {"report": "global-failure",
         "kwargs": {"sizes": (3, 6, 9) if quick else (3, 6, 9, 12), "trials": 120}},
    ]
    for params in reports:
        add(f"report-{params['report']}", params["report"], "report", params)

    return cells
