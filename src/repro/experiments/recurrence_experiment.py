"""Claims 11-12, Lemma 9, Theorem 13: the quantitative chain, evaluated.

Three exhibits:

1. **Palette towers** (Claim 11's setting): the nominal palettes the
   downward walk needs, per round budget ``t`` and degree ``Delta`` —
   tower-represented because they dwarf floats after two steps.
2. **Failure floors** (Claims 11/16): ``(p0 / ((Delta+1) c0))^{(Delta+1)^{2t+1}}``
   in log2 space, swept over ``t`` and Delta.
3. **The endgame** (Claim 12 + Lemma 9 + Theorem 13): at
   ``n = 2 ↑↑ h`` the global success ceiling drops below 1/2 exactly
   once the asymptotic regime opens (``log* n >= 2(b + 4)``), which the
   evaluator certifies with tower arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..analysis.recurrence import (
    Lemma9Evaluation,
    claim11_failure_floor_log2,
    claim12_round_threshold,
    lemma9_evaluate,
    palette_trajectory,
    theorem13_crossover_height,
)
from ..analysis.towers import TowerNumber, tower

__all__ = ["RecurrenceResult", "run_recurrence_experiment"]


@dataclass
class RecurrenceResult:
    """All three exhibits."""

    palette_rows: List[dict] = field(default_factory=list)
    floor_rows: List[dict] = field(default_factory=list)
    endgame_rows: List[dict] = field(default_factory=list)
    crossover_height: int = 0

    def format_table(self) -> str:
        lines = ["palette towers (c_0 per t, Delta):"]
        for row in self.palette_rows:
            lines.append(
                f"  t={row['t']} Delta={row['delta']}: c_0 = {row['c0']!r} "
                f"(log* = {row['c0_log_star']})"
            )
        lines.append("failure floors (log2 p_t):")
        for row in self.floor_rows:
            lines.append(
                f"  t={row['t']} Delta={row['delta']}: log2 floor = {row['floor_log2']:.4g}"
            )
        lines.append("endgame (n = 2^^h):")
        for row in self.endgame_rows:
            lines.append(
                f"  h={row['h']}: t={row['t']} regime={row['regime']} "
                f"below_half={row['below_half']}"
            )
        lines.append(f"Theorem 13 crossover at tower height {self.crossover_height}")
        return "\n".join(lines)


def run_recurrence_experiment(
    ts: Sequence[int] = (1, 2, 3, 4),
    deltas: Sequence[int] = (4, 6, 8),
    heights: Sequence[int] = (6, 8, 10, 12, 14, 16),
    b: int = 1,
) -> RecurrenceResult:
    """Evaluate the whole quantitative chain."""
    result = RecurrenceResult()
    for delta in deltas:
        for t in ts:
            trajectory = palette_trajectory(t, delta)
            c0 = trajectory[-1]
            result.palette_rows.append(
                {
                    "t": t,
                    "delta": delta,
                    "c0": c0,
                    "c0_log_star": c0.log_star(),
                    "trajectory_log_stars": [c.log_star() for c in trajectory],
                }
            )
            # A representative calibration: p0 at the uniform floor of a
            # moderate palette (c0 capped for the float computation).
            c0_log2_capped = min(c0.log2().to_float(), 1e6)
            p0_log2 = -delta * c0_log2_capped  # uniform-guess floor
            result.floor_rows.append(
                {
                    "t": t,
                    "delta": delta,
                    "floor_log2": claim11_failure_floor_log2(
                        p0_log2, c0_log2_capped, t, delta
                    ),
                }
            )
    for h in heights:
        evaluation: Lemma9Evaluation = lemma9_evaluate(tower(h), b)
        result.endgame_rows.append(
            {
                "h": h,
                "t": evaluation.t,
                "regime": evaluation.regime_reached,
                "below_half": evaluation.below_half,
            }
        )
    result.crossover_height = theorem13_crossover_height(b)
    return result
