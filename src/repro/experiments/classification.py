"""Theorem 5: the four complexity classes of homogeneous LCLs, realized.

One solver per class runs across an n-sweep of balanced Delta-regular
trees; the measured round counts are fitted to growth shapes:

* class (1): constant-label inner problem + P* fallback — O(1);
* class (2): homogeneous weak 2-coloring — Theta(log* n) (constant at
  feasible n; see :mod:`repro.experiments.logstar_sweep` for the log*
  mechanism made visible);
* classes (3)/(4): the universal all-P* solver — Theta(log n).

Every output is verified by the homogeneous verifier, which is the
executable content of "all of the classes are nonempty".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..algorithms.homogeneous_solver import (
    solve_all_pstar,
    solve_weak2_homogeneous,
    solve_with_constant_label,
)
from ..graphs.generators import regular_tree_of_depth_at_least
from ..graphs.identifiers import sequential_ids
from ..lcl.catalog import WeakColoring
from ..lcl.homogeneous import AlwaysAccept, HomogeneousLCL
from .fitting import GrowthFit, fit_growth

__all__ = ["ClassRow", "ClassificationResult", "run_classification"]


@dataclass
class ClassRow:
    """One Theorem 5 class."""

    label: str
    paper_complexity: str
    measurements: List[Tuple[int, int]]
    all_verified: bool
    fit: Optional[GrowthFit] = None


@dataclass
class ClassificationResult:
    """All measured classes."""

    rows: List[ClassRow] = field(default_factory=list)

    def format_table(self) -> str:
        lines = [f"{'class':34s} {'paper':16s} {'measured':30s} {'fit':9s} ok"]
        for row in self.rows:
            series = ", ".join(f"{n}:{r}" for n, r in row.measurements)
            fit = row.fit.best if row.fit else "-"
            lines.append(
                f"{row.label:34s} {row.paper_complexity:16s} {series:30s} "
                f"{fit:9s} {row.all_verified}"
            )
        return "\n".join(lines)


def run_classification(
    delta: int = 4,
    sizes: Sequence[int] = (50, 200, 800, 3200),
) -> ClassificationResult:
    """Measure one representative solver per Theorem 5 class."""
    result = ClassificationResult()
    trees = []
    seen = set()
    for target in sizes:
        tree, _ = regular_tree_of_depth_at_least(delta, target)
        if tree.n not in seen:
            seen.add(tree.n)
            trees.append(tree)

    # Class (1): constant label valid inside regular trees.
    h_const = HomogeneousLCL(AlwaysAccept(), delta)
    measurements, ok = [], True
    for tree in trees:
        sol = solve_with_constant_label(tree, delta, "go", radius=1, ids=sequential_ids(tree))
        ok &= h_const.is_feasible(tree, sol.labels)
        measurements.append((tree.n, sol.rounds))
    result.rows.append(
        ClassRow(
            label="(1) constant-label + P* fallback",
            paper_complexity="O(1)",
            measurements=measurements,
            all_verified=ok,
            fit=fit_growth([n for n, _ in measurements], [r for _, r in measurements]),
        )
    )

    # Class (2): homogeneous weak 2-coloring.
    h_weak = HomogeneousLCL(WeakColoring(2), delta)
    measurements, ok = [], True
    for tree in trees:
        sol = solve_weak2_homogeneous(tree, sequential_ids(tree))
        ok &= h_weak.is_feasible(tree, sol.labels)
        measurements.append((tree.n, sol.rounds))
    result.rows.append(
        ClassRow(
            label="(2) homogeneous weak 2-coloring",
            paper_complexity="Theta(log* n)",
            measurements=measurements,
            all_verified=ok,
            fit=fit_growth(
                [n for n, _ in measurements],
                [r for _, r in measurements],
                flatness_tolerance=2.0,
            ),
        )
    )

    # Classes (3)/(4): the universal all-P* upper bound.
    measurements, ok = [], True
    for tree in trees:
        sol = solve_all_pstar(tree, delta, sequential_ids(tree))
        ok &= h_const.is_feasible(tree, sol.labels)  # all-P* satisfies any P_H
        measurements.append((tree.n, sol.rounds))
    result.rows.append(
        ClassRow(
            label="(3)/(4) universal all-P* solver",
            paper_complexity="Theta(log n)",
            measurements=measurements,
            all_verified=ok,
            fit=fit_growth([n for n, _ in measurements], [r for _, r in measurements]),
        )
    )
    return result
