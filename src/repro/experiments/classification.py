"""Theorem 5: the four complexity classes of homogeneous LCLs, realized.

One solver per class runs across an n-sweep of balanced Delta-regular
trees; the measured round counts are fitted to growth shapes:

* class (1): constant-label inner problem + P* fallback — O(1);
* class (2): homogeneous weak 2-coloring — Theta(log* n) (constant at
  feasible n; see :mod:`repro.experiments.logstar_sweep` for the log*
  mechanism made visible);
* classes (3)/(4): the universal all-P* solver — Theta(log n).

Every output is verified by the homogeneous verifier, which is the
executable content of "all of the classes are nonempty".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..algorithms.cole_vishkin import log_star
from ..algorithms.homogeneous_solver import (
    solve_all_pstar,
    solve_weak2_homogeneous,
    solve_with_constant_label,
)
from ..graphs.generators import regular_tree_of_depth_at_least
from ..graphs.identifiers import sequential_ids
from ..graphs.implicit import (
    ImplicitCycle,
    ImplicitGraph,
    ImplicitTorus,
    implicit_tree_of_size_at_least,
)
from ..lcl.catalog import WeakColoring
from ..lcl.homogeneous import AlwaysAccept, HomogeneousLCL
from .fitting import GrowthFit, fit_growth

__all__ = [
    "ClassRow",
    "ClassificationResult",
    "run_classification",
    "ImplicitClassRow",
    "ImplicitClassificationResult",
    "run_classification_implicit",
]


@dataclass
class ClassRow:
    """One Theorem 5 class."""

    label: str
    paper_complexity: str
    measurements: List[Tuple[int, int]]
    all_verified: bool
    fit: Optional[GrowthFit] = None


@dataclass
class ClassificationResult:
    """All measured classes."""

    rows: List[ClassRow] = field(default_factory=list)

    def format_table(self) -> str:
        lines = [f"{'class':34s} {'paper':16s} {'measured':30s} {'fit':9s} ok"]
        for row in self.rows:
            series = ", ".join(f"{n}:{r}" for n, r in row.measurements)
            fit = row.fit.best if row.fit else "-"
            lines.append(
                f"{row.label:34s} {row.paper_complexity:16s} {series:30s} "
                f"{fit:9s} {row.all_verified}"
            )
        return "\n".join(lines)


def run_classification(
    delta: int = 4,
    sizes: Sequence[int] = (50, 200, 800, 3200),
) -> ClassificationResult:
    """Measure one representative solver per Theorem 5 class."""
    result = ClassificationResult()
    trees = []
    seen = set()
    for target in sizes:
        tree, _ = regular_tree_of_depth_at_least(delta, target)
        if tree.n not in seen:
            seen.add(tree.n)
            trees.append(tree)

    # Class (1): constant label valid inside regular trees.
    h_const = HomogeneousLCL(AlwaysAccept(), delta)
    measurements, ok = [], True
    for tree in trees:
        sol = solve_with_constant_label(tree, delta, "go", radius=1, ids=sequential_ids(tree))
        ok &= h_const.is_feasible(tree, sol.labels)
        measurements.append((tree.n, sol.rounds))
    result.rows.append(
        ClassRow(
            label="(1) constant-label + P* fallback",
            paper_complexity="O(1)",
            measurements=measurements,
            all_verified=ok,
            fit=fit_growth([n for n, _ in measurements], [r for _, r in measurements]),
        )
    )

    # Class (2): homogeneous weak 2-coloring.
    h_weak = HomogeneousLCL(WeakColoring(2), delta)
    measurements, ok = [], True
    for tree in trees:
        sol = solve_weak2_homogeneous(tree, sequential_ids(tree))
        ok &= h_weak.is_feasible(tree, sol.labels)
        measurements.append((tree.n, sol.rounds))
    result.rows.append(
        ClassRow(
            label="(2) homogeneous weak 2-coloring",
            paper_complexity="Theta(log* n)",
            measurements=measurements,
            all_verified=ok,
            fit=fit_growth(
                [n for n, _ in measurements],
                [r for _, r in measurements],
                flatness_tolerance=2.0,
            ),
        )
    )

    # Classes (3)/(4): the universal all-P* upper bound.
    measurements, ok = [], True
    for tree in trees:
        sol = solve_all_pstar(tree, delta, sequential_ids(tree))
        ok &= h_const.is_feasible(tree, sol.labels)  # all-P* satisfies any P_H
        measurements.append((tree.n, sol.rounds))
    result.rows.append(
        ClassRow(
            label="(3)/(4) universal all-P* solver",
            paper_complexity="Theta(log n)",
            measurements=measurements,
            all_verified=ok,
            fit=fit_growth([n for n, _ in measurements], [r for _, r in measurements]),
        )
    )
    return result


# ----------------------------------------------------------------------
# The implicit n >= 10^6 regime (Table 1 / Theorem 13 crossover widening)
# ----------------------------------------------------------------------

@dataclass
class ImplicitClassRow:
    """One (family, radius) cell of the widened sweep.

    ``distinct_classes`` is exact (closed-form strata, not sampling);
    ``class_bound`` is the family's proven ceiling (O(1) for
    cycles/tori, O(depth * (Delta-1)^radius) strata for trees), so
    ``bounded`` failing means a closed form regressed.  ``anchored``
    records that the same counter, run at a small overlap n, matched
    the materialized partition's class multiplicities exactly.
    """

    family: str
    n: int
    radius: int
    distinct_classes: int
    class_bound: int
    dominant_share: float
    covers_n: bool
    anchored: bool

    @property
    def bounded(self) -> bool:
        """Whether the exact count respects the closed-form ceiling."""
        return self.distinct_classes <= self.class_bound


@dataclass
class ImplicitClassificationResult:
    """The widened classification sweep at implicit scale."""

    n: int
    delta: int
    tree_depth: int
    rows: List[ImplicitClassRow] = field(default_factory=list)
    predicted_rounds: List[Tuple[str, str]] = field(default_factory=list)

    def all_verified(self) -> bool:
        """Every cell covers n, stays under its bound, and anchored."""
        return all(
            row.covers_n and row.bounded and row.anchored for row in self.rows
        )

    def format_table(self) -> str:
        """Render the per-(family, radius) class-count table."""
        lines = [
            f"{'family':8s} {'n':>10s} {'radius':>6s} {'classes':>8s} "
            f"{'bound':>6s} {'dominant':>9s} ok"
        ]
        for row in self.rows:
            ok = row.covers_n and row.bounded and row.anchored
            lines.append(
                f"{row.family:8s} {row.n:>10d} {row.radius:>6d} "
                f"{row.distinct_classes:>8d} {row.class_bound:>6d} "
                f"{row.dominant_share:>8.4%} {ok}"
            )
        for label, prediction in self.predicted_rounds:
            lines.append(f"  {label}: {prediction}")
        return "\n".join(lines)


#: Small overlap sizes where the anchor cross-check materializes the
#: same family and compares exact multiplicities against the full
#: partition (tree anchors use this as the depth).
_ANCHOR = {"cycle": 41, "torus": 7, "tree": 3}


def _anchor_twin(family: str, delta: int) -> ImplicitGraph:
    """The small-n implicit handle the anchor cross-check runs on."""
    if family == "cycle":
        return ImplicitCycle(_ANCHOR["cycle"])
    if family == "torus":
        return ImplicitTorus(_ANCHOR["torus"], _ANCHOR["torus"])
    return implicit_tree_of_size_at_least(
        delta, delta * (delta - 1) ** (_ANCHOR["tree"] - 1)
    )[0]


def _anchored(family: str, delta: int, radii: Sequence[int]) -> bool:
    """Exact-multiplicity cross-check at a materializable overlap n.

    Runs the implicit class counter and the materialized full-partition
    expander on the *same* small instance and demands identical keys,
    representatives, and per-class multiplicities — the in-experiment
    rendering of the bit-identity contract (the hypothesis/parity
    suites prove it exhaustively; this keeps the headline sweep honest
    on every run).
    """
    from ..local_model.batch_views import BatchBallExpander, expander_for

    handle = _anchor_twin(family, delta)
    materialized = handle.materialized()
    full = BatchBallExpander(materialized)
    counter = expander_for(handle, "implicit")
    parts = full.node_classes_many(tuple(radii))
    counts = counter.class_counts_many(tuple(radii))
    for part, cc in zip(parts, counts):
        bincount = [0] * part.class_count
        for label in part.labels:
            bincount[label] += 1
        if (
            cc.keys != part.keys
            or list(cc.reps) != list(part.reps)
            or list(cc.counts) != bincount
        ):
            return False
    return True


def run_classification_implicit(
    n: int = 1_000_000,
    delta: int = 4,
    radii: Sequence[int] = (0, 1, 2),
) -> ImplicitClassificationResult:
    """Exact anonymous class structure at n >= 10^6, O(classes) memory.

    For each symmetric family the paper argues about (cycle, toroidal
    grid, balanced ``delta``-regular tree) at headline size ``n``,
    counts the exact number of distinct radius-``r`` view classes and
    their multiplicities from closed-form strata — no graph is ever
    materialized, so peak memory is O(distinct classes * ball volume).
    This is the regime where Table 1's four complexity classes visibly
    separate: the class counts stay O(1) / O(depth) while n spans
    10^6-10^8, which is exactly the paper's asymptotic claim rendered
    finite.
    """
    from ..local_model.batch_views import expander_for

    side = max(3, math.isqrt(n - 1) + 1)
    tree, depth = implicit_tree_of_size_at_least(delta, n)
    handles: List[Tuple[str, ImplicitGraph]] = [
        ("cycle", ImplicitCycle(max(3, n))),
        ("torus", ImplicitTorus(side, side)),
        ("tree", tree),
    ]
    result = ImplicitClassificationResult(n=n, delta=delta, tree_depth=depth)
    radii = tuple(radii)
    for family, handle in handles:
        counter = expander_for(handle, "implicit")
        counts = counter.class_counts_many(radii)
        anchored = _anchored(family, delta, radii)
        for radius, cc in zip(radii, counts):
            if family == "cycle":
                bound = 2 * radius + 3
            elif family == "torus":
                bound = (2 * radius + 3) ** 2
            else:
                bound = len(handle.strata(radius))
            result.rows.append(
                ImplicitClassRow(
                    family=family,
                    n=handle.n,
                    radius=radius,
                    distinct_classes=cc.class_count,
                    class_bound=bound,
                    dominant_share=max(cc.counts) / cc.total,
                    covers_n=cc.total == handle.n,
                    anchored=anchored,
                )
            )
    result.predicted_rounds = [
        ("(1) constant-label + P* fallback", "O(1) rounds at any n"),
        (
            "(2) homogeneous weak 2-coloring",
            f"Theta(log* n): log*({n}) = {log_star(float(n))}",
        ),
        (
            "(3)/(4) universal all-P* solver",
            f"Theta(log n): tree depth {depth} at n = {tree.n}",
        ),
    ]
    return result
