"""Experiment harness: one runner per table / figure / headline claim."""

from .fitting import GrowthFit, fit_growth, GROWTH_MODELS
from .table1 import Table1Row, Table1Result, run_table1, DEFAULT_SIZES
from .logstar_sweep import (
    LogStarSweepPoint,
    LogStarSweepResult,
    run_logstar_sweep,
    DEFAULT_ID_BITS,
    ImplicitLogStarPoint,
    ImplicitLogStarResult,
    run_logstar_sweep_implicit,
)
from .speedup_figures import (
    SpeedupFigureRow,
    SpeedupFiguresResult,
    run_speedup_figures,
    default_seeds,
)
from .pstar_theorem4 import (
    PStarUpperPoint,
    Lemma18Witness,
    Theorem4Result,
    run_theorem4,
)
from .classification import (
    ClassRow,
    ClassificationResult,
    run_classification,
    ImplicitClassRow,
    ImplicitClassificationResult,
    run_classification_implicit,
)
from .lemma2_experiment import (
    plant_distance_k_weak_coloring,
    Lemma2Point,
    Lemma2Result,
    run_lemma2,
)
from .claim10_experiment import Claim10Point, Claim10Result, run_claim10
from .recurrence_experiment import RecurrenceResult, run_recurrence_experiment
from .linial_experiment import LinialPoint, LinialResult, run_linial_experiment
from .cycle_trichotomy import (
    TrichotomyRow,
    CycleTrichotomyResult,
    run_cycle_trichotomy,
)
from .global_failure import (
    GlobalFailurePoint,
    GlobalFailureResult,
    run_global_failure,
)
from .runner import (
    ARTIFACT_SCHEMA,
    CellResult,
    ExperimentCell,
    RunnerSummary,
    default_plan,
    derive_cell_seed,
    execute_cell,
    run_cells,
)

__all__ = [
    "GrowthFit",
    "fit_growth",
    "GROWTH_MODELS",
    "Table1Row",
    "Table1Result",
    "run_table1",
    "DEFAULT_SIZES",
    "LogStarSweepPoint",
    "LogStarSweepResult",
    "run_logstar_sweep",
    "ImplicitLogStarPoint",
    "ImplicitLogStarResult",
    "run_logstar_sweep_implicit",
    "DEFAULT_ID_BITS",
    "SpeedupFigureRow",
    "SpeedupFiguresResult",
    "run_speedup_figures",
    "default_seeds",
    "PStarUpperPoint",
    "Lemma18Witness",
    "Theorem4Result",
    "run_theorem4",
    "ClassRow",
    "ClassificationResult",
    "run_classification",
    "ImplicitClassRow",
    "ImplicitClassificationResult",
    "run_classification_implicit",
    "plant_distance_k_weak_coloring",
    "Lemma2Point",
    "Lemma2Result",
    "run_lemma2",
    "Claim10Point",
    "Claim10Result",
    "run_claim10",
    "RecurrenceResult",
    "run_recurrence_experiment",
    "LinialPoint",
    "LinialResult",
    "run_linial_experiment",
    "TrichotomyRow",
    "CycleTrichotomyResult",
    "run_cycle_trichotomy",
    "GlobalFailurePoint",
    "GlobalFailureResult",
    "run_global_failure",
    "ARTIFACT_SCHEMA",
    "CellResult",
    "ExperimentCell",
    "RunnerSummary",
    "default_plan",
    "derive_cell_seed",
    "execute_cell",
    "run_cells",
]
