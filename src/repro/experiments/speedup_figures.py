"""Figures 1 and 2, made quantitative.

The paper's two figures illustrate the speedup lemmas' simulations; the
reproducible content is the *inequalities* they prove:

* Figure 1 / Lemma 7 (general: Lemma 14): from a node algorithm with
  failure ``p`` and palette ``c``, the constructed edge algorithm's
  failure obeys ``p' <= (Delta+1) p^{1/(Delta+1)} c^{Delta/(Delta+1)}``;
* Figure 2 / Lemma 8 (general: Lemma 15): from an edge algorithm, the
  constructed node algorithm obeys ``p' <= Delta p^{1/Delta} c^{1-1/Delta}``.

:func:`run_speedup_figures` executes the transformations on a battery
of seed algorithms with *exact* failure probabilities and reports the
measured / bound pairs, plus the palette blow-up trajectory (the other
quantity the figures depict).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..speedup.algorithms import (
    NodeAlgorithm,
    local_maximum_coloring,
    smaller_count_coloring,
    zero_round_uniform,
)
from ..speedup.pipeline import SpeedupPipelineResult, run_speedup_pipeline

__all__ = ["SpeedupFigureRow", "SpeedupFiguresResult", "run_speedup_figures", "default_seeds"]


@dataclass
class SpeedupFigureRow:
    """One seed algorithm's trip through the pipeline."""

    seed_name: str
    k: int
    stages: List[dict] = field(default_factory=list)
    bounds_hold: bool = True
    final_failure: float = 0.0
    final_palette_nominal: object = None


@dataclass
class SpeedupFiguresResult:
    """All seeds."""

    rows: List[SpeedupFigureRow] = field(default_factory=list)

    def all_bounds_hold(self) -> bool:
        return all(r.bounds_hold for r in self.rows)

    def format_table(self) -> str:
        lines = []
        for row in self.rows:
            lines.append(f"seed={row.seed_name} (k={row.k}):")
            for s in row.stages:
                bound = "-" if s["bound"] is None else f"{s['bound']:.4g}"
                lines.append(
                    f"  {s['kind']:4s} radius={s['radius']} "
                    f"palette=2^{s['palette_log2']:.6g} "
                    f"p={s['failure']:.6g} bound={bound} exact={s['exact']}"
                )
        return "\n".join(lines)


def default_seeds(k: int = 2) -> List[NodeAlgorithm]:
    """The seed battery: different palettes and failure regimes."""
    return [
        local_maximum_coloring(k, bits=1),
        local_maximum_coloring(k, bits=2),
        smaller_count_coloring(k, bits=1),
        smaller_count_coloring(k, bits=2),
    ]


def run_speedup_figures(
    seeds: Optional[Sequence[NodeAlgorithm]] = None,
    method: str = "auto",
    samples: int = 50_000,
) -> SpeedupFiguresResult:
    """Run the pipeline for every seed and collect stage tables."""
    if seeds is None:
        seeds = default_seeds(2)
    result = SpeedupFiguresResult()
    for seed in seeds:
        pipeline: SpeedupPipelineResult = run_speedup_pipeline(
            seed, method=method, samples=samples
        )
        row = SpeedupFigureRow(seed_name=seed.name, k=seed.k)
        for stage in pipeline.stages:
            row.stages.append(
                {
                    "kind": stage.kind,
                    "radius": stage.radius,
                    "palette_log2": stage.nominal_palette.log2().to_float(),
                    "failure": stage.measured_failure.as_float(),
                    "bound": stage.lemma_bound,
                    "exact": stage.measured_failure.exact,
                }
            )
            if stage.bound_satisfied() is False:
                row.bounds_hold = False
        row.final_failure = pipeline.final_failure()
        row.final_palette_nominal = pipeline.stages[-1].nominal_palette
        result.rows.append(row)
    return result
