"""Theorem 4: the pointer problem P* is Theta(log_Delta n).

Upper bound (Lemma 17): the solver's radius, swept over balanced trees,
tracks ``log_{Delta-1} n``.

Lower bound (Lemma 18): the indistinguishable pair (T, T').  The two
trees agree on the ball of radius ``depth - 2`` around the center, so
any algorithm running in fewer rounds answers identically on both — yet
on T the center must advertise ``d = 1`` (chains end at leaves) while
on T' every chain ends at a degree-(Delta-1) node, forcing
``d = Delta - 1``.  The experiment constructs the pair, checks the
view-level indistinguishability radius mechanically, and reports the
forced contradiction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..algorithms.pointer_solver import solve_pstar
from ..graphs.generators import balanced_regular_tree, lemma18_pair, regular_tree_of_depth_at_least
from ..graphs.identifiers import sequential_ids
from ..lcl.pointer import PStar
from ..local_model.views import gather_view
from .fitting import GrowthFit, fit_growth

__all__ = [
    "PStarUpperPoint",
    "Lemma18Witness",
    "Theorem4Result",
    "run_theorem4",
]


@dataclass
class PStarUpperPoint:
    """One upper-bound measurement."""

    n: int
    radius: int
    rounds: int
    verified: bool


@dataclass
class Lemma18Witness:
    """The indistinguishability evidence for one depth."""

    depth: int
    n: int
    views_equal_radius: int  # largest radius with identical center views
    center_d_on_t: int  # the d-value chains force on T
    center_d_on_t_prime: int  # ... and on T'
    contradiction: bool  # the two forced values differ


@dataclass
class Theorem4Result:
    """Upper-bound sweep + lower-bound witnesses."""

    upper: List[PStarUpperPoint] = field(default_factory=list)
    witnesses: List[Lemma18Witness] = field(default_factory=list)
    fit: Optional[GrowthFit] = None

    def all_verified(self) -> bool:
        return all(p.verified for p in self.upper) and all(
            w.contradiction for w in self.witnesses
        )


def _max_equal_view_radius(t, t_prime, center: int, cap: int) -> int:
    """Largest radius at which the two center views coincide."""
    best = -1
    for radius in range(cap + 1):
        a = gather_view(t, center, radius)
        b = gather_view(t_prime, center, radius)
        if a.key() != b.key():
            break
        best = radius
    return best


def run_theorem4(
    delta: int = 4,
    sizes: Tuple[int, ...] = (50, 200, 800, 3200, 12800),
    witness_depths: Tuple[int, ...] = (2, 3, 4),
) -> Theorem4Result:
    """Measure the upper bound and build the Lemma 18 witnesses."""
    result = Theorem4Result()
    seen = set()
    for target in sizes:
        tree, _ = regular_tree_of_depth_at_least(delta, target)
        if tree.n in seen:
            continue
        seen.add(tree.n)
        ids = sequential_ids(tree)
        solution = solve_pstar(tree, delta, ids)
        verified = not PStar(delta).verify(tree, solution.labels)
        result.upper.append(
            PStarUpperPoint(
                n=tree.n,
                radius=solution.radius,
                rounds=solution.rounds,
                verified=verified,
            )
        )
    if len(result.upper) >= 3:
        result.fit = fit_growth(
            [p.n for p in result.upper], [p.rounds for p in result.upper]
        )

    for depth in witness_depths:
        t, t_prime, center = lemma18_pair(delta, depth)
        equal_radius = _max_equal_view_radius(t, t_prime, center, cap=depth)
        # On T every chain from the center ends at a leaf: d = 1.  On T'
        # the depth-(depth-1) nodes have degree Delta - 1 and cut every
        # chain there: d = Delta - 1.  (Forced values per conditions 2/3/5.)
        result.witnesses.append(
            Lemma18Witness(
                depth=depth,
                n=t.n,
                views_equal_radius=equal_radius,
                center_d_on_t=1,
                center_d_on_t_prime=delta - 1,
                contradiction=(1 != delta - 1) and equal_radius >= depth - 2,
            )
        )
    return result
