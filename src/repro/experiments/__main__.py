"""Run every experiment and print a consolidated report.

Usage::

    python -m repro.experiments                     # serial report
    python -m repro.experiments --quick             # smaller sweeps
    python -m repro.experiments --jobs 4            # parallel cells
    python -m repro.experiments --jobs 4 --artifacts out/   # + JSON artifacts
    python -m repro.experiments --view-cache --quick  # cached-vs-direct cells
    python -m repro.experiments --engine sharded --quick  # backend differential
    python -m repro.experiments --list              # registered components
    python -m repro.experiments classification --implicit --n 1000000
    python -m repro.experiments logstar_sweep --implicit --n 1000000 \
        --rss-limit-mb 256                          # implicit-scale sweeps

Regenerates Table 1, the log* sweep, Figures 1-2 (speedup lemmas), the
Theorem 4 ladder, the Theorem 5 classification, Lemma 2, Claim 10,
Claims 11-12 / Theorem 13, the cycle trichotomy, and the global-failure
amplification — each followed by its pass/fail verdict.

With ``--jobs`` and/or ``--artifacts`` the workload runs through the
cell runner (:mod:`repro.experiments.runner`): independent cells fan
out over worker processes, each leaving a JSON artifact with its
verdict, metrics, and timings.

Exit-code contract (both paths): **0** iff every verdict passed, **1**
if any verdict failed or a cell errored, **2** on usage errors
(argparse's convention).
"""

from __future__ import annotations

import argparse
import sys
import time

from . import (
    run_claim10,
    run_linial_experiment,
    run_classification,
    run_cycle_trichotomy,
    run_global_failure,
    run_lemma2,
    run_logstar_sweep,
    run_recurrence_experiment,
    run_speedup_figures,
    run_table1,
    run_theorem4,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate every table, figure, and headline claim. "
        "Exit code: 0 iff every verdict passes, 1 otherwise, 2 on usage errors.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        choices=("classification", "logstar_sweep"),
        help="run a single experiment instead of the full report "
        "(required for --implicit)",
    )
    parser.add_argument("--quick", action="store_true", help="smaller sweeps")
    parser.add_argument(
        "--implicit",
        action="store_true",
        help="run the named experiment at implicit scale: the graph family "
        "is a closed-form handle (docs/IMPLICIT.md), never materialized, "
        "with O(distinct classes) peak memory",
    )
    parser.add_argument(
        "--n",
        type=int,
        default=1_000_000,
        metavar="N",
        help="headline instance size for --implicit (default 1000000)",
    )
    parser.add_argument(
        "--rss-limit-mb",
        type=int,
        default=None,
        metavar="MB",
        help="with --implicit: fail (exit 1) if peak RSS exceeds MB — the "
        "materialization tripwire the CI smoke runs under",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="run independent experiment cells over N worker processes "
        "(switches to the cell runner; default: the serial report)",
    )
    parser.add_argument(
        "--artifacts",
        default=None,
        metavar="DIR",
        help="write one JSON artifact per cell plus summary.json into DIR "
        "(implies the cell runner; default DIR with --jobs: ./artifacts)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed for deterministic per-cell seed derivation (cell runner)",
    )
    parser.add_argument(
        "--view-cache",
        action="store_true",
        help="run view-rule cells through the canonical-view cache and make "
        "each cell a cached-vs-direct differential check (implies the cell "
        "runner; cache hit rates land in the artifacts)",
    )
    parser.add_argument(
        "--engine",
        choices=("direct", "cached", "sharded"),
        default=None,
        metavar="NAME",
        help="run view-rule cells through the named repro.core backend and "
        "make each cell a backend-vs-direct differential check (implies "
        "the cell runner; direct/cached/sharded)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_components",
        help="list every registered algorithm, graph family, LCL problem, "
        "report spec, and engine backend, then exit",
    )
    args = parser.parse_args(argv)

    if args.list_components:
        return _list_components()
    if args.implicit:
        if args.experiment is None:
            print(
                "error: --implicit needs an experiment name "
                "(classification or logstar_sweep)",
                file=sys.stderr,
            )
            return 2
        return _run_implicit(args)
    if args.experiment is not None:
        print(
            "error: naming an experiment requires --implicit "
            "(the full report runs them all)",
            file=sys.stderr,
        )
        return 2
    if (
        args.jobs is not None
        or args.artifacts is not None
        or args.view_cache
        or args.engine is not None
    ):
        return _run_parallel(args)
    return _run_serial_report(args)


def _run_implicit(args) -> int:
    """Run one experiment at implicit scale, optionally RSS-capped.

    Peak RSS is read from ``resource.getrusage`` after the run — the
    ceiling is the materialization tripwire: any path that silently
    materializes an n >= 10^6 family blows hundreds of MB and fails
    the cap long before the verdicts are reached.
    """
    import resource

    from .classification import run_classification_implicit
    from .logstar_sweep import run_logstar_sweep_implicit

    start = time.time()
    if args.experiment == "classification":
        result = run_classification_implicit(n=args.n)
        print(result.format_table())
        ok = result.all_verified()
        print(f"verdict: {'PASS' if ok else 'FAIL'} (classification, implicit)")
    else:
        result = run_logstar_sweep_implicit(n=args.n)
        for p in result.points:
            print(
                f"  n={p.n:<12d} depth={p.tree_depth:<3d} "
                f"classes={p.distinct_classes:<4d} (bound {p.class_bound}) "
                f"id bits={p.id_bits:<4d} log* n={p.log_star_n} "
                f"CV prediction={p.predicted_cv_rounds}"
            )
        ok = result.monotone_in_log_star() and result.classes_stay_bounded()
        print(f"verdict: {'PASS' if ok else 'FAIL'} (logstar_sweep, implicit)")
    peak_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    peak_mb = peak_kib / 1024.0
    print(f"elapsed {time.time() - start:.2f}s, peak RSS {peak_mb:.1f} MB")
    if args.rss_limit_mb is not None and peak_mb > args.rss_limit_mb:
        print(
            f"error: peak RSS {peak_mb:.1f} MB exceeds the "
            f"--rss-limit-mb {args.rss_limit_mb} ceiling — "
            "a materialized path leaked into the implicit pipeline",
            file=sys.stderr,
        )
        return 1
    return 0 if ok else 1


def _list_components() -> int:
    """Print the registries — the honest answer to "what can this run?"."""
    from ..core import (
        ALGORITHMS,
        ENGINE_NAMES,
        GRAPH_FAMILIES,
        PROBLEMS,
        REPORTS,
        ensure_builtins,
    )

    ensure_builtins()

    def section(title: str, rows) -> None:
        print(f"{title}:")
        for name, annotation in rows:
            print(f"  {name:<28s} {annotation}")
        print()

    section(
        "algorithms",
        (
            (
                e.name,
                f"[{e.metadata.get('kind', '?')}] {e.description}",
            )
            for e in ALGORITHMS.entries()
        ),
    )
    section(
        "graph families",
        (
            (e.name, f"params: {', '.join(e.metadata.get('params', ())) or '-'}")
            for e in GRAPH_FAMILIES.entries()
        ),
    )
    section(
        "LCL problems",
        (
            (e.name, f"[{e.metadata.get('model', '?')}] {e.description}")
            for e in PROBLEMS.entries()
        ),
    )
    section(
        "report specs",
        ((e.name, e.description) for e in REPORTS.entries()),
    )
    section("engine backends", ((name, "") for name in ENGINE_NAMES))
    return 0


def _run_parallel(args) -> int:
    from .runner import default_plan, run_cells

    if args.jobs is not None and args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    jobs = args.jobs or 1
    artifacts = args.artifacts or "artifacts"
    cells = default_plan(
        quick=args.quick,
        base_seed=args.seed,
        view_cache=args.view_cache,
        engine=args.engine,
    )
    print(f"running {len(cells)} cells on {jobs} process(es) -> {artifacts}/")

    def progress(result) -> None:
        status = "ERROR" if result.error else ("PASS" if result.verdict else "FAIL")
        print(f"  [{status}] {result.cell.cell_id}  ({result.wall_seconds:.2f}s)")

    summary = run_cells(cells, jobs=jobs, artifacts_dir=artifacts, progress=progress)
    print(
        f"\nSUMMARY  {len(summary.results) - len(summary.failed)}/"
        f"{len(summary.results)} cells passed in {summary.wall_seconds:.1f}s "
        f"(artifacts: {artifacts}/)"
    )
    for result in summary.failed:
        reason = "error" if result.error else "verdict failed"
        print(f"  [FAIL] {result.cell.cell_id}: {reason}")
        if result.error:
            print("    " + result.error.splitlines()[-1])
    return summary.exit_code


def _run_serial_report(args) -> int:
    sizes = (50, 200, 800) if args.quick else (50, 200, 800, 3200)
    verdicts = []

    def section(title: str) -> None:
        print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")

    start = time.time()

    section("Table 1 — homogeneous LCL complexities")
    table1 = run_table1(sizes=sizes)
    print(table1.format_table())
    verdicts.append(("Table 1 verified", all(r.all_verified for r in table1.rows)))

    section("Theta(log* n) made visible — identifier-space sweep")
    sweep = run_logstar_sweep(id_bits=(8, 64, 1024, 16384), tree_depth=3)
    for p in sweep.points:
        print(f"  id space 2^{p.id_bits:<6d}: {p.measured_rounds} rounds "
              f"(CV prediction {p.predicted_cv_rounds})")
    verdicts.append(("log* sweep monotone", sweep.monotone_in_log_star()))

    section("Figures 1-2 — speedup lemmas, exact probabilities")
    figures = run_speedup_figures(method="exact")
    print(figures.format_table())
    verdicts.append(("speedup lemma bounds hold", figures.all_bounds_hold()))

    section("Theorem 4 — P* is Theta(log n)")
    theorem4 = run_theorem4(sizes=sizes)
    print("  upper:", ", ".join(f"{p.n}:{p.rounds}" for p in theorem4.upper),
          f"(fit: {theorem4.fit.best if theorem4.fit else '-'})")
    for w in theorem4.witnesses:
        print(f"  Lemma 18 depth {w.depth}: views equal to radius "
              f"{w.views_equal_radius}, outputs forced {w.center_d_on_t} vs "
              f"{w.center_d_on_t_prime}")
    verdicts.append(("Theorem 4 verified", theorem4.all_verified()))

    section("Theorem 5 — classification")
    classification = run_classification(sizes=sizes)
    print(classification.format_table())
    verdicts.append(
        ("classification verified", all(r.all_verified for r in classification.rows))
    )

    section("Lemma 2 — minimality reduction is O(1)")
    lemma2 = run_lemma2(sizes=sizes)
    print("  rounds:", ", ".join(f"{p.n}:{p.rounds}" for p in lemma2.points))
    verdicts.append(("Lemma 2 constant", lemma2.rounds_are_constant()))

    section("Claim 10 — independent executions")
    claim10 = run_claim10(depth=8 if args.quick else 10, ts=(1, 2),
                          seed_radius=2, verify_pairwise=args.quick)
    for p in claim10.points:
        print(f"  t={p.t}: |S|={p.set_size} >= {p.closed_form_bound:.1f} "
              f"(regime={p.in_regime})")
    verdicts.append(("Claim 10 bounds", claim10.all_bounds_hold()))

    section("Claims 11-12 / Theorem 13 — the recurrence endgame")
    recurrence = run_recurrence_experiment(heights=(8, 10, 12, 14))
    print(recurrence.format_table())
    verdicts.append(("Theorem 13 crossover at 2^^10",
                     recurrence.crossover_height == 10))

    section("Cycle trichotomy (introduction)")
    trichotomy = run_cycle_trichotomy(sizes=(16, 64, 256) if args.quick
                                      else (16, 64, 256, 1024))
    print(trichotomy.format_table())
    verdicts.append(
        ("trichotomy verified", all(r.all_verified for r in trichotomy.rows))
    )

    section("Linial's neighborhood graphs (introduction's first flavor)")
    linial = run_linial_experiment(check_threshold=not args.quick)
    print(linial.format_table())
    verdicts.append(("Linial equivalence valid", linial.derived_algorithm_valid))
    if not args.quick:
        verdicts.append(("N_1(7) not 3-colorable", linial.threshold_m == 7))

    section("Global failure amplification (Claim 10 -> Lemma 9)")
    amplification = run_global_failure(sizes=(3, 6, 9) if args.quick
                                       else (3, 6, 9, 12), trials=120)
    print(amplification.format_table())
    verdicts.append(("global success decays", amplification.success_decays()))

    section(f"SUMMARY  ({time.time() - start:.1f}s)")
    failed = 0
    for label, ok in verdicts:
        print(f"  [{'PASS' if ok else 'FAIL'}] {label}")
        failed += 0 if ok else 1
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
