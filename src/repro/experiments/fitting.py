"""Growth-class fitting for measured round complexities.

The paper's claims are asymptotic classes (O(1), Theta(log* n),
Theta(log n), Theta(n)); experiments measure finite (n, rounds) series
and need to name the class the data tracks.  :func:`fit_growth` fits
``rounds ~ a + b * f(n)`` by least squares for each candidate shape and
reports the winner by residual error, with a flatness short-circuit so
constants are not misclassified as slowly-growing functions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..analysis.towers import log_star_float

__all__ = ["GrowthFit", "fit_growth", "GROWTH_MODELS"]

#: Candidate shapes: name -> f(n).
GROWTH_MODELS: Dict[str, Callable[[float], float]] = {
    "constant": lambda n: 0.0,
    "log_star": lambda n: float(log_star_float(n)),
    "log": lambda n: math.log2(n),
    "sqrt": lambda n: math.sqrt(n),
    "linear": lambda n: float(n),
}


@dataclass
class GrowthFit:
    """Result of fitting one series against all candidate shapes."""

    best: str
    rmse: Dict[str, float]
    coefficients: Dict[str, Tuple[float, float]]  # model -> (a, b)

    def is_constant(self) -> bool:
        return self.best == "constant"


def _least_squares(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float, float]:
    """Fit ``y = a + b x``; returns (a, b, rmse)."""
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    var_x = sum((x - mean_x) ** 2 for x in xs)
    if var_x == 0:
        a, b = mean_y, 0.0
    else:
        b = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / var_x
        a = mean_y - b * mean_x
    rmse = math.sqrt(sum((a + b * x - y) ** 2 for x, y in zip(xs, ys)) / n)
    return a, b, rmse


def fit_growth(
    ns: Sequence[float],
    rounds: Sequence[float],
    flatness_tolerance: float = 1.0,
) -> GrowthFit:
    """Name the growth class a measured series tracks.

    Parameters
    ----------
    ns, rounds:
        The measured series (at least 3 points, n strictly increasing).
    flatness_tolerance:
        If the series' total spread is at most this many rounds, it is
        declared ``constant`` outright — any shape fits a flat line.
    """
    if len(ns) != len(rounds) or len(ns) < 3:
        raise ValueError("need at least 3 aligned data points")
    if any(b <= a for a, b in zip(ns, ns[1:])):
        raise ValueError("n values must be strictly increasing")

    spread = max(rounds) - min(rounds)
    rmse: Dict[str, float] = {}
    coefficients: Dict[str, Tuple[float, float]] = {}
    for name, f in GROWTH_MODELS.items():
        xs = [f(n) for n in ns]
        a, b, err = _least_squares(xs, rounds)
        # Growing models must actually grow: a negative slope on a
        # growing feature means the model is abused as a constant.
        if name != "constant" and b <= 0:
            err = math.inf
        rmse[name] = err
        coefficients[name] = (a, b)

    if spread <= flatness_tolerance:
        best = "constant"
    else:
        best = min(rmse, key=lambda k: rmse[k])
    return GrowthFit(best=best, rmse=rmse, coefficients=coefficients)
