"""Lemma 2: the minimality reduction runs in O(1) rounds — measured.

For fixed constants ``(k, c)``, the round count of the
distance-k-weak-c-coloring -> weak-2-coloring pipeline must be
*independent of n*.  The experiment plants synthetic distance-k weak
c-colorings on trees of growing size and records the pipeline's exact
round count, phase by phase; the flat series is the executable content
of "weak 2-coloring is a minimal symmetry-breaking problem".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..algorithms.weak_coloring import weak_two_coloring_from_weak_coloring
from ..graphs.generators import regular_tree_of_depth_at_least
from ..graphs.graph import Graph
from ..lcl.catalog import WeakColoring
from .fitting import GrowthFit, fit_growth

__all__ = [
    "plant_distance_k_weak_coloring",
    "Lemma2Point",
    "Lemma2Result",
    "run_lemma2",
]


def plant_distance_k_weak_coloring(
    graph: Graph, k: int, c: int, rng: random.Random
) -> List[int]:
    """A synthetic distance-k weak c-coloring.

    Blocks of a BFS layering get constant colors: layer ``j`` takes
    color ``(j // k) mod c`` — within distance ``k`` of any node there
    is a node in a different block (layers extend both ways), except
    possibly near the extremes, which are patched by recoloring.  The
    result is validated before being returned.
    """
    if c < 2:
        raise ValueError("need at least two colors")
    dist = graph.bfs_distances(0)
    if len(dist) != graph.n:
        raise ValueError("graph must be connected")
    colors = [(dist[v] // k) % c for v in graph.nodes()]
    verifier = WeakColoring(c, distance=k)
    for _ in range(graph.n):
        violations = verifier.verify(graph, colors)
        if not violations:
            return colors
        for violation in violations:
            v = violation.where
            colors[v] = (colors[v] + 1) % c
    raise AssertionError("failed to plant a distance-k weak coloring (bug)")


@dataclass
class Lemma2Point:
    """One (n, rounds) measurement."""

    n: int
    rounds: int
    phase_rounds: Dict[str, int]
    verified: bool


@dataclass
class Lemma2Result:
    """The sweep for one (k, c)."""

    k: int
    c: int
    points: List[Lemma2Point] = field(default_factory=list)
    fit: Optional[GrowthFit] = None

    def rounds_are_constant(self) -> bool:
        rounds = {p.rounds for p in self.points}
        return len(rounds) == 1


def run_lemma2(
    k: int = 2,
    c: int = 4,
    delta: int = 4,
    sizes: Sequence[int] = (50, 200, 800, 3200),
    rng_seed: int = 0,
) -> Lemma2Result:
    """Sweep n at fixed (k, c) and record the reduction's round count."""
    rng = random.Random(rng_seed)
    result = Lemma2Result(k=k, c=c)
    verifier = WeakColoring(2)
    seen = set()
    for target in sizes:
        tree, _ = regular_tree_of_depth_at_least(delta, target)
        if tree.n in seen:
            continue
        seen.add(tree.n)
        phi = plant_distance_k_weak_coloring(tree, k, c, rng)
        out = weak_two_coloring_from_weak_coloring(tree, phi, k=k, c=c)
        verified = not verifier.verify(tree, out.labels)
        result.points.append(
            Lemma2Point(
                n=tree.n,
                rounds=out.rounds,
                phase_rounds=dict(out.phase_rounds),
                verified=verified,
            )
        )
    if len(result.points) >= 3:
        result.fit = fit_growth(
            [p.n for p in result.points], [p.rounds for p in result.points]
        )
    return result
