"""The introduction's cycle trichotomy, measured.

"Distributed symmetry breaking in cycles is nowadays completely
understood": every cycle LCL is (1) trivial — O(1); (2) local —
Theta(log* n); or (3) global — Theta(n).  This experiment exhibits one
representative per class on an n-sweep of cycles:

* trivial: the constant labeling (valid for the always-accept LCL);
* local: proper 3-coloring via Linial's reduction (also 3-edge-coloring
  through the line graph, and MIS via the color classes);
* global: proper 2-coloring (needs the whole cycle's parity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..algorithms.proper_coloring import linial_coloring
from ..algorithms.two_coloring import proper_two_coloring
from ..graphs.generators import cycle
from ..graphs.identifiers import sequential_ids
from ..lcl.catalog import ProperColoring
from .fitting import GrowthFit, fit_growth

__all__ = ["TrichotomyRow", "CycleTrichotomyResult", "run_cycle_trichotomy"]


@dataclass
class TrichotomyRow:
    """One class of the trichotomy."""

    label: str
    paper_complexity: str
    measurements: List[Tuple[int, int]]
    all_verified: bool
    fit: Optional[GrowthFit] = None


@dataclass
class CycleTrichotomyResult:
    """All three classes."""

    rows: List[TrichotomyRow] = field(default_factory=list)

    def format_table(self) -> str:
        lines = [f"{'class':26s} {'paper':14s} {'measured':32s} {'fit'}"]
        for row in self.rows:
            series = ", ".join(f"{n}:{r}" for n, r in row.measurements)
            fit = row.fit.best if row.fit else "-"
            lines.append(
                f"{row.label:26s} {row.paper_complexity:14s} {series:32s} {fit}"
            )
        return "\n".join(lines)


def run_cycle_trichotomy(
    sizes: Sequence[int] = (16, 64, 256, 1024),
) -> CycleTrichotomyResult:
    """Measure the three classes on even cycles of the given sizes."""
    result = CycleTrichotomyResult()
    graphs = [cycle(n if n % 2 == 0 else n + 1) for n in sizes]

    # (1) trivial: constant output, zero rounds by definition.
    measurements = [(g.n, 0) for g in graphs]
    result.rows.append(
        TrichotomyRow(
            label="(1) trivial (constant label)",
            paper_complexity="O(1)",
            measurements=measurements,
            all_verified=True,
            fit=fit_growth([n for n, _ in measurements], [r for _, r in measurements]),
        )
    )

    # (2) local: 3-coloring via Linial.
    measurements, ok = [], True
    for g in graphs:
        out = linial_coloring(g, sequential_ids(g))
        ok &= ProperColoring(3).is_feasible(g, out.colors)
        measurements.append((g.n, out.rounds))
    result.rows.append(
        TrichotomyRow(
            label="(2) local (3-coloring)",
            paper_complexity="Theta(log* n)",
            measurements=measurements,
            all_verified=ok,
            fit=fit_growth(
                [n for n, _ in measurements],
                [r for _, r in measurements],
                flatness_tolerance=3.0,
            ),
        )
    )

    # (3) global: 2-coloring needs Theta(n) (diameter = n/2 on a cycle).
    measurements, ok = [], True
    for g in graphs:
        out = proper_two_coloring(g, sequential_ids(g))
        ok &= ProperColoring(2).is_feasible(g, out.colors)
        measurements.append((g.n, out.rounds))
    result.rows.append(
        TrichotomyRow(
            label="(3) global (2-coloring)",
            paper_complexity="Theta(n)",
            measurements=measurements,
            all_verified=ok,
            fit=fit_growth([n for n, _ in measurements], [r for _, r in measurements]),
        )
    )
    return result
